//! The paper's forwarding/routing stage game (§2.4).
//!
//! "At each stage a node has three choices; a) not participate in
//! forwarding, b) forward and route randomly, c) forward and route
//! non-randomly." A forwarder's utility (model I) is
//! `U = P_f + q·P_r − (C^p + C^t)` where the achieved edge quality `q`
//! depends on the routing choice: utility-driven (non-random) routing picks
//! the maximum-quality edge, random routing draws an average one.
//!
//! The module provides the stage game itself plus numeric verification of
//! the paper's two analytic conditions:
//!
//! * **Prop. 2** — `P_f > C^p·N/(L·k) + C^t` induces participation: with k
//!   connections of average length L spread over N peers, a peer expects
//!   `L·k/N` forwarding instances per session, so the per-instance benefit
//!   must amortise the one-time participation cost.
//! * **Prop. 3** — `P_f > C^p + C^t` makes forwarding a dominant strategy
//!   of the stage game: the worst-case benefit (quality 0, so no routing
//!   benefit) already beats non-participation.

use crate::normal::NormalFormGame;

/// The three stage-game actions, in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageAction {
    /// Decline to join the forwarding path (utility 0).
    NotParticipate,
    /// Forward, choosing the next hop uniformly at random (the adversary's
    /// strategy, also available to selfish peers).
    ForwardRandom,
    /// Forward, choosing the next hop by maximum utility (edge quality).
    ForwardNonRandom,
}

impl StageAction {
    /// All actions, indexed consistently with
    /// [`ForwardingStageGame::to_normal_form`].
    pub const ALL: [StageAction; 3] = [
        StageAction::NotParticipate,
        StageAction::ForwardRandom,
        StageAction::ForwardNonRandom,
    ];

    /// The index used in normal-form encodings.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            StageAction::NotParticipate => 0,
            StageAction::ForwardRandom => 1,
            StageAction::ForwardNonRandom => 2,
        }
    }
}

/// Parameters of one stage of the forwarding game.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForwardingStageGame {
    /// Forwarding benefit `P_f` per forwarding instance.
    pub pf: f64,
    /// Routing benefit pool `P_r` (shared over the forwarder set).
    pub pr: f64,
    /// One-time participation cost `C^p`.
    pub cp: f64,
    /// Transmission cost `C^t` to the next hop.
    pub ct: f64,
    /// Expected edge quality achieved by *random* next-hop choice.
    pub q_random: f64,
    /// Edge quality achieved by utility-maximising choice (the maximum over
    /// the neighbor set, so `q_nonrandom >= q_random`).
    pub q_nonrandom: f64,
}

impl ForwardingStageGame {
    /// Validates the quality ordering and ranges.
    pub fn validate(&self) {
        assert!(self.pf >= 0.0 && self.pr >= 0.0, "negative benefits");
        assert!(self.cp >= 0.0 && self.ct >= 0.0, "negative costs");
        assert!(
            (0.0..=1.0).contains(&self.q_random) && (0.0..=1.0).contains(&self.q_nonrandom),
            "qualities must be in [0,1]"
        );
        assert!(
            self.q_nonrandom >= self.q_random,
            "max-quality choice cannot be worse than a random one"
        );
    }

    /// Single-peer stage utility of an action (utility model I with the
    /// routing-benefit share at its single-stage value `q·P_r`).
    #[must_use]
    pub fn utility(&self, action: StageAction) -> f64 {
        match action {
            StageAction::NotParticipate => 0.0,
            StageAction::ForwardRandom => self.pf + self.q_random * self.pr - (self.cp + self.ct),
            StageAction::ForwardNonRandom => {
                self.pf + self.q_nonrandom * self.pr - (self.cp + self.ct)
            }
        }
    }

    /// The action a rational peer plays at this stage (argmax utility; ties
    /// broken toward the higher-quality routing choice, as the paper breaks
    /// ties "by selecting a neighbor with a higher quality").
    #[must_use]
    pub fn rational_action(&self) -> StageAction {
        let mut best = StageAction::NotParticipate;
        for action in [StageAction::ForwardRandom, StageAction::ForwardNonRandom] {
            if self.utility(action) >= self.utility(best) {
                best = action;
            }
        }
        best
    }

    /// Encodes an `n_players`-peer symmetric participation game.
    ///
    /// The coupling between peers is the *implicit cooperation* the routing
    /// benefit induces (§2.2): a peer's achieved routing-benefit share
    /// grows with the fraction of other participants who also route
    /// non-randomly, because non-random routing keeps the forwarder set
    /// `‖π‖` small. We model the share multiplicatively:
    /// `share_i = q_i · P_r · (1 + #others-nonrandom) / n_players`.
    /// The factor is ≥ 1/n and ≤ 1, so it preserves both propositions'
    /// thresholds while making "everyone non-random" the best symmetric
    /// outcome.
    #[must_use]
    pub fn to_normal_form(&self, n_players: usize) -> NormalFormGame {
        self.validate();
        assert!(n_players >= 1);
        let game = *self;
        NormalFormGame::from_fn(vec![3; n_players], move |profile| {
            let nonrandom_count = profile
                .iter()
                .filter(|&&a| a == StageAction::ForwardNonRandom.index())
                .count();
            profile
                .iter()
                .map(|&a| {
                    if a == StageAction::NotParticipate.index() {
                        return 0.0;
                    }
                    let q = if a == StageAction::ForwardNonRandom.index() {
                        game.q_nonrandom
                    } else {
                        game.q_random
                    };
                    let others_nonrandom =
                        nonrandom_count - usize::from(a == StageAction::ForwardNonRandom.index());
                    let coop = (1.0 + others_nonrandom as f64) / n_players as f64;
                    game.pf + q * game.pr * coop - (game.cp + game.ct)
                })
                .collect()
        })
    }

    /// Whether forwarding (in either routing flavour) strictly beats
    /// non-participation for **every** quality outcome — the Prop. 3
    /// dominance condition, checked numerically over the normal form.
    #[must_use]
    pub fn forwarding_is_dominant(&self, n_players: usize) -> bool {
        let g = self.to_normal_form(n_players);
        // "Forwarding dominant" in the paper's sense: NotParticipate is
        // strictly dominated (by the better of the two forwarding actions).
        let alive = g.iterated_elimination();
        alive
            .iter()
            .all(|set| !set.contains(&StageAction::NotParticipate.index()))
    }
}

/// Prop. 2 threshold: the `P_f` above which participation is induced, for
/// participation cost `cp`, transmission cost `ct`, `n` peers, average path
/// length `l` and `k` connections.
#[must_use]
pub fn participation_threshold(cp: f64, ct: f64, n: usize, l: f64, k: usize) -> f64 {
    assert!(
        l > 0.0 && k > 0,
        "need positive path length and connections"
    );
    cp * n as f64 / (l * k as f64) + ct
}

/// Prop. 3 threshold: the `P_f` above which forwarding is a dominant
/// strategy of the stage game.
#[must_use]
pub fn dominance_threshold(cp: f64, ct: f64) -> f64 {
    cp + ct
}

/// Expected per-session payoff of a participating peer under Prop. 2's
/// accounting: `m·P_f − m·C^t − C^p` with `m = L·k/N` expected forwarding
/// instances (routing benefit omitted — the proposition's worst case).
#[must_use]
pub fn expected_session_payoff(pf: f64, cp: f64, ct: f64, n: usize, l: f64, k: usize) -> f64 {
    let m = l * k as f64 / n as f64;
    m * pf - m * ct - cp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn game(pf: f64) -> ForwardingStageGame {
        ForwardingStageGame {
            pf,
            pr: 100.0,
            cp: 5.0,
            ct: 2.0,
            q_random: 0.3,
            q_nonrandom: 0.8,
        }
    }

    #[test]
    fn utilities_match_model_one() {
        let g = game(50.0);
        assert_eq!(g.utility(StageAction::NotParticipate), 0.0);
        assert!((g.utility(StageAction::ForwardRandom) - (50.0 + 30.0 - 7.0)).abs() < 1e-12);
        assert!((g.utility(StageAction::ForwardNonRandom) - (50.0 + 80.0 - 7.0)).abs() < 1e-12);
    }

    #[test]
    fn rational_peer_routes_nonrandomly() {
        assert_eq!(game(50.0).rational_action(), StageAction::ForwardNonRandom);
    }

    #[test]
    fn rational_peer_opts_out_when_costs_dominate() {
        let g = ForwardingStageGame {
            pf: 1.0,
            pr: 0.0,
            cp: 5.0,
            ct: 2.0,
            q_random: 0.0,
            q_nonrandom: 0.0,
        };
        assert_eq!(g.rational_action(), StageAction::NotParticipate);
    }

    #[test]
    fn prop3_dominance_above_threshold() {
        // pf > cp + ct = 7: forwarding dominant for any quality values.
        let g = game(7.5);
        assert!(g.forwarding_is_dominant(2));
        assert!(g.forwarding_is_dominant(3));
    }

    #[test]
    fn prop3_no_dominance_below_threshold_with_zero_quality() {
        // pf < cp + ct and no routing benefit reachable: not dominant.
        let g = ForwardingStageGame {
            pf: 6.0,
            pr: 0.0,
            cp: 5.0,
            ct: 2.0,
            q_random: 0.0,
            q_nonrandom: 0.0,
        };
        assert!(!g.forwarding_is_dominant(2));
    }

    #[test]
    fn equilibrium_is_all_nonrandom_above_threshold() {
        let g = game(10.0).to_normal_form(3);
        let eqs = g.pure_nash_equilibria();
        let all_nonrandom = vec![StageAction::ForwardNonRandom.index(); 3];
        assert!(
            eqs.contains(&all_nonrandom),
            "all-nonrandom must be an equilibrium, got {eqs:?}"
        );
    }

    #[test]
    fn nonrandom_weakly_dominates_random() {
        let g = game(10.0).to_normal_form(2);
        // For each player: nonrandom is weakly dominant among the three.
        for p in 0..2 {
            assert!(g.is_weakly_dominant(p, StageAction::ForwardNonRandom.index()));
        }
    }

    #[test]
    fn participation_threshold_formula() {
        // cp=5, ct=2, N=40, L=4, k=20: threshold = 5*40/(4*20) + 2 = 4.5
        let t = participation_threshold(5.0, 2.0, 40, 4.0, 20);
        assert!((t - 4.5).abs() < 1e-12);
    }

    #[test]
    fn participation_threshold_monotonicity() {
        // More peers => each forwards less often => higher threshold.
        assert!(
            participation_threshold(5.0, 2.0, 80, 4.0, 20)
                > participation_threshold(5.0, 2.0, 40, 4.0, 20)
        );
        // More connections => cost amortised further => lower threshold.
        assert!(
            participation_threshold(5.0, 2.0, 40, 4.0, 40)
                < participation_threshold(5.0, 2.0, 40, 4.0, 20)
        );
    }

    #[test]
    fn expected_payoff_positive_exactly_above_threshold() {
        let (cp, ct, n, l, k) = (5.0, 2.0, 40, 4.0, 20);
        let thr = participation_threshold(cp, ct, n, l, k);
        assert!(expected_session_payoff(thr + 0.01, cp, ct, n, l, k) > 0.0);
        assert!(expected_session_payoff(thr - 0.01, cp, ct, n, l, k) < 0.0);
        assert!(expected_session_payoff(thr, cp, ct, n, l, k).abs() < 1e-9);
    }

    #[test]
    fn dominance_threshold_is_cost_sum() {
        assert_eq!(dominance_threshold(5.0, 2.0), 7.0);
    }

    #[test]
    fn coop_factor_rewards_mutual_nonrandom_routing() {
        // A nonrandom router earns more when the other player also routes
        // nonrandomly than when the other routes randomly.
        let g = game(10.0).to_normal_form(2);
        let nr = StageAction::ForwardNonRandom.index();
        let r = StageAction::ForwardRandom.index();
        assert!(g.payoff(&[nr, nr], 0) > g.payoff(&[nr, r], 0));
    }

    #[test]
    #[should_panic(expected = "cannot be worse")]
    fn validate_rejects_inverted_qualities() {
        ForwardingStageGame {
            pf: 1.0,
            pr: 1.0,
            cp: 0.0,
            ct: 0.0,
            q_random: 0.9,
            q_nonrandom: 0.1,
        }
        .validate();
    }
}
