//! Finite n-player normal-form games.
//!
//! Strategy profiles are indexed in mixed radix: player `i` contributes
//! digit `profile[i] ∈ 0..n_strategies[i]`. Payoffs are stored densely,
//! one `Vec<f64>` (a payoff per player) per profile.

/// A finite n-player game in strategic (normal) form.
#[derive(Debug, Clone)]
pub struct NormalFormGame {
    n_strategies: Vec<usize>,
    /// `payoffs[profile_index][player]`.
    payoffs: Vec<Vec<f64>>,
}

impl NormalFormGame {
    /// Builds a game from a payoff function evaluated on every profile.
    ///
    /// `n_strategies[i]` is the number of pure strategies of player `i`;
    /// `payoff(profile)` returns one payoff per player.
    #[must_use]
    pub fn from_fn(n_strategies: Vec<usize>, mut payoff: impl FnMut(&[usize]) -> Vec<f64>) -> Self {
        assert!(!n_strategies.is_empty(), "game needs at least one player");
        assert!(
            n_strategies.iter().all(|&k| k > 0),
            "every player needs at least one strategy"
        );
        let total: usize = n_strategies.iter().product();
        let n_players = n_strategies.len();
        let mut payoffs = Vec::with_capacity(total);
        let mut profile = vec![0usize; n_players];
        for _ in 0..total {
            let p = payoff(&profile);
            assert_eq!(p.len(), n_players, "payoff vector length mismatch");
            payoffs.push(p);
            // Mixed-radix increment.
            for d in 0..n_players {
                profile[d] += 1;
                if profile[d] < n_strategies[d] {
                    break;
                }
                profile[d] = 0;
            }
        }
        NormalFormGame {
            n_strategies,
            payoffs,
        }
    }

    /// Number of players.
    #[must_use]
    pub fn n_players(&self) -> usize {
        self.n_strategies.len()
    }

    /// Number of pure strategies of `player`.
    #[must_use]
    pub fn n_strategies(&self, player: usize) -> usize {
        self.n_strategies[player]
    }

    fn profile_index(&self, profile: &[usize]) -> usize {
        debug_assert_eq!(profile.len(), self.n_strategies.len());
        let mut idx = 0;
        let mut stride = 1;
        for (d, &s) in profile.iter().enumerate() {
            debug_assert!(s < self.n_strategies[d]);
            idx += s * stride;
            stride *= self.n_strategies[d];
        }
        idx
    }

    /// Payoff of `player` at `profile`.
    #[must_use]
    pub fn payoff(&self, profile: &[usize], player: usize) -> f64 {
        self.payoffs[self.profile_index(profile)][player]
    }

    /// All profiles (mixed-radix enumeration). Intended for small games.
    #[must_use]
    pub fn profiles(&self) -> Vec<Vec<usize>> {
        let total: usize = self.n_strategies.iter().product();
        let mut out = Vec::with_capacity(total);
        let mut profile = vec![0usize; self.n_players()];
        for _ in 0..total {
            out.push(profile.clone());
            for (digit, &limit) in profile.iter_mut().zip(&self.n_strategies) {
                *digit += 1;
                if *digit < limit {
                    break;
                }
                *digit = 0;
            }
        }
        out
    }

    /// Best responses of `player` to the opponents' strategies in `profile`
    /// (the player's own entry is ignored). Returns all maximisers.
    #[must_use]
    pub fn best_responses(&self, profile: &[usize], player: usize) -> Vec<usize> {
        let mut probe = profile.to_vec();
        let mut best = f64::NEG_INFINITY;
        let mut arg = Vec::new();
        for s in 0..self.n_strategies[player] {
            probe[player] = s;
            let u = self.payoff(&probe, player);
            if u > best + 1e-12 {
                best = u;
                arg.clear();
                arg.push(s);
            } else if (u - best).abs() <= 1e-12 {
                arg.push(s);
            }
        }
        arg
    }

    /// Whether strategy `s` of `player` is **weakly dominant**: against
    /// every opponent profile it is a best response, i.e. no alternative
    /// ever does strictly better.
    #[must_use]
    pub fn is_weakly_dominant(&self, player: usize, s: usize) -> bool {
        self.for_all_opponent_profiles(player, |probe| {
            let mut probe = probe.to_vec();
            probe[player] = s;
            let u_s = self.payoff(&probe, player);
            (0..self.n_strategies[player]).all(|alt| {
                probe[player] = alt;
                self.payoff(&probe, player) <= u_s + 1e-12
            })
        })
    }

    /// Whether strategy `s` of `player` is **strictly dominant**: against
    /// every opponent profile it does strictly better than every
    /// alternative.
    #[must_use]
    pub fn is_strictly_dominant(&self, player: usize, s: usize) -> bool {
        if self.n_strategies[player] == 1 {
            return true;
        }
        self.for_all_opponent_profiles(player, |probe| {
            let mut probe = probe.to_vec();
            probe[player] = s;
            let u_s = self.payoff(&probe, player);
            (0..self.n_strategies[player]).all(|alt| {
                if alt == s {
                    return true;
                }
                probe[player] = alt;
                self.payoff(&probe, player) < u_s - 1e-12
            })
        })
    }

    /// Runs `pred` over every joint strategy choice of the opponents of
    /// `player` (the player's own slot left at 0); true if all hold.
    fn for_all_opponent_profiles(
        &self,
        player: usize,
        mut pred: impl FnMut(&[usize]) -> bool,
    ) -> bool {
        let others: Vec<usize> = (0..self.n_players()).filter(|&p| p != player).collect();
        let total: usize = others.iter().map(|&p| self.n_strategies[p]).product();
        let mut digits = vec![0usize; others.len()];
        let mut profile = vec![0usize; self.n_players()];
        for _ in 0..total.max(1) {
            for (k, &p) in others.iter().enumerate() {
                profile[p] = digits[k];
            }
            if !pred(&profile) {
                return false;
            }
            for k in 0..digits.len() {
                digits[k] += 1;
                if digits[k] < self.n_strategies[others[k]] {
                    break;
                }
                digits[k] = 0;
            }
        }
        true
    }

    /// All pure-strategy Nash equilibria (profiles where each strategy is a
    /// best response to the others).
    #[must_use]
    pub fn pure_nash_equilibria(&self) -> Vec<Vec<usize>> {
        self.profiles()
            .into_iter()
            .filter(|profile| {
                (0..self.n_players()).all(|player| {
                    self.best_responses(profile, player)
                        .contains(&profile[player])
                })
            })
            .collect()
    }

    /// Iterated elimination of strictly dominated strategies. Returns the
    /// surviving strategy sets, one per player.
    #[must_use]
    pub fn iterated_elimination(&self) -> Vec<Vec<usize>> {
        let mut alive: Vec<Vec<usize>> = self
            .n_strategies
            .iter()
            .map(|&k| (0..k).collect())
            .collect();

        loop {
            let mut removed_any = false;
            for player in 0..self.n_players() {
                let candidates = alive[player].clone();
                for &s in &candidates {
                    if alive[player].len() == 1 {
                        break;
                    }
                    // s is strictly dominated if some alive alternative does
                    // strictly better against all alive opponent profiles.
                    let dominated = alive[player].iter().any(|&alt| {
                        alt != s
                            && self.all_alive_opponent_profiles(&alive, player, |probe| {
                                let mut probe = probe.to_vec();
                                probe[player] = alt;
                                let u_alt = self.payoff(&probe, player);
                                probe[player] = s;
                                self.payoff(&probe, player) < u_alt - 1e-12
                            })
                    });
                    if dominated {
                        alive[player].retain(|&x| x != s);
                        removed_any = true;
                    }
                }
            }
            if !removed_any {
                return alive;
            }
        }
    }

    /// Best-response dynamics from `start`: players revise in round-robin
    /// order, each switching to its (lowest-index) best response. Returns
    /// `Some(profile)` on convergence to a pure Nash equilibrium within
    /// `max_rounds` full revision rounds, `None` if the dynamics cycle.
    ///
    /// For potential-like games (including the forwarding stage game,
    /// where the coupling is monotone) this converges; matching-pennies
    /// style games cycle and return `None`.
    #[must_use]
    pub fn best_response_dynamics(&self, start: &[usize], max_rounds: usize) -> Option<Vec<usize>> {
        assert_eq!(start.len(), self.n_players(), "profile arity");
        let mut profile = start.to_vec();
        for _ in 0..max_rounds {
            let mut changed = false;
            for player in 0..self.n_players() {
                let best = self.best_responses(&profile, player);
                if !best.contains(&profile[player]) {
                    profile[player] = best[0];
                    changed = true;
                }
            }
            if !changed {
                return Some(profile);
            }
        }
        None
    }

    fn all_alive_opponent_profiles(
        &self,
        alive: &[Vec<usize>],
        player: usize,
        mut pred: impl FnMut(&[usize]) -> bool,
    ) -> bool {
        let others: Vec<usize> = (0..self.n_players()).filter(|&p| p != player).collect();
        let total: usize = others.iter().map(|&p| alive[p].len()).product();
        let mut digits = vec![0usize; others.len()];
        let mut profile = vec![0usize; self.n_players()];
        for _ in 0..total.max(1) {
            for (k, &p) in others.iter().enumerate() {
                profile[p] = alive[p][digits[k]];
            }
            if !pred(&profile) {
                return false;
            }
            for k in 0..digits.len() {
                digits[k] += 1;
                if digits[k] < alive[others[k]].len() {
                    break;
                }
                digits[k] = 0;
            }
        }
        true
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;

    /// Prisoner's dilemma: strategy 0 = cooperate, 1 = defect.
    fn prisoners_dilemma() -> NormalFormGame {
        NormalFormGame::from_fn(vec![2, 2], |p| match (p[0], p[1]) {
            (0, 0) => vec![3.0, 3.0],
            (0, 1) => vec![0.0, 5.0],
            (1, 0) => vec![5.0, 0.0],
            (1, 1) => vec![1.0, 1.0],
            _ => unreachable!(),
        })
    }

    /// Coordination game with two equilibria.
    fn coordination() -> NormalFormGame {
        NormalFormGame::from_fn(vec![2, 2], |p| {
            if p[0] == p[1] {
                vec![1.0, 1.0]
            } else {
                vec![0.0, 0.0]
            }
        })
    }

    /// Matching pennies: no pure equilibrium.
    fn matching_pennies() -> NormalFormGame {
        NormalFormGame::from_fn(vec![2, 2], |p| {
            if p[0] == p[1] {
                vec![1.0, -1.0]
            } else {
                vec![-1.0, 1.0]
            }
        })
    }

    #[test]
    fn payoff_lookup() {
        let g = prisoners_dilemma();
        assert_eq!(g.payoff(&[0, 1], 0), 0.0);
        assert_eq!(g.payoff(&[0, 1], 1), 5.0);
        assert_eq!(g.payoff(&[1, 1], 0), 1.0);
    }

    #[test]
    fn defect_is_strictly_dominant_in_pd() {
        let g = prisoners_dilemma();
        for player in 0..2 {
            assert!(g.is_strictly_dominant(player, 1));
            assert!(!g.is_strictly_dominant(player, 0));
            assert!(g.is_weakly_dominant(player, 1));
        }
    }

    #[test]
    fn pd_unique_nash_is_defect_defect() {
        let g = prisoners_dilemma();
        assert_eq!(g.pure_nash_equilibria(), vec![vec![1, 1]]);
    }

    #[test]
    fn coordination_has_two_equilibria() {
        let g = coordination();
        let eqs = g.pure_nash_equilibria();
        assert_eq!(eqs, vec![vec![0, 0], vec![1, 1]]);
        // Neither strategy is dominant.
        assert!(!g.is_weakly_dominant(0, 0) || !g.is_weakly_dominant(0, 1));
        assert!(!g.is_strictly_dominant(0, 0));
        assert!(!g.is_strictly_dominant(0, 1));
    }

    #[test]
    fn matching_pennies_has_no_pure_nash() {
        assert!(matching_pennies().pure_nash_equilibria().is_empty());
    }

    #[test]
    fn best_responses_in_pd() {
        let g = prisoners_dilemma();
        assert_eq!(g.best_responses(&[0, 0], 0), vec![1]);
        assert_eq!(g.best_responses(&[0, 1], 0), vec![1]);
    }

    #[test]
    fn best_responses_report_ties() {
        let g = NormalFormGame::from_fn(vec![3, 1], |p| vec![f64::from((p[0] != 1) as u8), 0.0]);
        assert_eq!(g.best_responses(&[0, 0], 0), vec![0, 2]);
    }

    #[test]
    fn iterated_elimination_solves_pd() {
        let g = prisoners_dilemma();
        assert_eq!(g.iterated_elimination(), vec![vec![1], vec![1]]);
    }

    #[test]
    fn iterated_elimination_keeps_undominated() {
        let g = coordination();
        assert_eq!(g.iterated_elimination(), vec![vec![0, 1], vec![0, 1]]);
    }

    #[test]
    fn iterated_elimination_multi_round() {
        // A 2-player game where elimination must cascade:
        // Player 0: strategies {0,1,2}; strategy 2 strictly dominated by 0;
        // once 2 is gone, player 1's strategy 1 becomes dominated.
        let g = NormalFormGame::from_fn(vec![3, 2], |p| {
            let u0 = match p[0] {
                0 => 3.0,
                1 => 2.0,
                _ => 1.0,
            };
            let u1 = match (p[0], p[1]) {
                (2, 1) => 10.0, // only good against eliminated strategy
                (_, 1) => 0.0,
                (_, 0) => 1.0,
                _ => unreachable!(),
            };
            vec![u0, u1]
        });
        let alive = g.iterated_elimination();
        assert_eq!(alive[0], vec![0]);
        assert_eq!(alive[1], vec![0]);
    }

    #[test]
    fn three_player_game_works() {
        // Three players each with 2 strategies; payoff 1 to everyone if all
        // match, else 0. All-match profiles are the pure equilibria.
        let g = NormalFormGame::from_fn(vec![2, 2, 2], |p| {
            let all_same = p.iter().all(|&s| s == p[0]);
            vec![f64::from(all_same as u8); 3]
        });
        let eqs = g.pure_nash_equilibria();
        assert!(eqs.contains(&vec![0, 0, 0]));
        assert!(eqs.contains(&vec![1, 1, 1]));
    }

    #[test]
    fn profiles_enumerates_all() {
        let g = NormalFormGame::from_fn(vec![2, 3], |_| vec![0.0, 0.0]);
        assert_eq!(g.profiles().len(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one player")]
    fn empty_game_rejected() {
        let _ = NormalFormGame::from_fn(vec![], |_| vec![]);
    }

    #[test]
    fn best_response_dynamics_converges_in_pd() {
        let g = prisoners_dilemma();
        let end = g.best_response_dynamics(&[0, 0], 10).unwrap();
        assert_eq!(end, vec![1, 1]);
    }

    #[test]
    fn best_response_dynamics_converges_in_coordination() {
        let g = coordination();
        // Starting miscoordinated, round-robin revision coordinates.
        let end = g.best_response_dynamics(&[0, 1], 10).unwrap();
        assert!(end == vec![0, 0] || end == vec![1, 1]);
        // The fixed point is a Nash equilibrium.
        assert!(g.pure_nash_equilibria().contains(&end));
    }

    #[test]
    fn best_response_dynamics_detects_cycles() {
        let g = matching_pennies();
        assert_eq!(g.best_response_dynamics(&[0, 0], 100), None);
    }

    #[test]
    fn best_response_dynamics_fixed_point_is_nash() {
        // Any convergent endpoint must be in the pure Nash set.
        let g = NormalFormGame::from_fn(vec![3, 3], |p| {
            vec![
                -((p[0] as f64) - (p[1] as f64)).abs(),
                -((p[0] as f64) - (p[1] as f64)).abs(),
            ]
        });
        let end = g.best_response_dynamics(&[2, 0], 20).unwrap();
        assert!(g.pure_nash_equilibria().contains(&end), "{end:?}");
    }
}
