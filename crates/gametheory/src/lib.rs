//! # idpa-game — finite game framework
//!
//! §2.4 of the paper models forwarding and routing as a **finite multi-stage
//! game**: at each stage a peer chooses among (a) not participating,
//! (b) forwarding and routing randomly, (c) forwarding and routing
//! non-randomly, and the analysis asks for dominant strategies (Prop. 3),
//! participation-inducing conditions (Prop. 2) and subgame perfect Nash
//! equilibria of the L-stage path-formation game (utility model II).
//!
//! This crate provides the general machinery —
//!
//! * [`normal::NormalFormGame`]: n-player one-shot games with dominance
//!   checks, iterated elimination of strictly dominated strategies and pure
//!   Nash enumeration;
//! * [`extensive::GameTree`]: finite extensive-form games solved by backward
//!   induction, yielding subgame perfect equilibria;
//! * [`mixed`]: mixed-strategy Nash equilibria of 2-player games by
//!   support enumeration (pure equilibria need not exist once adversarial
//!   evasion enters the picture);
//! * [`forwarding`]: the paper's forwarding/routing stage game expressed in
//!   that machinery, with numeric verification of the Prop. 2 and Prop. 3
//!   thresholds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod extensive;
pub mod forwarding;
pub mod mixed;
pub mod normal;

pub use extensive::{GameTree, NodeRef, SolveStats, SpneSolution};
pub use forwarding::{ForwardingStageGame, StageAction};
pub use mixed::{mixed_nash_2p, MixedEquilibrium};
pub use normal::NormalFormGame;
