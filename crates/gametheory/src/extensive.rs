//! Finite extensive-form games and backward induction.
//!
//! Utility model II (§2.4.3) treats path formation as an L-stage game in
//! which exactly one player moves per stage; its equilibrium "can be
//! derived using backward induction". [`GameTree`] represents such a game
//! as an arena of decision and terminal nodes; [`GameTree::solve`] computes
//! the subgame perfect Nash equilibrium (SPNE) action at every decision
//! node together with the induced value vector.
//!
//! Path-formation trees repeat subgames heavily — different histories that
//! reach the same residual state induce structurally identical subtrees —
//! so [`GameTree::solve`] memoizes solved subtrees by structural interning:
//! each node is keyed on (player-to-move, child subgame identities) for
//! decisions and on the exact payoff bit pattern for terminals, and a
//! duplicate copies its representative's solution instead of re-solving.

use std::collections::HashMap;

/// Index of a node in the game tree arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef(pub usize);

/// Subgame keys are flat `u64` sequences: `[0, payoff bits...]` for a
/// terminal (exact bit patterns, so the memo can never merge almost-equal
/// subgames) and `[1, player, child class ids...]` for a decision. Child
/// ids are the *interned* identities of the children, making equality
/// recursive without recursive comparison; the leading tag plus the
/// sequence length keep the two variants collision-free.
type SubgameKey = Vec<u64>;

const KEY_TERMINAL: u64 = 0;
const KEY_DECISION: u64 = 1;

/// FNV-1a as a [`std::hash::Hasher`]: subgame keys are short `u64`
/// sequences, and the default SipHash costs more than the backward
/// induction it memoizes.
struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

#[derive(Default)]
struct FnvBuild;

impl std::hash::BuildHasher for FnvBuild {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

/// Memoization counters from one [`GameTree::solve_counting`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveStats {
    /// Distinct subgames actually solved by backward induction.
    pub solved: usize,
    /// Nodes that re-used a structurally identical solved subtree.
    pub memo_hits: usize,
}

#[derive(Debug, Clone)]
enum Node {
    Decision {
        player: usize,
        /// `(action label, child)` pairs; at least one.
        actions: Vec<(String, NodeRef)>,
    },
    Terminal {
        /// One payoff per player.
        payoffs: Vec<f64>,
    },
}

/// A finite extensive-form game with perfect information.
#[derive(Debug, Clone)]
pub struct GameTree {
    n_players: usize,
    nodes: Vec<Node>,
    root: Option<NodeRef>,
}

/// Result of backward induction.
///
/// Value vectors are stored once per subgame equivalence class and read
/// through [`SpneSolution::value`]; a node interned as a duplicate shares
/// its representative's vector instead of carrying a copy.
#[derive(Debug, Clone)]
pub struct SpneSolution {
    /// For every decision node (by arena index): the equilibrium action
    /// index; `None` for terminal nodes.
    pub choice: Vec<Option<usize>>,
    /// Representative arena index of each node's subgame class
    /// (`rep[i] == i` for nodes solved fresh).
    rep: Vec<usize>,
    /// SPNE value vector (one payoff per player), filled only at
    /// representative indices.
    value: Vec<Vec<f64>>,
}

impl SpneSolution {
    /// Value vector (one payoff per player) of `node` under the SPNE.
    #[must_use]
    pub fn value(&self, node: NodeRef) -> &[f64] {
        &self.value[self.rep[node.0]]
    }

    /// The equilibrium payoffs at the root.
    #[must_use]
    pub fn root_value<'a>(&'a self, tree: &GameTree) -> &'a [f64] {
        self.value(tree.root.expect("empty tree"))
    }

    /// The equilibrium path from the root: `(node, action label)` pairs.
    #[must_use]
    pub fn equilibrium_path(&self, tree: &GameTree) -> Vec<(NodeRef, String)> {
        let mut out = Vec::new();
        let mut cur = tree.root.expect("empty tree");
        while let Node::Decision { actions, .. } = &tree.nodes[cur.0] {
            let a = self.choice[cur.0].expect("decision node has a choice");
            out.push((cur, actions[a].0.clone()));
            cur = actions[a].1;
        }
        out
    }
}

impl GameTree {
    /// Creates an empty tree for `n_players` players.
    #[must_use]
    pub fn new(n_players: usize) -> Self {
        assert!(n_players > 0, "need at least one player");
        GameTree {
            n_players,
            nodes: Vec::new(),
            root: None,
        }
    }

    /// Number of players.
    #[must_use]
    pub fn n_players(&self) -> usize {
        self.n_players
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a terminal node with the given payoff vector.
    pub fn terminal(&mut self, payoffs: Vec<f64>) -> NodeRef {
        assert_eq!(payoffs.len(), self.n_players, "payoff vector length");
        self.nodes.push(Node::Terminal { payoffs });
        NodeRef(self.nodes.len() - 1)
    }

    /// Adds a decision node for `player` with labelled actions leading to
    /// existing children (children must be added first — the arena is in
    /// topological order by construction).
    pub fn decision(
        &mut self,
        player: usize,
        actions: Vec<(impl Into<String>, NodeRef)>,
    ) -> NodeRef {
        assert!(player < self.n_players, "player out of range");
        assert!(!actions.is_empty(), "decision node needs actions");
        for (_, child) in &actions {
            assert!(child.0 < self.nodes.len(), "child must already exist");
        }
        self.nodes.push(Node::Decision {
            player,
            actions: actions.into_iter().map(|(l, c)| (l.into(), c)).collect(),
        });
        NodeRef(self.nodes.len() - 1)
    }

    /// Declares the root node.
    pub fn set_root(&mut self, root: NodeRef) {
        assert!(root.0 < self.nodes.len(), "root must exist");
        self.root = Some(root);
    }

    /// Solves the game by backward induction, producing the SPNE.
    ///
    /// Ties are broken toward the **lowest action index**, which makes the
    /// solution deterministic (the caller can encode preferred tie-breaks
    /// by action order — the paper breaks ties "by selecting a neighbor
    /// with a higher quality").
    ///
    /// Structurally identical subgames are interned and solved once; the
    /// result is identical to [`GameTree::solve_unmemoized`] because the
    /// induced value and lowest-index tie-break depend only on subgame
    /// structure.
    #[must_use]
    pub fn solve(&self) -> SpneSolution {
        self.solve_counting().0
    }

    /// [`GameTree::solve`] plus memoization counters, for benchmarks and
    /// diagnostics.
    #[must_use]
    pub fn solve_counting(&self) -> (SpneSolution, SolveStats) {
        assert!(self.root.is_some(), "no root set");
        let n = self.nodes.len();
        let mut choice = vec![None; n];
        let mut value = vec![Vec::new(); n];
        // Representative arena index of each node's subgame equivalence
        // class; rep[i] <= i, and rep[i] == i iff node i was solved fresh.
        let mut rep = vec![0usize; n];
        let mut interned: HashMap<SubgameKey, usize, FnvBuild> = HashMap::default();
        // Keys are assembled in a reusable scratch and looked up as a
        // slice (`Vec<u64>: Borrow<[u64]>`), so a memo hit allocates
        // nothing beyond the copied value vector.
        let mut scratch: SubgameKey = Vec::new();
        let mut stats = SolveStats {
            solved: 0,
            memo_hits: 0,
        };
        // Children always precede parents in the arena (enforced by the
        // builder), so a single forward pass is a valid bottom-up order.
        for i in 0..n {
            scratch.clear();
            match &self.nodes[i] {
                Node::Terminal { payoffs } => {
                    scratch.push(KEY_TERMINAL);
                    scratch.extend(payoffs.iter().map(|p| p.to_bits()));
                }
                Node::Decision { player, actions } => {
                    scratch.push(KEY_DECISION);
                    scratch.push(*player as u64);
                    scratch.extend(actions.iter().map(|(_, c)| rep[c.0] as u64));
                }
            }
            if let Some(&r) = interned.get(scratch.as_slice()) {
                rep[i] = r;
                choice[i] = choice[r];
                stats.memo_hits += 1;
                continue;
            }
            match &self.nodes[i] {
                Node::Terminal { payoffs } => {
                    value[i] = payoffs.clone();
                }
                Node::Decision { player, actions } => {
                    let mut best_a = 0;
                    let mut best_u = f64::NEG_INFINITY;
                    for (a, (_, child)) in actions.iter().enumerate() {
                        debug_assert!(child.0 < i, "arena not topological");
                        let u = value[rep[child.0]][*player];
                        if u > best_u + 1e-12 {
                            best_u = u;
                            best_a = a;
                        }
                    }
                    choice[i] = Some(best_a);
                    value[i] = value[rep[actions[best_a].1 .0]].clone();
                }
            }
            rep[i] = i;
            interned.insert(scratch.clone(), i);
            stats.solved += 1;
        }
        (SpneSolution { choice, rep, value }, stats)
    }

    /// Reference backward induction without subgame interning — same
    /// contract as [`GameTree::solve`], kept for differential testing and
    /// the memoization benchmark baseline.
    #[must_use]
    pub fn solve_unmemoized(&self) -> SpneSolution {
        assert!(self.root.is_some(), "no root set");
        let n = self.nodes.len();
        let mut choice = vec![None; n];
        let mut value = vec![Vec::new(); n];
        for i in 0..n {
            match &self.nodes[i] {
                Node::Terminal { payoffs } => {
                    value[i] = payoffs.clone();
                }
                Node::Decision { player, actions } => {
                    let mut best_a = 0;
                    let mut best_u = f64::NEG_INFINITY;
                    for (a, (_, child)) in actions.iter().enumerate() {
                        debug_assert!(child.0 < i, "arena not topological");
                        let u = value[child.0][*player];
                        if u > best_u + 1e-12 {
                            best_u = u;
                            best_a = a;
                        }
                    }
                    choice[i] = Some(best_a);
                    value[i] = value[actions[best_a].1 .0].clone();
                }
            }
        }
        SpneSolution {
            choice,
            rep: (0..n).collect(),
            value,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;

    /// The classic entry-deterrence game:
    ///
    /// Entrant (player 0) chooses Out (payoffs 0, 2) or In; if In, the
    /// Incumbent (player 1) chooses Fight (-1, -1) or Accommodate (1, 1).
    /// SPNE: In, Accommodate. (The "threat" equilibrium Out/Fight is Nash
    /// but not subgame perfect — backward induction must not return it.)
    fn entry_deterrence() -> (GameTree, NodeRef) {
        let mut t = GameTree::new(2);
        let out = t.terminal(vec![0.0, 2.0]);
        let fight = t.terminal(vec![-1.0, -1.0]);
        let accom = t.terminal(vec![1.0, 1.0]);
        let incumbent = t.decision(1, vec![("fight", fight), ("accommodate", accom)]);
        let root = t.decision(0, vec![("out", out), ("in", incumbent)]);
        t.set_root(root);
        (t, root)
    }

    #[test]
    fn entry_deterrence_spne() {
        let (t, root) = entry_deterrence();
        let sol = t.solve();
        assert_eq!(sol.root_value(&t), &[1.0, 1.0]);
        // Root chooses "in" (index 1); incumbent chooses "accommodate".
        assert_eq!(sol.choice[root.0], Some(1));
        let path = sol.equilibrium_path(&t);
        let labels: Vec<&str> = path.iter().map(|(_, l)| l.as_str()).collect();
        assert_eq!(labels, vec!["in", "accommodate"]);
    }

    #[test]
    fn single_terminal_game() {
        let mut t = GameTree::new(1);
        let leaf = t.terminal(vec![42.0]);
        t.set_root(leaf);
        let sol = t.solve();
        assert_eq!(sol.root_value(&t), &[42.0]);
        assert!(sol.equilibrium_path(&t).is_empty());
    }

    #[test]
    fn ties_break_to_lowest_action_index() {
        let mut t = GameTree::new(1);
        let a = t.terminal(vec![5.0]);
        let b = t.terminal(vec![5.0]);
        let root = t.decision(0, vec![("first", a), ("second", b)]);
        t.set_root(root);
        assert_eq!(t.solve().choice[root.0], Some(0));
    }

    #[test]
    fn three_stage_alternating_game() {
        // Centipede-like 3 stages: player 0, then 1, then 0. Taking stops
        // the game; passing grows the pot but hands control over.
        // Stage payoffs (take): s1 (1,0), s2 (0,2), s3 (3,1); pass-to-end (2,3).
        let mut t = GameTree::new(2);
        let end = t.terminal(vec![2.0, 3.0]);
        let take3 = t.terminal(vec![3.0, 1.0]);
        let s3 = t.decision(0, vec![("take", take3), ("pass", end)]);
        let take2 = t.terminal(vec![0.0, 2.0]);
        let s2 = t.decision(1, vec![("take", take2), ("pass", s3)]);
        let take1 = t.terminal(vec![1.0, 0.0]);
        let s1 = t.decision(0, vec![("take", take1), ("pass", s2)]);
        t.set_root(s1);
        let sol = t.solve();
        // Backward induction: s3 -> take (3 > 2); s2 -> take (2 > 1);
        // s1 -> pass?? u(pass) = value(s2)[0] = 0 < 1 => take.
        let path = sol.equilibrium_path(&t);
        let labels: Vec<&str> = path.iter().map(|(_, l)| l.as_str()).collect();
        assert_eq!(labels, vec!["take"]);
        assert_eq!(sol.root_value(&t), &[1.0, 0.0]);
    }

    #[test]
    fn spne_in_every_subgame() {
        // Every decision node's chosen action must be a best response to
        // the continuation values — check explicitly on a random-ish tree.
        let (t, _) = entry_deterrence();
        let sol = t.solve();
        for i in 0..t.len() {
            if let Node::Decision { player, actions } = &t.nodes[i] {
                let chosen = sol.choice[i].unwrap();
                let chosen_u = sol.value(actions[chosen].1)[*player];
                for (_, child) in actions {
                    assert!(sol.value(*child)[*player] <= chosen_u + 1e-12);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "child must already exist")]
    fn forward_references_rejected() {
        let mut t = GameTree::new(1);
        let _ = t.decision(0, vec![("dangling", NodeRef(5))]);
    }

    #[test]
    #[should_panic(expected = "no root set")]
    fn solve_without_root_panics() {
        let _ = GameTree::new(1).solve();
    }

    #[test]
    #[should_panic(expected = "payoff vector length")]
    fn wrong_payoff_arity_rejected() {
        let mut t = GameTree::new(2);
        let _ = t.terminal(vec![1.0]);
    }

    /// SplitMix64 — the gametheory crate deliberately has no dependencies,
    /// so the differential test carries its own tiny generator.
    struct SplitMix64(u64);

    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }

        /// Uniform-ish payoff on a small lattice so distinct subtrees often
        /// collide in value — stressing both the tie-break and the interner.
        fn payoff(&mut self) -> f64 {
            self.below(7) as f64 - 3.0
        }
    }

    /// Builds a random tree by levels: terminals first, then layers of
    /// decision nodes whose children are drawn from everything built so
    /// far (the arena stays topological by construction). Payoffs are
    /// drawn from a small lattice so duplicate subgames occur naturally.
    fn random_tree(rng: &mut SplitMix64) -> GameTree {
        let n_players = 1 + rng.below(3) as usize;
        let mut t = GameTree::new(n_players);
        let mut refs = Vec::new();
        for _ in 0..(2 + rng.below(6)) {
            let payoffs = (0..n_players).map(|_| rng.payoff()).collect();
            refs.push(t.terminal(payoffs));
        }
        for _ in 0..(3 + rng.below(20)) {
            let player = rng.below(n_players as u64) as usize;
            let n_actions = 1 + rng.below(3) as usize;
            let actions: Vec<(String, NodeRef)> = (0..n_actions)
                .map(|a| {
                    let child = refs[rng.below(refs.len() as u64) as usize];
                    (format!("a{a}"), child)
                })
                .collect();
            refs.push(t.decision(player, actions));
        }
        let root = *refs.last().expect("non-empty");
        t.set_root(root);
        t
    }

    #[test]
    fn memoized_solve_matches_unmemoized_on_random_trees() {
        let mut rng = SplitMix64(0x5eed_2007);
        for case in 0..512 {
            let t = random_tree(&mut rng);
            let (memo, stats) = t.solve_counting();
            let plain = t.solve_unmemoized();
            assert_eq!(memo.choice, plain.choice, "case {case}: choices diverged");
            for i in 0..t.len() {
                let a: Vec<u64> = memo.value(NodeRef(i)).iter().map(|v| v.to_bits()).collect();
                let b: Vec<u64> = plain
                    .value(NodeRef(i))
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(a, b, "case {case}: value bits diverged at node {i}");
            }
            assert_eq!(stats.solved + stats.memo_hits, t.len(), "case {case}");
        }
    }

    #[test]
    fn interning_collapses_repeated_subgames() {
        // A path-formation-style game where every history reaches the same
        // residual subgame: a full binary tree of depth 6 over two players
        // whose leaves all carry one of two payoff vectors depending only
        // on parity of "left" moves — structurally there are only a few
        // distinct subgames per level, so interning must collapse almost
        // everything.
        let mut t = GameTree::new(2);
        let mut level: Vec<NodeRef> = (0..64)
            .map(|leaf: u32| {
                if leaf.count_ones().is_multiple_of(2) {
                    t.terminal(vec![1.0, 0.0])
                } else {
                    t.terminal(vec![0.0, 1.0])
                }
            })
            .collect();
        let mut depth = 0;
        while level.len() > 1 {
            let player = depth % 2;
            level = level
                .chunks(2)
                .map(|pair| t.decision(player, vec![("left", pair[0]), ("right", pair[1])]))
                .collect();
            depth += 1;
        }
        t.set_root(level[0]);
        let (sol, stats) = t.solve_counting();
        // 127 nodes, but only 2 distinct terminals and at most 4 distinct
        // decision shapes per level (player × child-class pair): the memo
        // must do nearly all the work.
        assert_eq!(stats.solved + stats.memo_hits, t.len());
        assert!(
            stats.memo_hits > stats.solved * 5,
            "interning barely fired: {stats:?}"
        );
        assert_eq!(sol.choice, t.solve_unmemoized().choice);
    }
}
