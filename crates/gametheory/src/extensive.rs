//! Finite extensive-form games and backward induction.
//!
//! Utility model II (§2.4.3) treats path formation as an L-stage game in
//! which exactly one player moves per stage; its equilibrium "can be
//! derived using backward induction". [`GameTree`] represents such a game
//! as an arena of decision and terminal nodes; [`GameTree::solve`] computes
//! the subgame perfect Nash equilibrium (SPNE) action at every decision
//! node together with the induced value vector.

/// Index of a node in the game tree arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef(pub usize);

#[derive(Debug, Clone)]
enum Node {
    Decision {
        player: usize,
        /// `(action label, child)` pairs; at least one.
        actions: Vec<(String, NodeRef)>,
    },
    Terminal {
        /// One payoff per player.
        payoffs: Vec<f64>,
    },
}

/// A finite extensive-form game with perfect information.
#[derive(Debug, Clone)]
pub struct GameTree {
    n_players: usize,
    nodes: Vec<Node>,
    root: Option<NodeRef>,
}

/// Result of backward induction.
#[derive(Debug, Clone)]
pub struct SpneSolution {
    /// For every decision node (by arena index): the equilibrium action
    /// index; `None` for terminal nodes.
    pub choice: Vec<Option<usize>>,
    /// Value vector (one payoff per player) of every node under the SPNE.
    pub value: Vec<Vec<f64>>,
}

impl SpneSolution {
    /// The equilibrium payoffs at the root.
    #[must_use]
    pub fn root_value<'a>(&'a self, tree: &GameTree) -> &'a [f64] {
        &self.value[tree.root.expect("empty tree").0]
    }

    /// The equilibrium path from the root: `(node, action label)` pairs.
    #[must_use]
    pub fn equilibrium_path(&self, tree: &GameTree) -> Vec<(NodeRef, String)> {
        let mut out = Vec::new();
        let mut cur = tree.root.expect("empty tree");
        while let Node::Decision { actions, .. } = &tree.nodes[cur.0] {
            let a = self.choice[cur.0].expect("decision node has a choice");
            out.push((cur, actions[a].0.clone()));
            cur = actions[a].1;
        }
        out
    }
}

impl GameTree {
    /// Creates an empty tree for `n_players` players.
    #[must_use]
    pub fn new(n_players: usize) -> Self {
        assert!(n_players > 0, "need at least one player");
        GameTree {
            n_players,
            nodes: Vec::new(),
            root: None,
        }
    }

    /// Number of players.
    #[must_use]
    pub fn n_players(&self) -> usize {
        self.n_players
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a terminal node with the given payoff vector.
    pub fn terminal(&mut self, payoffs: Vec<f64>) -> NodeRef {
        assert_eq!(payoffs.len(), self.n_players, "payoff vector length");
        self.nodes.push(Node::Terminal { payoffs });
        NodeRef(self.nodes.len() - 1)
    }

    /// Adds a decision node for `player` with labelled actions leading to
    /// existing children (children must be added first — the arena is in
    /// topological order by construction).
    pub fn decision(
        &mut self,
        player: usize,
        actions: Vec<(impl Into<String>, NodeRef)>,
    ) -> NodeRef {
        assert!(player < self.n_players, "player out of range");
        assert!(!actions.is_empty(), "decision node needs actions");
        for (_, child) in &actions {
            assert!(child.0 < self.nodes.len(), "child must already exist");
        }
        self.nodes.push(Node::Decision {
            player,
            actions: actions.into_iter().map(|(l, c)| (l.into(), c)).collect(),
        });
        NodeRef(self.nodes.len() - 1)
    }

    /// Declares the root node.
    pub fn set_root(&mut self, root: NodeRef) {
        assert!(root.0 < self.nodes.len(), "root must exist");
        self.root = Some(root);
    }

    /// Solves the game by backward induction, producing the SPNE.
    ///
    /// Ties are broken toward the **lowest action index**, which makes the
    /// solution deterministic (the caller can encode preferred tie-breaks
    /// by action order — the paper breaks ties "by selecting a neighbor
    /// with a higher quality").
    #[must_use]
    pub fn solve(&self) -> SpneSolution {
        assert!(self.root.is_some(), "no root set");
        let n = self.nodes.len();
        let mut choice = vec![None; n];
        let mut value = vec![Vec::new(); n];
        // Children always precede parents in the arena (enforced by the
        // builder), so a single forward pass is a valid bottom-up order.
        for i in 0..n {
            match &self.nodes[i] {
                Node::Terminal { payoffs } => {
                    value[i] = payoffs.clone();
                }
                Node::Decision { player, actions } => {
                    let mut best_a = 0;
                    let mut best_u = f64::NEG_INFINITY;
                    for (a, (_, child)) in actions.iter().enumerate() {
                        debug_assert!(child.0 < i, "arena not topological");
                        let u = value[child.0][*player];
                        if u > best_u + 1e-12 {
                            best_u = u;
                            best_a = a;
                        }
                    }
                    choice[i] = Some(best_a);
                    value[i] = value[actions[best_a].1 .0].clone();
                }
            }
        }
        SpneSolution { choice, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic entry-deterrence game:
    ///
    /// Entrant (player 0) chooses Out (payoffs 0, 2) or In; if In, the
    /// Incumbent (player 1) chooses Fight (-1, -1) or Accommodate (1, 1).
    /// SPNE: In, Accommodate. (The "threat" equilibrium Out/Fight is Nash
    /// but not subgame perfect — backward induction must not return it.)
    fn entry_deterrence() -> (GameTree, NodeRef) {
        let mut t = GameTree::new(2);
        let out = t.terminal(vec![0.0, 2.0]);
        let fight = t.terminal(vec![-1.0, -1.0]);
        let accom = t.terminal(vec![1.0, 1.0]);
        let incumbent = t.decision(1, vec![("fight", fight), ("accommodate", accom)]);
        let root = t.decision(0, vec![("out", out), ("in", incumbent)]);
        t.set_root(root);
        (t, root)
    }

    #[test]
    fn entry_deterrence_spne() {
        let (t, root) = entry_deterrence();
        let sol = t.solve();
        assert_eq!(sol.root_value(&t), &[1.0, 1.0]);
        // Root chooses "in" (index 1); incumbent chooses "accommodate".
        assert_eq!(sol.choice[root.0], Some(1));
        let path = sol.equilibrium_path(&t);
        let labels: Vec<&str> = path.iter().map(|(_, l)| l.as_str()).collect();
        assert_eq!(labels, vec!["in", "accommodate"]);
    }

    #[test]
    fn single_terminal_game() {
        let mut t = GameTree::new(1);
        let leaf = t.terminal(vec![42.0]);
        t.set_root(leaf);
        let sol = t.solve();
        assert_eq!(sol.root_value(&t), &[42.0]);
        assert!(sol.equilibrium_path(&t).is_empty());
    }

    #[test]
    fn ties_break_to_lowest_action_index() {
        let mut t = GameTree::new(1);
        let a = t.terminal(vec![5.0]);
        let b = t.terminal(vec![5.0]);
        let root = t.decision(0, vec![("first", a), ("second", b)]);
        t.set_root(root);
        assert_eq!(t.solve().choice[root.0], Some(0));
    }

    #[test]
    fn three_stage_alternating_game() {
        // Centipede-like 3 stages: player 0, then 1, then 0. Taking stops
        // the game; passing grows the pot but hands control over.
        // Stage payoffs (take): s1 (1,0), s2 (0,2), s3 (3,1); pass-to-end (2,3).
        let mut t = GameTree::new(2);
        let end = t.terminal(vec![2.0, 3.0]);
        let take3 = t.terminal(vec![3.0, 1.0]);
        let s3 = t.decision(0, vec![("take", take3), ("pass", end)]);
        let take2 = t.terminal(vec![0.0, 2.0]);
        let s2 = t.decision(1, vec![("take", take2), ("pass", s3)]);
        let take1 = t.terminal(vec![1.0, 0.0]);
        let s1 = t.decision(0, vec![("take", take1), ("pass", s2)]);
        t.set_root(s1);
        let sol = t.solve();
        // Backward induction: s3 -> take (3 > 2); s2 -> take (2 > 1);
        // s1 -> pass?? u(pass) = value(s2)[0] = 0 < 1 => take.
        let path = sol.equilibrium_path(&t);
        let labels: Vec<&str> = path.iter().map(|(_, l)| l.as_str()).collect();
        assert_eq!(labels, vec!["take"]);
        assert_eq!(sol.root_value(&t), &[1.0, 0.0]);
    }

    #[test]
    fn spne_in_every_subgame() {
        // Every decision node's chosen action must be a best response to
        // the continuation values — check explicitly on a random-ish tree.
        let (t, _) = entry_deterrence();
        let sol = t.solve();
        for i in 0..t.len() {
            if let Node::Decision { player, actions } = &t.nodes[i] {
                let chosen = sol.choice[i].unwrap();
                let chosen_u = sol.value[actions[chosen].1 .0][*player];
                for (_, child) in actions {
                    assert!(sol.value[child.0][*player] <= chosen_u + 1e-12);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "child must already exist")]
    fn forward_references_rejected() {
        let mut t = GameTree::new(1);
        let _ = t.decision(0, vec![("dangling", NodeRef(5))]);
    }

    #[test]
    #[should_panic(expected = "no root set")]
    fn solve_without_root_panics() {
        let _ = GameTree::new(1).solve();
    }

    #[test]
    #[should_panic(expected = "payoff vector length")]
    fn wrong_payoff_arity_rejected() {
        let mut t = GameTree::new(2);
        let _ = t.terminal(vec![1.0]);
    }
}
