//! Mixed-strategy Nash equilibria for two-player games.
//!
//! Pure equilibria do not always exist (matching-pennies-like structures
//! appear when an adversary's evasion and a defender's detection interact),
//! so the framework also solves for mixed equilibria by **support
//! enumeration**: guess the supports, solve the indifference conditions
//! with Gaussian elimination, verify feasibility and the absence of
//! profitable deviations. Complete for nondegenerate bimatrix games at the
//! sizes the forwarding analysis needs (strategy counts ≤ ~6).

use crate::normal::NormalFormGame;

/// A mixed-strategy profile of a 2-player game.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedEquilibrium {
    /// Player 0's distribution over its pure strategies.
    pub p0: Vec<f64>,
    /// Player 1's distribution over its pure strategies.
    pub p1: Vec<f64>,
    /// Player 0's expected payoff.
    pub value0: f64,
    /// Player 1's expected payoff.
    pub value1: f64,
}

const EPS: f64 = 1e-9;

impl MixedEquilibrium {
    /// Whether both distributions are (numerically) valid probabilities.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        let ok =
            |p: &[f64]| p.iter().all(|&x| x >= -EPS) && (p.iter().sum::<f64>() - 1.0).abs() < 1e-6;
        ok(&self.p0) && ok(&self.p1)
    }
}

/// Solves the square linear system `A·x = b` by Gaussian elimination with
/// partial pivoting. Returns `None` for (near-)singular systems.
fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    debug_assert!(a.len() == n && a.iter().all(|row| row.len() == n));
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot = &pivot_rows[col];
            for (cell, &p) in rest[0][col..n].iter_mut().zip(&pivot[col..n]) {
                *cell -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Enumerates subsets of `0..n` with exactly `k` elements.
fn subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn rec(start: usize, n: usize, k: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in start..n {
            current.push(i);
            rec(i + 1, n, k, current, out);
            current.pop();
        }
    }
    rec(0, n, k, &mut current, &mut out);
    out
}

/// Given supports `(s0, s1)` of equal size, solves the indifference system
/// for the *other* player's mixture and checks feasibility + deviations.
fn try_supports(game: &NormalFormGame, s0: &[usize], s1: &[usize]) -> Option<MixedEquilibrium> {
    let k = s0.len();
    debug_assert_eq!(k, s1.len());

    // Player 1's mixture y (over s1) makes player 0 indifferent across s0:
    //   Σ_j y_j·u0(i, j) − v0 = 0  for i ∈ s0 ;  Σ_j y_j = 1.
    // Unknowns: y (k) and v0 — a (k+1)×(k+1) system.
    let mut a = vec![vec![0.0; k + 1]; k + 1];
    let mut b = vec![0.0; k + 1];
    for (row, &i) in s0.iter().enumerate() {
        for (col, &j) in s1.iter().enumerate() {
            a[row][col] = game.payoff(&[i, j], 0);
        }
        a[row][k] = -1.0; // −v0
    }
    a[k][..k].fill(1.0);
    b[k] = 1.0;
    let sol = solve_linear(a, b)?;
    let (y, v0) = (sol[..k].to_vec(), sol[k]);

    // Player 0's mixture x (over s0) makes player 1 indifferent across s1.
    let mut a = vec![vec![0.0; k + 1]; k + 1];
    let mut b = vec![0.0; k + 1];
    for (row, &j) in s1.iter().enumerate() {
        for (col, &i) in s0.iter().enumerate() {
            a[row][col] = game.payoff(&[i, j], 1);
        }
        a[row][k] = -1.0; // −v1
    }
    a[k][..k].fill(1.0);
    b[k] = 1.0;
    let sol = solve_linear(a, b)?;
    let (x, v1) = (sol[..k].to_vec(), sol[k]);

    // Feasibility: probabilities non-negative.
    if x.iter().chain(&y).any(|&p| p < -EPS) {
        return None;
    }

    // Expand to full-length distributions.
    let mut p0 = vec![0.0; game.n_strategies(0)];
    for (col, &i) in s0.iter().enumerate() {
        p0[i] = x[col].max(0.0);
    }
    let mut p1 = vec![0.0; game.n_strategies(1)];
    for (col, &j) in s1.iter().enumerate() {
        p1[j] = y[col].max(0.0);
    }

    // No profitable deviation outside the supports.
    for i in 0..game.n_strategies(0) {
        let u: f64 = (0..game.n_strategies(1))
            .map(|j| p1[j] * game.payoff(&[i, j], 0))
            .sum();
        if u > v0 + 1e-6 {
            return None;
        }
    }
    for j in 0..game.n_strategies(1) {
        let u: f64 = (0..game.n_strategies(0))
            .map(|i| p0[i] * game.payoff(&[i, j], 1))
            .sum();
        if u > v1 + 1e-6 {
            return None;
        }
    }

    Some(MixedEquilibrium {
        p0,
        p1,
        value0: v0,
        value1: v1,
    })
}

/// Finds mixed Nash equilibria of a 2-player game by support enumeration
/// over equal-size supports (complete for nondegenerate games). Includes
/// pure equilibria (support size 1). Panics if the game is not 2-player.
#[must_use]
pub fn mixed_nash_2p(game: &NormalFormGame) -> Vec<MixedEquilibrium> {
    assert_eq!(game.n_players(), 2, "support enumeration is 2-player");
    let (n0, n1) = (game.n_strategies(0), game.n_strategies(1));
    let mut found: Vec<MixedEquilibrium> = Vec::new();
    for k in 1..=n0.min(n1) {
        for s0 in subsets(n0, k) {
            for s1 in subsets(n1, k) {
                if let Some(eq) = try_supports(game, &s0, &s1) {
                    if eq.is_valid()
                        && !found.iter().any(|e| {
                            e.p0.iter().zip(&eq.p0).all(|(a, b)| (a - b).abs() < 1e-6)
                                && e.p1.iter().zip(&eq.p1).all(|(a, b)| (a - b).abs() < 1e-6)
                        })
                    {
                        found.push(eq);
                    }
                }
            }
        }
    }
    found
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;

    fn matching_pennies() -> NormalFormGame {
        NormalFormGame::from_fn(vec![2, 2], |p| {
            if p[0] == p[1] {
                vec![1.0, -1.0]
            } else {
                vec![-1.0, 1.0]
            }
        })
    }

    fn battle_of_sexes() -> NormalFormGame {
        NormalFormGame::from_fn(vec![2, 2], |p| match (p[0], p[1]) {
            (0, 0) => vec![2.0, 1.0],
            (1, 1) => vec![1.0, 2.0],
            _ => vec![0.0, 0.0],
        })
    }

    fn rock_paper_scissors() -> NormalFormGame {
        NormalFormGame::from_fn(vec![3, 3], |p| {
            let (a, b) = (p[0] as i32, p[1] as i32);
            let win = (a - b).rem_euclid(3);
            match win {
                0 => vec![0.0, 0.0],
                1 => vec![1.0, -1.0],
                _ => vec![-1.0, 1.0],
            }
        })
    }

    #[test]
    fn matching_pennies_has_unique_mixed_equilibrium() {
        let eqs = mixed_nash_2p(&matching_pennies());
        assert_eq!(eqs.len(), 1);
        let eq = &eqs[0];
        assert!((eq.p0[0] - 0.5).abs() < 1e-9);
        assert!((eq.p1[0] - 0.5).abs() < 1e-9);
        assert!(eq.value0.abs() < 1e-9);
        assert!(eq.value1.abs() < 1e-9);
    }

    #[test]
    fn battle_of_sexes_has_three_equilibria() {
        let eqs = mixed_nash_2p(&battle_of_sexes());
        // Two pure + one fully mixed.
        assert_eq!(eqs.len(), 3, "{eqs:#?}");
        let mixed = eqs
            .iter()
            .find(|e| e.p0.iter().all(|&p| p > 0.01))
            .expect("fully mixed equilibrium");
        // Mixed BoS: p0 = (2/3, 1/3), p1 = (1/3, 2/3).
        assert!((mixed.p0[0] - 2.0 / 3.0).abs() < 1e-9);
        assert!((mixed.p1[0] - 1.0 / 3.0).abs() < 1e-9);
        // Mixed value is 2/3 for both.
        assert!((mixed.value0 - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn rock_paper_scissors_is_uniform() {
        let eqs = mixed_nash_2p(&rock_paper_scissors());
        assert_eq!(eqs.len(), 1);
        for p in eqs[0].p0.iter().chain(&eqs[0].p1) {
            assert!((p - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn prisoners_dilemma_yields_only_pure_defection() {
        let pd = NormalFormGame::from_fn(vec![2, 2], |p| match (p[0], p[1]) {
            (0, 0) => vec![3.0, 3.0],
            (0, 1) => vec![0.0, 5.0],
            (1, 0) => vec![5.0, 0.0],
            (1, 1) => vec![1.0, 1.0],
            _ => unreachable!(),
        });
        let eqs = mixed_nash_2p(&pd);
        assert_eq!(eqs.len(), 1);
        assert_eq!(eqs[0].p0, vec![0.0, 1.0]);
        assert_eq!(eqs[0].p1, vec![0.0, 1.0]);
    }

    #[test]
    fn equilibria_are_consistent_with_pure_enumeration() {
        // Every pure Nash equilibrium must appear among the mixed ones.
        let game = battle_of_sexes();
        let pure = game.pure_nash_equilibria();
        let mixed = mixed_nash_2p(&game);
        for profile in pure {
            let found = mixed
                .iter()
                .any(|e| e.p0[profile[0]] > 0.99 && e.p1[profile[1]] > 0.99);
            assert!(found, "pure {profile:?} missing from mixed set");
        }
    }

    #[test]
    fn asymmetric_strategy_counts_supported() {
        // 2x3 game: player 1's third strategy strictly dominated.
        let game = NormalFormGame::from_fn(vec![2, 3], |p| {
            let u1 = match p[1] {
                0 => 1.0,
                1 => 1.0,
                _ => -10.0,
            };
            let u0 = if p[0] == p[1] % 2 { 1.0 } else { -1.0 };
            vec![u0, u1]
        });
        let eqs = mixed_nash_2p(&game);
        assert!(!eqs.is_empty());
        for eq in &eqs {
            assert!(eq.is_valid());
            assert!(eq.p1[2] < 1e-9, "dominated strategy unplayed");
        }
    }

    #[test]
    fn linear_solver_handles_singular_matrices() {
        let a = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        assert!(solve_linear(a, vec![1.0, 2.0]).is_none());
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = solve_linear(a, vec![5.0, 10.0]).unwrap();
        assert!((2.0 * x[0] + x[1] - 5.0).abs() < 1e-9);
        assert!((x[0] + 3.0 * x[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "2-player")]
    fn three_player_games_rejected() {
        let g = NormalFormGame::from_fn(vec![2, 2, 2], |_| vec![0.0; 3]);
        let _ = mixed_nash_2p(&g);
    }
}
