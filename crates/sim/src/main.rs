//! `idpa-sim` — regenerate the paper's tables and figures.
//!
//! ```text
//! idpa-sim [EXPERIMENT ...] [--reps N] [--threads N] [--quick] [--out DIR] [--list]
//!          [--fault-crash P] [--fault-drop P] [--fault-delay P] [--fault-cheat F]
//!          [--fault-bank-downtime F] [--fault-retries N] [--fault-timeout MIN]
//!          [--fault-response static|adaptive] [--reputation-weight W]
//!          [--settlement per-bundle|epoch] [--epoch-length MIN]
//!          [--bank-durability off|wal] [--fault-bank-crash P]
//!          [--fault-bank-crash-torn F]
//!          [--adversary-free-riders F] [--adversary-whitewash F]
//!          [--adversary-whitewash-interval MIN] [--adversary-cliques N]
//!          [--adversary-clique-size K] [--adversary-forge-rate P]
//!          [--adversary-age-discount] [--adversary-maturity MIN]
//!          [--adversary-cross-check]
//! ```
//!
//! With no experiment names, runs everything in the registry. Markdown
//! goes to stdout; per-experiment CSVs to the output directory.
//!
//! `idpa-sim service [FLAGS]` runs one scenario as a crash-safe service
//! instead: open or closed workload, periodic checkpoints, deterministic
//! resume and graceful wall-clock shutdown (see `idpa-sim service --help`).

use std::process::ExitCode;

use idpa_sim::experiments::{registry, Experiment, Options};
use idpa_sim::{run_service, ServiceOptions};

/// Parses the next argument as the value of a `--fault-*` flag.
fn fault_value(flag: &str, next: Option<&String>) -> Result<f64, ExitCode> {
    match next.and_then(|s| s.parse::<f64>().ok()) {
        Some(v) if v.is_finite() => Ok(v),
        _ => {
            eprintln!("{flag} needs a finite number");
            Err(ExitCode::FAILURE)
        }
    }
}

/// `idpa-sim service`: run one scenario as a crash-safe service.
#[allow(clippy::too_many_lines)] // one linear flag loop, mirrors main()
fn service_main(args: &[String]) -> ExitCode {
    let mut seed = 1u64;
    // `IDPA_SVC_SMOKE=1` forces the quick tier — the verify.sh service
    // smoke stage sets it so CI can't accidentally launch a paper-scale
    // service run.
    let mut quick = std::env::var("IDPA_SVC_SMOKE").is_ok_and(|v| v == "1");
    let mut cfg_mut: Vec<Box<dyn FnOnce(&mut idpa_sim::ScenarioConfig)>> = Vec::new();
    let mut svc = ServiceOptions::default();

    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => {
                let Some(v) = iter.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--seed needs a non-negative integer");
                    return ExitCode::FAILURE;
                };
                seed = v;
            }
            "--quick" => quick = true,
            "--workload" => {
                let mode = match iter.next().map(String::as_str) {
                    Some("closed") => idpa_sim::WorkloadMode::Closed,
                    Some("open") => idpa_sim::WorkloadMode::Open,
                    _ => {
                        eprintln!("--workload needs 'closed' or 'open'");
                        return ExitCode::FAILURE;
                    }
                };
                cfg_mut.push(Box::new(move |c| c.workload = mode));
            }
            "--open-arrival-rate"
            | "--window-len"
            | "--window-warmup"
            | "--epoch-length"
            | "--reputation-weight" => {
                let v = match fault_value(arg, iter.next()) {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                let flag = arg.clone();
                cfg_mut.push(Box::new(move |c| match flag.as_str() {
                    "--open-arrival-rate" => c.open_arrival_rate = v,
                    "--window-len" => c.window_len = v,
                    "--window-warmup" => c.window_warmup = v,
                    "--epoch-length" => c.epoch_length = v,
                    _ => c.reputation_weight = v,
                }));
            }
            "--probe-mode" => {
                let mode = match iter.next().map(String::as_str) {
                    Some("eager") => idpa_sim::ProbeMode::Eager,
                    Some("lazy") => idpa_sim::ProbeMode::Lazy,
                    _ => {
                        eprintln!("--probe-mode needs 'eager' or 'lazy'");
                        return ExitCode::FAILURE;
                    }
                };
                cfg_mut.push(Box::new(move |c| c.probe_mode = mode));
            }
            "--node-lifecycle" => {
                let mode = match iter.next().map(String::as_str) {
                    Some("eager") => idpa_sim::NodeLifecycle::Eager,
                    Some("lazy") => idpa_sim::NodeLifecycle::Lazy,
                    _ => {
                        eprintln!("--node-lifecycle needs 'eager' or 'lazy'");
                        return ExitCode::FAILURE;
                    }
                };
                cfg_mut.push(Box::new(move |c| c.node_lifecycle = mode));
            }
            "--settlement" => {
                let mode = match iter.next().map(String::as_str) {
                    Some("per-bundle") => idpa_sim::SettlementMode::PerBundle,
                    Some("epoch") => idpa_sim::SettlementMode::Epoch,
                    _ => {
                        eprintln!("--settlement needs 'per-bundle' or 'epoch'");
                        return ExitCode::FAILURE;
                    }
                };
                cfg_mut.push(Box::new(move |c| c.settlement = mode));
            }
            "--bank-durability" => {
                let mode = match iter.next().map(String::as_str) {
                    Some("off") => idpa_sim::BankDurability::Off,
                    Some("wal") => idpa_sim::BankDurability::Wal,
                    _ => {
                        eprintln!("--bank-durability needs 'off' or 'wal'");
                        return ExitCode::FAILURE;
                    }
                };
                cfg_mut.push(Box::new(move |c| c.bank_durability = mode));
            }
            "--history-shards" => {
                let Some(v) = iter.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--history-shards needs a non-negative integer (0 = auto)");
                    return ExitCode::FAILURE;
                };
                cfg_mut.push(Box::new(move |c: &mut idpa_sim::ScenarioConfig| {
                    c.history_shards = v;
                }));
            }
            "--fault-crash"
            | "--fault-drop"
            | "--fault-delay"
            | "--fault-delay-mean"
            | "--fault-cheat"
            | "--fault-cheat-corrupt-share"
            | "--fault-bank-downtime"
            | "--fault-bank-outage-mean"
            | "--fault-bank-crash"
            | "--fault-bank-crash-torn"
            | "--fault-timeout" => {
                let v = match fault_value(arg, iter.next()) {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                let flag = arg.clone();
                cfg_mut.push(Box::new(move |c| match flag.as_str() {
                    "--fault-crash" => c.fault.crash_rate = v,
                    "--fault-drop" => c.fault.drop_rate = v,
                    "--fault-delay" => c.fault.delay_rate = v,
                    "--fault-delay-mean" => c.fault.delay_mean = v,
                    "--fault-cheat" => c.fault.cheat_fraction = v,
                    "--fault-cheat-corrupt-share" => c.fault.cheat_corrupt_share = v,
                    "--fault-bank-downtime" => c.fault.bank_downtime = v,
                    "--fault-bank-outage-mean" => c.fault.bank_outage_mean = v,
                    "--fault-bank-crash" => c.fault.bank_crash_rate = v,
                    "--fault-bank-crash-torn" => c.fault.bank_crash_torn_share = v,
                    _ => c.fault.retry_timeout = v,
                }));
            }
            "--fault-response" => {
                let mode = match iter.next().map(String::as_str) {
                    Some("static") => idpa_sim::FaultResponse::Static,
                    Some("adaptive") => idpa_sim::FaultResponse::Adaptive,
                    _ => {
                        eprintln!("--fault-response needs 'static' or 'adaptive'");
                        return ExitCode::FAILURE;
                    }
                };
                cfg_mut.push(Box::new(move |c| c.fault.response = mode));
            }
            "--adversary-free-riders"
            | "--adversary-whitewash"
            | "--adversary-whitewash-interval"
            | "--adversary-forge-rate"
            | "--adversary-maturity" => {
                let v = match fault_value(arg, iter.next()) {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                let flag = arg.clone();
                cfg_mut.push(Box::new(move |c| match flag.as_str() {
                    "--adversary-free-riders" => c.adversary.free_rider_fraction = v,
                    "--adversary-whitewash" => c.adversary.whitewash_fraction = v,
                    "--adversary-whitewash-interval" => c.adversary.whitewash_interval = v,
                    "--adversary-forge-rate" => c.adversary.clique_forge_rate = v,
                    _ => c.adversary.reputation_maturity = v,
                }));
            }
            "--adversary-cliques" | "--adversary-clique-size" => {
                let Some(v) = iter.next().and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("{arg} needs a non-negative integer");
                    return ExitCode::FAILURE;
                };
                let flag = arg.clone();
                cfg_mut.push(Box::new(move |c| match flag.as_str() {
                    "--adversary-cliques" => c.adversary.clique_count = v,
                    _ => c.adversary.clique_size = v,
                }));
            }
            "--adversary-age-discount" => {
                cfg_mut.push(Box::new(|c| c.adversary.whitewash_age_discount = true));
            }
            "--adversary-cross-check" => {
                cfg_mut.push(Box::new(|c| c.adversary.clique_cross_check = true));
            }
            "--fault-retries" => {
                let Some(v) = iter.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--fault-retries needs a non-negative integer");
                    return ExitCode::FAILURE;
                };
                cfg_mut.push(Box::new(move |c: &mut idpa_sim::ScenarioConfig| {
                    c.fault.max_retries = v;
                }));
            }
            "--snapshot-every" => {
                let v = match fault_value(arg, iter.next()) {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                svc.snapshot_every = Some(v);
            }
            "--snapshot-path" => {
                let Some(v) = iter.next() else {
                    eprintln!("--snapshot-path needs a file path");
                    return ExitCode::FAILURE;
                };
                svc.snapshot_path = Some(v.into());
            }
            "--resume" => {
                let Some(v) = iter.next() else {
                    eprintln!("--resume needs a file path");
                    return ExitCode::FAILURE;
                };
                svc.resume = Some(v.into());
            }
            "--max-wall-secs" => {
                let Some(v) = iter.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--max-wall-secs needs a non-negative integer");
                    return ExitCode::FAILURE;
                };
                svc.max_wall_secs = Some(v);
            }
            "--help" | "-h" => {
                println!(
                    "usage: idpa-sim service [--seed N] [--quick] \
                     [--workload closed|open] [--open-arrival-rate R]\n\
                     \u{20}       [--window-len MIN] [--window-warmup MIN] \
                     [--snapshot-every MIN] [--snapshot-path P]\n\
                     \u{20}       [--resume P] [--max-wall-secs S] [MODE + FAULT FLAGS]\n\n  \
                     --workload MODE         'closed' (the paper's fixed 2000-transmission\n  \
                     \u{20}                       schedule, the default) or 'open' (Poisson\n  \
                     \u{20}                       connection-request arrivals per pair)\n  \
                     --open-arrival-rate R   per-pair arrival rate, requests per minute\n  \
                     --window-len MIN        steady-state metric window length (0 = off)\n  \
                     --window-warmup MIN     start-up transient trimmed before window 0\n  \
                     --snapshot-every MIN    checkpoint every MIN simulated minutes\n  \
                     --snapshot-path P       checkpoint file (written atomically)\n  \
                     --resume P              resume from a checkpoint (same scenario flags!)\n  \
                     --max-wall-secs S       graceful shutdown: stop, checkpoint, report\n  \
                     \u{20}                       partial aggregates with interrupted=true\n\n\
                     mode + fault flags are the experiment runner's: --probe-mode,\n\
                     --node-lifecycle, --settlement, --epoch-length, --bank-durability,\n\
                     --history-shards, --reputation-weight and every --fault-* and\n\
                     --adversary-* flag"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown service flag: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut cfg = if quick {
        idpa_sim::ScenarioConfig::quick_test(seed)
    } else {
        idpa_sim::ScenarioConfig {
            seed,
            ..idpa_sim::ScenarioConfig::default()
        }
    };
    for f in cfg_mut {
        f(&mut cfg);
    }

    let started = std::time::Instant::now();
    let result = match run_service(cfg, &svc) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("service run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("# idpa-sim service run (seed = {seed})\n");
    println!("- simulated connections: {}", result.connections);
    println!("- delivery ratio: {:.4}", result.delivery_ratio);
    println!("- avg good payoff: {:.3}", result.avg_good_payoff);
    println!("- interrupted: {}", result.interrupted);
    println!("- audit chain verified: {}", result.audit_chain_verified);
    if result.bank_wal_records > 0 {
        println!(
            "- bank WAL: {} records / {} bytes, {} crashes ({} torn), {} records replayed",
            result.bank_wal_records,
            result.bank_wal_bytes,
            result.bank_crashes,
            result.bank_torn_tails,
            result.bank_records_replayed
        );
        println!(
            "- bank invariants: {} checks, {} violations, ledger digest {:#018x}",
            result.bank_monitor_checks, result.bank_monitor_violations, result.bank_ledger_digest
        );
    }
    if !result.windowed_delivery_ratio.is_empty() {
        println!("\nwindow,delivery_ratio,payoff_rate,retry_rate");
        for (i, ((d, p), r)) in result
            .windowed_delivery_ratio
            .iter()
            .zip(&result.windowed_payoff_rate)
            .zip(&result.windowed_retry_rate)
            .enumerate()
        {
            println!("{i},{d:.6},{p:.6},{r:.6}");
        }
    }
    eprintln!("[service run done in {:.1?}]", started.elapsed());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Trace tooling: `idpa-sim trace-export [SEED]` dumps the synthetic
    // churn trace of the paper-scale scenario as CSV (stdout), in the
    // format `idpa_netmodel::trace` re-imports for measured-trace replay.
    if args.first().map(String::as_str) == Some("trace-export") {
        let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
        let cfg = idpa_sim::ScenarioConfig {
            seed,
            ..idpa_sim::ScenarioConfig::default()
        };
        let world = idpa_sim::World::generate(&cfg);
        print!("{}", idpa_netmodel::trace::to_csv(&world.schedules));
        return ExitCode::SUCCESS;
    }

    // Service mode: `idpa-sim service [FLAGS]` — one scenario, run as a
    // crash-safe open/closed-workload service with snapshot/resume.
    if args.first().map(String::as_str) == Some("service") {
        return service_main(&args[1..]);
    }
    let mut opts = Options::default();
    let mut selected: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                for (name, _) in registry() {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--quick" => opts.quick = true,
            "--reps" => {
                let Some(v) = iter.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--reps needs a positive integer");
                    return ExitCode::FAILURE;
                };
                opts.reps = v;
            }
            "--threads" => {
                let Some(v) = iter.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--threads needs a positive integer");
                    return ExitCode::FAILURE;
                };
                opts.threads = v;
            }
            "--out" => {
                let Some(v) = iter.next() else {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                };
                opts.out_dir = v.into();
            }
            "--history-shards" => {
                let Some(v) = iter.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--history-shards needs a non-negative integer (0 = auto)");
                    return ExitCode::FAILURE;
                };
                opts.history_shards = v;
            }
            "--probe-mode" => {
                opts.probe_mode = match iter.next().map(String::as_str) {
                    Some("eager") => idpa_sim::ProbeMode::Eager,
                    Some("lazy") => idpa_sim::ProbeMode::Lazy,
                    _ => {
                        eprintln!("--probe-mode needs 'eager' or 'lazy'");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--node-lifecycle" => {
                opts.node_lifecycle = match iter.next().map(String::as_str) {
                    Some("eager") => idpa_sim::NodeLifecycle::Eager,
                    Some("lazy") => idpa_sim::NodeLifecycle::Lazy,
                    _ => {
                        eprintln!("--node-lifecycle needs 'eager' or 'lazy'");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--settlement" => {
                opts.settlement = match iter.next().map(String::as_str) {
                    Some("per-bundle") => idpa_sim::SettlementMode::PerBundle,
                    Some("epoch") => idpa_sim::SettlementMode::Epoch,
                    _ => {
                        eprintln!("--settlement needs 'per-bundle' or 'epoch'");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--epoch-length" => {
                let v = match fault_value(arg, iter.next()) {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                if v <= 0.0 {
                    eprintln!("--epoch-length must be positive (minutes)");
                    return ExitCode::FAILURE;
                }
                opts.epoch_length = v;
            }
            "--bank-durability" => {
                opts.bank_durability = match iter.next().map(String::as_str) {
                    Some("off") => idpa_sim::BankDurability::Off,
                    Some("wal") => idpa_sim::BankDurability::Wal,
                    _ => {
                        eprintln!("--bank-durability needs 'off' or 'wal'");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--fault-crash"
            | "--fault-drop"
            | "--fault-delay"
            | "--fault-delay-mean"
            | "--fault-cheat"
            | "--fault-cheat-corrupt-share"
            | "--fault-bank-downtime"
            | "--fault-bank-outage-mean"
            | "--fault-bank-crash"
            | "--fault-bank-crash-torn"
            | "--fault-timeout" => {
                let v = match fault_value(arg, iter.next()) {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                let f = &mut opts.fault;
                match arg.as_str() {
                    "--fault-crash" => f.crash_rate = v,
                    "--fault-drop" => f.drop_rate = v,
                    "--fault-delay" => f.delay_rate = v,
                    "--fault-delay-mean" => f.delay_mean = v,
                    "--fault-cheat" => f.cheat_fraction = v,
                    "--fault-cheat-corrupt-share" => f.cheat_corrupt_share = v,
                    "--fault-bank-downtime" => f.bank_downtime = v,
                    "--fault-bank-outage-mean" => f.bank_outage_mean = v,
                    "--fault-bank-crash" => f.bank_crash_rate = v,
                    "--fault-bank-crash-torn" => f.bank_crash_torn_share = v,
                    _ => f.retry_timeout = v,
                }
            }
            "--fault-response" => {
                opts.fault.response = match iter.next().map(String::as_str) {
                    Some("static") => idpa_sim::FaultResponse::Static,
                    Some("adaptive") => idpa_sim::FaultResponse::Adaptive,
                    _ => {
                        eprintln!("--fault-response needs 'static' or 'adaptive'");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--reputation-weight" => {
                let v = match fault_value(arg, iter.next()) {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                if !(0.0..=1.0).contains(&v) {
                    eprintln!("--reputation-weight must be in [0, 1]");
                    return ExitCode::FAILURE;
                }
                opts.reputation_weight = v;
            }
            "--fault-retries" => {
                let Some(v) = iter.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--fault-retries needs a non-negative integer");
                    return ExitCode::FAILURE;
                };
                opts.fault.max_retries = v;
            }
            "--adversary-free-riders"
            | "--adversary-whitewash"
            | "--adversary-whitewash-interval"
            | "--adversary-forge-rate"
            | "--adversary-maturity" => {
                let v = match fault_value(arg, iter.next()) {
                    Ok(v) => v,
                    Err(code) => return code,
                };
                let a = &mut opts.adversary;
                match arg.as_str() {
                    "--adversary-free-riders" => a.free_rider_fraction = v,
                    "--adversary-whitewash" => a.whitewash_fraction = v,
                    "--adversary-whitewash-interval" => a.whitewash_interval = v,
                    "--adversary-forge-rate" => a.clique_forge_rate = v,
                    _ => a.reputation_maturity = v,
                }
            }
            "--adversary-cliques" | "--adversary-clique-size" => {
                let Some(v) = iter.next().and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("{arg} needs a non-negative integer");
                    return ExitCode::FAILURE;
                };
                match arg.as_str() {
                    "--adversary-cliques" => opts.adversary.clique_count = v,
                    _ => opts.adversary.clique_size = v,
                }
            }
            "--adversary-age-discount" => opts.adversary.whitewash_age_discount = true,
            "--adversary-cross-check" => opts.adversary.clique_cross_check = true,
            "--help" | "-h" => {
                println!(
                    "usage: idpa-sim [EXPERIMENT ...] [--reps N] [--threads N] [--quick] \
                     [--probe-mode eager|lazy] [--node-lifecycle eager|lazy] \
                     [--history-shards N] [--out DIR] [--list] \
                     [FAULT FLAGS]\n\n\
                     --history-shards N            history-arena shard count (0 = one per\n\
                     \u{20}                             worker thread; results identical at any N)\n  \
                     --node-lifecycle MODE         'eager' (all N nodes allocated up front,\n  \
                     \u{20}                             the default) or 'lazy' (state materializes\n  \
                     \u{20}                             on first touch, evicts when idle;\n  \
                     \u{20}                             bit-identical results, bounded memory)\n  \
                     --settlement MODE             'per-bundle' (each bundle settles alone,\n  \
                     \u{20}                             the default) or 'epoch' (payouts netted and\n  \
                     \u{20}                             deposits batched at epoch boundaries;\n  \
                     \u{20}                             identical economics, amortized bank load).\n  \
                     \u{20}                             Takes effect only with fault injection\n  \
                     \u{20}                             active (the settlement layer rides on the\n  \
                     \u{20}                             evidence layer); otherwise a warned no-op\n  \
                     --epoch-length MIN            epoch length for '--settlement epoch'\n  \
                     --bank-durability MODE        'off' (the default) or 'wal' (write-ahead\n  \
                     \u{20}                             ledger log, torn-write crash recovery,\n  \
                     \u{20}                             warm failover replica and the runtime\n  \
                     \u{20}                             invariant monitor)\n\n\
                     fault injection (all rates default to 0 = off; any nonzero rate\n\
                     activates the deterministic fault plan):\n  \
                     --fault-crash P               per-hop forwarder crash probability\n  \
                     --fault-drop P                per-edge message drop probability\n  \
                     --fault-delay P               per-edge extra-delay probability\n  \
                     --fault-delay-mean MIN        mean of the injected edge delay\n  \
                     --fault-cheat F               fraction of nodes that cheat on confirmations\n  \
                     --fault-cheat-corrupt-share S share of cheats that corrupt (vs drop) receipts\n  \
                     --fault-bank-downtime F       long-run fraction of time the bank is down\n  \
                     --fault-bank-outage-mean MIN  mean length of one bank outage\n  \
                     --fault-bank-crash P          per-flush bank crash probability (kills the\n  \
                     \u{20}                             primary mid-epoch; needs --bank-durability\n  \
                     \u{20}                             wal, the warm replica takes over)\n  \
                     --fault-bank-crash-torn F     share of bank crashes that tear the final\n  \
                     \u{20}                             WAL record (partial write, discarded by\n  \
                     \u{20}                             recovery)\n  \
                     --fault-retries N             max retransmission attempts per message\n  \
                     --fault-timeout MIN           base retry timeout (exponential backoff)\n  \
                     --fault-response MODE         'static' (baseline retry protocol) or\n  \
                     \u{20}                             'adaptive' (reputation-driven suppression,\n  \
                     \u{20}                             probe invalidation, escalated reformation)\n  \
                     --reputation-weight W         w_r of the adaptive quality model\n  \
                     \u{20}                             q = w_s*sigma + w_a*alpha + w_r*rho\n  \
                     \u{20}                             (0 = the paper's two-term model)\n\n\
                     adversary strategy classes (all rates default to 0 = off; any\n\
                     nonzero rate activates the deterministic adversary plan):\n  \
                     --adversary-free-riders F     fraction of nodes that ghost forwarding duty\n  \
                     --adversary-whitewash F       fraction of nodes that shed their identity\n  \
                     --adversary-whitewash-interval MIN  mean minutes between rejoins\n  \
                     --adversary-cliques N         number of colluding cliques\n  \
                     --adversary-clique-size K     members per clique (>= 2)\n  \
                     --adversary-forge-rate P      per-connection phantom-forge probability\n  \
                     --adversary-age-discount      defense: identity-age reputation discount\n  \
                     --adversary-maturity MIN      minutes to full weight under the discount\n  \
                     --adversary-cross-check       defense: initiator cross-confirmation of\n  \
                     \u{20}                             manifest hops vs observed forwarders"
                );
                return ExitCode::SUCCESS;
            }
            name if !name.starts_with('-') => selected.push(name.to_string()),
            other => {
                eprintln!("unknown flag: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Err(e) = opts.fault.validate() {
        eprintln!("invalid fault configuration: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = opts.adversary.validate() {
        eprintln!("invalid adversary configuration: {e}");
        return ExitCode::FAILURE;
    }
    if opts.fault.bank_crash_rate > 0.0 && opts.bank_durability == idpa_sim::BankDurability::Off {
        eprintln!(
            "invalid fault configuration: --fault-bank-crash {} requires \
             --bank-durability wal (a crash without a write-ahead log loses \
             ledger state)",
            opts.fault.bank_crash_rate
        );
        return ExitCode::FAILURE;
    }

    // The settlement layer rides on the fault/evidence layer; without any
    // fault rate there is no evidence to settle and epoch mode reports
    // all-zero settlement metrics. Warn rather than fail: all-zero rates
    // are a legitimate baseline in fingerprint comparisons.
    if opts.settlement == idpa_sim::SettlementMode::Epoch && !opts.fault.is_active() {
        eprintln!(
            "warning: --settlement epoch has no effect without fault injection \
             (enable at least one --fault-* rate to activate the evidence and \
             settlement layers); settlement metrics will be zero"
        );
    }

    let reg = registry();
    let to_run: Vec<&(&str, Experiment)> = if selected.is_empty() {
        reg.iter().collect()
    } else {
        let mut picked = Vec::new();
        for name in &selected {
            match reg.iter().find(|(n, _)| n == name) {
                Some(entry) => picked.push(entry),
                None => {
                    eprintln!("unknown experiment '{name}'; try --list");
                    return ExitCode::FAILURE;
                }
            }
        }
        picked
    };

    println!(
        "# idpa-sim results (reps = {}, {} scale)\n",
        opts.reps,
        if opts.quick { "quick" } else { "paper" }
    );
    for (name, run) in to_run {
        eprintln!("[running {name} ...]");
        let started = std::time::Instant::now();
        let output = run(&opts);
        eprintln!("[{name} done in {:.1?}]", started.elapsed());
        println!("{output}");
    }
    ExitCode::SUCCESS
}
