//! The versioned, checksummed snapshot codec for crash-safe service runs.
//!
//! [`encode`] serializes the **complete mutable trajectory state** of a
//! [`SimulationRun`] plus its [`Engine`] — the calendar with original
//! sequence numbers, both sequential RNG cursors, the history arena, the
//! bundle/tracker/attack accumulators, probe state in either mode, the
//! fault runtime (delivery counters, evidence, fault ledgers, epoch
//! cursors) and the windowed-metrics buckets — into one framed byte
//! buffer ([`idpa_desim::codec::frame`]: magic, version, length,
//! FNV-1a checksum). [`restore`] rebuilds a run that continues
//! **bit-identically** to the uninterrupted one.
//!
//! What is *not* serialized is exactly the state that is a pure function
//! of the configuration: the sampled [`World`] (regenerated from the
//! master seed; only the open workload's live arrival times are
//! trajectory state and travel in the snapshot), the [`FaultPlan`]
//! (position-keyed, rebuilt from the fault config), bundle keys, routing
//! scratch buffers and memo caches (value-invisible by construction) and
//! the quality weights. The configuration itself travels only as an
//! FNV-1a fingerprint of its `Debug` rendering: a snapshot is a
//! *continuation* of one scenario, not a self-describing archive, and
//! resuming under a different scenario is a typed
//! [`SimError::SnapshotMismatch`] instead of silent divergence.
//!
//! Decoding is hardened end to end: every length is bounds-checked
//! against the buffer *and* the scenario's dimensions, every float is
//! validated (no NaN time, no negative crash horizon), every index is
//! range-checked, and the outer checksum rejects byte flips before
//! structural decoding even starts. A corrupted snapshot returns a typed
//! [`SimError`] and never panics — and because [`restore`] builds the
//! run locally and returns it only on success, a failed restore mutates
//! nothing.
//!
//! [`FaultPlan`]: idpa_desim::FaultPlan

use idpa_core::adversary::IntersectionAttack;
use idpa_core::arena::HistoryArena;
use idpa_core::bundle::{BundleAccounting, BundleId, ForwarderTally};
use idpa_core::history::HistoryWrite;
use idpa_core::metrics::{DeliveryTracker, ReformationTracker};
use idpa_core::reputation::EdgeReputation;
use idpa_desim::codec::{fnv1a_64, frame, unframe, CodecError, Dec, Enc};
use idpa_desim::rng::Xoshiro256StarStar;
use idpa_desim::{Calendar, Engine};
use idpa_overlay::{
    NodeId, ProbeCellState, ProbeCellsSnapshot, ProbeEstimator, ProbeEstimatorState,
    ProbeInvalidation, Residency,
};
use idpa_payment::bank::AccountId;
use idpa_payment::receipt::Receipt;
use idpa_payment::validation::{ConnectionEvidence, PathManifest, PathValidator};

use std::collections::BTreeMap;

use crate::durability::{BankDurabilityState, DurabilityCounters};
use crate::error::SimError;
use crate::runner::{Ev, ProbeState, SimulationRun};
use crate::scenario::{NodeLifecycle, ProbeMode, ScenarioConfig, SettlementMode};
use crate::window::WindowCollector;
use crate::world::World;

/// Snapshot format version; bumped on any layout change so a stale
/// snapshot fails with [`CodecError::UnsupportedVersion`] instead of
/// misdecoding.
pub const SNAPSHOT_VERSION: u32 = 3;

/// The scenario fingerprint a snapshot is bound to: FNV-1a over the
/// config's `Debug` rendering. Every field participates, including the
/// value-invisible ones (shard counts, lifecycle mode): resuming under a
/// *different but equivalent* configuration is intentionally rejected,
/// because "equivalent" is exactly the property the equivalence suites
/// exist to prove, not one the decoder should assume.
#[must_use]
pub fn config_fingerprint(cfg: &ScenarioConfig) -> u64 {
    fnv1a_64(format!("{cfg:?}").as_bytes())
}

fn codec(e: CodecError) -> SimError {
    SimError::SnapshotCodec {
        detail: e.to_string(),
    }
}

fn mismatch(what: &'static str) -> SimError {
    SimError::SnapshotMismatch { what }
}

/// A range-checked index.
fn idx(v: usize, n: usize, what: &'static str) -> Result<usize, SimError> {
    if v < n {
        Ok(v)
    } else {
        Err(mismatch(what))
    }
}

/// A validated finite float.
fn finite(v: f64, what: &'static str) -> Result<f64, SimError> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(mismatch(what))
    }
}

fn enc_ev(e: &mut Enc, ev: &Ev) {
    match *ev {
        Ev::Probe => e.u8(0),
        Ev::Maintain(node) => {
            e.u8(1);
            e.usize(node);
        }
        Ev::Transmit { pair, conn } => {
            e.u8(2);
            e.usize(pair);
            e.u32(conn);
        }
        Ev::Retry {
            pair,
            conn,
            attempt,
        } => {
            e.u8(3);
            e.usize(pair);
            e.u32(conn);
            e.u32(attempt);
        }
        Ev::EpochSettle => e.u8(4),
        Ev::Arrival { pair } => {
            e.u8(5);
            e.usize(pair);
        }
        Ev::Whitewash(node) => {
            e.u8(6);
            e.usize(node);
        }
    }
}

fn dec_ev(d: &mut Dec, n_nodes: usize, n_pairs: usize) -> Result<Ev, SimError> {
    Ok(match d.u8().map_err(codec)? {
        0 => Ev::Probe,
        1 => Ev::Maintain(idx(d.usize().map_err(codec)?, n_nodes, "event node index")?),
        2 => Ev::Transmit {
            pair: idx(d.usize().map_err(codec)?, n_pairs, "event pair index")?,
            conn: d.u32().map_err(codec)?,
        },
        3 => Ev::Retry {
            pair: idx(d.usize().map_err(codec)?, n_pairs, "event pair index")?,
            conn: d.u32().map_err(codec)?,
            attempt: d.u32().map_err(codec)?,
        },
        4 => Ev::EpochSettle,
        5 => Ev::Arrival {
            pair: idx(d.usize().map_err(codec)?, n_pairs, "event pair index")?,
        },
        6 => Ev::Whitewash(idx(d.usize().map_err(codec)?, n_nodes, "event node index")?),
        _ => return Err(mismatch("event tag")),
    })
}

fn enc_probe_est(e: &mut Enc, s: &ProbeEstimatorState) {
    e.usize(s.owner.index());
    e.f64(s.period);
    e.seq_len(s.neighbors.len());
    for &n in &s.neighbors {
        e.usize(n.index());
    }
    for &v in &s.init_time {
        e.f64(v);
    }
    for &v in &s.live_rounds {
        e.u64(v);
    }
    for &v in &s.ever_seen {
        e.bool(v);
    }
    for &v in &s.last_alive_round {
        e.u64(v);
    }
    e.u64(s.rounds);
}

fn dec_probe_est(
    d: &mut Dec,
    cfg: &ScenarioConfig,
    expect_owner: usize,
) -> Result<ProbeEstimatorState, SimError> {
    let owner = idx(d.usize().map_err(codec)?, cfg.n_nodes, "probe owner")?;
    if owner != expect_owner {
        return Err(mismatch("probe owner order"));
    }
    let period = d.f64().map_err(codec)?;
    if period.to_bits() != cfg.probe_period.to_bits() {
        return Err(mismatch("probe period"));
    }
    let deg = d.seq_len(8).map_err(codec)?;
    let mut neighbors = Vec::with_capacity(deg);
    for _ in 0..deg {
        neighbors.push(NodeId(idx(
            d.usize().map_err(codec)?,
            cfg.n_nodes,
            "probe neighbor",
        )?));
    }
    let mut init_time = Vec::with_capacity(deg);
    for _ in 0..deg {
        init_time.push(finite(d.f64().map_err(codec)?, "probe init time")?);
    }
    let mut live_rounds = Vec::with_capacity(deg);
    for _ in 0..deg {
        live_rounds.push(d.u64().map_err(codec)?);
    }
    let mut ever_seen = Vec::with_capacity(deg);
    for _ in 0..deg {
        ever_seen.push(d.bool().map_err(codec)?);
    }
    let mut last_alive_round = Vec::with_capacity(deg);
    for _ in 0..deg {
        last_alive_round.push(d.u64().map_err(codec)?);
    }
    let rounds = d.u64().map_err(codec)?;
    Ok(ProbeEstimatorState {
        owner: NodeId(owner),
        period,
        neighbors,
        init_time,
        live_rounds,
        ever_seen,
        last_alive_round,
        rounds,
    })
}

fn enc_residency(e: &mut Enc, r: &Residency) {
    e.usize(r.materialized);
    e.usize(r.peak);
    e.u64(r.evictions);
    e.usize(r.bytes);
    e.usize(r.peak_bytes);
}

fn dec_residency(d: &mut Dec) -> Result<Residency, SimError> {
    Ok(Residency {
        materialized: d.usize().map_err(codec)?,
        peak: d.usize().map_err(codec)?,
        evictions: d.u64().map_err(codec)?,
        bytes: d.usize().map_err(codec)?,
        peak_bytes: d.usize().map_err(codec)?,
    })
}

/// Serializes the full mutable state of `run` + `engine` into a framed,
/// checksummed snapshot buffer.
#[must_use]
pub fn encode(run: &SimulationRun, engine: &Engine<Ev>) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(config_fingerprint(&run.cfg));

    // Engine clock and calendar (original sequence numbers preserved, so
    // same-time event ordering survives the resume).
    e.time(engine.now());
    e.u64(engine.events_handled());
    let cal = engine.calendar();
    e.u64(cal.next_seq());
    let entries = cal.snapshot_entries();
    e.seq_len(entries.len());
    for (t, seq, ev) in &entries {
        e.time(*t);
        e.u64(*seq);
        enc_ev(&mut e, ev);
    }
    let cancelled = cal.snapshot_cancelled();
    e.seq_len(cancelled.len());
    for c in &cancelled {
        e.u64(*c);
    }

    // The two sequential RNG cursors.
    for w in run.routing_rng.state() {
        e.u64(w);
    }
    for w in run.probe_rng.state() {
        e.u64(w);
    }

    e.u64(run.connections);

    // Crash overlay (empty when faults are off).
    e.seq_len(run.crashed_until.len());
    for &t in &run.crashed_until {
        e.f64(t);
    }

    e.seq_len(run.initiator_costs.len());
    for &c in &run.initiator_costs {
        e.f64(c);
    }

    // Per-pair transmission times. Closed mode regenerates these
    // identically from the seed, but the open workload appends each live
    // arrival — they are trajectory state, so they travel uniformly.
    e.seq_len(run.world.pairs.len());
    for p in &run.world.pairs {
        e.seq_len(p.times.len());
        for &t in &p.times {
            e.f64(t);
        }
    }

    for b in &run.bundles {
        let (tallies, connections, total_hops) = b.snapshot_state();
        e.seq_len(tallies.len());
        for (node, t) in &tallies {
            e.usize(node.index());
            e.u64(t.instances);
            e.f64(t.transmission_cost);
            e.bool(t.participated);
        }
        e.u32(connections);
        e.u64(total_hops);
    }

    for tr in &run.trackers {
        let (edges, connections, new_edges, total_edges, reformed) = tr.snapshot_state();
        e.seq_len(edges.len());
        for (a, b) in &edges {
            e.usize(a.index());
            e.usize(b.index());
        }
        e.u32(connections);
        e.u64(new_edges);
        e.u64(total_edges);
        e.u32(reformed);
    }

    for at in &run.attacks {
        let (observations, candidates) = at.snapshot_state();
        e.u32(observations);
        match candidates {
            None => e.bool(false),
            Some(c) => {
                e.bool(true);
                e.seq_len(c.len());
                for n in &c {
                    e.usize(n.index());
                }
            }
        }
    }

    // History arena cells, restored by replaying `record_hop` — that
    // reconstructs the per-cell connection multisets and bundle filters
    // exactly, whatever the shard count.
    let cells = run.histories.snapshot_cells();
    e.seq_len(cells.len());
    for (node, bundle, records) in &cells {
        e.u64(*node);
        e.u64(*bundle);
        e.seq_len(records.len());
        for r in records {
            e.u32(r.connection);
            e.usize(r.predecessor.index());
            e.usize(r.successor.index());
        }
    }

    match &run.probes {
        ProbeState::Eager(ests) => {
            e.u8(0);
            e.seq_len(ests.len());
            for est in ests {
                enc_probe_est(&mut e, &est.snapshot_state());
            }
        }
        ProbeState::Lazy(set) => match set.snapshot_cells() {
            ProbeCellsSnapshot::Dense(cells) => {
                e.u8(1);
                e.seq_len(cells.len());
                for c in &cells {
                    enc_probe_est(&mut e, &c.est);
                    e.u64(c.synced_tick);
                }
            }
            ProbeCellsSnapshot::Sparse { cells, stats } => {
                e.u8(2);
                e.seq_len(cells.len());
                for (i, c, touch) in &cells {
                    e.usize(*i);
                    enc_probe_est(&mut e, &c.est);
                    e.u64(c.synced_tick);
                    e.u64(*touch);
                }
                enc_residency(&mut e, &stats);
            }
        },
    }

    match &run.slab {
        None => e.bool(false),
        Some(slab) => {
            e.bool(true);
            e.u64(slab.last_sweep_tick());
        }
    }

    match &run.windows {
        None => e.bool(false),
        Some(w) => {
            e.bool(true);
            let rows = w.snapshot_state();
            e.seq_len(rows.len());
            for (scheduled, delivered, retries, payoff) in rows {
                e.u64(scheduled);
                e.u64(delivered);
                e.u64(retries);
                e.u64(payoff);
            }
        }
    }

    match &run.fault {
        None => e.bool(false),
        Some(fr) => {
            e.bool(true);
            let (scheduled, delivered, abandoned, retries, latency_bits, latency_count) =
                fr.delivery.snapshot_state();
            e.u64(scheduled);
            e.u64(delivered);
            e.u64(abandoned);
            e.u64(retries);
            e.u64(latency_bits);
            e.u64(latency_count);

            e.seq_len(fr.last_completion.len());
            for &t in &fr.last_completion {
                e.f64(t);
            }

            let ledgers = fr.reputation.snapshot_ledgers();
            e.seq_len(ledgers.len());
            for (initiator, entries) in &ledgers {
                e.usize(*initiator);
                e.seq_len(entries.len());
                for (relay, drops, timeouts, flagged) in entries {
                    e.usize(*relay);
                    e.u32(*drops);
                    e.u32(*timeouts);
                    e.bool(*flagged);
                }
            }

            // Retired (whitewashed) ledger archives — dynamic evidence
            // that must survive a resume bit-identically.
            let retired = fr.reputation.snapshot_retired();
            e.seq_len(retired.len());
            for (initiator, relays) in &retired {
                e.usize(*initiator);
                e.seq_len(relays.len());
                for (relay, gens) in relays {
                    e.usize(*relay);
                    e.seq_len(gens.len());
                    for (drops, timeouts, flagged) in gens {
                        e.u32(*drops);
                        e.u32(*timeouts);
                        e.bool(*flagged);
                    }
                }
            }

            let until = fr.probe_invalid.snapshot_state();
            e.seq_len(until.len());
            for &t in &until {
                e.f64(t);
            }

            for v in &fr.validators {
                let evidence = v.evidence();
                e.seq_len(evidence.len());
                for ev in evidence {
                    e.u64(ev.manifest.bundle_id);
                    e.u32(ev.manifest.connection);
                    e.seq_len(ev.manifest.hops.len());
                    for h in &ev.manifest.hops {
                        e.u64(h.0);
                    }
                    e.raw(&ev.manifest.mac);
                    e.seq_len(ev.receipts.len());
                    for r in &ev.receipts {
                        e.u64(r.bundle_id);
                        e.u32(r.connection);
                        e.u32(r.hop);
                        e.u64(r.forwarder.0);
                        e.raw(&r.mac);
                    }
                    match &ev.observed_hops {
                        None => e.bool(false),
                        Some(obs) => {
                            e.bool(true);
                            e.seq_len(obs.len());
                            for h in obs {
                                e.u64(h.0);
                            }
                        }
                    }
                }
            }

            match &fr.epoch {
                None => e.bool(false),
                Some(es) => {
                    e.bool(true);
                    for &c in &es.cursors {
                        e.usize(c);
                    }
                    for &x in &es.expected {
                        e.u64(x);
                    }
                    for &x in &es.validated {
                        e.u64(x);
                    }
                    e.seq_len(es.flagged.len());
                    for &f in &es.flagged {
                        e.usize(f);
                    }
                    e.u64(es.epochs_settled);
                    e.u64(es.payout_ops);
                    e.u64(es.batch_ops);
                    e.u64(es.receipts_netted);
                    e.u64(es.phantom_flagged);
                }
            }

            // Adversary counters: the layer's only mutable state (the plan
            // is a pure precomputed schedule, rebuilt from the config).
            e.u64(fr.adv.whitewash_events);
            e.u64(fr.adv.whitewash_evasions);
            e.u64(fr.adv.whitewash_archived);
            e.u64(fr.adv.free_rider_refusals);
            e.u64(fr.adv.phantom_injected);

            // Durable-bank block (v3). The WAL image is the source of
            // truth for ledger state: restore replays it through the same
            // crash-recovery path a real restart would use. Alongside it,
            // only the state the log cannot reproduce: the node-to-account
            // map, the flush/epoch position keys, and the counters.
            match &fr.bank {
                None => e.bool(false),
                Some(bank) => {
                    e.bool(true);
                    let (wal, accounts, flushes, epochs, counters) = bank.snapshot_parts();
                    e.seq_len(wal.len());
                    e.raw(wal);
                    e.seq_len(accounts.len());
                    for (&node, acct) in accounts {
                        e.u64(node);
                        e.u64(acct.0);
                    }
                    e.u64(flushes);
                    e.u64(epochs);
                    e.u64(counters.crashes);
                    e.u64(counters.torn_tails);
                    e.u64(counters.records_replayed);
                    e.u64(counters.monitor_checks);
                    e.u64(counters.monitor_violations);
                }
            }
        }
    }

    frame(SNAPSHOT_VERSION, &e.into_bytes())
}

/// Rebuilds a run + engine pair from a snapshot taken under the same
/// scenario configuration.
///
/// The world is regenerated from the seed, a fresh run is built locally,
/// and only then is the serialized trajectory state swapped in — so a
/// decode failure at any depth returns a typed [`SimError`] with no
/// partial mutation anywhere.
pub fn restore(
    cfg: &ScenarioConfig,
    bytes: &[u8],
) -> Result<(SimulationRun, Engine<Ev>), SimError> {
    let payload = unframe(bytes, SNAPSHOT_VERSION).map_err(codec)?;
    let mut d = Dec::new(payload);

    if d.u64().map_err(codec)? != config_fingerprint(cfg) {
        return Err(mismatch("configuration fingerprint"));
    }

    let world = World::try_generate(cfg)?;
    let mut run = SimulationRun::new(*cfg, world);
    let n_nodes = cfg.n_nodes;
    let n_pairs = run.world.pairs.len();

    // Engine clock and calendar.
    let now = d.time().map_err(codec)?;
    let events_handled = d.u64().map_err(codec)?;
    let next_seq = d.u64().map_err(codec)?;
    let n_entries = d.seq_len(17).map_err(codec)?;
    let mut entries = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        let t = d.time().map_err(codec)?;
        if t < now {
            return Err(mismatch("calendar entry before now"));
        }
        let seq = d.u64().map_err(codec)?;
        if seq >= next_seq {
            return Err(mismatch("calendar sequence number"));
        }
        entries.push((t, seq, dec_ev(&mut d, n_nodes, n_pairs)?));
    }
    let n_cancelled = d.seq_len(8).map_err(codec)?;
    let mut cancelled = Vec::with_capacity(n_cancelled);
    for _ in 0..n_cancelled {
        let seq = d.u64().map_err(codec)?;
        if seq >= next_seq {
            return Err(mismatch("cancelled sequence number"));
        }
        cancelled.push(seq);
    }

    let mut routing_state = [0u64; 4];
    for w in &mut routing_state {
        *w = d.u64().map_err(codec)?;
    }
    let mut probe_state = [0u64; 4];
    for w in &mut probe_state {
        *w = d.u64().map_err(codec)?;
    }
    run.routing_rng = Xoshiro256StarStar::from_state(routing_state);
    run.probe_rng = Xoshiro256StarStar::from_state(probe_state);

    run.connections = d.u64().map_err(codec)?;

    let n_crashed = d.seq_len(8).map_err(codec)?;
    if n_crashed != run.crashed_until.len() {
        return Err(mismatch("crash overlay length"));
    }
    for slot in &mut run.crashed_until {
        let t = finite(d.f64().map_err(codec)?, "crash horizon")?;
        if t < 0.0 {
            return Err(mismatch("crash horizon"));
        }
        *slot = t;
    }

    let n_costs = d.seq_len(8).map_err(codec)?;
    if n_costs != n_pairs {
        return Err(mismatch("initiator cost length"));
    }
    for slot in &mut run.initiator_costs {
        *slot = finite(d.f64().map_err(codec)?, "initiator cost")?;
    }

    let n_time_pairs = d.seq_len(8).map_err(codec)?;
    if n_time_pairs != n_pairs {
        return Err(mismatch("workload pair count"));
    }
    for p in &mut run.world.pairs {
        let n_times = d.seq_len(8).map_err(codec)?;
        if n_times > cfg.max_connections as usize {
            return Err(mismatch("pair connection count"));
        }
        let mut times = Vec::with_capacity(n_times);
        for _ in 0..n_times {
            let t = finite(d.f64().map_err(codec)?, "transmission time")?;
            if t < 0.0 || times.last().is_some_and(|&prev| t < prev) {
                return Err(mismatch("transmission time order"));
            }
            times.push(t);
        }
        p.times = times;
    }

    for b in &mut run.bundles {
        let n_tallies = d.seq_len(21).map_err(codec)?;
        let mut tallies: Vec<(NodeId, ForwarderTally)> = Vec::with_capacity(n_tallies);
        for _ in 0..n_tallies {
            let node = idx(d.usize().map_err(codec)?, n_nodes, "tally node")?;
            if tallies.last().is_some_and(|(prev, _)| prev.index() >= node) {
                return Err(mismatch("tally node order"));
            }
            let instances = d.u64().map_err(codec)?;
            let transmission_cost = finite(d.f64().map_err(codec)?, "transmission cost")?;
            let participated = d.bool().map_err(codec)?;
            tallies.push((
                NodeId(node),
                ForwarderTally {
                    instances,
                    transmission_cost,
                    participated,
                },
            ));
        }
        let connections = d.u32().map_err(codec)?;
        let total_hops = d.u64().map_err(codec)?;
        *b = BundleAccounting::from_snapshot(tallies, connections, total_hops);
    }

    for tr in &mut run.trackers {
        let n_edges = d.seq_len(16).map_err(codec)?;
        let mut edges = Vec::with_capacity(n_edges);
        for _ in 0..n_edges {
            let a = idx(d.usize().map_err(codec)?, n_nodes, "tracker edge")?;
            let b = idx(d.usize().map_err(codec)?, n_nodes, "tracker edge")?;
            edges.push((NodeId(a), NodeId(b)));
        }
        let connections = d.u32().map_err(codec)?;
        let new_edges = d.u64().map_err(codec)?;
        let total_edges = d.u64().map_err(codec)?;
        let reformed = d.u32().map_err(codec)?;
        *tr =
            ReformationTracker::from_snapshot(edges, connections, new_edges, total_edges, reformed);
    }

    for at in &mut run.attacks {
        let observations = d.u32().map_err(codec)?;
        let candidates = if d.bool().map_err(codec)? {
            let n = d.seq_len(8).map_err(codec)?;
            let mut c = Vec::with_capacity(n);
            for _ in 0..n {
                c.push(NodeId(idx(
                    d.usize().map_err(codec)?,
                    n_nodes,
                    "attack candidate",
                )?));
            }
            Some(c)
        } else {
            None
        };
        *at = IntersectionAttack::from_snapshot(observations, candidates);
    }

    // History arena: replay every record through the write path.
    let mut histories = HistoryArena::with_capacity(
        cfg.n_nodes,
        cfg.resolved_history_shards(),
        cfg.history_capacity,
    );
    {
        let mut ex = histories.exclusive();
        let n_cells = d.seq_len(27).map_err(codec)?;
        for _ in 0..n_cells {
            let node = d.u64().map_err(codec)?;
            idx(node as usize, n_nodes, "history node")?;
            let bundle = d.u64().map_err(codec)?;
            idx(bundle as usize, n_pairs, "history bundle")?;
            let n_records = d.seq_len(20).map_err(codec)?;
            for _ in 0..n_records {
                let connection = d.u32().map_err(codec)?;
                let pred = idx(d.usize().map_err(codec)?, n_nodes, "history predecessor")?;
                let succ = idx(d.usize().map_err(codec)?, n_nodes, "history successor")?;
                ex.record_hop(
                    NodeId(node as usize),
                    BundleId(bundle),
                    connection,
                    NodeId(pred),
                    NodeId(succ),
                );
            }
        }
    }
    run.histories = histories;

    let probe_tag = d.u8().map_err(codec)?;
    match (&mut run.probes, probe_tag) {
        (ProbeState::Eager(ests), 0) => {
            if cfg.probe_mode != ProbeMode::Eager {
                return Err(mismatch("probe mode"));
            }
            let n = d.seq_len(17).map_err(codec)?;
            if n != n_nodes {
                return Err(mismatch("probe estimator count"));
            }
            let mut restored = Vec::with_capacity(n);
            for i in 0..n {
                restored.push(ProbeEstimator::from_snapshot(dec_probe_est(
                    &mut d, cfg, i,
                )?));
            }
            *ests = restored;
        }
        (ProbeState::Lazy(set), 1) => {
            if cfg.node_lifecycle != NodeLifecycle::Eager {
                return Err(mismatch("probe cell layout"));
            }
            let n = d.seq_len(25).map_err(codec)?;
            if n != n_nodes {
                return Err(mismatch("probe cell count"));
            }
            let mut cells = Vec::with_capacity(n);
            for i in 0..n {
                let est = dec_probe_est(&mut d, cfg, i)?;
                let synced_tick = d.u64().map_err(codec)?;
                cells.push(ProbeCellState { est, synced_tick });
            }
            set.restore_cells(ProbeCellsSnapshot::Dense(cells))
                .map_err(mismatch)?;
        }
        (ProbeState::Lazy(set), 2) => {
            if cfg.node_lifecycle != NodeLifecycle::Lazy {
                return Err(mismatch("probe cell layout"));
            }
            let n = d.seq_len(41).map_err(codec)?;
            let mut cells = Vec::with_capacity(n);
            let mut last: Option<usize> = None;
            for _ in 0..n {
                let i = idx(d.usize().map_err(codec)?, n_nodes, "probe cell node")?;
                if last.is_some_and(|prev| prev >= i) {
                    return Err(mismatch("probe cell order"));
                }
                last = Some(i);
                let est = dec_probe_est(&mut d, cfg, i)?;
                let synced_tick = d.u64().map_err(codec)?;
                let touch = d.u64().map_err(codec)?;
                cells.push((i, ProbeCellState { est, synced_tick }, touch));
            }
            let stats = dec_residency(&mut d)?;
            set.restore_cells(ProbeCellsSnapshot::Sparse { cells, stats })
                .map_err(mismatch)?;
        }
        _ => return Err(mismatch("probe mode")),
    }

    let slab_present = d.bool().map_err(codec)?;
    match (&mut run.slab, slab_present) {
        (None, false) => {}
        (Some(slab), true) => slab.set_last_sweep_tick(d.u64().map_err(codec)?),
        _ => return Err(mismatch("node lifecycle")),
    }

    let windows_present = d.bool().map_err(codec)?;
    match (run.windows.is_some(), windows_present) {
        (false, false) => {}
        (true, true) => {
            let n = d.seq_len(32).map_err(codec)?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let scheduled = d.u64().map_err(codec)?;
                let delivered = d.u64().map_err(codec)?;
                let retries = d.u64().map_err(codec)?;
                let payoff = d.u64().map_err(codec)?;
                finite(f64::from_bits(payoff), "window payoff")?;
                rows.push((scheduled, delivered, retries, payoff));
            }
            run.windows = Some(WindowCollector::from_snapshot(
                cfg.window_len,
                cfg.window_warmup,
                &rows,
            ));
        }
        _ => return Err(mismatch("windowed metrics")),
    }

    let fault_present = d.bool().map_err(codec)?;
    match (&mut run.fault, fault_present) {
        (None, false) => {}
        (Some(fr), true) => {
            let scheduled = d.u64().map_err(codec)?;
            let delivered = d.u64().map_err(codec)?;
            let abandoned = d.u64().map_err(codec)?;
            let retries = d.u64().map_err(codec)?;
            let latency_bits = d.u64().map_err(codec)?;
            finite(f64::from_bits(latency_bits), "latency sum")?;
            let latency_count = d.u64().map_err(codec)?;
            fr.delivery = DeliveryTracker::from_snapshot((
                scheduled,
                delivered,
                abandoned,
                retries,
                latency_bits,
                latency_count,
            ));

            let n = d.seq_len(8).map_err(codec)?;
            if n != n_pairs {
                return Err(mismatch("completion time length"));
            }
            for slot in &mut fr.last_completion {
                *slot = finite(d.f64().map_err(codec)?, "completion time")?;
            }

            let n_ledgers = d.seq_len(16).map_err(codec)?;
            if cfg.node_lifecycle == NodeLifecycle::Eager && n_ledgers != n_nodes {
                return Err(mismatch("ledger count"));
            }
            let mut last: Option<usize> = None;
            for k in 0..n_ledgers {
                let initiator = idx(d.usize().map_err(codec)?, n_nodes, "ledger initiator")?;
                if cfg.node_lifecycle == NodeLifecycle::Eager && initiator != k {
                    return Err(mismatch("ledger order"));
                }
                if last.is_some_and(|prev| prev >= initiator) {
                    return Err(mismatch("ledger order"));
                }
                last = Some(initiator);
                let n_entries = d.seq_len(18).map_err(codec)?;
                let mut entries = Vec::with_capacity(n_entries);
                let mut last_relay: Option<usize> = None;
                for _ in 0..n_entries {
                    let relay = idx(d.usize().map_err(codec)?, n_nodes, "ledger relay")?;
                    if last_relay.is_some_and(|prev| prev >= relay) {
                        return Err(mismatch("ledger relay order"));
                    }
                    last_relay = Some(relay);
                    let drops = d.u32().map_err(codec)?;
                    let timeouts = d.u32().map_err(codec)?;
                    let flagged = d.bool().map_err(codec)?;
                    entries.push((relay, drops, timeouts, flagged));
                }
                *fr.reputation.get_mut(initiator) =
                    EdgeReputation::from_snapshot(n_nodes, &entries);
            }

            let n_retired = d.seq_len(9).map_err(codec)?;
            let mut retired = Vec::with_capacity(n_retired);
            let mut last_init: Option<usize> = None;
            for _ in 0..n_retired {
                let initiator = idx(d.usize().map_err(codec)?, n_nodes, "retired initiator")?;
                if last_init.is_some_and(|prev| prev >= initiator) {
                    return Err(mismatch("retired initiator order"));
                }
                last_init = Some(initiator);
                let n_relays = d.seq_len(9).map_err(codec)?;
                let mut relays = Vec::with_capacity(n_relays);
                let mut last_relay: Option<usize> = None;
                for _ in 0..n_relays {
                    let relay = idx(d.usize().map_err(codec)?, n_nodes, "retired relay")?;
                    if last_relay.is_some_and(|prev| prev >= relay) {
                        return Err(mismatch("retired relay order"));
                    }
                    last_relay = Some(relay);
                    let n_gens = d.seq_len(9).map_err(codec)?;
                    let mut gens = Vec::with_capacity(n_gens);
                    for _ in 0..n_gens {
                        let drops = d.u32().map_err(codec)?;
                        let timeouts = d.u32().map_err(codec)?;
                        let flagged = d.bool().map_err(codec)?;
                        gens.push((drops, timeouts, flagged));
                    }
                    relays.push((relay, gens));
                }
                retired.push((initiator, relays));
            }
            fr.reputation.restore_retired(&retired);

            let n_until = d.seq_len(8).map_err(codec)?;
            if n_until != n_nodes {
                return Err(mismatch("probe invalidation length"));
            }
            let mut until = Vec::with_capacity(n_until);
            for _ in 0..n_until {
                let t = finite(d.f64().map_err(codec)?, "invalidation horizon")?;
                if t < 0.0 {
                    return Err(mismatch("invalidation horizon"));
                }
                until.push(t);
            }
            fr.probe_invalid = ProbeInvalidation::from_snapshot(until);

            for (pair, v) in fr.validators.iter_mut().enumerate() {
                let n_evidence = d.seq_len(29).map_err(codec)?;
                let mut evidence = Vec::with_capacity(n_evidence);
                for _ in 0..n_evidence {
                    let bundle_id = d.u64().map_err(codec)?;
                    let connection = d.u32().map_err(codec)?;
                    let n_hops = d.seq_len(8).map_err(codec)?;
                    let mut hops = Vec::with_capacity(n_hops);
                    for _ in 0..n_hops {
                        hops.push(AccountId(d.u64().map_err(codec)?));
                    }
                    let mut mac = [0u8; 32];
                    mac.copy_from_slice(d.raw(32).map_err(codec)?);
                    let manifest = PathManifest {
                        bundle_id,
                        connection,
                        hops,
                        mac,
                    };
                    let n_receipts = d.seq_len(52).map_err(codec)?;
                    let mut receipts = Vec::with_capacity(n_receipts);
                    for _ in 0..n_receipts {
                        let bundle_id = d.u64().map_err(codec)?;
                        let connection = d.u32().map_err(codec)?;
                        let hop = d.u32().map_err(codec)?;
                        let forwarder = AccountId(d.u64().map_err(codec)?);
                        let mut mac = [0u8; 32];
                        mac.copy_from_slice(d.raw(32).map_err(codec)?);
                        receipts.push(Receipt {
                            bundle_id,
                            connection,
                            hop,
                            forwarder,
                            mac,
                        });
                    }
                    let observed_hops = if d.bool().map_err(codec)? {
                        let n_obs = d.seq_len(8).map_err(codec)?;
                        let mut obs = Vec::with_capacity(n_obs);
                        for _ in 0..n_obs {
                            obs.push(AccountId(d.u64().map_err(codec)?));
                        }
                        Some(obs)
                    } else {
                        None
                    };
                    evidence.push(ConnectionEvidence {
                        manifest,
                        receipts,
                        observed_hops,
                    });
                }
                *v = PathValidator::from_snapshot(&fr.keys[pair], pair as u64, evidence);
            }

            let epoch_present = d.bool().map_err(codec)?;
            match (&mut fr.epoch, epoch_present) {
                (None, false) => {}
                (Some(es), true) => {
                    for (pair, slot) in es.cursors.iter_mut().enumerate() {
                        let c = d.usize().map_err(codec)?;
                        if c > fr.validators[pair].connections() {
                            return Err(mismatch("epoch cursor"));
                        }
                        *slot = c;
                    }
                    for slot in &mut es.expected {
                        *slot = d.u64().map_err(codec)?;
                    }
                    for slot in &mut es.validated {
                        *slot = d.u64().map_err(codec)?;
                    }
                    let n_flagged = d.seq_len(8).map_err(codec)?;
                    let mut last: Option<usize> = None;
                    for _ in 0..n_flagged {
                        let f = idx(d.usize().map_err(codec)?, n_nodes, "flagged forwarder")?;
                        if last.is_some_and(|prev| prev >= f) {
                            return Err(mismatch("flagged order"));
                        }
                        last = Some(f);
                        es.flagged.insert(f);
                    }
                    es.epochs_settled = d.u64().map_err(codec)?;
                    es.payout_ops = d.u64().map_err(codec)?;
                    es.batch_ops = d.u64().map_err(codec)?;
                    es.receipts_netted = d.u64().map_err(codec)?;
                    es.phantom_flagged = d.u64().map_err(codec)?;
                }
                _ => return Err(mismatch("settlement mode")),
            }

            fr.adv.whitewash_events = d.u64().map_err(codec)?;
            fr.adv.whitewash_evasions = d.u64().map_err(codec)?;
            fr.adv.whitewash_archived = d.u64().map_err(codec)?;
            fr.adv.free_rider_refusals = d.u64().map_err(codec)?;
            fr.adv.phantom_injected = d.u64().map_err(codec)?;

            let bank_present = d.bool().map_err(codec)?;
            match (fr.bank.is_some(), bank_present) {
                (false, false) => {}
                (true, true) => {
                    let wal_len = d.seq_len(1).map_err(codec)?;
                    let wal = d.raw(wal_len).map_err(codec)?.to_vec();
                    let n_accounts = d.seq_len(16).map_err(codec)?;
                    let mut accounts: BTreeMap<u64, AccountId> = BTreeMap::new();
                    let mut last: Option<u64> = None;
                    for _ in 0..n_accounts {
                        let node = d.u64().map_err(codec)?;
                        if last.is_some_and(|prev| prev >= node) {
                            return Err(mismatch("bank account node order"));
                        }
                        idx(node as usize, n_nodes, "bank account node")?;
                        last = Some(node);
                        let acct = AccountId(d.u64().map_err(codec)?);
                        accounts.insert(node, acct);
                    }
                    let flushes = d.u64().map_err(codec)?;
                    let epochs = d.u64().map_err(codec)?;
                    let counters = DurabilityCounters {
                        crashes: d.u64().map_err(codec)?,
                        torn_tails: d.u64().map_err(codec)?,
                        records_replayed: d.u64().map_err(codec)?,
                        monitor_checks: d.u64().map_err(codec)?,
                        monitor_violations: d.u64().map_err(codec)?,
                    };
                    fr.bank = Some(BankDurabilityState::restore(
                        &wal,
                        accounts,
                        cfg.settlement == SettlementMode::Epoch,
                        flushes,
                        epochs,
                        counters,
                    ));
                }
                _ => return Err(mismatch("bank durability presence")),
            }
        }
        _ => return Err(mismatch("fault block presence")),
    }

    d.finish().map_err(codec)?;

    let engine = Engine::from_parts(
        Calendar::from_snapshot(entries, cancelled, next_seq),
        now,
        events_handled,
    );
    Ok((run, engine))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::scenario::{BankDurability, ProbeRngMode, WorkloadMode};
    use idpa_desim::{FaultConfig, SimTime, StopReason};

    fn cfg(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            probe_rng: ProbeRngMode::PerNode,
            ..ScenarioConfig::quick_test(seed)
        }
    }

    /// Run `cfg` to the horizon, snapshotting after `budget` events, then
    /// resume from the snapshot and check the final result matches the
    /// uninterrupted run exactly.
    fn resume_matches(cfg: ScenarioConfig, budget: u64) {
        let horizon = SimTime::new(cfg.churn.horizon);
        let baseline = SimulationRun::execute(cfg);

        let world = World::generate(&cfg);
        let mut run = SimulationRun::new(cfg, world);
        let mut engine = Engine::new();
        run.schedule_all(&mut engine);
        engine.set_event_budget(budget);
        let stop = engine.run(&mut run, Some(horizon));
        assert_eq!(stop, StopReason::EventBudget, "budget must interrupt");

        let bytes = encode(&run, &engine);
        drop((run, engine));
        let (mut run2, mut engine2) = restore(&cfg, &bytes).expect("restore");
        engine2.run(&mut run2, Some(horizon));
        let resumed = run2.finish();
        assert_eq!(baseline, resumed);
    }

    #[test]
    fn resume_matches_uninterrupted_fault_free() {
        resume_matches(cfg(3), 100);
    }

    #[test]
    fn resume_matches_uninterrupted_with_faults() {
        let c = ScenarioConfig {
            fault: FaultConfig {
                crash_rate: 0.05,
                drop_rate: 0.1,
                delay_rate: 0.2,
                ..FaultConfig::default()
            },
            ..cfg(7)
        };
        resume_matches(c, 250);
    }

    #[test]
    fn resume_matches_uninterrupted_with_durable_bank() {
        let c = ScenarioConfig {
            bank_durability: BankDurability::Wal,
            fault: FaultConfig {
                drop_rate: 0.1,
                bank_crash_rate: 0.2,
                ..FaultConfig::default()
            },
            ..cfg(11)
        };
        resume_matches(c, 150);
    }

    #[test]
    fn resume_matches_uninterrupted_with_durable_bank_epoch_mode() {
        let c = ScenarioConfig {
            bank_durability: BankDurability::Wal,
            settlement: SettlementMode::Epoch,
            fault: FaultConfig {
                bank_crash_rate: 0.3,
                ..FaultConfig::default()
            },
            ..cfg(13)
        };
        resume_matches(c, 200);
    }

    #[test]
    fn resume_matches_open_workload_with_windows() {
        let c = ScenarioConfig {
            workload: WorkloadMode::Open,
            open_arrival_rate: 0.02,
            window_len: 200.0,
            window_warmup: 100.0,
            ..cfg(11)
        };
        resume_matches(c, 150);
    }

    #[test]
    fn snapshot_is_deterministic() {
        let c = cfg(5);
        let mk = || {
            let world = World::generate(&c);
            let mut run = SimulationRun::new(c, world);
            let mut engine = Engine::new();
            run.schedule_all(&mut engine);
            engine.set_event_budget(80);
            engine.run(&mut run, Some(SimTime::new(c.churn.horizon)));
            encode(&run, &engine)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn wrong_config_is_rejected() {
        let c = cfg(5);
        let world = World::generate(&c);
        let run = SimulationRun::new(c, world);
        let mut engine = Engine::new();
        run.schedule_all(&mut engine);
        let bytes = encode(&run, &engine);
        let other = ScenarioConfig { seed: 6, ..c };
        match restore(&other, &bytes) {
            Ok(_) => panic!("must reject a different scenario"),
            Err(err) => assert_eq!(
                err,
                SimError::SnapshotMismatch {
                    what: "configuration fingerprint"
                }
            ),
        }
    }

    #[test]
    fn truncation_and_flips_are_typed_errors() {
        let c = cfg(9);
        let world = World::generate(&c);
        let mut run = SimulationRun::new(c, world);
        let mut engine = Engine::new();
        run.schedule_all(&mut engine);
        engine.set_event_budget(60);
        engine.run(&mut run, Some(SimTime::new(c.churn.horizon)));
        let bytes = encode(&run, &engine);

        for cut in [0, 7, 8, 12, 20, bytes.len() - 1] {
            assert!(restore(&c, &bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(restore(&c, &flipped).is_err(), "checksum must catch flip");
    }
}
