//! Scenario configuration (§3 of the paper).
//!
//! Defaults reproduce the paper's stated setup: "a small network size of
//! N = 40", "each node randomly selects d nodes as its neighbors (d = 5)",
//! "100 (I, R) pairs and a total of 2000 message transmissions, for an
//! average of 20 communication rounds for a single (I, R) pair", `P_f`
//! uniform in `[50, 100]`, `τ ∈ {0.5, 1, 2, 4}`, `w_s = w_a = 0.5`,
//! Pareto session times with a 60-minute median, Poisson joins, and a
//! fraction `f` of adversaries that route randomly.

use idpa_core::routing::{AdversaryStrategy, PathPolicy, RoutingStrategy};
use idpa_core::utility::UtilityModel;
use idpa_desim::{AdversaryConfig, FaultConfig};
use idpa_netmodel::{ChurnConfig, CostConfig};

use crate::error::SimError;

/// How availability-probe state is advanced during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeMode {
    /// Global synchronous sweep: every probe tick, every live node runs a
    /// probing round — O(N·d) per tick whether or not anyone reads the
    /// estimates.
    Eager,
    /// Event-driven lazy estimation: per-node probe cells are materialized
    /// on demand from the analytic churn schedule when read (or when a
    /// neighbor replacement falls due) — amortized O(churn + queries),
    /// bit-identical to `Eager` under [`ProbeRngMode::PerNode`].
    Lazy,
}

/// Where probe randomness (first-sighting draws, replacement candidates)
/// comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeRngMode {
    /// Position-keyed per-node streams: the draw for (owner, slot, round)
    /// is a pure function of the master seed, so eager and lazy advancement
    /// consume identical bits. The compat mode in which `--probe-mode
    /// eager` and `--probe-mode lazy` produce bit-identical results.
    PerNode,
    /// The pre-PR-2 behaviour: one shared sequential `probing` stream
    /// consumed in node order each tick. Kept for reproducing old runs;
    /// only meaningful under [`ProbeMode::Eager`].
    SharedLegacy,
}

/// How per-node runtime state (probe cells, reputation ledgers) is
/// allocated over the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeLifecycle {
    /// Every node's state is allocated up front — O(N) resident memory,
    /// the historical behaviour and the default (byte-identical to builds
    /// without the lifecycle layer).
    Eager,
    /// Nodes exist only as analytic [`idpa_netmodel::NodeSchedule`] entries
    /// until first touched by a transmission, probe query, or fault
    /// observation; first touch materializes their state from the schedule
    /// at the current tick, and long-idle nodes are evicted back to the
    /// analytic summary ([`ScenarioConfig::evict_idle_ticks`]). Resident
    /// memory scales with active traffic, not N; results are bit-identical
    /// to `Eager`.
    Lazy,
}

/// How the symmetric bandwidth matrix backing the cost model is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostStorage {
    /// The full O(N²) upper-triangular matrix, drawn from the sequential
    /// `"bandwidth"` stream — the historical layout every existing
    /// scenario pins. The default.
    Dense,
    /// No matrix: each edge's bandwidth is re-derived on demand from a
    /// position-keyed stream. O(1) memory — required for million-node
    /// worlds — but the sampled values differ from `Dense` (a different,
    /// equally i.i.d. draw per edge), so this is a scenario-level choice,
    /// not a transparent execution mode.
    Sparse,
}

/// How connection requests arrive over the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadMode {
    /// The historical closed workload: `total_transmissions` send times are
    /// drawn up front, uniformly in `[warmup, horizon)`, and scheduled as a
    /// fixed batch. The default — byte-identical to builds without the
    /// workload layer.
    Closed,
    /// Open workload: each (I, R) pair generates connection requests as an
    /// independent Poisson process of rate
    /// [`ScenarioConfig::open_arrival_rate`] per minute, starting at
    /// `warmup` and capped at `max_connections` requests per pair. Arrival
    /// gaps come from position-keyed streams, so the process is
    /// deterministic under the master seed and survives snapshot/resume.
    Open,
}

/// When payment evidence is settled against the bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SettlementMode {
    /// Settle every bundle individually after the horizon — one signature
    /// verification per receipt, one ledger transfer per payout. The
    /// historical behaviour and the default (byte-identical to builds
    /// without the epoch layer).
    PerBundle,
    /// Epoch-batched settlement: a settlement event fires every
    /// [`ScenarioConfig::epoch_length`] minutes, validates the evidence
    /// window accrued since the previous boundary, nets all payouts into
    /// one balance delta per account and submits the window's deposits in
    /// batched (individually verified) bank calls. Economic outcomes
    /// (payoffs, shortfall, flags, audit
    /// discrepancies) are identical to `PerBundle`; only the bank-facing
    /// operation counts and the settlement-delay model change — a bank
    /// outage delays an epoch boundary instead of a bundle.
    Epoch,
}

/// Whether the settlement-side bank ledger is durable
/// (`--bank-durability`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BankDurability {
    /// No write-ahead log: the historical in-memory ledger. The default,
    /// byte-identical to builds without the durability layer — and the
    /// mode every fingerprint pin replays.
    #[default]
    Off,
    /// Write-ahead logging: every settlement-side ledger mutation appends
    /// a checksummed record before applying (group-committed at epoch
    /// boundaries under epoch settlement), a warm replica follows the log
    /// stream, and seeded bank crashes (`--fault-bank-crash`) trigger
    /// deterministic recovery + failover. Requires the fault/evidence
    /// layer to be active (settlement is what gets logged).
    Wal,
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Number of peers `N`.
    pub n_nodes: usize,
    /// Neighbor-set size `d`.
    pub degree: usize,
    /// Number of (I, R) pairs.
    pub n_pairs: usize,
    /// Total message transmissions across all pairs.
    pub total_transmissions: usize,
    /// Cap on connections per pair (`max-connections` in §3).
    pub max_connections: u32,
    /// `P_f` is drawn uniformly from this range per pair.
    pub pf_range: (f64, f64),
    /// `τ = P_r / P_f`.
    pub tau: f64,
    /// `(w_s, w_a)` edge-quality weights.
    pub weights: (f64, f64),
    /// `w_r`, the weight of the per-initiator reputation term in the
    /// adaptive quality model `q = w_s·σ + w_a·α + w_r·ρ`. The default `0`
    /// reproduces the paper's two-term model bit-for-bit; when positive,
    /// `w_s + w_a + w_r` must sum to 1.
    pub reputation_weight: f64,
    /// Fraction `f` of malicious nodes.
    pub adversary_fraction: f64,
    /// Routing strategy of good nodes (the Figs. 5–7 axis).
    pub good_strategy: RoutingStrategy,
    /// Routing strategy of malicious nodes (§2.4 base model: random).
    pub adversary_strategy: AdversaryStrategy,
    /// Path termination policy.
    pub policy: PathPolicy,
    /// Churn model parameters.
    pub churn: ChurnConfig,
    /// Cost model parameters.
    pub cost: CostConfig,
    /// Active-probing period `T` (minutes).
    pub probe_period: f64,
    /// Transmissions are scheduled uniformly in `[warmup, horizon]`.
    pub warmup: f64,
    /// Master seed; every stochastic component derives its stream from it.
    pub seed: u64,
    /// §5 availability attack: adversaries force permanent uptime.
    pub availability_attack: bool,
    /// Retention bound for history profiles (`None` = unbounded).
    pub history_capacity: Option<usize>,
    /// Neighbor maintenance: replace a neighbor after this many probe
    /// rounds of observed silence (`None` = static neighbor sets). The
    /// probing rule's "if a new neighbor is found" clause (§2.3) is what
    /// re-initialises the replacement's session time.
    pub neighbor_replacement_rounds: Option<u64>,
    /// How probe state advances: eager per-tick sweep or event-driven lazy
    /// materialization (the default).
    pub probe_mode: ProbeMode,
    /// Source of probe randomness; `PerNode` (the default) makes eager and
    /// lazy modes bit-identical.
    pub probe_rng: ProbeRngMode,
    /// Deterministic fault injection (all-zero rates = faults off, and the
    /// run is bit-identical to a build without the fault layer).
    pub fault: FaultConfig,
    /// Deterministic adversary strategies (`--adversary-*`): free riders,
    /// whitewashers and colluding cliques. All-zero rates (the default)
    /// derive nothing and the run is bit-identical to a build without the
    /// adversary layer.
    pub adversary: AdversaryConfig,
    /// Number of owner-keyed shards the history arena is split into
    /// (`--history-shards`). `0` (the default) resolves to the worker
    /// thread count; any value is clamped to `1..=n_nodes`. Results are
    /// bit-identical at every shard count — sharding partitions storage
    /// without changing per-`(node, bundle)` record order.
    pub history_shards: usize,
    /// How per-node runtime state is allocated (`--node-lifecycle`):
    /// eagerly for all N nodes up front, or lazily on first touch with
    /// idle eviction. Bit-identical either way; lazy bounds resident
    /// memory by the active working set.
    pub node_lifecycle: NodeLifecycle,
    /// Bandwidth matrix storage. [`CostStorage::Sparse`] drops the O(N²)
    /// matrix for million-node worlds at the price of *different* (still
    /// i.i.d. uniform) edge draws than the dense layout.
    pub cost_storage: CostStorage,
    /// Under [`NodeLifecycle::Lazy`]: evict a node's materialized state
    /// after this many probe ticks without a touch. Must be ≥ 1. Pure
    /// policy — any value yields identical results, only residency
    /// figures move.
    pub evict_idle_ticks: u64,
    /// When payment evidence settles against the bank (`--settlement`):
    /// per bundle after the horizon (the default) or batched at epoch
    /// boundaries. Meaningful only when fault injection is active (that is
    /// when the §5 evidence layer runs); economics are identical in both
    /// modes.
    pub settlement: SettlementMode,
    /// Epoch length in minutes under [`SettlementMode::Epoch`]
    /// (`--epoch-length`). Must be positive in epoch mode; ignored
    /// otherwise.
    pub epoch_length: f64,
    /// How connection requests arrive (`--workload`): the historical fixed
    /// batch (the default) or a per-pair Poisson arrival process.
    pub workload: WorkloadMode,
    /// Poisson arrival rate per pair (requests per minute) under
    /// [`WorkloadMode::Open`]. Must be positive in open mode; ignored
    /// otherwise.
    pub open_arrival_rate: f64,
    /// Length in minutes of each steady-state metrics window
    /// (`--window-len`). `0` (the default) disables windowed collection —
    /// byte-identical to builds without the metrics layer.
    pub window_len: f64,
    /// Warm-up trim for windowed metrics (`--window-warmup`): windows only
    /// start after this time, so transient start-up behaviour does not
    /// pollute the steady-state series. Ignored when windows are disabled.
    pub window_warmup: f64,
    /// Settlement-ledger durability (`--bank-durability`). Off (the
    /// default) keeps runs byte-identical to pre-durability builds;
    /// [`BankDurability::Wal`] adds write-ahead logging, a warm replica,
    /// and crash/failover handling for the `--fault-bank-crash` class.
    pub bank_durability: BankDurability,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        let churn = ChurnConfig {
            n_nodes: 40,
            join_rate: 2.0,
            session_median: 60.0,
            session_shape: 1.5,
            downtime_mean: 30.0,
            horizon: 24.0 * 60.0,
        };
        let cost = CostConfig {
            n_nodes: 40,
            participation_cost: 5.0,
            payload_size: 1.0,
            bandwidth_lo: 1.0,
            bandwidth_hi: 10.0,
            cost_scale: 10.0,
        };
        ScenarioConfig {
            n_nodes: 40,
            degree: 5,
            n_pairs: 100,
            total_transmissions: 2000,
            max_connections: 40,
            pf_range: (50.0, 100.0),
            tau: 1.0,
            weights: (0.5, 0.5),
            reputation_weight: 0.0,
            adversary_fraction: 0.0,
            good_strategy: RoutingStrategy::Utility(UtilityModel::ModelI),
            adversary_strategy: AdversaryStrategy::Random,
            policy: PathPolicy::new(0.75, 8),
            churn,
            cost,
            probe_period: 5.0,
            warmup: 60.0,
            seed: 1,
            availability_attack: false,
            history_capacity: None,
            neighbor_replacement_rounds: None,
            probe_mode: ProbeMode::Lazy,
            probe_rng: ProbeRngMode::PerNode,
            fault: FaultConfig::default(),
            adversary: AdversaryConfig::default(),
            history_shards: 0,
            node_lifecycle: NodeLifecycle::Eager,
            cost_storage: CostStorage::Dense,
            evict_idle_ticks: 64,
            settlement: SettlementMode::PerBundle,
            epoch_length: 240.0,
            workload: WorkloadMode::Closed,
            open_arrival_rate: 0.0,
            window_len: 0.0,
            window_warmup: 0.0,
            bank_durability: BankDurability::Off,
        }
    }
}

/// Returns `Err` with the offending field when `cond` is false.
fn ensure(cond: bool, field: &'static str, message: String) -> Result<(), SimError> {
    if cond {
        Ok(())
    } else {
        Err(SimError::InvalidConfig { field, message })
    }
}

impl ScenarioConfig {
    /// Validates cross-field consistency. Returns a descriptive
    /// [`SimError::InvalidConfig`] naming the offending field instead of
    /// panicking, so misconfigured scenarios fail with a diagnostic at the
    /// CLI (and in library callers) rather than a backtrace.
    pub fn validate(&self) -> Result<(), SimError> {
        ensure(
            self.n_nodes >= 4,
            "n_nodes",
            format!("need at least 4 nodes (got {})", self.n_nodes),
        )?;
        ensure(
            self.churn.n_nodes == self.n_nodes,
            "churn.n_nodes",
            format!(
                "churn size mismatch ({} != n_nodes {})",
                self.churn.n_nodes, self.n_nodes
            ),
        )?;
        ensure(
            self.cost.n_nodes == self.n_nodes,
            "cost.n_nodes",
            format!(
                "cost size mismatch ({} != n_nodes {})",
                self.cost.n_nodes, self.n_nodes
            ),
        )?;
        ensure(
            self.degree >= 1 && self.degree < self.n_nodes,
            "degree",
            format!(
                "degree must be in 1..n_nodes (got {} with n_nodes {})",
                self.degree, self.n_nodes
            ),
        )?;
        ensure(
            self.n_pairs > 0,
            "n_pairs",
            "need at least one (I, R) pair".into(),
        )?;
        ensure(
            self.total_transmissions > 0,
            "total_transmissions",
            "need at least one transmission".into(),
        )?;
        ensure(
            self.max_connections > 0,
            "max_connections",
            "per-pair connection cap must be positive".into(),
        )?;
        ensure(
            self.n_pairs * self.max_connections as usize >= self.total_transmissions,
            "max_connections",
            format!(
                "max_connections x n_pairs cannot absorb total_transmissions \
                 ({} x {} < {})",
                self.max_connections, self.n_pairs, self.total_transmissions
            ),
        )?;
        ensure(
            self.pf_range.0 > 0.0 && self.pf_range.1 >= self.pf_range.0,
            "pf_range",
            format!(
                "invalid P_f range [{}, {}] (need 0 < lo <= hi)",
                self.pf_range.0, self.pf_range.1
            ),
        )?;
        ensure(
            self.tau >= 0.0,
            "tau",
            format!("tau must be nonnegative (got {})", self.tau),
        )?;
        ensure(
            (0.0..=1.0).contains(&self.adversary_fraction),
            "adversary_fraction",
            format!("f out of range [0, 1] (got {})", self.adversary_fraction),
        )?;
        ensure(
            self.probe_period > 0.0,
            "probe_period",
            format!("probe period must be positive (got {})", self.probe_period),
        )?;
        if self.probe_mode == ProbeMode::Lazy {
            ensure(
                self.probe_rng == ProbeRngMode::PerNode,
                "probe_rng",
                "lazy probing requires per-node probe RNG streams".into(),
            )?;
            ensure(
                self.neighbor_replacement_rounds != Some(0),
                "neighbor_replacement_rounds",
                "lazy probing requires a replacement threshold >= 1".into(),
            )?;
        }
        if self.node_lifecycle == NodeLifecycle::Lazy {
            ensure(
                self.evict_idle_ticks >= 1,
                "evict_idle_ticks",
                "lazy lifecycle needs an idle-eviction window >= 1 tick".into(),
            )?;
            ensure(
                self.probe_rng == ProbeRngMode::PerNode,
                "probe_rng",
                "lazy lifecycle requires per-node probe RNG streams".into(),
            )?;
        }
        if self.settlement == SettlementMode::Epoch {
            ensure(
                self.epoch_length > 0.0,
                "epoch_length",
                format!(
                    "epoch settlement needs a positive epoch length (got {})",
                    self.epoch_length
                ),
            )?;
        }
        if self.workload == WorkloadMode::Open {
            ensure(
                self.open_arrival_rate > 0.0 && self.open_arrival_rate.is_finite(),
                "open_arrival_rate",
                format!(
                    "open workload needs a positive finite arrival rate (got {})",
                    self.open_arrival_rate
                ),
            )?;
        }
        ensure(
            self.window_len >= 0.0 && self.window_len.is_finite(),
            "window_len",
            format!(
                "window length must be finite and nonnegative (got {})",
                self.window_len
            ),
        )?;
        if self.window_len > 0.0 {
            ensure(
                self.window_warmup >= 0.0 && self.window_warmup < self.churn.horizon,
                "window_warmup",
                format!(
                    "window warm-up must lie in [0, horizon) (got {} with horizon {})",
                    self.window_warmup, self.churn.horizon
                ),
            )?;
        }
        ensure(
            self.warmup < self.churn.horizon,
            "warmup",
            format!(
                "warmup must precede the horizon ({} >= {})",
                self.warmup, self.churn.horizon
            ),
        )?;
        // Sub-config fields, mirrored from ChurnConfig/CostConfig::validate
        // so the whole scenario reports through SimError.
        ensure(
            self.churn.join_rate > 0.0,
            "churn.join_rate",
            "join rate must be positive".into(),
        )?;
        ensure(
            self.churn.session_median > 0.0 && self.churn.session_shape > 0.0,
            "churn.session_median",
            "Pareto session parameters must be positive".into(),
        )?;
        ensure(
            self.churn.downtime_mean > 0.0,
            "churn.downtime_mean",
            "downtime mean must be positive".into(),
        )?;
        ensure(
            self.churn.horizon > 0.0,
            "churn.horizon",
            "horizon must be positive".into(),
        )?;
        ensure(
            self.cost.participation_cost >= 0.0,
            "cost.participation_cost",
            "negative C^p".into(),
        )?;
        ensure(
            self.cost.payload_size > 0.0,
            "cost.payload_size",
            "payload size must be positive".into(),
        )?;
        ensure(
            0.0 < self.cost.bandwidth_lo && self.cost.bandwidth_lo <= self.cost.bandwidth_hi,
            "cost.bandwidth_lo",
            format!(
                "invalid bandwidth range [{}, {}]",
                self.cost.bandwidth_lo, self.cost.bandwidth_hi
            ),
        )?;
        ensure(
            self.cost.cost_scale > 0.0,
            "cost.cost_scale",
            "cost_scale must be positive".into(),
        )?;
        let (ws, wa) = self.weights;
        let wr = self.reputation_weight;
        ensure(
            ws >= 0.0 && wa >= 0.0 && wr >= 0.0 && (ws + wa + wr - 1.0).abs() <= 1e-9,
            "weights",
            format!(
                "(w_s, w_a, w_r) must be nonnegative and sum to 1 \
                 (got ({ws}, {wa}, {wr}))"
            ),
        )?;
        self.fault
            .validate()
            .map_err(|message| SimError::InvalidConfig {
                field: "fault",
                message,
            })?;
        self.adversary
            .validate()
            .map_err(|message| SimError::InvalidConfig {
                field: "adversary",
                message,
            })?;
        // Bank crashes without a durable ledger would silently lose
        // settlement state — reject the combination up front instead.
        ensure(
            self.fault.bank_crash_rate == 0.0 || self.bank_durability == BankDurability::Wal,
            "bank_durability",
            format!(
                "--fault-bank-crash {} requires --bank-durability wal \
                 (a crash without a write-ahead log loses ledger state)",
                self.fault.bank_crash_rate
            ),
        )
        // `--bank-durability wal` on its own is fine: it forces the
        // settlement runtime on (a zero-rate fault plan injects nothing),
        // so the durable ledger always has a settlement flow to mirror.
    }

    /// A scaled-down scenario for fast tests: 20 nodes, 20 pairs,
    /// 200 transmissions.
    #[must_use]
    pub fn quick_test(seed: u64) -> Self {
        let mut cfg = ScenarioConfig {
            n_nodes: 20,
            n_pairs: 20,
            total_transmissions: 200,
            seed,
            ..ScenarioConfig::default()
        };
        cfg.churn.n_nodes = 20;
        cfg.cost.n_nodes = 20;
        cfg
    }

    /// A large-N scale scenario: paper churn scaled proportionally
    /// (`join_rate = n/20`, the default 2/min at N = 40), the lazy node
    /// lifecycle, sparse cost storage (no O(N²) matrix), and a fixed-size
    /// active workload — so per-tick cost and resident state track the
    /// 512-pair traffic, not N. `adversary_fraction` stays 0: the attack
    /// observer is an O(N)-per-connection layer this scenario does not
    /// measure.
    #[must_use]
    pub fn scale(n: usize, seed: u64) -> Self {
        let mut cfg = ScenarioConfig {
            n_pairs: 512,
            total_transmissions: 4096,
            max_connections: 64,
            node_lifecycle: NodeLifecycle::Lazy,
            cost_storage: CostStorage::Sparse,
            seed,
            ..ScenarioConfig::default()
        }
        .with_nodes(n);
        cfg.churn.join_rate = n as f64 / 20.0;
        cfg
    }

    /// The million-node scenario — [`ScenarioConfig::scale`] at
    /// N = 1,000,000. Completes in memory bounded by the active working
    /// set (asserted by the `node_lifecycle` bench's counting allocator).
    #[must_use]
    pub fn scale_1m(seed: u64) -> Self {
        Self::scale(1_000_000, seed)
    }

    /// Applies a new node count consistently across sub-configs.
    #[must_use]
    pub fn with_nodes(mut self, n: usize) -> Self {
        self.n_nodes = n;
        self.churn.n_nodes = n;
        self.cost.n_nodes = n;
        self
    }

    /// The effective history-arena shard count: `history_shards`, with `0`
    /// resolving to the default worker thread count, clamped to
    /// `1..=n_nodes`.
    #[must_use]
    pub fn resolved_history_shards(&self) -> usize {
        let requested = if self.history_shards == 0 {
            idpa_desim::pool::default_threads()
        } else {
            self.history_shards
        };
        requested.clamp(1, self.n_nodes.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let cfg = ScenarioConfig::default();
        assert_eq!(cfg.n_nodes, 40);
        assert_eq!(cfg.degree, 5);
        assert_eq!(cfg.n_pairs, 100);
        assert_eq!(cfg.total_transmissions, 2000);
        assert_eq!(cfg.pf_range, (50.0, 100.0));
        assert_eq!(cfg.weights, (0.5, 0.5));
        assert_eq!(cfg.churn.session_median, 60.0);
        assert!(!cfg.fault.is_active(), "faults default off");
        cfg.validate().expect("paper defaults must validate");
    }

    #[test]
    fn average_rounds_per_pair_is_twenty() {
        let cfg = ScenarioConfig::default();
        assert_eq!(cfg.total_transmissions / cfg.n_pairs, 20);
    }

    #[test]
    fn quick_test_is_consistent() {
        ScenarioConfig::quick_test(7)
            .validate()
            .expect("quick_test must validate");
    }

    #[test]
    fn with_nodes_updates_subconfigs() {
        let cfg = ScenarioConfig::default().with_nodes(10);
        cfg.validate().expect("with_nodes must stay consistent");
        assert_eq!(cfg.churn.n_nodes, 10);
        assert_eq!(cfg.cost.n_nodes, 10);
    }

    /// Asserts validation fails on `field` with `fragment` in the message.
    fn assert_rejected(cfg: &ScenarioConfig, field: &str, fragment: &str) {
        match cfg.validate() {
            Err(SimError::InvalidConfig { field: f, message }) => {
                assert_eq!(f, field);
                assert!(message.contains(fragment), "message: {message}");
            }
            other => panic!("expected InvalidConfig on {field}, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_sizes_rejected() {
        let cfg = ScenarioConfig {
            n_nodes: 30, // without updating churn/cost
            ..ScenarioConfig::default()
        };
        assert_rejected(&cfg, "churn.n_nodes", "churn size mismatch");
    }

    #[test]
    fn bad_fraction_rejected() {
        let cfg = ScenarioConfig {
            adversary_fraction: 1.5,
            ..ScenarioConfig::default()
        };
        assert_rejected(&cfg, "adversary_fraction", "f out of range");
    }

    #[test]
    fn oversized_degree_rejected_with_values_in_message() {
        let cfg = ScenarioConfig {
            degree: 40,
            ..ScenarioConfig::default()
        };
        assert_rejected(&cfg, "degree", "40 with n_nodes 40");
    }

    #[test]
    fn inverted_pf_range_rejected() {
        let cfg = ScenarioConfig {
            pf_range: (100.0, 50.0),
            ..ScenarioConfig::default()
        };
        assert_rejected(&cfg, "pf_range", "invalid P_f range [100, 50]");
    }

    #[test]
    fn warmup_beyond_horizon_rejected() {
        let mut cfg = ScenarioConfig::default();
        cfg.warmup = cfg.churn.horizon + 1.0;
        assert_rejected(&cfg, "warmup", "warmup must precede the horizon");
    }

    #[test]
    fn bad_fault_config_rejected_through_scenario() {
        let mut cfg = ScenarioConfig::default();
        cfg.fault.drop_rate = 1.5;
        assert_rejected(&cfg, "fault", "drop_rate");
    }

    #[test]
    fn active_fault_config_validates() {
        let mut cfg = ScenarioConfig::default();
        cfg.fault.drop_rate = 0.1;
        cfg.fault.crash_rate = 0.05;
        cfg.fault.cheat_fraction = 0.2;
        cfg.validate().expect("active faults are a valid scenario");
        assert!(cfg.fault.is_active());
    }

    #[test]
    fn three_term_weights_validate_and_unbalanced_rejected() {
        let cfg = ScenarioConfig {
            weights: (0.4, 0.4),
            reputation_weight: 0.2,
            ..ScenarioConfig::default()
        };
        cfg.validate()
            .expect("balanced three-term weights are valid");
        let bad = ScenarioConfig {
            reputation_weight: 0.2, // on top of (0.5, 0.5)
            ..ScenarioConfig::default()
        };
        assert_rejected(&bad, "weights", "sum to 1");
    }

    #[test]
    fn history_shards_resolve_and_clamp() {
        let cfg = ScenarioConfig::default();
        assert_eq!(cfg.history_shards, 0, "default is auto");
        assert!(cfg.resolved_history_shards() >= 1);
        let explicit = ScenarioConfig {
            history_shards: 7,
            ..ScenarioConfig::default()
        };
        assert_eq!(explicit.resolved_history_shards(), 7);
        let oversized = ScenarioConfig {
            history_shards: 10_000,
            ..ScenarioConfig::default()
        };
        assert_eq!(oversized.resolved_history_shards(), 40, "clamped to N");
    }

    #[test]
    fn default_probe_mode_is_lazy_per_node() {
        let cfg = ScenarioConfig::default();
        assert_eq!(cfg.probe_mode, ProbeMode::Lazy);
        assert_eq!(cfg.probe_rng, ProbeRngMode::PerNode);
    }

    #[test]
    fn lazy_with_shared_rng_rejected() {
        let cfg = ScenarioConfig {
            probe_rng: ProbeRngMode::SharedLegacy,
            ..ScenarioConfig::default()
        };
        assert_rejected(&cfg, "probe_rng", "per-node probe RNG");
    }

    #[test]
    fn lazy_with_zero_threshold_rejected() {
        let cfg = ScenarioConfig {
            neighbor_replacement_rounds: Some(0),
            ..ScenarioConfig::default()
        };
        assert_rejected(&cfg, "neighbor_replacement_rounds", "threshold >= 1");
    }

    #[test]
    fn default_lifecycle_is_eager_dense() {
        let cfg = ScenarioConfig::default();
        assert_eq!(cfg.node_lifecycle, NodeLifecycle::Eager);
        assert_eq!(cfg.cost_storage, CostStorage::Dense);
    }

    #[test]
    fn lazy_lifecycle_validates_and_zero_window_rejected() {
        let cfg = ScenarioConfig {
            node_lifecycle: NodeLifecycle::Lazy,
            ..ScenarioConfig::default()
        };
        cfg.validate().expect("lazy lifecycle is a valid scenario");
        let bad = ScenarioConfig {
            evict_idle_ticks: 0,
            ..cfg
        };
        assert_rejected(&bad, "evict_idle_ticks", "idle-eviction window");
        let legacy = ScenarioConfig {
            probe_mode: ProbeMode::Eager,
            probe_rng: ProbeRngMode::SharedLegacy,
            ..cfg
        };
        assert_rejected(&legacy, "probe_rng", "per-node probe RNG");
    }

    #[test]
    fn scale_scenarios_validate_with_proportional_churn() {
        let cfg = ScenarioConfig::scale(4_000, 3);
        cfg.validate().expect("scale scenario must validate");
        assert_eq!(cfg.node_lifecycle, NodeLifecycle::Lazy);
        assert_eq!(cfg.cost_storage, CostStorage::Sparse);
        assert_eq!(cfg.churn.join_rate, 200.0);
        let big = ScenarioConfig::scale_1m(3);
        big.validate().expect("scale_1m must validate");
        assert_eq!(big.n_nodes, 1_000_000);
        assert_eq!(big.churn.n_nodes, 1_000_000);
    }

    #[test]
    fn default_settlement_is_per_bundle() {
        let cfg = ScenarioConfig::default();
        assert_eq!(cfg.settlement, SettlementMode::PerBundle);
        assert_eq!(cfg.epoch_length, 240.0);
    }

    #[test]
    fn default_bank_durability_is_off() {
        let cfg = ScenarioConfig::default();
        assert_eq!(cfg.bank_durability, BankDurability::Off);
        cfg.validate().expect("default scenario validates");
    }

    #[test]
    fn bank_crash_without_durability_is_a_typed_error() {
        let mut bad = ScenarioConfig::default();
        bad.fault.bank_crash_rate = 0.1;
        assert_rejected(&bad, "bank_durability", "--bank-durability wal");
        // Turning durability on makes the same scenario valid.
        let good = ScenarioConfig {
            bank_durability: BankDurability::Wal,
            ..bad
        };
        good.validate()
            .expect("crash class with WAL durability validates");
    }

    #[test]
    fn wal_durability_validates_with_and_without_other_faults() {
        let idle = ScenarioConfig {
            bank_durability: BankDurability::Wal,
            ..ScenarioConfig::default()
        };
        idle.validate()
            .expect("WAL durability alone validates (it forces the settlement runtime on)");
        let mut with_faults = idle;
        with_faults.fault.drop_rate = 0.05;
        with_faults
            .validate()
            .expect("durability over an active fault layer validates");
    }

    #[test]
    fn epoch_settlement_validates_and_nonpositive_length_rejected() {
        let cfg = ScenarioConfig {
            settlement: SettlementMode::Epoch,
            ..ScenarioConfig::default()
        };
        cfg.validate()
            .expect("epoch settlement is a valid scenario");
        let bad = ScenarioConfig {
            epoch_length: 0.0,
            ..cfg
        };
        assert_rejected(&bad, "epoch_length", "positive epoch length");
        // A nonpositive length is fine in per-bundle mode (it is ignored).
        let ignored = ScenarioConfig {
            epoch_length: -1.0,
            ..ScenarioConfig::default()
        };
        ignored
            .validate()
            .expect("length ignored in per-bundle mode");
    }

    #[test]
    fn default_workload_is_closed_with_windows_off() {
        let cfg = ScenarioConfig::default();
        assert_eq!(cfg.workload, WorkloadMode::Closed);
        assert_eq!(cfg.open_arrival_rate, 0.0);
        assert_eq!(cfg.window_len, 0.0);
        assert_eq!(cfg.window_warmup, 0.0);
    }

    #[test]
    fn open_workload_needs_positive_rate() {
        let cfg = ScenarioConfig {
            workload: WorkloadMode::Open,
            ..ScenarioConfig::default()
        };
        assert_rejected(&cfg, "open_arrival_rate", "positive finite arrival rate");
        let ok = ScenarioConfig {
            open_arrival_rate: 0.05,
            ..cfg
        };
        ok.validate().expect("open workload with a rate is valid");
        let inf = ScenarioConfig {
            open_arrival_rate: f64::INFINITY,
            ..cfg
        };
        assert_rejected(&inf, "open_arrival_rate", "positive finite arrival rate");
    }

    #[test]
    fn window_bounds_are_validated() {
        let bad_len = ScenarioConfig {
            window_len: -1.0,
            ..ScenarioConfig::default()
        };
        assert_rejected(&bad_len, "window_len", "finite and nonnegative");
        let mut late = ScenarioConfig::default();
        late.window_len = 60.0;
        late.window_warmup = late.churn.horizon;
        assert_rejected(&late, "window_warmup", "[0, horizon)");
        // Warm-up is ignored while windows are disabled.
        let ignored = ScenarioConfig {
            window_warmup: 1e12,
            ..ScenarioConfig::default()
        };
        ignored
            .validate()
            .expect("warm-up ignored with windows off");
    }

    #[test]
    fn adversary_defaults_off_and_bad_rates_rejected_through_scenario() {
        let cfg = ScenarioConfig::default();
        assert!(!cfg.adversary.is_active(), "adversary layer defaults off");
        cfg.validate().expect("adversary defaults must validate");
        let mut bad = cfg;
        bad.adversary.free_rider_fraction = 1.5;
        assert_rejected(&bad, "adversary", "free_rider_fraction");
        let mut active = cfg;
        active.adversary.clique_count = 2;
        active.adversary.clique_forge_rate = 0.5;
        active.validate().expect("clique scenario must validate");
        assert!(active.adversary.is_active());
    }

    #[test]
    fn eager_legacy_combination_validates() {
        let cfg = ScenarioConfig {
            probe_mode: ProbeMode::Eager,
            probe_rng: ProbeRngMode::SharedLegacy,
            ..ScenarioConfig::default()
        };
        cfg.validate().expect("eager legacy mode is valid");
    }
}
