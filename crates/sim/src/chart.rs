//! Terminal chart rendering for the regenerated figures.
//!
//! The paper's artifacts are *figures*; reproducing them should produce
//! something a human can eyeball. This module renders multi-series line
//! charts (Figs. 3–5) and CDF step plots (Figs. 6–7) as Unicode grids —
//! no plotting dependency, works in any terminal, diffable in CI logs.

use std::fmt::Write as _;

/// One named data series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points, sorted by x.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series, validating sortedness and finiteness.
    #[must_use]
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        assert!(
            points.windows(2).all(|w| w[0].0 <= w[1].0),
            "series points must be sorted by x"
        );
        assert!(
            points.iter().all(|&(x, y)| x.is_finite() && y.is_finite()),
            "non-finite point in series"
        );
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Glyphs assigned to series, in order.
const GLYPHS: [char; 6] = ['o', 'x', '+', '*', '#', '@'];

/// Renders an ASCII line chart of the series onto a `width × height`
/// character grid with y-axis labels and an x-axis ruler.
#[must_use]
pub fn line_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "chart too small");
    assert!(!series.is_empty(), "nothing to plot");
    assert!(series.len() <= GLYPHS.len(), "too many series");

    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.clone()).collect();
    assert!(!all.is_empty(), "all series empty");
    let (mut x_lo, mut x_hi) = bounds(all.iter().map(|p| p.0));
    let (mut y_lo, mut y_hi) = bounds(all.iter().map(|p| p.1));
    if (x_hi - x_lo).abs() < 1e-12 {
        x_lo -= 0.5;
        x_hi += 0.5;
    }
    if (y_hi - y_lo).abs() < 1e-12 {
        y_lo -= 0.5;
        y_hi += 0.5;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si];
        // Plot each point; connect consecutive points with interpolation
        // at column resolution for a line-like appearance.
        for w in s.points.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let c0 = col(x0, x_lo, x_hi, width);
            let c1 = col(x1, x_lo, x_hi, width);
            #[allow(clippy::needless_range_loop)]
            for c in c0..=c1 {
                let t = if c1 == c0 {
                    0.0
                } else {
                    (c - c0) as f64 / (c1 - c0) as f64
                };
                let y = y0 + t * (y1 - y0);
                let r = row(y, y_lo, y_hi, height);
                grid[r][c] = glyph;
            }
        }
        // Lone points (single-point series).
        if s.points.len() == 1 {
            let (x, y) = s.points[0];
            grid[row(y, y_lo, y_hi, height)][col(x, x_lo, x_hi, width)] = glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for (i, line) in grid.iter().enumerate() {
        // Y labels on the first, middle and last rows.
        let y_here = y_hi - (y_hi - y_lo) * i as f64 / (height - 1) as f64;
        let label = if i == 0 || i == height - 1 || i == height / 2 {
            format!("{y_here:>9.1} |")
        } else {
            format!("{:>9} |", "")
        };
        let _ = writeln!(out, "{label}{}", line.iter().collect::<String>());
    }
    let _ = writeln!(out, "{:>9} +{}", "", "-".repeat(width));
    let _ = writeln!(out, "{:>10}{:<w$.1}{:>8.1}", "", x_lo, x_hi, w = width - 7);
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} {}", GLYPHS[i], s.label))
        .collect();
    let _ = writeln!(out, "{:>10}{}", "", legend.join("   "));
    out
}

/// Renders an ECDF step chart: series points are `(value, F(value))`.
#[must_use]
pub fn cdf_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    // A CDF is just a line chart with y clamped to [0, 1]; reuse the
    // renderer but force the y-range by adding invisible anchors.
    let mut anchored: Vec<Series> = series.to_vec();
    if let Some(first) = anchored.first_mut() {
        if let (Some(&(x0, _)), Some(&(x1, _))) = (first.points.first(), first.points.last()) {
            first.points.insert(0, (x0, 0.0));
            first.points.push((x1, 1.0));
        }
    }
    line_chart(title, &anchored, width, height)
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

fn col(x: f64, lo: f64, hi: f64, width: usize) -> usize {
    let t = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
    ((t * (width - 1) as f64).round() as usize).min(width - 1)
}

fn row(y: f64, lo: f64, hi: f64, height: usize) -> usize {
    let t = ((y - lo) / (hi - lo)).clamp(0.0, 1.0);
    let from_bottom = (t * (height - 1) as f64).round() as usize;
    height - 1 - from_bottom.min(height - 1)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;

    fn simple() -> Vec<Series> {
        vec![
            Series::new("up", vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]),
            Series::new("down", vec![(0.0, 2.0), (1.0, 1.0), (2.0, 0.0)]),
        ]
    }

    #[test]
    fn renders_title_axes_and_legend() {
        let chart = line_chart("payoff vs f", &simple(), 40, 10);
        assert!(chart.starts_with("payoff vs f\n"));
        assert!(chart.contains('|'), "y axis");
        assert!(chart.contains('+'), "origin");
        assert!(chart.contains("o up"));
        assert!(chart.contains("x down"));
    }

    #[test]
    fn grid_has_requested_dimensions() {
        let chart = line_chart("t", &simple(), 40, 10);
        let grid_lines: Vec<&str> = chart.lines().filter(|l| l.contains('|')).collect();
        assert_eq!(grid_lines.len(), 10);
        for l in grid_lines {
            let after = l.split('|').nth(1).unwrap();
            assert_eq!(after.chars().count(), 40);
        }
    }

    #[test]
    fn increasing_series_rises_leftward_to_rightward() {
        let s = vec![Series::new("up", vec![(0.0, 0.0), (10.0, 10.0)])];
        let chart = line_chart("t", &s, 30, 8);
        let rows: Vec<&str> = chart.lines().filter(|l| l.contains('|')).collect();
        // Top row contains the glyph near the right edge; bottom row near
        // the left edge.
        let top_pos = rows[0].find('o').expect("top glyph");
        let bottom_pos = rows[7].rfind('o').expect("bottom glyph");
        assert!(top_pos > bottom_pos);
    }

    #[test]
    fn constant_series_renders_flat() {
        let s = vec![Series::new("flat", vec![(0.0, 5.0), (10.0, 5.0)])];
        let chart = line_chart("t", &s, 30, 8);
        let glyph_rows: Vec<usize> = chart
            .lines()
            .filter(|l| l.contains('|'))
            .enumerate()
            .filter(|(_, l)| l.contains('o'))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(glyph_rows.len(), 1, "all glyphs on one row");
    }

    #[test]
    fn cdf_chart_anchors_unit_interval() {
        let s = vec![Series::new(
            "cdf",
            vec![(10.0, 0.25), (20.0, 0.5), (30.0, 1.0)],
        )];
        let chart = cdf_chart("payoff CDF", &s, 30, 8);
        assert!(chart.contains("1.0") || chart.contains("1.0 |") || chart.contains("      1.0"));
    }

    #[test]
    #[should_panic(expected = "sorted by x")]
    fn unsorted_series_rejected() {
        let _ = Series::new("bad", vec![(2.0, 0.0), (1.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "too many series")]
    fn too_many_series_rejected() {
        let many: Vec<Series> = (0..7)
            .map(|i| Series::new(format!("s{i}"), vec![(0.0, 0.0)]))
            .collect();
        let _ = line_chart("t", &many, 30, 8);
    }

    #[test]
    #[should_panic(expected = "chart too small")]
    fn tiny_chart_rejected() {
        let _ = line_chart("t", &simple(), 5, 2);
    }
}
