//! Windowed steady-state metrics.
//!
//! Long service-mode runs (and especially open-workload runs, where the
//! Poisson arrival process keeps traffic flowing for the whole horizon)
//! need more than end-of-run aggregates: a retry storm in hour 20 is
//! invisible in a 24-hour mean. [`WindowCollector`] buckets the run into
//! fixed windows of `window_len` minutes starting at `window_warmup`
//! (start-up transients before the warm-up are trimmed entirely) and
//! reports three per-window series alongside the aggregate
//! [`crate::runner::RunResult`]:
//!
//! * **delivery ratio** — connections completed in the window per
//!   transmission first scheduled in it (deliveries of earlier windows'
//!   traffic can push a window above 1; the series is a flow balance, not
//!   a cohort ratio),
//! * **payoff rate** — gross forwarding benefit (`hops · P_f` per
//!   completed connection) accrued per minute,
//! * **retry rate** — retry attempts per transmission first scheduled in
//!   the window.
//!
//! The collector is ordinary trajectory state: it is serialized into
//! service-mode snapshots bucket by bucket (the `f64` accumulator by bit
//! pattern), so a resumed run reports the same series as an uninterrupted
//! one.

/// One window's accumulators.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowAcc {
    /// Transmissions first scheduled in this window.
    pub scheduled: u64,
    /// Connections completed in this window.
    pub delivered: u64,
    /// Retry attempts recorded in this window.
    pub retries: u64,
    /// Gross forwarding benefit accrued in this window.
    pub payoff: f64,
}

/// Buckets run events into fixed steady-state windows.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowCollector {
    len: f64,
    warmup: f64,
    windows: Vec<WindowAcc>,
}

impl WindowCollector {
    /// A collector with windows of `len` minutes starting at `warmup`.
    ///
    /// # Panics
    /// If `len` is not strictly positive or `warmup` is negative — callers
    /// gate construction on a validated [`crate::scenario::ScenarioConfig`].
    #[must_use]
    pub fn new(len: f64, warmup: f64) -> Self {
        assert!(len > 0.0, "window length must be positive");
        assert!(warmup >= 0.0, "window warm-up must be nonnegative");
        WindowCollector {
            len,
            warmup,
            windows: Vec::new(),
        }
    }

    /// The window covering time `t`, or `None` inside the warm-up trim.
    fn index(&self, t: f64) -> Option<usize> {
        if t < self.warmup {
            return None;
        }
        Some(((t - self.warmup) / self.len) as usize)
    }

    /// The accumulator for time `t`, growing the series as time advances.
    fn acc(&mut self, t: f64) -> Option<&mut WindowAcc> {
        let i = self.index(t)?;
        if i >= self.windows.len() {
            self.windows.resize(i + 1, WindowAcc::default());
        }
        Some(&mut self.windows[i])
    }

    /// Records a transmission first scheduled at `t`.
    pub fn record_scheduled(&mut self, t: f64) {
        if let Some(w) = self.acc(t) {
            w.scheduled += 1;
        }
    }

    /// Records a connection completed at `t`.
    pub fn record_delivered(&mut self, t: f64) {
        if let Some(w) = self.acc(t) {
            w.delivered += 1;
        }
    }

    /// Records a retry attempt at `t`.
    pub fn record_retry(&mut self, t: f64) {
        if let Some(w) = self.acc(t) {
            w.retries += 1;
        }
    }

    /// Records gross forwarding benefit accrued at `t`.
    pub fn record_payoff(&mut self, t: f64, amount: f64) {
        if let Some(w) = self.acc(t) {
            w.payoff += amount;
        }
    }

    /// The windows accumulated so far.
    #[must_use]
    pub fn windows(&self) -> &[WindowAcc] {
        &self.windows
    }

    /// Per-window `delivered / scheduled` (0 for an idle window).
    #[must_use]
    pub fn delivery_ratios(&self) -> Vec<f64> {
        self.windows
            .iter()
            .map(|w| {
                if w.scheduled == 0 {
                    0.0
                } else {
                    w.delivered as f64 / w.scheduled as f64
                }
            })
            .collect()
    }

    /// Per-window gross forwarding benefit per minute.
    #[must_use]
    pub fn payoff_rates(&self) -> Vec<f64> {
        self.windows.iter().map(|w| w.payoff / self.len).collect()
    }

    /// Per-window `retries / scheduled` (0 for an idle window).
    #[must_use]
    pub fn retry_rates(&self) -> Vec<f64> {
        self.windows
            .iter()
            .map(|w| {
                if w.scheduled == 0 {
                    0.0
                } else {
                    w.retries as f64 / w.scheduled as f64
                }
            })
            .collect()
    }

    /// Snapshot export: one `(scheduled, delivered, retries, payoff bits)`
    /// row per window. The geometry (`len`, `warmup`) is configuration and
    /// is rebuilt on resume, not exported.
    #[must_use]
    pub fn snapshot_state(&self) -> Vec<(u64, u64, u64, u64)> {
        self.windows
            .iter()
            .map(|w| (w.scheduled, w.delivered, w.retries, w.payoff.to_bits()))
            .collect()
    }

    /// Rebuilds a collector from a [`WindowCollector::snapshot_state`]
    /// export. Callers must have validated the payoff bit patterns (finite)
    /// — the snapshot decoder does.
    #[must_use]
    pub fn from_snapshot(len: f64, warmup: f64, state: &[(u64, u64, u64, u64)]) -> Self {
        WindowCollector {
            len,
            warmup,
            windows: state
                .iter()
                .map(|&(scheduled, delivered, retries, payoff)| WindowAcc {
                    scheduled,
                    delivered,
                    retries,
                    payoff: f64::from_bits(payoff),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn warmup_trim_boundaries_are_half_open() {
        let mut c = WindowCollector::new(10.0, 60.0);
        c.record_scheduled(59.999); // trimmed
        c.record_scheduled(60.0); // first instant of window 0
        c.record_scheduled(69.999); // still window 0
        c.record_scheduled(70.0); // first instant of window 1
        assert_eq!(c.windows().len(), 2);
        assert_eq!(c.windows()[0].scheduled, 2);
        assert_eq!(c.windows()[1].scheduled, 1);
    }

    #[test]
    fn windows_roll_over_and_backfill_idle_gaps() {
        let mut c = WindowCollector::new(5.0, 0.0);
        c.record_delivered(1.0);
        c.record_delivered(27.5); // window 5: windows 1..=4 are idle
        assert_eq!(c.windows().len(), 6);
        assert_eq!(c.windows()[0].delivered, 1);
        assert!(c.windows()[1..5].iter().all(|w| *w == WindowAcc::default()));
        assert_eq!(c.windows()[5].delivered, 1);
        // Idle windows report 0 ratios, not NaN.
        assert_eq!(c.delivery_ratios()[2], 0.0);
        assert_eq!(c.retry_rates()[2], 0.0);
    }

    #[test]
    fn rates_divide_by_the_right_denominator() {
        let mut c = WindowCollector::new(4.0, 0.0);
        c.record_scheduled(0.5);
        c.record_scheduled(1.0);
        c.record_delivered(2.0);
        c.record_retry(3.0);
        c.record_retry(3.5);
        c.record_payoff(1.5, 100.0);
        assert_eq!(c.delivery_ratios(), vec![0.5]);
        assert_eq!(c.retry_rates(), vec![1.0]);
        assert_eq!(c.payoff_rates(), vec![25.0]);
    }

    #[test]
    fn deliveries_can_exceed_a_windows_own_schedule() {
        // Flow balance, not cohort tracking: traffic scheduled in window 0
        // may complete in window 1.
        let mut c = WindowCollector::new(5.0, 0.0);
        c.record_scheduled(4.0);
        c.record_scheduled(6.0);
        c.record_delivered(7.0);
        c.record_delivered(8.0);
        assert_eq!(c.delivery_ratios(), vec![0.0, 2.0]);
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let mut c = WindowCollector::new(10.0, 5.0);
        c.record_scheduled(6.0);
        c.record_delivered(7.0);
        c.record_retry(16.0);
        c.record_payoff(7.0, 123.456789);
        let restored = WindowCollector::from_snapshot(10.0, 5.0, &c.snapshot_state());
        assert_eq!(c, restored);
        assert_eq!(c.payoff_rates(), restored.payoff_rates());
    }
}
