//! Durable-bank layer: a WAL-backed settlement ledger with a warm replica.
//!
//! When `--bank-durability wal` is on, the run maintains a real
//! [`Ledger`] that mirrors the settlement flow: every payout the
//! validators authorize becomes a write-ahead-logged ledger operation
//! (escrow-to-forwarder transfers in per-bundle mode, one netted
//! [`LedgerOp::EpochNet`] per epoch boundary in epoch mode, plus
//! withdraw/deposit pairs modelling receipt clearing). A [`BankReplica`]
//! continuously consumes the committed log, so when the fault plan's
//! bank-crash class kills the primary mid-flush the replica takes over
//! from the exact durable prefix — and because the settlement layer
//! re-submits every unacknowledged operation after failover, a run that
//! crashes anywhere finishes with the same WAL bytes and the same ledger
//! digest as a run that never crashed. Only the recovery *counters*
//! (crashes, torn tails, records replayed) differ, and those are excluded
//! from result fingerprints.
//!
//! The [`InvariantMonitor`] rides along: an O(1) conservation check after
//! every flush, a full sweep (audit chain, double deposits, epoch-net
//! zero-sums, balance replay) at every failover and at the end of the run.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use idpa_desim::fault::{BankCrashDraw, FaultPlan};
use idpa_payment::{
    AccountId, BankReplica, InvariantMonitor, Ledger, LedgerOp, TokenId, ValidationReport, Wal,
};

/// The escrow account all payouts are drawn from. Opened first, so it is
/// always ledger account 0.
const ESCROW: AccountId = AccountId(0);

/// Escrow opening balance: large enough that no realistic run drains it
/// (payout units are receipt counts, bounded by the workload size).
const ESCROW_FUND: u64 = 1 << 40;

/// Receipts cleared per synthetic withdraw/deposit pair (mirrors the
/// epoch-settlement batch size used for `batch_ops` accounting).
const CLEARING_BATCH: u64 = 1024;

/// Mutable counters of the durability layer — everything that may differ
/// between a crashing and a non-crashing run (and is therefore excluded
/// from result fingerprints).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct DurabilityCounters {
    /// Seeded bank crashes injected by the fault plan.
    pub(crate) crashes: u64,
    /// Crashes that left a torn (partially written) final record.
    pub(crate) torn_tails: u64,
    /// WAL records the replica replayed while taking over at a failover.
    pub(crate) records_replayed: u64,
    /// Invariant-monitor checks executed (quick + full).
    pub(crate) monitor_checks: u64,
    /// Invariant violations detected (always 0 on a healthy run).
    pub(crate) monitor_violations: u64,
}

/// End-of-run summary handed to [`RunResult`](crate::runner::RunResult).
#[derive(Debug, Clone, Copy)]
pub(crate) struct DurabilityOutcome {
    /// Durably committed WAL records.
    pub(crate) wal_records: u64,
    /// Durably committed WAL bytes.
    pub(crate) wal_bytes: u64,
    /// Order-independent digest of the final ledger state.
    pub(crate) ledger_digest: u64,
    /// Whether the bank's audit hash chain verified end-to-end.
    pub(crate) audit_ok: bool,
    /// The run's durability counters.
    pub(crate) counters: DurabilityCounters,
}

/// The durable bank: primary ledger (WAL attached), warm replica, and
/// the node-to-account mapping the settlement flow builds lazily.
pub(crate) struct BankDurabilityState {
    primary: Ledger,
    replica: BankReplica,
    /// Simulation node index → ledger account, in order of first payout.
    node_accounts: BTreeMap<u64, AccountId>,
    /// Epoch mode: stage every boundary's operations, commit as one group.
    group_commit: bool,
    /// Flush sequence number — the position key for crash draws and
    /// clearing serials, monotone across the whole run (survives resume).
    flushes: u64,
    /// Epochs settled through the durable ledger (names `EpochNet` records).
    epoch_counter: u64,
    counters: DurabilityCounters,
}

impl BankDurabilityState {
    /// A fresh durable bank: empty WAL, funded escrow, warm replica.
    pub(crate) fn new(group_commit: bool) -> Self {
        let mut primary = Ledger::new();
        primary.attach_wal(Wal::new());
        primary.set_group_commit(group_commit);
        let escrow = primary.open_account(ESCROW_FUND);
        debug_assert_eq!(escrow, ESCROW);
        if group_commit {
            primary.commit_wal();
        }
        let replica = Self::warm_replica(&primary);
        BankDurabilityState {
            primary,
            replica,
            node_accounts: BTreeMap::new(),
            group_commit,
            flushes: 0,
            epoch_counter: 0,
            counters: DurabilityCounters::default(),
        }
    }

    /// Rebuilds the durable bank from snapshot parts: the ledger is
    /// recovered from the persisted WAL image (exercising the same code
    /// path as crash recovery), the replica re-warmed at its tail.
    pub(crate) fn restore(
        wal_bytes: &[u8],
        node_accounts: BTreeMap<u64, AccountId>,
        group_commit: bool,
        flushes: u64,
        epoch_counter: u64,
        counters: DurabilityCounters,
    ) -> Self {
        let (mut primary, report) = Ledger::recover(wal_bytes);
        debug_assert!(
            report.is_clean(),
            "snapshot carried a corrupt WAL image: {report:?}"
        );
        primary.set_group_commit(group_commit);
        let replica = Self::warm_replica(&primary);
        BankDurabilityState {
            primary,
            replica,
            node_accounts,
            group_commit,
            flushes,
            epoch_counter,
            counters,
        }
    }

    /// A replica bit-identical to the primary, cursored at the WAL tail.
    /// Valid only between flushes (no staged operations outstanding).
    fn warm_replica(primary: &Ledger) -> BankReplica {
        let cursor = primary.wal().map_or(0, Wal::committed_len);
        BankReplica::warm(primary.clone(), cursor)
    }

    /// Per-bundle settlement: one flush per validated connection.
    pub(crate) fn settle_connection(&mut self, report: &ValidationReport, plan: &FaultPlan) {
        let paid: BTreeMap<u64, u64> = report.paid_counts.iter().map(|(a, c)| (a.0, *c)).collect();
        let ops = self.build_ops(&paid, report.validated_instances, None);
        self.flush(ops, plan);
    }

    /// Epoch settlement: one flush per boundary, netting the whole window.
    pub(crate) fn settle_epoch(
        &mut self,
        paid: &BTreeMap<u64, u64>,
        receipts: u64,
        plan: &FaultPlan,
    ) {
        let epoch = self.epoch_counter;
        self.epoch_counter += 1;
        let ops = self.build_ops(paid, receipts, Some(epoch));
        self.flush(ops, plan);
    }

    /// Builds the ledger operations one settlement action commits: account
    /// opens for first-seen forwarders, payouts (transfers or one netted
    /// epoch record), and withdraw/deposit pairs clearing the receipts
    /// through the bearer-token path.
    fn build_ops(
        &mut self,
        paid: &BTreeMap<u64, u64>,
        receipts: u64,
        epoch: Option<u64>,
    ) -> Vec<LedgerOp> {
        let mut ops = Vec::new();
        let mut next = self.primary.accounts_len() as u64;
        for &node in paid.keys() {
            if let Entry::Vacant(slot) = self.node_accounts.entry(node) {
                slot.insert(AccountId(next));
                next += 1;
                ops.push(LedgerOp::Open { balance: 0 });
            }
        }
        let total: u64 = paid.values().sum();
        match epoch {
            None => {
                for (node, count) in paid {
                    if *count == 0 {
                        continue;
                    }
                    ops.push(LedgerOp::Transfer {
                        from: ESCROW,
                        to: self.node_accounts[node],
                        amount: *count,
                    });
                }
            }
            Some(e) if total > 0 => {
                let mut deltas: BTreeMap<AccountId, i128> = BTreeMap::new();
                for (node, count) in paid {
                    if *count == 0 {
                        continue;
                    }
                    deltas.insert(self.node_accounts[node], i128::from(*count));
                }
                deltas.insert(ESCROW, -i128::from(total));
                ops.push(LedgerOp::EpochNet { epoch: e, deltas });
            }
            Some(_) => {}
        }
        let mut remaining = receipts;
        let mut chunk = 0u64;
        while remaining > 0 {
            let take = remaining.min(CLEARING_BATCH);
            ops.push(LedgerOp::Withdraw {
                account: ESCROW,
                value: take,
            });
            ops.push(LedgerOp::Deposit {
                account: ESCROW,
                serial: clearing_serial(self.flushes, chunk),
                value: take,
            });
            remaining -= take;
            chunk += 1;
        }
        ops
    }

    /// Applies one settlement action's operations through the WAL, drawing
    /// a seeded crash for this flush position. On a crash the replica
    /// takes over from the durable prefix and every unacknowledged
    /// operation is re-submitted, so the post-flush state is identical
    /// whether or not the crash fired.
    fn flush(&mut self, ops: Vec<LedgerOp>, plan: &FaultPlan) {
        if ops.is_empty() {
            return;
        }
        let crash = plan.bank_crash(self.flushes);
        let crash_at = crash.map(|d| usize::try_from(d.u_pos % ops.len() as u64).unwrap_or(0));
        let mut crashed = false;
        let mut i = 0;
        while i < ops.len() {
            if !crashed && crash_at == Some(i) {
                crashed = true;
                let draw = crash.expect("crash_at implies a draw");
                self.crash_and_failover(&ops[i], draw);
                if self.group_commit {
                    // The whole group was staged, not committed: the crash
                    // lost it all, so the boundary re-submits from the top.
                    i = 0;
                }
                continue;
            }
            self.primary
                .apply(&ops[i])
                .expect("durability-layer operations are pre-validated");
            i += 1;
        }
        if self.group_commit {
            self.primary.commit_wal();
        }
        if let Some(wal) = self.primary.wal() {
            // Keep the replica warm: stream the newly committed suffix.
            self.replica.feed(wal.committed_bytes());
        }
        self.counters.monitor_checks += 1;
        if InvariantMonitor::new().check_quick(&self.primary).is_err() {
            self.counters.monitor_violations += 1;
        }
        self.flushes += 1;
    }

    /// The seeded crash: the primary dies while `in_flight` is being
    /// logged (optionally tearing a partial record onto the durable
    /// image), the replica replays the intact prefix and is promoted.
    fn crash_and_failover(&mut self, in_flight: &LedgerOp, draw: BankCrashDraw) {
        self.counters.crashes += 1;
        let mut wal = self
            .primary
            .take_wal()
            .expect("durable bank always has a WAL attached");
        // A crash loses the in-memory group buffer.
        wal.discard_staged();
        if draw.torn {
            let record = in_flight.encode_record();
            let frag_len =
                1 + usize::try_from(draw.u_tear % (record.len() as u64 - 1)).unwrap_or(0);
            wal.append_torn(&record[..frag_len]);
            self.counters.torn_tails += 1;
        }
        // Failover: the warm replica consumes the durable image up to the
        // torn tail, then takes over as primary.
        self.counters.records_replayed += self.replica.feed(wal.committed_bytes());
        let old = std::mem::replace(&mut self.replica, BankReplica::new());
        let (mut promoted, cursor) = old.promote();
        wal.truncate(cursor);
        promoted.attach_wal(wal);
        promoted.set_group_commit(self.group_commit);
        self.primary = promoted;
        self.replica = Self::warm_replica(&self.primary);
        self.full_check();
    }

    /// Full invariant sweep (conservation, audit chain, double deposits,
    /// epoch zero-sums, balance replay) against the current primary.
    fn full_check(&mut self) {
        self.counters.monitor_checks += 1;
        let violations = InvariantMonitor::new().check_full(&self.primary);
        self.counters.monitor_violations += violations.len() as u64;
        debug_assert!(
            violations.is_empty(),
            "invariant violations: {violations:?}"
        );
    }

    /// Snapshot export: the durable WAL image plus the mutable state the
    /// log alone cannot reproduce.
    pub(crate) fn snapshot_parts(
        &self,
    ) -> (
        &[u8],
        &BTreeMap<u64, AccountId>,
        u64,
        u64,
        DurabilityCounters,
    ) {
        let bytes = self.primary.wal().map_or(&[][..], Wal::committed_bytes);
        (
            bytes,
            &self.node_accounts,
            self.flushes,
            self.epoch_counter,
            self.counters,
        )
    }

    /// End-of-run summary: final full sweep, replica/primary agreement
    /// check, audit-chain verification, WAL accounting.
    pub(crate) fn finalize(&mut self) -> DurabilityOutcome {
        self.full_check();
        if let Some(wal) = self.primary.wal() {
            self.replica.feed(wal.committed_bytes());
        }
        let diverged = self.replica.ledger().digest() != self.primary.digest();
        if diverged {
            self.counters.monitor_violations += 1;
        }
        debug_assert!(!diverged, "warm replica diverged from the primary ledger");
        let audit_ok = self.primary.audit().verify_chain();
        let (wal_records, wal_bytes) = self.primary.wal().map_or((0, 0), |w| {
            (w.committed_records(), w.committed_len() as u64)
        });
        DurabilityOutcome {
            wal_records,
            wal_bytes,
            ledger_digest: self.primary.digest(),
            audit_ok,
            counters: self.counters,
        }
    }
}

/// Deterministic serial for a clearing deposit: unique per (flush, chunk),
/// tagged so it can never collide with protocol token serials.
fn clearing_serial(flush: u64, chunk: u64) -> TokenId {
    let mut id = [0u8; 32];
    id[..8].copy_from_slice(&flush.to_le_bytes());
    id[8..16].copy_from_slice(&chunk.to_le_bytes());
    id[16] = 0xEE;
    TokenId(id)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;
    use idpa_desim::fault::FaultConfig;
    use idpa_desim::rng::StreamFactory;

    fn plan(crash_rate: f64) -> FaultPlan {
        let cfg = FaultConfig {
            bank_crash_rate: crash_rate,
            bank_crash_torn_share: 0.5,
            ..FaultConfig::default()
        };
        FaultPlan::new(cfg, StreamFactory::new(0xD1CE), 64, 1_000.0)
    }

    fn report(paid: &[(u64, u64)]) -> ValidationReport {
        let mut r = ValidationReport::default();
        for &(node, count) in paid {
            r.paid_counts.insert(AccountId(node), count);
            r.validated_instances += count;
        }
        r
    }

    #[test]
    fn per_bundle_settlement_is_logged_and_conserves_value() {
        let p = plan(0.0);
        let mut bank = BankDurabilityState::new(false);
        bank.settle_connection(&report(&[(3, 5), (7, 2)]), &p);
        bank.settle_connection(&report(&[(3, 4)]), &p);
        let out = bank.finalize();
        assert!(out.audit_ok);
        assert_eq!(out.counters.monitor_violations, 0);
        // 2 opens + 3 transfers + 2 withdraw/deposit clearing pairs.
        assert_eq!(out.wal_records, 1 + 2 + 3 + 4);
    }

    #[test]
    fn crash_anywhere_matches_the_crash_free_run() {
        let calm = plan(0.0);
        let stormy = plan(1.0); // crash at every flush
        let mut a = BankDurabilityState::new(true);
        let mut b = BankDurabilityState::new(true);
        for round in 0..20u64 {
            let r = report(&[(round % 5, 3 + round % 4), (9, 1)]);
            let paid: BTreeMap<u64, u64> = r.paid_counts.iter().map(|(k, v)| (k.0, *v)).collect();
            let receipts: u64 = paid.values().sum();
            a.settle_epoch(&paid, receipts, &calm);
            b.settle_epoch(&paid, receipts, &stormy);
        }
        let (oa, ob) = (a.finalize(), b.finalize());
        assert!(ob.counters.crashes > 0, "crash class never fired");
        assert_eq!(oa.ledger_digest, ob.ledger_digest);
        assert_eq!(oa.wal_records, ob.wal_records);
        assert_eq!(oa.wal_bytes, ob.wal_bytes);
        assert_eq!(ob.counters.monitor_violations, 0);
        assert!(ob.audit_ok);
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let p = plan(0.35);
        let mut full = BankDurabilityState::new(false);
        let mut front = BankDurabilityState::new(false);
        for round in 0..12u64 {
            let r = report(&[(round % 3, 2 + round % 5)]);
            full.settle_connection(&r, &p);
            if round < 6 {
                front.settle_connection(&r, &p);
            }
        }
        let (bytes, accounts, flushes, epochs, counters) = front.snapshot_parts();
        let mut resumed = BankDurabilityState::restore(
            &bytes.to_vec(),
            accounts.clone(),
            false,
            flushes,
            epochs,
            counters,
        );
        let p2 = plan(0.35);
        for round in 6..12u64 {
            let r = report(&[(round % 3, 2 + round % 5)]);
            resumed.settle_connection(&r, &p2);
        }
        let (of, or) = (full.finalize(), resumed.finalize());
        assert_eq!(of.ledger_digest, or.ledger_digest);
        assert_eq!(of.wal_records, or.wal_records);
        assert_eq!(of.counters.crashes, or.counters.crashes);
    }
}
