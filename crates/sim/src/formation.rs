//! Parallel connection-bundle formation over the sharded history arena.
//!
//! The event-loop runner interleaves every pair's transmissions on one
//! timeline; this module is the throughput-oriented alternative for
//! studies that only need the formed bundles: it forms each (I, R) pair's
//! whole connection bundle independently, so disjoint initiator sets
//! proceed in parallel on the deterministic pool
//! ([`idpa_desim::pool::parallel_map_items`]).
//!
//! # Why this parallelism is safe (and bit-identical)
//!
//! * **History is bundle-scoped and owner-private** (§2.3): a routing
//!   decision for bundle `p` reads only selectivity *for bundle `p`*, and
//!   bundle `p`'s records are written only by pair `p`'s own
//!   transmissions. A worker forming pair `p` therefore serves every
//!   history read from its private [`BundleMirror`] — value-identical to
//!   reading the shared store — and takes shard locks only to commit.
//! * **Commits are deterministic**: a worker commits each formed path to
//!   its mirror immediately (feeding the next connection's reads) and
//!   flushes the finished bundle into the shared [`HistoryArena`] as one
//!   bulk [`HistoryArena::absorb_mirror`] per pair, which locks the
//!   covering shards in ascending order keyed by `NodeId`.
//!   Per-`(node, bundle)` record order is the pair's own connection
//!   order, independent of how workers interleave.
//! * **Everything else a worker reads is immutable**: topology, analytic
//!   churn schedules, costs, and a per-pair RNG stream keyed by position
//!   (`stream_indexed2("formation/path", pair, 0)`), never by thread.
//!
//! Consequently [`form_bundles_sharded`] returns the same outcomes for
//! every `(shard count, thread count)` combination, equal to the
//! sequential [`form_bundles_global`] baseline over a flat
//! `Vec<HistoryProfile>` — pinned by `tests/shard_invariance.rs`.

use std::cell::RefCell;

use idpa_core::arena::{BundleMirror, HistoryArena};
use idpa_core::bundle::BundleId;
use idpa_core::contract::Contract;
use idpa_core::history::{HistoryProfile, HistoryRead};
use idpa_core::path::{form_connection_pending, PathOutcome, PendingConnection};
use idpa_core::quality::{EdgeQuality, Weights};
use idpa_core::routing::{RouteScratch, RoutingView};
use idpa_desim::pool::parallel_map_items;
use idpa_desim::rng::StreamFactory;
use idpa_overlay::NodeId;

use crate::scenario::ScenarioConfig;
use crate::world::World;

/// The formed connection bundle of one (I, R) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairFormation {
    /// Index of the pair in `world.pairs`.
    pub pair: usize,
    /// One outcome per scheduled transmission, in connection order.
    pub outcomes: Vec<PathOutcome>,
}

/// One unit of pool work: a group of pairs formed by one worker pass,
/// carrying the shard set so the scheduler (and the reader of a trace)
/// knows which arena locks the item's commits will touch.
#[derive(Debug, Clone)]
pub struct FormationItem {
    /// Arena shards hosting this item's initiators, sorted ascending
    /// (a single shard under [`partition_pairs`]'s locality split,
    /// possibly several under [`partition_pairs_balanced`]).
    pub shards: Vec<usize>,
    /// Pair indices formed by this item, in pair order.
    pub pairs: Vec<usize>,
}

/// Groups pairs by the home shard of their initiator, ascending by shard
/// id, preserving pair order within each item. The grouping only affects
/// scheduling — per-pair results are independent of it.
///
/// This is the original, locality-first split. Under skewed workloads
/// (one popular initiator region owning most of the scheduled depth) it
/// starves workers: a single item carries almost all the work while the
/// rest finish early and idle. [`partition_pairs_balanced`] is the
/// depth-aware replacement [`form_bundles_sharded`] uses.
#[must_use]
pub fn partition_pairs(world: &World, arena: &HistoryArena) -> Vec<FormationItem> {
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); arena.shard_count()];
    for (pair, wl) in world.pairs.iter().enumerate() {
        buckets[arena.shard_of(wl.initiator)].push(pair);
    }
    buckets
        .into_iter()
        .enumerate()
        .filter(|(_, pairs)| !pairs.is_empty())
        .map(|(shard, pairs)| FormationItem {
            shards: vec![shard],
            pairs,
        })
        .collect()
}

/// Groups pairs into `buckets` depth-balanced work items: pairs are
/// ordered by descending estimated bundle depth (their scheduled
/// connection count — known exactly up front, since the workload is
/// pre-sampled), ties broken by ascending pair index, and dealt
/// round-robin. The deal is fully deterministic, and per-pair results are
/// independent of grouping (each pair forms against its private mirror
/// with a position-keyed RNG stream and commits in one bulk absorb), so
/// results are bit-identical to any other split — only wall-clock balance
/// changes. Each item records the arena shards its commits will touch,
/// sorted ascending.
#[must_use]
pub fn partition_pairs_balanced(
    world: &World,
    arena: &HistoryArena,
    buckets: usize,
) -> Vec<FormationItem> {
    let buckets = buckets.max(1).min(world.pairs.len().max(1));
    let mut order: Vec<usize> = (0..world.pairs.len()).collect();
    order.sort_by(|&a, &b| {
        world.pairs[b]
            .times
            .len()
            .cmp(&world.pairs[a].times.len())
            .then(a.cmp(&b))
    });
    let mut items: Vec<FormationItem> = (0..buckets)
        .map(|_| FormationItem {
            shards: Vec::new(),
            pairs: Vec::new(),
        })
        .collect();
    for (i, &pair) in order.iter().enumerate() {
        items[i % buckets].pairs.push(pair);
    }
    for item in &mut items {
        let mut shards: Vec<usize> = item
            .pairs
            .iter()
            .map(|&p| arena.shard_of(world.pairs[p].initiator))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        item.shards = shards;
    }
    items.retain(|item| !item.pairs.is_empty());
    items
}

/// Liveness snapshot with per-query memoization: routing's lookahead
/// revisits the same nodes many times per connection, so each
/// `is_up(now)` binary search is answered once and cached until the
/// snapshot time changes.
struct LiveCache {
    /// 0 = unknown, 1 = up, 2 = down, per node.
    state: Vec<u8>,
    touched: Vec<usize>,
}

/// Routing view of one pair's formation: topology neighbors filtered by
/// the analytic churn schedule at the connection's scheduled time, the
/// schedule's long-run availability as `α`, and the world cost model.
struct FormationView<'w> {
    world: &'w World,
    avail: &'w [f64],
    now: idpa_desim::SimTime,
    live: RefCell<LiveCache>,
}

impl<'w> FormationView<'w> {
    fn new(world: &'w World, avail: &'w [f64]) -> Self {
        FormationView {
            world,
            avail,
            now: idpa_desim::SimTime::ZERO,
            live: RefCell::new(LiveCache {
                state: vec![0; world.schedules.len()],
                touched: Vec::new(),
            }),
        }
    }

    /// Moves the snapshot to a new time, invalidating the liveness cache.
    fn set_now(&mut self, now: f64) {
        self.now = idpa_desim::SimTime::new(now);
        let cache = self.live.get_mut();
        for &i in &cache.touched {
            cache.state[i] = 0;
        }
        cache.touched.clear();
    }

    fn is_up(&self, v: NodeId) -> bool {
        let mut cache = self.live.borrow_mut();
        let i = v.index();
        if cache.state[i] == 0 {
            cache.state[i] = if self.world.schedules[i].is_up(self.now) {
                1
            } else {
                2
            };
            cache.touched.push(i);
        }
        cache.state[i] == 1
    }
}

impl RoutingView for FormationView<'_> {
    fn live_neighbors(&self, s: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.live_neighbors_into(s, &mut out);
        out
    }

    fn live_neighbors_into(&self, s: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(
            self.world
                .topology
                .neighbors(s)
                .iter()
                .copied()
                .filter(|&v| self.is_up(v)),
        );
    }

    fn availability(&self, _s: NodeId, v: NodeId) -> f64 {
        self.avail[v.index()]
    }

    fn transmission_cost(&self, s: NodeId, v: NodeId) -> f64 {
        self.world.costs.transmission_cost(s.index(), v.index())
    }

    fn participation_cost(&self, s: NodeId) -> f64 {
        let _ = s;
        self.world.costs.participation_cost()
    }
}

/// Read adapter over a `RefCell`-guarded mutable history store, so one
/// store can serve immutable reads during formation and mutable commits
/// between connections. Both the global baseline and the sharded workers
/// route reads through this adapter, keeping the per-query overhead
/// identical across the arms the bench compares.
struct CellReads<'a, 'm, H: ?Sized> {
    cell: &'a RefCell<&'m mut H>,
}

impl<H: HistoryRead + ?Sized> HistoryRead for CellReads<'_, '_, H> {
    fn selectivity_at(&self, s: NodeId, bundle: BundleId, priors: u32, v: NodeId) -> f64 {
        self.cell.borrow().selectivity_at(s, bundle, priors, v)
    }

    fn selectivity_from_at(
        &self,
        s: NodeId,
        bundle: BundleId,
        priors: u32,
        predecessor: NodeId,
        v: NodeId,
    ) -> f64 {
        self.cell
            .borrow()
            .selectivity_from_at(s, bundle, priors, predecessor, v)
    }
}

/// Shared per-run inputs, computed once and read by every worker.
struct FormationCtx<'w> {
    world: &'w World,
    cfg: &'w ScenarioConfig,
    avail: Vec<f64>,
    streams: StreamFactory,
    quality: EdgeQuality,
}

impl<'w> FormationCtx<'w> {
    fn new(world: &'w World, cfg: &'w ScenarioConfig) -> Self {
        FormationCtx {
            world,
            cfg,
            // α per node from the analytic schedule, precomputed so the
            // per-edge quality read is one indexed load.
            avail: world.schedules.iter().map(|s| s.availability()).collect(),
            streams: StreamFactory::new(cfg.seed),
            quality: EdgeQuality::new(Weights::new(cfg.weights.0, cfg.weights.1)),
        }
    }

    /// Forms every connection of one pair, reading history from `reads`
    /// and handing each pending path to `commit`. The RNG stream is keyed
    /// by pair position, so formation is independent of scheduling.
    fn form_pair<H, F>(
        &self,
        pair: usize,
        scratch: &mut RouteScratch,
        reads: &H,
        mut commit: F,
    ) -> PairFormation
    where
        H: HistoryRead + ?Sized,
        F: FnMut(&PendingConnection, u32),
    {
        let wl = &self.world.pairs[pair];
        let bundle = BundleId(pair as u64);
        let contract = Contract::from_tau(bundle, wl.responder, wl.pf, self.cfg.tau);
        let mut rng = self
            .streams
            .stream_indexed2("formation/path", pair as u64, 0);
        let mut view = FormationView::new(self.world, &self.avail);
        let mut outcomes = Vec::with_capacity(wl.times.len());
        for (conn, &t) in wl.times.iter().enumerate() {
            view.set_now(t);
            let pending = form_connection_pending(
                scratch,
                wl.initiator,
                &contract,
                conn as u32,
                &view,
                reads,
                &self.world.kinds,
                &self.quality,
                self.cfg.good_strategy,
                self.cfg.adversary_strategy,
                &self.cfg.policy,
                &mut rng,
            );
            commit(&pending, conn as u32);
            outcomes.push(pending.into_outcome());
        }
        PairFormation { pair, outcomes }
    }
}

/// The pre-sharding formation pathway, reproduced exactly: connections
/// are formed **one at a time in global transmission-time order** — the
/// event-loop runner's order, interleaving every pair on one timeline —
/// against the flat `Vec<HistoryProfile>`. This is the baseline the
/// `history_shard` bench compares the sharded executor against: same
/// storage, same access pattern, same schedule the system used before
/// bundle-grouped formation existed.
///
/// Interleaving does not change any formed path (each connection depends
/// only on its own bundle's earlier connections and its pair's private
/// RNG stream, both of which are ordered within the pair), but it does
/// destroy locality: consecutive connections belong to different pairs in
/// different regions of the overlay, so each one re-touches a cold slice
/// of the 10k-profile vector and its heap-scattered per-bundle indexes.
#[must_use]
pub fn form_bundles_interleaved(
    world: &World,
    cfg: &ScenarioConfig,
    histories: &mut Vec<HistoryProfile>,
) -> Vec<PairFormation> {
    let ctx = FormationCtx::new(world, cfg);
    let mut scratch = RouteScratch::new();

    // The runner's event order: every (pair, connection) on one timeline,
    // ascending by scheduled time. Workload times are ascending within a
    // pair, so per-pair connection order (and thus RNG stream position
    // and `priors`) is preserved under the sort.
    let mut events: Vec<(f64, usize, u32)> = world
        .pairs
        .iter()
        .enumerate()
        .flat_map(|(pair, wl)| {
            wl.times
                .iter()
                .enumerate()
                .map(move |(conn, &t)| (t, pair, conn as u32))
        })
        .collect();
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    let mut rngs: Vec<_> = (0..world.pairs.len())
        .map(|p| ctx.streams.stream_indexed2("formation/path", p as u64, 0))
        .collect();
    let mut outcomes: Vec<Vec<PathOutcome>> = world
        .pairs
        .iter()
        .map(|wl| Vec::with_capacity(wl.times.len()))
        .collect();
    let mut view = FormationView::new(world, &ctx.avail);
    let cell = RefCell::new(histories);
    for (t, pair, conn) in events {
        let wl = &world.pairs[pair];
        let bundle = BundleId(pair as u64);
        let contract = Contract::from_tau(bundle, wl.responder, wl.pf, cfg.tau);
        view.set_now(t);
        let reads = CellReads { cell: &cell };
        let pending = form_connection_pending(
            &mut scratch,
            wl.initiator,
            &contract,
            conn,
            &view,
            &reads,
            &world.kinds,
            &ctx.quality,
            cfg.good_strategy,
            cfg.adversary_strategy,
            &cfg.policy,
            &mut rngs[pair],
        );
        pending.commit(bundle, conn, &mut **cell.borrow_mut());
        outcomes[pair].push(pending.into_outcome());
    }
    outcomes
        .into_iter()
        .enumerate()
        .map(|(pair, outcomes)| PairFormation { pair, outcomes })
        .collect()
}

/// Sequential pair-grouped formation against a flat `Vec<HistoryProfile>`
/// — the pre-sharding storage layout with the new bundle-at-a-time
/// schedule. Sits between [`form_bundles_interleaved`] (old schedule, old
/// storage) and [`form_bundles_sharded`] (new schedule, sharded storage),
/// isolating how much of the executor's win comes from grouping alone.
#[must_use]
pub fn form_bundles_global(
    world: &World,
    cfg: &ScenarioConfig,
    histories: &mut Vec<HistoryProfile>,
) -> Vec<PairFormation> {
    let ctx = FormationCtx::new(world, cfg);
    let mut scratch = RouteScratch::new();
    let cell = RefCell::new(histories);
    (0..world.pairs.len())
        .map(|pair| {
            let bundle = BundleId(pair as u64);
            let reads = CellReads { cell: &cell };
            ctx.form_pair(pair, &mut scratch, &reads, |pending, conn| {
                pending.commit(bundle, conn, &mut **cell.borrow_mut());
            })
        })
        .collect()
}

/// Parallel sharded formation: work items (pairs grouped by initiator
/// home shard) run on `threads` pool workers; each worker serves every
/// history read from its private [`BundleMirror`], commits formed paths
/// to the mirror as it goes, and flushes the finished bundle into the
/// shared arena in one bulk [`HistoryArena::absorb_mirror`] commit per
/// pair (covering shards locked in ascending order). Bit-identical to
/// [`form_bundles_global`] at every `(shard, thread)` combination — see
/// the module docs.
#[must_use]
pub fn form_bundles_sharded(
    world: &World,
    cfg: &ScenarioConfig,
    arena: &HistoryArena,
    threads: usize,
) -> Vec<PairFormation> {
    // Depth-balanced split (one bucket per shard's worth of parallelism):
    // under Zipf-skewed workloads the locality split starves workers,
    // while regrouping is value-invisible — see `partition_pairs_balanced`.
    let items = partition_pairs_balanced(world, arena, arena.shard_count());
    form_bundles_items(world, cfg, arena, threads, &items)
}

/// Runs the parallel executor over an explicit work-item split. Results
/// are independent of the split (see the module docs) — this entry point
/// exists so equivalence tests can pin that claim by driving the same
/// machinery with different partitions.
#[must_use]
pub fn form_bundles_items(
    world: &World,
    cfg: &ScenarioConfig,
    arena: &HistoryArena,
    threads: usize,
    items: &[FormationItem],
) -> Vec<PairFormation> {
    let ctx = FormationCtx::new(world, cfg);
    let formed: Vec<Vec<PairFormation>> = parallel_map_items(threads, items, |_, item| {
        let mut scratch = RouteScratch::new();
        let mut mirror = BundleMirror::new(BundleId(0), cfg.history_capacity);
        item.pairs
            .iter()
            .map(|&pair| {
                let bundle = BundleId(pair as u64);
                mirror.reset(bundle);
                let formed = {
                    let cell = RefCell::new(&mut mirror);
                    let reads = CellReads { cell: &cell };
                    ctx.form_pair(pair, &mut scratch, &reads, |pending, conn| {
                        pending.commit(bundle, conn, &mut **cell.borrow_mut());
                    })
                };
                // One bulk commit per pair: the finished mirror cells move
                // into the arena wholesale (covering shards locked in
                // ascending order), identical to committing every record
                // under `lock_path` as it formed.
                arena.absorb_mirror(&mut mirror);
                formed
            })
            .collect()
    });
    let mut by_pair: Vec<Option<PairFormation>> = world.pairs.iter().map(|_| None).collect();
    for pf in formed.into_iter().flatten() {
        let slot = pf.pair;
        by_pair[slot] = Some(pf);
    }
    by_pair
        .into_iter()
        .map(|o| o.expect("every pair is formed by exactly one item"))
        .collect()
}

/// Convenience wrapper: builds an arena from the scenario's resolved
/// shard count, forms all bundles on `threads` workers, and returns both.
#[must_use]
pub fn form_bundles(
    world: &World,
    cfg: &ScenarioConfig,
    threads: usize,
) -> (HistoryArena, Vec<PairFormation>) {
    let arena = HistoryArena::with_capacity(
        cfg.n_nodes,
        cfg.resolved_history_shards(),
        cfg.history_capacity,
    );
    let formed = form_bundles_sharded(world, cfg, &arena, threads);
    (arena, formed)
}
