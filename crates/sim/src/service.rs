//! Service mode: the crash-safe open-workload runner.
//!
//! [`run_service`] drives one scenario the same way [`SimulationRun::execute`]
//! does — same events, same order, same results — but executes it in
//! **segments** so long runs survive crashes and scheduled shutdowns:
//!
//! * `--snapshot-every K` checkpoints the full run state every `K` simulated
//!   minutes via the [`crate::snapshot`] codec. Checkpoints are taken at
//!   *intermediate horizons* of the engine (run to `t`, stop, serialize):
//!   the calendar is never perturbed, so a checkpointed run is bit-identical
//!   to an uninterrupted one.
//! * `--resume P` restores a checkpoint and continues. The combination
//!   "interrupt at any boundary, resume, run to the horizon" reproduces the
//!   uninterrupted run's [`RunResult`] exactly — across probe modes,
//!   lifecycle modes, settlement modes, shard counts and fault plans (the
//!   equivalence suite pins this).
//! * `--max-wall-secs S` is the graceful-shutdown clock: the event loop
//!   polls a wall-clock deadline every few thousand events (an *event
//!   budget*, so the simulated trajectory is untouched), and on expiry
//!   drains the in-flight event, writes a final checkpoint and returns the
//!   partial aggregates with [`RunResult::interrupted`] set. Where the
//!   platform offers signals this is the place SIGTERM would hook in; this
//!   build is `forbid(unsafe_code)` + std-only, so the wall-clock deadline
//!   is the supported trigger.
//!
//! Checkpoint writes are atomic (write `P.tmp`, then rename over `P`): a
//! crash mid-write leaves the previous checkpoint intact, and a torn file
//! can never be mistaken for a valid one anyway thanks to the codec's
//! length + checksum frame.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use idpa_desim::{Engine, SimTime, StopReason};

use crate::error::SimError;
use crate::runner::{Ev, RunResult, SimulationRun};
use crate::scenario::ScenarioConfig;
use crate::snapshot;
use crate::world::World;

/// Events handled between wall-clock deadline polls. Purely a polling
/// granularity: it bounds shutdown latency to a few thousand events
/// without ever touching the simulated trajectory.
const EVENT_CHUNK: u64 = 4096;

/// Service-mode knobs, all optional — with everything `None`,
/// [`run_service`] is exactly [`SimulationRun::execute`] with a `Result`
/// wrapper.
#[derive(Debug, Clone, Default)]
pub struct ServiceOptions {
    /// Checkpoint every this many simulated minutes (requires
    /// [`ServiceOptions::snapshot_path`]).
    pub snapshot_every: Option<f64>,
    /// Where checkpoints are written (atomically, via `.tmp` + rename).
    pub snapshot_path: Option<PathBuf>,
    /// Resume from this checkpoint instead of starting fresh.
    pub resume: Option<PathBuf>,
    /// Graceful-shutdown deadline: stop, checkpoint and return partial
    /// aggregates after this much wall-clock time.
    pub max_wall_secs: Option<u64>,
}

impl ServiceOptions {
    fn validate(&self) -> Result<(), SimError> {
        if let Some(every) = self.snapshot_every {
            if !every.is_finite() || every <= 0.0 {
                return Err(SimError::invalid(
                    "service.snapshot_every",
                    "checkpoint interval must be positive and finite",
                ));
            }
            if self.snapshot_path.is_none() {
                return Err(SimError::invalid(
                    "service.snapshot_path",
                    "--snapshot-every needs --snapshot-path",
                ));
            }
        }
        Ok(())
    }
}

fn io_err(path: &Path, e: &std::io::Error) -> SimError {
    SimError::SnapshotIo {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// Atomically replaces `path` with a fresh checkpoint of `run` + `engine`.
fn write_checkpoint(run: &SimulationRun, engine: &Engine<Ev>, path: &Path) -> Result<(), SimError> {
    let bytes = snapshot::encode(run, engine);
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, &bytes).map_err(|e| io_err(&tmp, &e))?;
    fs::rename(&tmp, path).map_err(|e| io_err(path, &e))?;
    Ok(())
}

/// The smallest multiple of `every` strictly greater than `now` — the next
/// checkpoint boundary. Resume-safe: a run restored at boundary `k·every`
/// schedules its next checkpoint at `(k+1)·every`, exactly where the
/// interrupted run would have.
fn next_boundary(now: f64, every: f64) -> f64 {
    let mut k = (now / every).floor() + 1.0;
    while k * every <= now {
        k += 1.0;
    }
    k * every
}

/// Runs one scenario as a crash-safe service: periodic checkpoints,
/// deterministic resume, graceful wall-clock shutdown.
///
/// Without service options this produces byte-identical results to
/// [`SimulationRun::execute`]; with them, any interrupt-and-resume
/// sequence reproduces the uninterrupted run exactly.
pub fn run_service(cfg: ScenarioConfig, opts: &ServiceOptions) -> Result<RunResult, SimError> {
    cfg.validate()?;
    opts.validate()?;

    let horizon = cfg.churn.horizon;
    let (mut run, mut engine) = match &opts.resume {
        Some(path) => {
            let bytes = fs::read(path).map_err(|e| io_err(path, &e))?;
            snapshot::restore(&cfg, &bytes)?
        }
        None => {
            let world = World::try_generate(&cfg)?;
            let run = SimulationRun::new(cfg, world);
            let mut engine = Engine::new();
            run.schedule_all(&mut engine);
            (run, engine)
        }
    };

    let deadline = opts
        .max_wall_secs
        .map(|secs| Instant::now() + Duration::from_secs(secs));
    let mut next_snap = opts
        .snapshot_every
        .map(|every| next_boundary(engine.now().minutes(), every));
    let mut interrupted = false;

    loop {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            interrupted = true;
            break;
        }
        let target = match next_snap {
            Some(t) if t < horizon => SimTime::new(t),
            _ => SimTime::new(horizon),
        };
        engine.set_event_budget(engine.events_handled() + EVENT_CHUNK);
        match engine.run(&mut run, Some(target)) {
            StopReason::Exhausted => break,
            StopReason::Requested => break,
            StopReason::EventBudget => {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    interrupted = true;
                    break;
                }
            }
            StopReason::Horizon => {
                if target.minutes() >= horizon {
                    break;
                }
                // Intermediate checkpoint boundary: the clock sits exactly
                // at the boundary with every event ≤ it already handled.
                if let (Some(path), Some(every)) = (&opts.snapshot_path, opts.snapshot_every) {
                    write_checkpoint(&run, &engine, path)?;
                    next_snap = Some(next_boundary(target.minutes(), every));
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    interrupted = true;
                    break;
                }
            }
        }
    }
    engine.clear_event_budget();

    if interrupted {
        if let Some(path) = &opts.snapshot_path {
            write_checkpoint(&run, &engine, path)?;
        }
    }

    let mut result = run.finish();
    result.interrupted = interrupted;
    Ok(result)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::scenario::ProbeRngMode;

    fn cfg(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            probe_rng: ProbeRngMode::PerNode,
            ..ScenarioConfig::quick_test(seed)
        }
    }

    #[test]
    fn plain_service_run_matches_execute() {
        let c = cfg(3);
        let baseline = SimulationRun::execute(c);
        let service = run_service(c, &ServiceOptions::default()).expect("service run");
        assert_eq!(baseline, service);
        assert!(!service.interrupted);
    }

    #[test]
    fn checkpointing_does_not_disturb_the_run() {
        let dir = std::env::temp_dir().join("idpa-svc-test-ckpt");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.snap");
        let c = cfg(4);
        let baseline = SimulationRun::execute(c);
        let opts = ServiceOptions {
            snapshot_every: Some(c.churn.horizon / 7.0),
            snapshot_path: Some(path.clone()),
            ..ServiceOptions::default()
        };
        let service = run_service(c, &opts).expect("service run");
        assert_eq!(baseline, service);
        // The last intermediate checkpoint is resumable and completes to
        // the same result.
        let resumed = run_service(
            c,
            &ServiceOptions {
                resume: Some(path.clone()),
                ..ServiceOptions::default()
            },
        )
        .expect("resume");
        assert_eq!(baseline, resumed);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_wall_budget_interrupts_and_checkpoints() {
        let dir = std::env::temp_dir().join("idpa-svc-test-wall");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.snap");
        let c = cfg(5);
        let opts = ServiceOptions {
            snapshot_path: Some(path.clone()),
            max_wall_secs: Some(0),
            ..ServiceOptions::default()
        };
        let partial = run_service(c, &opts).expect("interrupted run");
        assert!(partial.interrupted, "0s wall budget must interrupt");
        // The final checkpoint resumes to the full uninterrupted result.
        let resumed = run_service(
            c,
            &ServiceOptions {
                resume: Some(path.clone()),
                ..ServiceOptions::default()
            },
        )
        .expect("resume");
        assert_eq!(SimulationRun::execute(c), resumed);
        assert!(!resumed.interrupted);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn options_are_validated() {
        let c = cfg(6);
        let e = run_service(
            c,
            &ServiceOptions {
                snapshot_every: Some(10.0),
                ..ServiceOptions::default()
            },
        )
        .expect_err("interval without path must fail");
        assert!(matches!(e, SimError::InvalidConfig { .. }));
        let e = run_service(
            c,
            &ServiceOptions {
                snapshot_every: Some(-1.0),
                snapshot_path: Some(PathBuf::from("/tmp/x")),
                ..ServiceOptions::default()
            },
        )
        .expect_err("negative interval must fail");
        assert!(matches!(e, SimError::InvalidConfig { .. }));
        let e = run_service(
            c,
            &ServiceOptions {
                resume: Some(PathBuf::from("/nonexistent/idpa.snap")),
                ..ServiceOptions::default()
            },
        )
        .expect_err("missing resume file must fail");
        assert!(matches!(e, SimError::SnapshotIo { .. }));
    }

    #[test]
    fn boundary_arithmetic_is_resume_stable() {
        assert_eq!(next_boundary(0.0, 50.0), 50.0);
        assert_eq!(next_boundary(49.9, 50.0), 50.0);
        assert_eq!(next_boundary(50.0, 50.0), 100.0);
        assert_eq!(next_boundary(123.4, 50.0), 150.0);
    }
}
