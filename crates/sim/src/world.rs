//! The sampled static world of one run.
//!
//! Everything stochastic that is *not* a routing decision is sampled up
//! front from named substreams of the master seed: the topology, the churn
//! trace, the bandwidth matrix, the role assignment and the (I, R)
//! workload. Pre-sampling gives common random numbers across the routing
//! strategies being compared — the comparisons in Figs. 5–7 are
//! within-world.

use std::sync::Arc;

use idpa_core::adversary::apply_availability_attack;
use idpa_desim::rng::{StreamFactory, Xoshiro256StarStar};
use idpa_netmodel::{ChurnModel, CostModel, NodeSchedule};
use idpa_overlay::{node::assign_roles, NodeId, NodeKind, Topology};
use rand::RngExt;

use crate::error::SimError;
use crate::scenario::{CostStorage, ScenarioConfig, WorkloadMode};

/// One (I, R) pair's workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PairWorkload {
    /// The initiator.
    pub initiator: NodeId,
    /// The responder.
    pub responder: NodeId,
    /// This pair's forwarding benefit `P_f` (uniform in the configured
    /// range) — `P_r = τ·P_f`.
    pub pf: f64,
    /// Transmission times (minutes), sorted ascending.
    pub times: Vec<f64>,
}

/// The static world: everything sampled before the event loop starts.
#[derive(Debug, Clone)]
pub struct World {
    /// Node roles (good / malicious).
    pub kinds: Vec<NodeKind>,
    /// The neighbor relation.
    pub topology: Topology,
    /// Per-node churn schedules — the one deliberately O(N) structure:
    /// shared (`Arc`) with the probe sets and any lazy node slab, it *is*
    /// the compact analytic summary every other piece of per-node state
    /// materializes from.
    pub schedules: Arc<Vec<NodeSchedule>>,
    /// The bandwidth/cost matrix.
    pub costs: CostModel,
    /// The (I, R) workload.
    pub pairs: Vec<PairWorkload>,
}

impl World {
    /// Samples a world from the scenario's master seed, panicking with the
    /// diagnostic on an invalid scenario. Library callers that want to
    /// handle misconfiguration should use [`World::try_generate`].
    #[must_use]
    pub fn generate(cfg: &ScenarioConfig) -> Self {
        match Self::try_generate(cfg) {
            Ok(world) => world,
            Err(e) => panic!("{e}"),
        }
    }

    /// Samples a world, surfacing configuration and workload-feasibility
    /// problems as [`SimError`] instead of panicking.
    pub fn try_generate(cfg: &ScenarioConfig) -> Result<Self, SimError> {
        cfg.validate()?;
        let streams = StreamFactory::new(cfg.seed);

        let topology = Topology::random(cfg.n_nodes, cfg.degree, &mut streams.stream("topology"));

        let mut schedules = ChurnModel::new(cfg.churn).generate(&mut streams.stream("churn"));

        let costs = match cfg.cost_storage {
            CostStorage::Dense => CostModel::generate(cfg.cost, &mut streams.stream("bandwidth")),
            // Sparse storage never consumes the sequential "bandwidth"
            // stream: edge draws come from position-keyed streams on
            // demand. Streams are independent by label, so skipping it
            // shifts nothing else.
            CostStorage::Sparse => CostModel::generate_sparse(cfg.cost, streams.clone()),
        };

        // Roles: shuffle ids once, take the tail as malicious. Using a
        // dedicated stream keeps the workload identical across f values.
        let mut role_rng = streams.stream("roles");
        let mut perm: Vec<usize> = (0..cfg.n_nodes).collect();
        for i in (1..perm.len()).rev() {
            let j = role_rng.random_range(0..=i);
            perm.swap(i, j);
        }
        let kinds = assign_roles(&perm, cfg.adversary_fraction);

        if cfg.availability_attack {
            let attackers: Vec<NodeId> = kinds
                .iter()
                .enumerate()
                .filter(|(_, k)| !k.is_good())
                .map(|(i, _)| NodeId(i))
                .collect();
            schedules = apply_availability_attack(schedules, &attackers, cfg.churn.horizon);
        }

        let pairs = Self::generate_workload(cfg, &mut streams.stream("workload"))?;

        Ok(World {
            kinds,
            topology,
            schedules: Arc::new(schedules),
            costs,
            pairs,
        })
    }

    /// Samples the (I, R) pairs and assigns each of the
    /// `total_transmissions` messages to a random pair (subject to
    /// `max_connections`), at a uniform time in `[warmup, horizon]`.
    ///
    /// Under [`WorkloadMode::Open`] the pair sampling (initiator,
    /// responder, `P_f`) is bit-identical to the closed mode — the same
    /// draws from the same stream — but the time-assignment loop is
    /// skipped entirely: send times are generated live by the runner's
    /// Poisson arrival process, so every `times` vector stays empty.
    fn generate_workload(
        cfg: &ScenarioConfig,
        rng: &mut Xoshiro256StarStar,
    ) -> Result<Vec<PairWorkload>, SimError> {
        let mut pairs: Vec<PairWorkload> = (0..cfg.n_pairs)
            .map(|_| {
                let initiator = NodeId(rng.random_range(0..cfg.n_nodes));
                let responder = loop {
                    let r = NodeId(rng.random_range(0..cfg.n_nodes));
                    if r != initiator {
                        break r;
                    }
                };
                let pf = rng.random_range(cfg.pf_range.0..=cfg.pf_range.1);
                PairWorkload {
                    initiator,
                    responder,
                    pf,
                    times: Vec::new(),
                }
            })
            .collect();

        if cfg.workload == WorkloadMode::Open {
            return Ok(pairs);
        }

        let mut assigned = 0usize;
        let mut attempts = 0usize;
        while assigned < cfg.total_transmissions {
            attempts += 1;
            if attempts >= cfg.total_transmissions * 100 {
                return Err(SimError::WorkloadInfeasible {
                    assigned,
                    requested: cfg.total_transmissions,
                });
            }
            let p = rng.random_range(0..pairs.len());
            if pairs[p].times.len() >= cfg.max_connections as usize {
                continue;
            }
            let t = rng.random_range(cfg.warmup..cfg.churn.horizon);
            pairs[p].times.push(t);
            assigned += 1;
        }
        for p in &mut pairs {
            // Sampled times are finite by construction; total_cmp avoids
            // the panicking partial-order unwrap.
            p.times.sort_by(f64::total_cmp);
        }
        Ok(pairs)
    }

    /// Number of good nodes.
    #[must_use]
    pub fn good_count(&self) -> usize {
        self.kinds.iter().filter(|k| k.is_good()).count()
    }

    /// Ids of good nodes.
    #[must_use]
    pub fn good_nodes(&self) -> Vec<NodeId> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| k.is_good())
            .map(|(i, _)| NodeId(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    fn world(seed: u64) -> World {
        World::generate(&ScenarioConfig::quick_test(seed))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = world(3);
        let b = world(3);
        assert_eq!(a.kinds, b.kinds);
        assert_eq!(a.topology, b.topology);
        assert_eq!(a.schedules, b.schedules);
        assert_eq!(a.pairs, b.pairs);
    }

    #[test]
    fn try_generate_surfaces_invalid_config() {
        let mut cfg = ScenarioConfig::quick_test(1);
        cfg.degree = cfg.n_nodes; // degree must be < N
        let err = World::try_generate(&cfg).expect_err("must reject");
        assert!(
            matches!(
                err,
                SimError::InvalidConfig {
                    field: "degree",
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn workload_totals_match_config() {
        let cfg = ScenarioConfig::quick_test(1);
        let w = World::generate(&cfg);
        let total: usize = w.pairs.iter().map(|p| p.times.len()).sum();
        assert_eq!(total, cfg.total_transmissions);
        assert_eq!(w.pairs.len(), cfg.n_pairs);
    }

    #[test]
    fn max_connections_respected() {
        let cfg = ScenarioConfig {
            max_connections: 12,
            ..ScenarioConfig::quick_test(2)
        };
        let w = World::generate(&cfg);
        assert!(w.pairs.iter().all(|p| p.times.len() <= 12));
        // The cap binds: with 200 transmissions over 20 pairs (mean 10),
        // some pair would exceed 12 without the cap.
        assert!(w.pairs.iter().any(|p| p.times.len() == 12));
    }

    #[test]
    fn initiators_differ_from_responders() {
        let w = world(4);
        assert!(w.pairs.iter().all(|p| p.initiator != p.responder));
    }

    #[test]
    fn pf_in_configured_range() {
        let w = world(5);
        assert!(w.pairs.iter().all(|p| (50.0..=100.0).contains(&p.pf)));
    }

    #[test]
    fn transmission_times_sorted_within_window() {
        let cfg = ScenarioConfig::quick_test(6);
        let w = World::generate(&cfg);
        for p in &w.pairs {
            assert!(p.times.windows(2).all(|t| t[0] <= t[1]));
            assert!(p
                .times
                .iter()
                .all(|&t| t >= cfg.warmup && t < cfg.churn.horizon));
        }
    }

    #[test]
    fn open_workload_keeps_pair_sampling_and_skips_times() {
        let closed = ScenarioConfig::quick_test(11);
        let open = ScenarioConfig {
            workload: WorkloadMode::Open,
            open_arrival_rate: 0.05,
            ..closed
        };
        let wc = World::generate(&closed);
        let wo = World::generate(&open);
        assert_eq!(wc.pairs.len(), wo.pairs.len());
        for (c, o) in wc.pairs.iter().zip(&wo.pairs) {
            assert_eq!(c.initiator, o.initiator, "same pair draws either way");
            assert_eq!(c.responder, o.responder);
            assert_eq!(c.pf.to_bits(), o.pf.to_bits());
            assert!(o.times.is_empty(), "open mode assigns no times up front");
        }
        // Everything downstream of the workload stream is untouched too.
        assert_eq!(wc.topology, wo.topology);
        assert_eq!(wc.kinds, wo.kinds);
    }

    #[test]
    fn adversary_fraction_respected() {
        let cfg = ScenarioConfig {
            adversary_fraction: 0.5,
            ..ScenarioConfig::quick_test(7)
        };
        let w = World::generate(&cfg);
        assert_eq!(w.good_count(), 10);
    }

    #[test]
    fn workload_invariant_under_adversary_fraction() {
        // Common random numbers: changing f must not change the workload,
        // topology or churn trace.
        let base = ScenarioConfig::quick_test(8);
        let w0 = World::generate(&base);
        let w5 = World::generate(&ScenarioConfig {
            adversary_fraction: 0.5,
            ..base
        });
        assert_eq!(w0.pairs, w5.pairs);
        assert_eq!(w0.topology, w5.topology);
        assert_eq!(w0.schedules, w5.schedules);
    }

    #[test]
    fn growing_f_preserves_existing_adversaries() {
        let base = ScenarioConfig::quick_test(9);
        let w2 = World::generate(&ScenarioConfig {
            adversary_fraction: 0.2,
            ..base
        });
        let w6 = World::generate(&ScenarioConfig {
            adversary_fraction: 0.6,
            ..base
        });
        for i in 0..base.n_nodes {
            if !w2.kinds[i].is_good() {
                assert!(!w6.kinds[i].is_good(), "node {i} flipped back to good");
            }
        }
    }

    #[test]
    fn availability_attack_pins_adversaries() {
        let cfg = ScenarioConfig {
            adversary_fraction: 0.3,
            availability_attack: true,
            ..ScenarioConfig::quick_test(10)
        };
        let w = World::generate(&cfg);
        for (i, k) in w.kinds.iter().enumerate() {
            if !k.is_good() {
                assert_eq!(w.schedules[i].availability(), 1.0);
            }
        }
    }
}
