//! The event-driven simulation run.
//!
//! Transmissions (one connection of one (I, R) pair, formed hop by hop
//! under the incentive mechanism) drive the run. Availability estimates
//! `α_s(v)` advance in one of two modes: **eager** (`Ev::Probe` fires every
//! probe tick and every live node runs a probing round) or **lazy** (the
//! default — probe state materializes on demand from the analytic churn
//! schedule when routing reads it, with per-node `Ev::Maintain` events at
//! exactly the ticks a neighbor replacement falls due). Under per-node
//! probe RNG streams the two modes are bit-identical. After the horizon the
//! per-bundle accounting is settled into per-node payoffs
//! (`m·P_f + P_r/‖π‖ − costs`).
//!
//! With an active [`FaultConfig`] the run additionally injects seed-derived
//! faults: each transmission attempt walks its formed path edge by edge
//! (crash / drop / delay), the confirmation walks back through any cheating
//! forwarders (drop / receipt corruption), and failed attempts are retried
//! with exponential backoff up to `max_retries` before being abandoned.
//! History stays confirmation-driven (§2.2): a failed attempt commits no
//! Table 1 records, and a swallowed confirmation commits only the path
//! suffix it actually traversed. Completed connections deposit a MAC'd path
//! manifest plus per-hop receipts with a [`PathValidator`], whose
//! settlement-time replay reconstructs π, pays only validated instances and
//! flags cheaters. All fault draws come from dedicated position-keyed
//! streams, so a run with every rate zero is bit-identical to the
//! fault-free code path.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use idpa_core::adversary::IntersectionAttack;
use idpa_core::arena::HistoryArena;
use idpa_core::bundle::{BundleAccounting, BundleId};
use idpa_core::contract::Contract;
use idpa_core::metrics::{self, DeliveryTracker, ReformationTracker};
use idpa_core::path::{form_connection_pending, form_connection_with_scratch, PendingConnection};
use idpa_core::quality::{EdgeQuality, Weights};
use idpa_core::reputation::EdgeReputation;
use idpa_core::routing::{RouteScratch, RoutingView};
use idpa_desim::rng::{StreamFactory, Xoshiro256StarStar};
use idpa_desim::{AdversaryPlan, CheatAction, Engine, FaultPlan, FaultResponse, Process, SimTime};
use idpa_netmodel::{CostModel, NodeSchedule};
use idpa_overlay::{LazyProbeSet, NodeId, ProbeEstimator, ProbeInvalidation};
use idpa_payment::audit::{AuditEvent, AuditLog};
use idpa_payment::bank::AccountId;
use idpa_payment::receipt::Receipt;
use idpa_payment::validation::{ConnectionEvidence, PathManifest, PathValidator};
use rand::{Rng, RngExt};
use std::sync::Arc;

use crate::durability::BankDurabilityState;
use crate::scenario::{
    BankDurability, NodeLifecycle, ProbeMode, ProbeRngMode, ScenarioConfig, SettlementMode,
    WorkloadMode,
};
use crate::slab::{NodeSlab, ReputationStore};
use crate::window::WindowCollector;
use crate::world::World;

/// Events of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    /// Global probe tick (eager mode): every live node runs one probing
    /// round.
    Probe,
    /// Per-node maintenance event (lazy mode): a neighbor replacement falls
    /// due for this node at this tick.
    Maintain(usize),
    /// One transmission of one (I, R) pair.
    Transmit {
        /// Index of the pair in the workload.
        pair: usize,
        /// Connection index within the pair's bundle.
        conn: u32,
    },
    /// A retry of a failed transmission attempt (fault injection only).
    Retry {
        /// Index of the pair in the workload.
        pair: usize,
        /// Connection index within the pair's bundle.
        conn: u32,
        /// Attempt number (1 = first retry).
        attempt: u32,
    },
    /// An epoch boundary under `--settlement epoch`: the evidence window
    /// accrued since the previous boundary is validated, payouts are
    /// netted per account and deposits batch-verified.
    EpochSettle,
    /// An open-workload connection request (`--workload open`): the pair's
    /// next Poisson arrival fires, starts a transmission at the current
    /// time, and schedules the following arrival from the pair's
    /// position-keyed gap stream.
    Arrival {
        /// Index of the pair in the workload.
        pair: usize,
    },
    /// A whitewash rejoin (`--adversary-whitewash`): this node sheds its
    /// accumulated reputation by rejoining under a fresh identity — every
    /// active ledger entry against it is archived (the evidence survives),
    /// and its probe-distrust mask is cleared.
    Whitewash(usize),
}

/// Probe state in either advancement mode.
pub(crate) enum ProbeState {
    Eager(Vec<ProbeEstimator>),
    Lazy(LazyProbeSet),
}

/// The live snapshot the routing layer reads during one transmission.
struct RunView<'a> {
    schedules: &'a [NodeSchedule],
    probes: &'a ProbeState,
    costs: &'a CostModel,
    /// Per-node crash overlay (empty when fault injection is off): node `v`
    /// is routable only once `now >= crashed[v]`. The overlay affects
    /// routing liveness only — probe estimates still follow the analytic
    /// churn schedule, which is what keeps eager and lazy probe modes
    /// bit-identical under faults.
    crashed: &'a [f64],
    /// The forming initiator's private fault ledger (`Some` only under
    /// `--fault-response adaptive`): suppressed relays are filtered from
    /// candidate sets and ρ(v) feeds the `w_r` quality term.
    reputation: Option<&'a EdgeReputation>,
    /// Crash-aware probe invalidation (`Some` only in adaptive mode): a
    /// masked relay's probe-derived availability reads as 0 until its
    /// horizon, identically in eager and lazy probe modes — the mask is an
    /// overlay on the read path, never on probe state.
    invalid: Option<&'a ProbeInvalidation>,
    /// Identity-age discounting (`Some` only under
    /// `--adversary-age-discount`): a relay's reputation term is scaled by
    /// `min(1, age/maturity)`, so a whitewashed identity rebuilds trust
    /// instead of inheriting the clean ledger's full score. Age is a pure
    /// function of the plan's precomputed rejoin schedule — never state.
    age_discount: Option<&'a AdversaryPlan>,
    now: SimTime,
}

impl RunView<'_> {
    fn routable(&self, v: NodeId) -> bool {
        self.schedules[v.index()].is_up(self.now)
            && (self.crashed.is_empty() || self.now.minutes() >= self.crashed[v.index()])
    }
}

impl RoutingView for RunView<'_> {
    fn live_neighbors(&self, s: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.live_neighbors_into(s, &mut out);
        out
    }

    fn live_neighbors_into(&self, s: NodeId, out: &mut Vec<NodeId>) {
        // D(s) is maintained by the node itself (its probe estimator), so
        // neighbor replacement is visible to routing.
        out.clear();
        let live =
            |v: &NodeId| self.routable(*v) && !self.reputation.is_some_and(|r| r.is_suppressed(*v));
        match self.probes {
            ProbeState::Eager(probes) => {
                out.extend(probes[s.index()].neighbors().iter().copied().filter(live));
            }
            ProbeState::Lazy(set) => set.with_neighbors(s, self.now.minutes(), |nbrs| {
                out.extend(nbrs.iter().copied().filter(live));
            }),
        }
    }

    fn availability(&self, s: NodeId, v: NodeId) -> f64 {
        if self
            .invalid
            .is_some_and(|iv| iv.masked(v.index(), self.now.minutes()))
        {
            return 0.0;
        }
        match self.probes {
            ProbeState::Eager(probes) => probes[s.index()].availability(v),
            ProbeState::Lazy(set) => set.availability(s, v, self.now.minutes()),
        }
    }

    fn reputation(&self, _s: NodeId, v: NodeId) -> f64 {
        let base = self.reputation.map_or(1.0, |r| r.score(v));
        match self.age_discount {
            None => base,
            Some(plan) => {
                let maturity = plan.config().reputation_maturity;
                let age = plan.identity_age(v.index(), self.now.minutes());
                base * (age / maturity).min(1.0)
            }
        }
    }

    fn transmission_cost(&self, s: NodeId, v: NodeId) -> f64 {
        self.costs.transmission_cost(s.index(), v.index())
    }

    fn participation_cost(&self, _: NodeId) -> f64 {
        self.costs.participation_cost()
    }
}

/// Aggregated outcome of one simulation run.
///
/// Payoffs are aggregated **per (bundle, forwarder) participation** — the
/// paper's unit: a forwarder on a bundle earns `m·P_f + P_r/‖π‖ − costs`
/// for its `m` forwarding instances on that bundle. This is the unit in
/// which Figs. 3–4's decline with `f` and Figs. 6–7's CDFs are expressed;
/// a lifetime-total-per-node aggregation would be dominated by `P_f` and
/// mask the routing-benefit dilution the paper studies.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Per-(bundle, good forwarder) payoffs (the Figs. 6–7 CDF samples).
    pub good_payoffs: Vec<f64>,
    /// Per-(bundle, malicious forwarder) payoffs.
    pub malicious_payoffs: Vec<f64>,
    /// Lifetime total payoff per node (indexed by `NodeId`).
    pub node_totals: Vec<f64>,
    /// Mean per-(bundle, good forwarder) payoff (the Figs. 3–4 metric).
    pub avg_good_payoff: f64,
    /// Mean forwarder-set size over pairs (the Fig. 5 metric).
    pub avg_forwarder_set: f64,
    /// Mean path length `L` over pairs.
    pub avg_path_length: f64,
    /// Mean `Q(π) = L/‖π‖` over pairs.
    pub avg_path_quality: f64,
    /// `avg payoff / avg #forwarders` (the Table 2 metric).
    pub routing_efficiency: f64,
    /// Mean fraction of new edges per connection (Prop. 1's `E[X]`).
    pub new_edge_fraction: f64,
    /// Mean fraction of post-first connections that changed an edge.
    pub reformation_rate: f64,
    /// Connections actually formed.
    pub connections: u64,
    /// Fraction of pairs whose initiator the intersection attack narrowed
    /// to a single candidate.
    pub attack_exposure_rate: f64,
    /// Mean anonymity degree left by the intersection attack (1 = full
    /// anonymity).
    pub avg_anonymity_degree: f64,
    /// Fraction of scheduled transmissions eventually delivered (1.0 in a
    /// fault-free run).
    pub delivery_ratio: f64,
    /// Mean retry attempts per scheduled transmission.
    pub retries_per_message: f64,
    /// Mean extra latency (minutes) of deliveries that needed at least one
    /// path reformation (0.0 when nothing was retried).
    pub reformation_latency: f64,
    /// Fraction of manifest-attested forwarding instances whose receipts
    /// were destroyed by cheaters (payment lost to cheating).
    pub payment_shortfall: f64,
    /// Mean settlement delay (minutes) pairs wait for the bank to come back
    /// up after their last completed connection.
    pub settlement_delay: f64,
    /// Nodes flagged by reconstructed-path validation (sorted).
    pub flagged_cheaters: Vec<usize>,
    /// Nodes the fault plan injected as cheaters (sorted).
    pub injected_cheaters: Vec<usize>,
    /// Detected-versus-paid [`AuditEvent::Discrepancy`] entries recorded.
    pub audit_discrepancies: u64,
    /// Peak number of simultaneously materialized per-node probe cells.
    /// Equals N under the eager lifecycle; under `--node-lifecycle lazy`
    /// it tracks the active working set. Identical across probe modes
    /// (both report through the same footprint model).
    pub peak_materialized_nodes: usize,
    /// Node-state evictions performed by the lazy lifecycle's idle sweep
    /// (always 0 under the eager lifecycle).
    pub node_evictions: u64,
    /// Estimated peak bytes of materialized per-node state: probe cells
    /// (via [`idpa_overlay::cell_footprint`]) plus reputation-ledger
    /// observations. A model, not an allocator reading — comparable
    /// across lifecycles and probe modes.
    pub slab_bytes: usize,
    /// Epoch boundaries that settled at least one new connection under
    /// `--settlement epoch` (0 in per-bundle mode).
    pub epochs_settled: u64,
    /// Mean bank-facing settlement operations (netted payouts plus
    /// batched deposit calls) per settled epoch. A structural count,
    /// not a timing — comparable across machines (0.0 in per-bundle
    /// mode).
    pub settlement_ops_per_epoch: f64,
    /// Receipts collapsed into each netted payout operation — the
    /// transfer-amortization factor epoch batching buys over per-bundle
    /// settlement (0.0 in per-bundle mode).
    pub epoch_netting_ratio: f64,
    /// Receipts cleared per batched deposit call (structural batches of
    /// up to 1024 individually verified deposits; 0.0 in per-bundle
    /// mode). The field name predates the strict-verification fix and is
    /// kept for CSV/report stability.
    pub batch_verify_throughput: f64,
    /// Per-window `delivered / scheduled` under `--window-len` (empty when
    /// windowed collection is off). See [`crate::window::WindowCollector`].
    pub windowed_delivery_ratio: Vec<f64>,
    /// Per-window gross forwarding benefit per minute (empty when windowed
    /// collection is off).
    pub windowed_payoff_rate: Vec<f64>,
    /// Per-window retries per scheduled transmission (empty when windowed
    /// collection is off).
    pub windowed_retry_rate: Vec<f64>,
    /// Nodes the adversary plan designated free riders (sorted; empty when
    /// the strategy is off).
    pub free_riders: Vec<usize>,
    /// Transmission attempts that died because a free-riding forwarder
    /// ghosted its forwarding duty.
    pub free_rider_refusals: u64,
    /// Mean lifetime forwarding payoff of free-riding nodes. Prop. 2 in
    /// action: a node that refuses forwarding duty earns no `m·P_f`.
    pub free_rider_payoff: f64,
    /// Mean lifetime forwarding payoff of compliant good nodes (the
    /// free-rider counterfactual; 0 when the strategy is off).
    pub compliant_payoff: f64,
    /// Whitewash rejoins executed.
    pub whitewash_events: u64,
    /// Fraction of whitewash rejoins that escaped at least one active
    /// suppression — the reputation-evasion rate. Rejoins that found no
    /// suppression to shed count in the denominator only.
    pub reputation_evasion_rate: f64,
    /// Phantom forwarding instances injected by clique-forged manifests.
    pub clique_phantom_instances: u64,
    /// Phantom instances the cross-confirmation check withheld from payout.
    pub clique_phantom_flagged: u64,
    /// Fraction of injected phantom instances that escaped into payouts
    /// (0 with the cross-check on, ~1 with it off).
    pub clique_payout_leakage: f64,
    /// WAL records durably committed by the bank (`--bank-durability wal`
    /// only; 0 when durability is off).
    pub bank_wal_records: u64,
    /// WAL bytes durably committed by the bank.
    pub bank_wal_bytes: u64,
    /// Seeded bank crashes injected by the fault plan's bank-crash class.
    pub bank_crashes: u64,
    /// Bank crashes that left a torn (partially written) final record.
    pub bank_torn_tails: u64,
    /// WAL records the warm replica replayed while taking over at
    /// failovers.
    pub bank_records_replayed: u64,
    /// Runtime invariant-monitor checks executed against the durable
    /// ledger (O(1) conservation per flush + full sweeps at failovers).
    pub bank_monitor_checks: u64,
    /// Invariant violations the monitor detected (0 on every healthy run).
    pub bank_monitor_violations: u64,
    /// Order-independent digest of the final durable-ledger state. Equal
    /// across crash-anywhere and crash-free runs of the same scenario.
    pub bank_ledger_digest: u64,
    /// Whether every audit hash chain verified end-to-end (vacuously true
    /// when no audit log was built).
    pub audit_chain_verified: bool,
    /// Whether the run was cut short by a service-mode shutdown
    /// (`--max-wall-secs`): the aggregates cover only the simulated time
    /// actually executed. Always `false` for runs that reached the horizon.
    pub interrupted: bool,
}

/// Mutable fault-injection state (present only when faults are active).
pub(crate) struct FaultRuntime {
    pub(crate) plan: FaultPlan,
    pub(crate) delivery: DeliveryTracker,
    /// Per-pair §5 evidence accumulators.
    pub(crate) validators: Vec<PathValidator>,
    /// Per-pair bundle keys (shared by manifest and receipts).
    pub(crate) keys: Vec<[u8; 32]>,
    /// Per-pair time of the last completed connection (`< 0` = none).
    pub(crate) last_completion: Vec<f64>,
    /// Per-initiator private fault ledgers (keyed by initiator node).
    /// Written only under `--fault-response adaptive`; in static mode they
    /// stay pristine and are never handed to the routing view, keeping
    /// static runs bit-identical to the pre-adaptive code path. Under the
    /// lazy lifecycle, ledgers materialize on the first recorded fault.
    pub(crate) reputation: ReputationStore,
    /// Global probe-availability mask, advanced on confirmed failures
    /// (adaptive mode only).
    pub(crate) probe_invalid: ProbeInvalidation,
    /// Epoch-batched settlement accumulation (`Some` only under
    /// `--settlement epoch`; `None` runs the exact per-bundle code path).
    pub(crate) epoch: Option<EpochState>,
    /// Deterministic adversary strategies (`Some` only when at least one
    /// `--adversary-*` rate is nonzero; `None` leaves every code path
    /// byte-identical to a build without the adversary layer).
    pub(crate) adversary: Option<AdversaryPlan>,
    /// Dynamic adversary counters (all zero when no strategy is active).
    pub(crate) adv: AdversaryCounters,
    /// The durable bank (`Some` only under `--bank-durability wal`):
    /// WAL-backed ledger mirroring the settlement flow, warm replica,
    /// seeded crash/failover, and the runtime invariant monitor.
    pub(crate) bank: Option<BankDurabilityState>,
}

/// Dynamic counters of the adversary layer — the only mutable adversary
/// state (the plan itself is a precomputed pure schedule), so these are
/// what crash-safe snapshots carry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct AdversaryCounters {
    /// Whitewash rejoins executed so far.
    pub(crate) whitewash_events: u64,
    /// Rejoins that escaped at least one active suppression.
    pub(crate) whitewash_evasions: u64,
    /// Ledger entries archived by whitewashes.
    pub(crate) whitewash_archived: u64,
    /// Transmission attempts ghosted by free-riding forwarders.
    pub(crate) free_rider_refusals: u64,
    /// Phantom forwarding instances injected by clique forgery.
    pub(crate) phantom_injected: u64,
}

/// Running state of epoch-batched settlement: per-pair window cursors plus
/// the accumulated totals the final aggregation reads. Because
/// [`PathValidator::validate_range`] windows partition each pair's
/// evidence, the accumulated totals equal a single whole-bundle
/// validation — epoch mode changes *when* settlement work happens and how
/// many bank operations it costs, never the economics.
pub(crate) struct EpochState {
    /// Per-pair count of evidence entries settled in prior windows.
    pub(crate) cursors: Vec<usize>,
    /// Per-pair manifest-attested instances over all settled windows.
    pub(crate) expected: Vec<u64>,
    /// Per-pair receipt-backed (payable) instances over all settled
    /// windows.
    pub(crate) validated: Vec<u64>,
    /// Union of flagged forwarders across all settled windows.
    pub(crate) flagged: BTreeSet<usize>,
    /// Boundaries that settled at least one new connection.
    pub(crate) epochs_settled: u64,
    /// Netted payout operations: one per account paid per epoch, however
    /// many receipts it earned in the window.
    pub(crate) payout_ops: u64,
    /// Batched deposit calls: one per window of up to 1024 individually
    /// verified deposits.
    pub(crate) batch_ops: u64,
    /// Receipts cleared through batched settlement.
    pub(crate) receipts_netted: u64,
    /// Phantom instances withheld by the cross-confirmation check across
    /// all settled windows.
    pub(crate) phantom_flagged: u64,
}

impl EpochState {
    pub(crate) fn new(n_pairs: usize) -> Self {
        EpochState {
            cursors: vec![0; n_pairs],
            expected: vec![0; n_pairs],
            validated: vec![0; n_pairs],
            flagged: BTreeSet::new(),
            epochs_settled: 0,
            payout_ops: 0,
            batch_ops: 0,
            receipts_netted: 0,
            phantom_flagged: 0,
        }
    }
}

impl FaultRuntime {
    fn adaptive(&self) -> bool {
        self.plan.config().response == FaultResponse::Adaptive
    }

    /// Settles the evidence window accrued since the last epoch boundary:
    /// validates each pair's new connections, folds the results into the
    /// per-pair totals, and counts the bank-facing operations the batch
    /// collapses the window into (one netted payout per paid account, one
    /// batch-verification call per 1024 deposits). A no-op in per-bundle
    /// mode and on boundaries with no new evidence.
    fn settle_epoch_window(&mut self) {
        let Some(es) = self.epoch.as_mut() else {
            return;
        };
        let mut receipts = 0u64;
        let mut settled_any = false;
        let mut accounts: BTreeSet<u64> = BTreeSet::new();
        let mut paid: BTreeMap<u64, u64> = BTreeMap::new();
        for (pair, validator) in self.validators.iter().enumerate() {
            let (start, end) = (es.cursors[pair], validator.connections());
            if start == end {
                continue;
            }
            settled_any = true;
            let report = validator.validate_range(start, end);
            es.cursors[pair] = end;
            es.expected[pair] += report.expected_instances;
            es.validated[pair] += report.validated_instances;
            es.phantom_flagged += report.phantom_instances;
            es.flagged
                .extend(report.flagged.iter().map(|a| a.0 as usize));
            accounts.extend(report.paid_counts.keys().map(|a| a.0));
            for (a, c) in &report.paid_counts {
                *paid.entry(a.0).or_insert(0) += c;
            }
            receipts += report.validated_instances;
        }
        if !settled_any {
            return;
        }
        es.epochs_settled += 1;
        es.receipts_netted += receipts;
        es.payout_ops += accounts.len() as u64;
        es.batch_ops += receipts.div_ceil(1024);
        // The durable bank commits the whole window as one WAL group.
        if let Some(bank) = self.bank.as_mut() {
            bank.settle_epoch(&paid, receipts, &self.plan);
        }
    }
}

/// The forwarder an initiator blames for a fault on edge `i` (which carries
/// the payload from path position `i` to `i + 1`): the receiving forwarder
/// when there is one, else the sending forwarder. A direct
/// initiator-to-responder edge has no forwarder to blame.
fn edge_suspect(forwarders: &[NodeId], i: usize) -> Option<NodeId> {
    if i < forwarders.len() {
        Some(forwarders[i])
    } else if i >= 1 {
        Some(forwarders[i - 1])
    } else {
        None
    }
}

/// What ended a transmission attempt before confirmation reached `I`.
enum AttemptFailure {
    /// A forwarder crashed mid-transmission.
    Crash,
    /// The payload was dropped on an edge.
    Drop,
    /// Accumulated edge delays exceeded the initiator's retry timeout.
    Timeout,
    /// A cheater swallowed the confirmation at this 1-based path position.
    ConfirmationDropped(usize),
}

/// The simulation process: owns all mutable run state.
pub struct SimulationRun {
    pub(crate) cfg: ScenarioConfig,
    pub(crate) world: World,
    pub(crate) probes: ProbeState,
    /// Owner-keyed sharded history store. The event loop is sequential, so
    /// it uses the zero-lock [`HistoryArena::exclusive`] view — the arena
    /// partitions storage without changing values, keeping runs
    /// bit-identical at every `--history-shards` count.
    pub(crate) histories: HistoryArena,
    pub(crate) bundles: Vec<BundleAccounting>,
    pub(crate) trackers: Vec<ReformationTracker>,
    pub(crate) attacks: Vec<IntersectionAttack>,
    pub(crate) initiator_costs: Vec<f64>,
    quality: EdgeQuality,
    pub(crate) routing_rng: Xoshiro256StarStar,
    /// The legacy shared probe stream (consumed only under
    /// [`ProbeRngMode::SharedLegacy`]).
    pub(crate) probe_rng: Xoshiro256StarStar,
    /// Source of position-keyed probe draws under
    /// [`ProbeRngMode::PerNode`].
    streams: StreamFactory,
    pub(crate) connections: u64,
    /// Routing buffers and memo caches, reused across all transmissions.
    scratch: RouteScratch,
    /// Scratch for legacy neighbor maintenance: stale-neighbor list and a
    /// node-membership mask, reused across nodes and ticks.
    stale_scratch: Vec<NodeId>,
    member_mask: Vec<bool>,
    /// Crash overlay: node `v` is unroutable until `crashed_until[v]`.
    /// Empty when fault injection is off (the zero-overhead fast path).
    pub(crate) crashed_until: Vec<f64>,
    /// Fault-injection state; `None` runs the exact fault-free code path.
    pub(crate) fault: Option<FaultRuntime>,
    /// Idle-eviction sweeper (`Some` only under `--node-lifecycle lazy`).
    pub(crate) slab: Option<NodeSlab>,
    /// Steady-state windowed metrics (`Some` only under `--window-len`).
    pub(crate) windows: Option<WindowCollector>,
}

impl SimulationRun {
    /// Builds the run state over a sampled world.
    #[must_use]
    pub fn new(cfg: ScenarioConfig, world: World) -> Self {
        let streams = StreamFactory::new(cfg.seed);
        let neighbor_sets: Vec<Vec<NodeId>> = (0..cfg.n_nodes)
            .map(|i| world.topology.neighbors(NodeId(i)).to_vec())
            .collect();
        let probes = match (cfg.probe_mode, cfg.node_lifecycle) {
            (ProbeMode::Eager, _) => ProbeState::Eager(
                neighbor_sets
                    .into_iter()
                    .enumerate()
                    .map(|(i, nbrs)| ProbeEstimator::new(NodeId(i), cfg.probe_period, nbrs))
                    .collect(),
            ),
            (ProbeMode::Lazy, NodeLifecycle::Eager) => ProbeState::Lazy(LazyProbeSet::new_shared(
                cfg.probe_period,
                cfg.churn.horizon,
                Arc::clone(&world.schedules),
                neighbor_sets,
                cfg.neighbor_replacement_rounds,
                streams.clone(),
            )),
            // Lazy lifecycle: no cell exists until its node is touched,
            // and idle cells are evicted by the slab sweep — bit-identical
            // to the dense store at every query.
            (ProbeMode::Lazy, NodeLifecycle::Lazy) => ProbeState::Lazy(LazyProbeSet::new_sparse(
                cfg.probe_period,
                cfg.churn.horizon,
                Arc::clone(&world.schedules),
                Arc::new(neighbor_sets),
                cfg.neighbor_replacement_rounds,
                streams.clone(),
            )),
        };
        let histories = HistoryArena::with_capacity(
            cfg.n_nodes,
            cfg.resolved_history_shards(),
            cfg.history_capacity,
        );
        let n_pairs = world.pairs.len();
        // Any adversary strategy rides on the fault runtime (evidence,
        // delivery tracking, reputation ledgers), so an active adversary
        // plan forces the runtime on even with every fault rate zero — a
        // zero-rate FaultPlan consumes no streams and injects nothing.
        let (crashed_until, fault) = if cfg.fault.is_active()
            || cfg.adversary.is_active()
            || cfg.bank_durability == BankDurability::Wal
        {
            let plan = FaultPlan::new(cfg.fault, streams.clone(), cfg.n_nodes, cfg.churn.horizon);
            let adversary = cfg.adversary.is_active().then(|| {
                AdversaryPlan::new(
                    cfg.adversary,
                    streams.clone(),
                    cfg.n_nodes,
                    cfg.churn.horizon,
                )
            });
            let mut delivery = DeliveryTracker::new();
            // The closed workload's schedule is fixed up front; the open
            // workload records each arrival as it fires.
            if cfg.workload == WorkloadMode::Closed {
                delivery.record_scheduled(cfg.total_transmissions as u64);
            }
            let keys: Vec<[u8; 32]> = (0..n_pairs)
                .map(|p| {
                    let mut key = [0u8; 32];
                    streams
                        .stream_indexed2("payment/bundle-key", p as u64, 0)
                        .fill_bytes(&mut key);
                    key
                })
                .collect();
            let validators = keys
                .iter()
                .enumerate()
                .map(|(p, key)| PathValidator::new(key, p as u64))
                .collect();
            (
                vec![0.0; cfg.n_nodes],
                Some(FaultRuntime {
                    plan,
                    delivery,
                    validators,
                    keys,
                    last_completion: vec![-1.0; n_pairs],
                    reputation: match cfg.node_lifecycle {
                        NodeLifecycle::Eager => ReputationStore::dense(cfg.n_nodes),
                        NodeLifecycle::Lazy => ReputationStore::sparse(cfg.n_nodes),
                    },
                    probe_invalid: ProbeInvalidation::new(cfg.n_nodes),
                    epoch: (cfg.settlement == SettlementMode::Epoch)
                        .then(|| EpochState::new(n_pairs)),
                    adversary,
                    adv: AdversaryCounters::default(),
                    bank: (cfg.bank_durability == BankDurability::Wal)
                        .then(|| BankDurabilityState::new(cfg.settlement == SettlementMode::Epoch)),
                }),
            )
        } else {
            (Vec::new(), None)
        };
        SimulationRun {
            quality: EdgeQuality::new(Weights::with_reputation(
                cfg.weights.0,
                cfg.weights.1,
                cfg.reputation_weight,
            )),
            probes,
            histories,
            bundles: vec![BundleAccounting::new(); n_pairs],
            trackers: vec![ReformationTracker::new(); n_pairs],
            attacks: vec![IntersectionAttack::new(); n_pairs],
            initiator_costs: vec![0.0; n_pairs],
            routing_rng: streams.stream("routing"),
            probe_rng: streams.stream("probing"),
            streams,
            connections: 0,
            scratch: RouteScratch::new(),
            stale_scratch: Vec::new(),
            member_mask: vec![false; cfg.n_nodes],
            crashed_until,
            fault,
            slab: (cfg.node_lifecycle == NodeLifecycle::Lazy)
                .then(|| NodeSlab::new(cfg.evict_idle_ticks, cfg.probe_period)),
            windows: (cfg.window_len > 0.0)
                .then(|| WindowCollector::new(cfg.window_len, cfg.window_warmup)),
            cfg,
            world,
        }
    }

    /// The next exponential arrival gap for `pair` (minutes), drawn from
    /// the pair's position-keyed stream: draw `k` is a pure function of
    /// `(master seed, pair, k)`, so the arrival process is deterministic
    /// and resumes mid-sequence from the per-pair arrival count alone.
    fn arrival_gap(streams: &StreamFactory, pair: usize, k: u64, rate: f64) -> f64 {
        let mut rng = streams.stream_indexed2("workload/arrival", pair as u64, k);
        let u: f64 = rng.random_range(0.0..1.0);
        -(1.0 - u).ln() / rate
    }

    /// Convenience: generate the world, run to the horizon, aggregate.
    #[must_use]
    pub fn execute(cfg: ScenarioConfig) -> RunResult {
        let horizon = SimTime::new(cfg.churn.horizon);
        let world = World::generate(&cfg);
        let mut run = SimulationRun::new(cfg, world);
        let mut engine = Engine::new();
        run.schedule_all(&mut engine);
        engine.run(&mut run, Some(horizon));
        run.finish()
    }

    /// Schedules every probe-related event and transmission. Probe tick `k`
    /// fires at `k·T` (computed as a product, so eager tick times agree
    /// exactly with the lazy estimator's closed-form reconstruction): in
    /// eager mode a global [`Ev::Probe`] per tick, in lazy mode only
    /// per-node [`Ev::Maintain`] events at the ticks a replacement falls
    /// due.
    pub fn schedule_all(&self, engine: &mut Engine<Ev>) {
        match &self.probes {
            ProbeState::Eager(_) => {
                let mut k = 1u64;
                loop {
                    let t = k as f64 * self.cfg.probe_period;
                    if t >= self.cfg.churn.horizon {
                        break;
                    }
                    engine.schedule_at(SimTime::new(t), Ev::Probe);
                    k += 1;
                }
            }
            ProbeState::Lazy(set) => {
                // Maintenance events keep a node's cell warm at the ticks a
                // replacement falls due, but they are value-invisible: a
                // query's catch-up ([`sync_cell_slow`]) segments at every
                // due tick regardless of whether a `Maintain` ever fired.
                // The lazy lifecycle therefore schedules none at all —
                // touching all N nodes here would defeat O(active) startup.
                if self.cfg.node_lifecycle == NodeLifecycle::Eager {
                    for i in 0..self.cfg.n_nodes {
                        if let Some(t) = set.next_due_after(NodeId(i), 0.0) {
                            engine.schedule_at(SimTime::new(t), Ev::Maintain(i));
                        }
                    }
                }
            }
        }
        match self.cfg.workload {
            WorkloadMode::Closed => {
                for (pair, wl) in self.world.pairs.iter().enumerate() {
                    for (conn, &time) in wl.times.iter().enumerate() {
                        engine.schedule_at(
                            SimTime::new(time),
                            Ev::Transmit {
                                pair,
                                conn: conn as u32,
                            },
                        );
                    }
                }
            }
            WorkloadMode::Open => {
                // Seed each pair's Poisson process: first arrival at
                // `warmup + gap_0`. Subsequent arrivals are chained by the
                // Arrival handler, drawing gap `k` at arrival `k - 1`.
                for pair in 0..self.world.pairs.len() {
                    let gap = Self::arrival_gap(&self.streams, pair, 0, self.cfg.open_arrival_rate);
                    let t = self.cfg.warmup + gap;
                    if t < self.cfg.churn.horizon {
                        engine.schedule_at(SimTime::new(t), Ev::Arrival { pair });
                    }
                }
            }
        }
        // Epoch boundaries land at exact multiples of the epoch length,
        // like probe ticks; the window after the last in-horizon boundary
        // flushes at `finish`. Nothing is scheduled in per-bundle mode, so
        // the default event stream is untouched.
        if self.fault.as_ref().is_some_and(|fr| fr.epoch.is_some()) {
            let mut k = 1u64;
            loop {
                let t = k as f64 * self.cfg.epoch_length;
                if t >= self.cfg.churn.horizon {
                    break;
                }
                engine.schedule_at(SimTime::new(t), Ev::EpochSettle);
                k += 1;
            }
        }
        // Whitewash rejoins fire at the plan's precomputed schedule (node
        // order, so same-instant rejoins tie-break deterministically).
        // Nothing is scheduled when the strategy is off.
        if let Some(plan) = self.fault.as_ref().and_then(|fr| fr.adversary.as_ref()) {
            for (node, t) in plan.whitewash_events() {
                if t < self.cfg.churn.horizon {
                    engine.schedule_at(SimTime::new(t), Ev::Whitewash(node));
                }
            }
        }
    }

    fn handle_probe(&mut self, now: SimTime) {
        let ProbeState::Eager(probes) = &mut self.probes else {
            // Lazy mode schedules no global probe ticks.
            return;
        };
        let schedules = &self.world.schedules;
        for (i, probe) in probes.iter_mut().enumerate() {
            // Only live nodes probe.
            if !schedules[i].is_up(now) {
                continue;
            }
            match self.cfg.probe_rng {
                ProbeRngMode::PerNode => {
                    probe.probe_round_seeded(&self.streams, |v| schedules[v.index()].is_up(now));
                    if let Some(threshold) = self.cfg.neighbor_replacement_rounds {
                        probe.maintain_seeded(&self.streams, threshold, self.cfg.n_nodes);
                    }
                }
                ProbeRngMode::SharedLegacy => {
                    probe.probe_round(|v| schedules[v.index()].is_up(now), &mut self.probe_rng);
                    if let Some(threshold) = self.cfg.neighbor_replacement_rounds {
                        maintain_neighbors_legacy(
                            probe,
                            &mut self.probe_rng,
                            threshold,
                            self.cfg.n_nodes,
                            &mut self.stale_scratch,
                            &mut self.member_mask,
                        );
                    }
                }
            }
        }
    }

    /// Lazy-mode maintenance: sync the node through `now` (applying the
    /// replacement that fell due), then schedule its next due tick.
    fn handle_maintain(&mut self, engine: &mut Engine<Ev>, now: SimTime, node: usize) {
        let ProbeState::Lazy(set) = &self.probes else {
            return;
        };
        if let Some(t) = set.next_due_after(NodeId(node), now.minutes()) {
            engine.schedule_at(SimTime::new(t), Ev::Maintain(node));
        }
    }

    /// An open-workload arrival: record the request as connection
    /// `times.len()` of the pair (its send time is the arrival time, which
    /// is what delivery latency is measured against), chain the next
    /// arrival while the pair is under its connection cap, and start the
    /// transmission immediately.
    fn handle_arrival(&mut self, engine: &mut Engine<Ev>, now: SimTime, pair: usize) {
        let conn = self.world.pairs[pair].times.len() as u32;
        self.world.pairs[pair].times.push(now.minutes());
        if let Some(fr) = self.fault.as_mut() {
            fr.delivery.record_scheduled(1);
        }
        let count = self.world.pairs[pair].times.len();
        if count < self.cfg.max_connections as usize {
            let gap = Self::arrival_gap(
                &self.streams,
                pair,
                count as u64,
                self.cfg.open_arrival_rate,
            );
            let t = now.minutes() + gap;
            if t < self.cfg.churn.horizon {
                engine.schedule_at(SimTime::new(t), Ev::Arrival { pair });
            }
        }
        self.handle_transmit(engine, now, pair, conn, 0);
    }

    fn handle_transmit(
        &mut self,
        engine: &mut Engine<Ev>,
        now: SimTime,
        pair: usize,
        conn: u32,
        attempt: u32,
    ) {
        if attempt == 0 {
            if let Some(w) = self.windows.as_mut() {
                w.record_scheduled(now.minutes());
            }
        }
        if let (Some(slab), ProbeState::Lazy(set)) = (&mut self.slab, &self.probes) {
            slab.maybe_sweep(set, now.minutes());
        }
        // take/put-back keeps the fault state out of `self` while the
        // faulty path mutably borrows the rest of the run.
        let Some(mut fr) = self.fault.take() else {
            self.transmit_plain(now, pair, conn);
            return;
        };
        self.transmit_with_faults(engine, now, pair, conn, attempt, &mut fr);
        self.fault = Some(fr);
    }

    /// The fault-free transmission: bit-identical to the pre-fault-layer
    /// code path (the crash overlay is empty, commit happens inline).
    fn transmit_plain(&mut self, now: SimTime, pair: usize, conn: u32) {
        let wl = &self.world.pairs[pair];
        let contract = Contract::from_tau(BundleId(pair as u64), wl.responder, wl.pf, self.cfg.tau);
        let priors = self.bundles[pair].connections();
        let view = RunView {
            schedules: &self.world.schedules,
            probes: &self.probes,
            costs: &self.world.costs,
            crashed: &self.crashed_until,
            reputation: None,
            invalid: None,
            age_discount: None,
            now,
        };
        let outcome = form_connection_with_scratch(
            &mut self.scratch,
            wl.initiator,
            conn,
            &contract,
            priors,
            &view,
            &mut self.histories.exclusive(),
            &self.world.kinds,
            &self.quality,
            self.cfg.good_strategy,
            self.cfg.adversary_strategy,
            &self.cfg.policy,
            &mut self.routing_rng,
        );
        self.connections += 1;
        self.initiator_costs[pair] += outcome.initiator_cost;
        self.trackers[pair].record(&outcome.edges(wl.initiator, wl.responder));
        if let Some(w) = self.windows.as_mut() {
            w.record_delivered(now.minutes());
            w.record_payoff(
                now.minutes(),
                outcome.forwarders.len() as f64 * self.world.pairs[pair].pf,
            );
        }
        self.observe_attack(pair, &outcome.forwarders, now);
        self.bundles[pair].record_connection(&outcome.forwarders, &outcome.hop_costs);
    }

    /// Intersection attack: if any malicious node sat on the path, the
    /// adversary observes the set of currently-live nodes.
    fn observe_attack(&mut self, pair: usize, forwarders: &[NodeId], now: SimTime) {
        let observed = forwarders
            .iter()
            .any(|f| !self.world.kinds[f.index()].is_good());
        if observed {
            // The attacker intersects the active sets it can see. Its own
            // colluders are never initiator candidates (it knows them), so
            // only good nodes enter the observation.
            let active: HashSet<NodeId> = (0..self.cfg.n_nodes)
                .map(NodeId)
                .filter(|n| {
                    self.world.kinds[n.index()].is_good()
                        && self.world.schedules[n.index()].is_up(now)
                })
                .collect();
            self.attacks[pair].observe(&active);
        }
    }

    /// One transmission attempt under fault injection: form the path, walk
    /// the faults forward (crash / drop / delay) and the confirmation
    /// backward (cheaters), then either complete the connection or schedule
    /// a retry with exponential backoff.
    fn transmit_with_faults(
        &mut self,
        engine: &mut Engine<Ev>,
        now: SimTime,
        pair: usize,
        conn: u32,
        attempt: u32,
        fr: &mut FaultRuntime,
    ) {
        let adaptive = fr.adaptive();
        let wl = &self.world.pairs[pair];
        let contract = Contract::from_tau(BundleId(pair as u64), wl.responder, wl.pf, self.cfg.tau);
        let priors = self.bundles[pair].connections();
        let view = RunView {
            schedules: &self.world.schedules,
            probes: &self.probes,
            costs: &self.world.costs,
            crashed: &self.crashed_until,
            reputation: adaptive.then(|| fr.reputation.get(wl.initiator.index())),
            invalid: adaptive.then_some(&fr.probe_invalid),
            age_discount: fr
                .adversary
                .as_ref()
                .filter(|p| p.config().whitewash_age_discount),
            now,
        };
        let pending = form_connection_pending(
            &mut self.scratch,
            wl.initiator,
            &contract,
            priors,
            &view,
            &self.histories.exclusive(),
            &self.world.kinds,
            &self.quality,
            self.cfg.good_strategy,
            self.cfg.adversary_strategy,
            &self.cfg.policy,
            &mut self.routing_rng,
        );
        let timeout = fr.plan.config().retry_timeout;
        let forwarders = &pending.outcome().forwarders;
        let n_edges = forwarders.len() + 1;
        let faults =
            fr.plan
                .sample_transmission(pair as u64, u64::from(conn), u64::from(attempt), n_edges);

        // Forward walk: edge i carries the payload from position i to i+1.
        let mut failure: Option<AttemptFailure> = None;
        let mut suspect: Option<NodeId> = None;
        let mut cum_delay = 0.0f64;
        for (i, ef) in faults.edges.iter().enumerate() {
            // The sender of edge i >= 1 is forwarder f_i; the initiator
            // (edge 0's sender) never crashes out of its own transmission.
            if ef.crash && i >= 1 {
                let v = forwarders[i - 1];
                let end = self.world.schedules[v.index()]
                    .session_end_at(now)
                    .unwrap_or_else(|| now.minutes());
                let slot = &mut self.crashed_until[v.index()];
                *slot = slot.max(end);
                failure = Some(AttemptFailure::Crash);
                suspect = Some(v);
                break;
            }
            if ef.dropped {
                failure = Some(AttemptFailure::Drop);
                suspect = edge_suspect(forwarders, i);
                break;
            }
            cum_delay += ef.delay;
            if cum_delay > timeout {
                failure = Some(AttemptFailure::Timeout);
                suspect = edge_suspect(forwarders, i);
                break;
            }
            // Free riders ghost their forwarding duty: the payload reaches
            // the receiving forwarder of edge i and dies there — after the
            // edge's own faults had their chance, before the next edge.
            // To the initiator this is indistinguishable from a drop.
            if i < forwarders.len()
                && fr
                    .adversary
                    .as_ref()
                    .is_some_and(|p| p.is_free_rider(forwarders[i].index()))
            {
                fr.adv.free_rider_refusals += 1;
                failure = Some(AttemptFailure::Drop);
                suspect = Some(forwarders[i]);
                break;
            }
        }

        // Reverse walk: the confirmation passes f_n, …, f_1. A cheater
        // either swallows it (nothing upstream learns of the connection)
        // or corrupts every receipt strictly downstream of itself.
        let mut corrupt_from: Option<usize> = None;
        if failure.is_none() {
            for p in (1..=forwarders.len()).rev() {
                if !fr.plan.is_cheater(forwarders[p - 1].index()) {
                    continue;
                }
                match fr.plan.cheat_action(
                    pair as u64,
                    u64::from(conn),
                    u64::from(attempt),
                    p as u64,
                ) {
                    CheatAction::DropConfirmation => {
                        failure = Some(AttemptFailure::ConfirmationDropped(p));
                        suspect = Some(forwarders[p - 1]);
                        break;
                    }
                    CheatAction::CorruptReceipts => corrupt_from = Some(p),
                }
            }
        }

        match failure {
            None => self.complete_connection(now, pair, conn, attempt, pending, corrupt_from, fr),
            Some(kind) => {
                // §2.2: no confirmation, no history — except the suffix a
                // swallowed confirmation actually traversed.
                if let AttemptFailure::ConfirmationDropped(p) = kind {
                    pending.commit_suffix(
                        p,
                        contract.bundle,
                        conn,
                        &mut self.histories.exclusive(),
                    );
                }
                // Adaptive response: charge the failure to the suspect's
                // ledger and invalidate its probe-derived availability —
                // immediately, not at session-end recovery. A crash masks
                // until one probe period past the truncated session's end
                // (the next round that could re-vouch for it); a drop or
                // timeout masks for one probe period from now.
                if adaptive {
                    if let Some(v) = suspect {
                        let initiator = self.world.pairs[pair].initiator;
                        let rep = fr.reputation.get_mut(initiator.index());
                        let horizon = match kind {
                            AttemptFailure::Crash => {
                                rep.record_drop(v);
                                self.crashed_until[v.index()] + self.cfg.probe_period
                            }
                            AttemptFailure::Drop => {
                                rep.record_drop(v);
                                now.minutes() + self.cfg.probe_period
                            }
                            AttemptFailure::Timeout | AttemptFailure::ConfirmationDropped(_) => {
                                rep.record_timeout(v);
                                now.minutes() + self.cfg.probe_period
                            }
                        };
                        fr.probe_invalid.invalidate(v.index(), horizon);
                    }
                }
                if attempt < fr.plan.config().max_retries {
                    fr.delivery.record_retry();
                    if let Some(w) = self.windows.as_mut() {
                        w.record_retry(now.minutes());
                    }
                    // Static: exponential backoff on the same schedule every
                    // retry. Adaptive: once the suspect is suppressed the
                    // next formation excludes it, so escalate straight to
                    // reformation with a flat backoff instead of waiting
                    // out the exponential schedule.
                    let reform_now = adaptive
                        && suspect.is_some_and(|v| {
                            let initiator = self.world.pairs[pair].initiator;
                            fr.reputation.get(initiator.index()).is_suppressed(v)
                        });
                    let backoff = if reform_now {
                        timeout
                    } else {
                        timeout * f64::from(2u32.pow(attempt))
                    };
                    engine.schedule_in(
                        backoff,
                        Ev::Retry {
                            pair,
                            conn,
                            attempt: attempt + 1,
                        },
                    );
                } else {
                    fr.delivery.record_abandoned();
                }
            }
        }
    }

    /// The confirmation reached `I`: commit history, settle accounting and
    /// deposit the §5 evidence (manifest + receipts, corrupted downstream
    /// of `corrupt_from` when a cheater acted).
    #[allow(clippy::too_many_arguments)]
    fn complete_connection(
        &mut self,
        now: SimTime,
        pair: usize,
        conn: u32,
        attempt: u32,
        pending: PendingConnection,
        corrupt_from: Option<usize>,
        fr: &mut FaultRuntime,
    ) {
        let wl = &self.world.pairs[pair];
        let responder = wl.responder;
        let bundle = BundleId(pair as u64);
        pending.commit(bundle, conn, &mut self.histories.exclusive());
        let outcome = pending.into_outcome();
        self.connections += 1;
        self.initiator_costs[pair] += outcome.initiator_cost;
        self.trackers[pair].record(&outcome.edges(wl.initiator, wl.responder));
        self.observe_attack(pair, &outcome.forwarders, now);
        self.bundles[pair].record_connection(&outcome.forwarders, &outcome.hop_costs);

        let scheduled = self.world.pairs[pair].times[conn as usize];
        fr.delivery
            .record_delivered(now.minutes() - scheduled, attempt > 0);
        fr.last_completion[pair] = now.minutes();
        if let Some(w) = self.windows.as_mut() {
            w.record_delivered(now.minutes());
            w.record_payoff(
                now.minutes(),
                outcome.forwarders.len() as f64 * self.world.pairs[pair].pf,
            );
        }

        // §5 evidence: the responder's MAC'd path manifest plus per-hop
        // receipts; a corrupting cheater destroys every receipt strictly
        // downstream of itself but keeps its own intact.
        let key = &fr.keys[pair];
        let account = |n: NodeId| AccountId(n.index() as u64);
        let mut hops: Vec<AccountId> = outcome.forwarders.iter().map(|&f| account(f)).collect();
        // Clique forgery: a colluding responder holds the bundle key, so
        // it can pad its own manifest with clique mates that never
        // forwarded and issue them genuine receipts. The initiator's
        // private record of who it actually handed the payload to
        // (`observed_hops`) is the one thing the responder cannot forge —
        // attached only when the cross-confirmation defense is on, so the
        // defenseless evidence stream is byte-identical to the attack-free
        // one apart from the padding itself.
        let mut observed_hops = None;
        if let Some(plan) = fr.adversary.as_ref() {
            if let Some(c) = plan
                .clique_of(responder.index())
                .filter(|_| plan.forges_confirmation(pair as u64, u64::from(conn)))
            {
                if plan.config().clique_cross_check {
                    observed_hops = Some(hops.clone());
                }
                for &mate in plan.clique_members(c) {
                    let a = AccountId(mate as u64);
                    if mate != responder.index() && !hops.contains(&a) {
                        hops.push(a);
                        fr.adv.phantom_injected += 1;
                    }
                }
            }
        }
        let receipts = hops
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let mut r = Receipt::issue(key, pair as u64, conn, (i + 1) as u32, a);
                if corrupt_from.is_some_and(|cf| i + 1 > cf) {
                    r.mac[0] ^= 0x55;
                }
                r
            })
            .collect();
        let manifest = PathManifest::issue(key, pair as u64, conn, hops);
        fr.validators[pair].add_connection(ConnectionEvidence {
            manifest,
            receipts,
            observed_hops,
        });

        // Per-bundle durability: the durable bank settles each validated
        // connection as its own WAL flush (epoch mode instead batches the
        // whole window at the boundary, inside `settle_epoch_window`).
        if self.cfg.settlement == SettlementMode::PerBundle {
            if let Some(bank) = fr.bank.as_mut() {
                let idx = fr.validators[pair].connections() - 1;
                let report = fr.validators[pair].validate_range(idx, idx + 1);
                bank.settle_connection(&report, &fr.plan);
            }
        }

        // In-run cheater feedback (adaptive only): when receipts came back
        // corrupted, replay just this connection's evidence now instead of
        // waiting for settlement. The §5 intact-prefix rule pins the
        // corruption on one forwarder; flagging it in the initiator's
        // ledger suppresses it from this run's subsequent path formations.
        if fr.adaptive() && corrupt_from.is_some() {
            let initiator = self.world.pairs[pair].initiator;
            let idx = fr.validators[pair].connections() - 1;
            if let Some(cheater) = fr.validators[pair].flag_connection(idx) {
                fr.reputation
                    .get_mut(initiator.index())
                    .flag_cheater(NodeId(cheater.0 as usize));
            }
        }
    }

    /// Settles the fault layer: §5 validation over every bundle's evidence,
    /// the aggregate payment shortfall, the audit trail of detected-vs-paid
    /// discrepancies, and the bank-outage settlement delay.
    fn settle_faults(fr: &FaultRuntime) -> (f64, f64, Vec<usize>, u64, u64) {
        let mut expected = 0u64;
        let mut validated = 0u64;
        let mut phantom_flagged = 0u64;
        let mut flagged: BTreeSet<usize> = BTreeSet::new();
        let mut audit = AuditLog::new();
        for (pair, validator) in fr.validators.iter().enumerate() {
            let report = validator.validate();
            expected += report.expected_instances;
            validated += report.validated_instances;
            phantom_flagged += report.phantom_instances;
            flagged.extend(report.flagged.iter().map(|a| a.0 as usize));
            if report.validated_instances < report.expected_instances {
                audit.append(AuditEvent::Discrepancy {
                    bundle: pair as u64,
                    expected: report.expected_instances,
                    validated: report.validated_instances,
                    flagged: report.flagged.len() as u64,
                });
            }
        }
        assert!(
            audit.verify_chain(),
            "settlement audit hash chain failed verification"
        );
        let shortfall = if expected == 0 {
            0.0
        } else {
            1.0 - validated as f64 / expected as f64
        };
        let delays: Vec<f64> = fr
            .last_completion
            .iter()
            .filter(|&&t| t >= 0.0)
            .map(|&t| fr.plan.next_bank_up(t) - t)
            .collect();
        let settlement_delay = if delays.is_empty() {
            0.0
        } else {
            delays.iter().sum::<f64>() / delays.len() as f64
        };
        (
            shortfall,
            settlement_delay,
            flagged.into_iter().collect(),
            audit.len() as u64,
            phantom_flagged,
        )
    }

    /// Epoch-mode counterpart of [`SimulationRun::settle_faults`]: the
    /// same §5 aggregates, read from the per-window accumulation instead
    /// of one final validation pass. The windows partition each pair's
    /// evidence, so shortfall, flags and the discrepancy count equal the
    /// per-bundle settlement exactly. Only the delay model differs: funds
    /// leave the bank at the first epoch boundary at or after a pair's
    /// last completion, further delayed by any bank outage covering that
    /// boundary — an outage stalls an epoch, not a bundle.
    fn settle_epochs(
        fr: &FaultRuntime,
        es: &EpochState,
        epoch_length: f64,
    ) -> (f64, f64, Vec<usize>, u64, u64) {
        let expected: u64 = es.expected.iter().sum();
        let validated: u64 = es.validated.iter().sum();
        let shortfall = if expected == 0 {
            0.0
        } else {
            1.0 - validated as f64 / expected as f64
        };
        let discrepancies = es
            .expected
            .iter()
            .zip(&es.validated)
            .filter(|(e, v)| v < e)
            .count() as u64;
        let delays: Vec<f64> = fr
            .last_completion
            .iter()
            .filter(|&&t| t >= 0.0)
            .map(|&t| {
                let boundary = (t / epoch_length).ceil() * epoch_length;
                fr.plan.next_bank_up(boundary) - t
            })
            .collect();
        let settlement_delay = if delays.is_empty() {
            0.0
        } else {
            delays.iter().sum::<f64>() / delays.len() as f64
        };
        (
            shortfall,
            settlement_delay,
            es.flagged.iter().copied().collect(),
            discrepancies,
            es.phantom_flagged,
        )
    }

    /// Settles all bundles into the aggregate result.
    #[must_use]
    pub fn finish(mut self) -> RunResult {
        // Epoch mode: flush the tail window (evidence accrued after the
        // last in-horizon boundary) before aggregating.
        if let Some(fr) = self.fault.as_mut() {
            fr.settle_epoch_window();
        }
        let n = self.cfg.n_nodes;
        // Resident-state metrics, through the same footprint model in every
        // representation so probe modes agree exactly under each lifecycle.
        let (peak_materialized_nodes, node_evictions, probe_bytes) = match &self.probes {
            ProbeState::Eager(probes) => {
                let bytes: usize = probes
                    .iter()
                    .map(|p| idpa_overlay::cell_footprint(p.neighbors().len()))
                    .sum();
                (probes.len(), 0, bytes)
            }
            ProbeState::Lazy(set) => {
                let r = set.residency();
                (r.peak, r.evictions, r.peak_bytes)
            }
        };
        let slab_bytes = probe_bytes
            + self
                .fault
                .as_ref()
                .map_or(0, |fr| fr.reputation.approx_bytes());
        let cp = self.world.costs.participation_cost();
        let mut payoff = vec![0.0f64; n];
        let mut set_sizes = Vec::with_capacity(self.bundles.len());
        let mut lengths = Vec::with_capacity(self.bundles.len());
        let mut qualities = Vec::with_capacity(self.bundles.len());

        let mut good_payoffs: Vec<f64> = Vec::new();
        let mut malicious_payoffs: Vec<f64> = Vec::new();
        for (pair, bundle) in self.bundles.iter().enumerate() {
            if bundle.connections() == 0 {
                continue;
            }
            let wl = &self.world.pairs[pair];
            let pr = self.cfg.tau * wl.pf;
            for (node, p) in bundle.payoffs(wl.pf, pr, cp) {
                payoff[node.index()] += p;
                if self.world.kinds[node.index()].is_good() {
                    good_payoffs.push(p);
                } else {
                    malicious_payoffs.push(p);
                }
            }
            set_sizes.push(bundle.forwarder_set_size() as f64);
            lengths.push(bundle.average_path_length());
            qualities.push(metrics::path_quality(
                bundle.average_path_length(),
                bundle.forwarder_set_size(),
            ));
        }

        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let avg_good_payoff = mean(&good_payoffs);
        let avg_forwarder_set = mean(&set_sizes);

        let exposure = self
            .attacks
            .iter()
            .filter(|a| a.observations() > 0)
            .filter(|a| a.exposed())
            .count();
        let observed_attacks = self.attacks.iter().filter(|a| a.observations() > 0).count();
        // Anonymity is measured over the attacker's candidate pool: the
        // good (non-colluding) nodes.
        let n_good = self
            .world
            .kinds
            .iter()
            .filter(|k| k.is_good())
            .count()
            .max(1);
        let degrees: Vec<f64> = self
            .attacks
            .iter()
            .map(|a| {
                let c = if a.observations() == 0 {
                    n_good
                } else {
                    a.candidate_count()
                };
                metrics::candidate_set_degree(c.min(n_good), n_good)
            })
            .collect();

        // Durable-bank end-of-run summary (needs `&mut`, so it runs before
        // the shared borrows below): final full invariant sweep, replica
        // agreement check, audit-chain verification, WAL accounting.
        let bank_outcome = self
            .fault
            .as_mut()
            .and_then(|fr| fr.bank.as_mut())
            .map(BankDurabilityState::finalize);
        if let Some(out) = &bank_outcome {
            assert!(
                out.audit_ok,
                "durable bank audit hash chain failed verification"
            );
        }

        let (
            delivery_ratio,
            retries_per_message,
            reformation_latency,
            payment_shortfall,
            settlement_delay,
            flagged_cheaters,
            injected_cheaters,
            audit_discrepancies,
            clique_phantom_flagged,
        ) = match &self.fault {
            None => (1.0, 0.0, 0.0, 0.0, 0.0, Vec::new(), Vec::new(), 0, 0),
            Some(fr) => {
                let (shortfall, settlement_delay, flagged, discrepancies, phantom_flagged) =
                    match &fr.epoch {
                        None => Self::settle_faults(fr),
                        Some(es) => Self::settle_epochs(fr, es, self.cfg.epoch_length),
                    };
                (
                    fr.delivery.delivery_ratio(),
                    fr.delivery.retries_per_message(),
                    fr.delivery.reformation_latency(),
                    shortfall,
                    settlement_delay,
                    flagged,
                    fr.plan.cheaters(),
                    discrepancies,
                    phantom_flagged,
                )
            }
        };

        // Per-class adversary metrics. All defaults (empty / zero) when no
        // strategy is active — the existing result fingerprints exclude
        // these fields, so zero-rate runs keep their pins.
        let adv = self
            .fault
            .as_ref()
            .map_or(AdversaryCounters::default(), |fr| fr.adv);
        let free_riders: Vec<usize> = self
            .fault
            .as_ref()
            .and_then(|fr| fr.adversary.as_ref())
            .map(|p| p.free_riders())
            .unwrap_or_default();
        let (free_rider_payoff, compliant_payoff) = if free_riders.is_empty() {
            (0.0, 0.0)
        } else {
            let mut is_fr = vec![false; n];
            for &i in &free_riders {
                is_fr[i] = true;
            }
            let rider: Vec<f64> = free_riders.iter().map(|&i| payoff[i]).collect();
            let compliant: Vec<f64> = (0..n)
                .filter(|&i| self.world.kinds[i].is_good() && !is_fr[i])
                .map(|i| payoff[i])
                .collect();
            (mean(&rider), mean(&compliant))
        };
        let reputation_evasion_rate = if adv.whitewash_events == 0 {
            0.0
        } else {
            adv.whitewash_evasions as f64 / adv.whitewash_events as f64
        };
        let clique_payout_leakage = if adv.phantom_injected == 0 {
            0.0
        } else {
            adv.phantom_injected.saturating_sub(clique_phantom_flagged) as f64
                / adv.phantom_injected as f64
        };

        let (
            epochs_settled,
            settlement_ops_per_epoch,
            epoch_netting_ratio,
            batch_verify_throughput,
        ) = match self.fault.as_ref().and_then(|fr| fr.epoch.as_ref()) {
            None => (0, 0.0, 0.0, 0.0),
            Some(es) => (
                es.epochs_settled,
                if es.epochs_settled == 0 {
                    0.0
                } else {
                    (es.payout_ops + es.batch_ops) as f64 / es.epochs_settled as f64
                },
                if es.payout_ops == 0 {
                    0.0
                } else {
                    es.receipts_netted as f64 / es.payout_ops as f64
                },
                if es.batch_ops == 0 {
                    0.0
                } else {
                    es.receipts_netted as f64 / es.batch_ops as f64
                },
            ),
        };

        let (windowed_delivery_ratio, windowed_payoff_rate, windowed_retry_rate) =
            match &self.windows {
                None => (Vec::new(), Vec::new(), Vec::new()),
                Some(w) => (w.delivery_ratios(), w.payoff_rates(), w.retry_rates()),
            };

        RunResult {
            avg_good_payoff,
            avg_forwarder_set,
            avg_path_length: mean(&lengths),
            avg_path_quality: mean(&qualities),
            routing_efficiency: metrics::routing_efficiency(avg_good_payoff, avg_forwarder_set),
            new_edge_fraction: mean(
                &self
                    .trackers
                    .iter()
                    .filter(|t| t.distinct_edges() > 0)
                    .map(ReformationTracker::new_edge_fraction)
                    .collect::<Vec<_>>(),
            ),
            reformation_rate: mean(
                &self
                    .trackers
                    .iter()
                    .filter(|t| t.distinct_edges() > 0)
                    .map(ReformationTracker::reformation_rate)
                    .collect::<Vec<_>>(),
            ),
            connections: self.connections,
            attack_exposure_rate: if observed_attacks == 0 {
                0.0
            } else {
                exposure as f64 / observed_attacks as f64
            },
            avg_anonymity_degree: mean(&degrees),
            good_payoffs,
            malicious_payoffs,
            node_totals: payoff,
            delivery_ratio,
            retries_per_message,
            reformation_latency,
            payment_shortfall,
            settlement_delay,
            flagged_cheaters,
            injected_cheaters,
            audit_discrepancies,
            peak_materialized_nodes,
            node_evictions,
            slab_bytes,
            epochs_settled,
            settlement_ops_per_epoch,
            epoch_netting_ratio,
            batch_verify_throughput,
            windowed_delivery_ratio,
            windowed_payoff_rate,
            windowed_retry_rate,
            free_riders,
            free_rider_refusals: adv.free_rider_refusals,
            free_rider_payoff,
            compliant_payoff,
            whitewash_events: adv.whitewash_events,
            reputation_evasion_rate,
            clique_phantom_instances: adv.phantom_injected,
            clique_phantom_flagged,
            clique_payout_leakage,
            bank_wal_records: bank_outcome.map_or(0, |o| o.wal_records),
            bank_wal_bytes: bank_outcome.map_or(0, |o| o.wal_bytes),
            bank_crashes: bank_outcome.map_or(0, |o| o.counters.crashes),
            bank_torn_tails: bank_outcome.map_or(0, |o| o.counters.torn_tails),
            bank_records_replayed: bank_outcome.map_or(0, |o| o.counters.records_replayed),
            bank_monitor_checks: bank_outcome.map_or(0, |o| o.counters.monitor_checks),
            bank_monitor_violations: bank_outcome.map_or(0, |o| o.counters.monitor_violations),
            bank_ledger_digest: bank_outcome.map_or(0, |o| o.ledger_digest),
            audit_chain_verified: bank_outcome.is_none_or(|o| o.audit_ok),
            interrupted: false,
        }
    }

    /// A whitewash rejoin: archives every active ledger entry against the
    /// node (the fresh identity reads clean; the evidence survives in the
    /// retired archives) and clears its probe-distrust mask — the distrust
    /// was earned by the shed identity. Counted as an evasion when at
    /// least one ledger was actively suppressing the node.
    fn handle_whitewash(&mut self, node: usize) {
        let Some(fr) = self.fault.as_mut() else {
            return;
        };
        if fr.adversary.is_none() {
            return;
        }
        let (archived, evaded) = fr.reputation.whitewash_node(NodeId(node));
        fr.adv.whitewash_events += 1;
        fr.adv.whitewash_archived += archived as u64;
        if evaded > 0 {
            fr.adv.whitewash_evasions += 1;
        }
        fr.probe_invalid.forgive(node);
    }
}

/// The pre-PR-2 neighbor-maintenance pass, kept for
/// [`ProbeRngMode::SharedLegacy`] reproducibility: replaces neighbors
/// silent for `threshold`+ rounds with candidates drawn from the shared
/// probe stream. `stale` and `mask` are caller-owned scratch (the mask must
/// be all-false on entry, sized to `n_nodes`; it is restored to all-false
/// on exit), so the pass allocates nothing and candidate rejection is O(1)
/// instead of an O(d) `contains` scan.
fn maintain_neighbors_legacy(
    probe: &mut ProbeEstimator,
    rng: &mut Xoshiro256StarStar,
    threshold: u64,
    n_nodes: usize,
    stale: &mut Vec<NodeId>,
    mask: &mut [bool],
) {
    stale.clear();
    stale.extend(
        probe
            .neighbors()
            .iter()
            .copied()
            .filter(|&v| probe.rounds_since_alive(v).is_some_and(|r| r >= threshold)),
    );
    if stale.is_empty() {
        return;
    }
    for v in probe.neighbors() {
        mask[v.index()] = true;
    }
    for &old in stale.iter() {
        // Draw a replacement: not self, not already a neighbor.
        let candidate = (0..16).find_map(|_| {
            let c = NodeId(rng.random_range(0..n_nodes));
            (c != probe.owner() && !mask[c.index()]).then_some(c)
        });
        if let Some(new) = candidate {
            if probe.replace_neighbor(old, new) {
                mask[old.index()] = false;
                mask[new.index()] = true;
            }
        }
    }
    for v in probe.neighbors() {
        mask[v.index()] = false;
    }
}

impl Process for SimulationRun {
    type Event = Ev;

    fn handle(&mut self, engine: &mut Engine<Ev>, event: Ev) -> idpa_desim::engine::Control {
        let now = engine.now();
        match event {
            Ev::Probe => self.handle_probe(now),
            Ev::Maintain(node) => self.handle_maintain(engine, now, node),
            Ev::Transmit { pair, conn } => self.handle_transmit(engine, now, pair, conn, 0),
            Ev::Retry {
                pair,
                conn,
                attempt,
            } => self.handle_transmit(engine, now, pair, conn, attempt),
            Ev::EpochSettle => {
                if let Some(fr) = self.fault.as_mut() {
                    fr.settle_epoch_window();
                }
            }
            Ev::Arrival { pair } => self.handle_arrival(engine, now, pair),
            Ev::Whitewash(node) => self.handle_whitewash(node),
        }
        idpa_desim::engine::Control::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idpa_core::routing::RoutingStrategy;
    use idpa_core::utility::UtilityModel;

    fn run_with(f: f64, strategy: RoutingStrategy, seed: u64) -> RunResult {
        let cfg = ScenarioConfig {
            adversary_fraction: f,
            good_strategy: strategy,
            ..ScenarioConfig::quick_test(seed)
        };
        SimulationRun::execute(cfg)
    }

    #[test]
    fn run_is_deterministic() {
        let a = run_with(0.1, RoutingStrategy::Utility(UtilityModel::ModelI), 1);
        let b = run_with(0.1, RoutingStrategy::Utility(UtilityModel::ModelI), 1);
        assert_eq!(a.avg_good_payoff, b.avg_good_payoff);
        assert_eq!(a.good_payoffs, b.good_payoffs);
        assert_eq!(a.connections, b.connections);
    }

    #[test]
    fn all_transmissions_form_connections() {
        let r = run_with(0.0, RoutingStrategy::Utility(UtilityModel::ModelI), 2);
        assert_eq!(r.connections, 200);
    }

    #[test]
    fn payoffs_are_mostly_positive_with_paper_benefits() {
        // P_f in [50,100] dwarfs costs, so participating nodes profit.
        let r = run_with(0.0, RoutingStrategy::Utility(UtilityModel::ModelI), 3);
        assert!(r.avg_good_payoff > 0.0, "avg={}", r.avg_good_payoff);
    }

    #[test]
    fn utility_routing_beats_random_on_forwarder_set() {
        // The Fig. 5 headline, at test scale.
        let seed = 4;
        let util = run_with(0.1, RoutingStrategy::Utility(UtilityModel::ModelI), seed);
        let rand = run_with(0.1, RoutingStrategy::Random, seed);
        assert!(
            util.avg_forwarder_set < rand.avg_forwarder_set,
            "utility {} vs random {}",
            util.avg_forwarder_set,
            rand.avg_forwarder_set
        );
    }

    #[test]
    fn utility_routing_reduces_reformations() {
        // Prop. 1, empirically.
        let seed = 5;
        let util = run_with(0.0, RoutingStrategy::Utility(UtilityModel::ModelI), seed);
        let rand = run_with(0.0, RoutingStrategy::Random, seed);
        assert!(
            util.new_edge_fraction < rand.new_edge_fraction,
            "utility {} vs random {}",
            util.new_edge_fraction,
            rand.new_edge_fraction
        );
    }

    #[test]
    fn more_adversaries_reduce_good_payoff() {
        // Figs. 3–4: payoff decreases as f grows (compare extremes to
        // tolerate noise at test scale).
        let strategy = RoutingStrategy::Utility(UtilityModel::ModelI);
        let low = run_with(0.0, strategy, 6);
        let high = run_with(0.6, strategy, 6);
        assert!(
            high.avg_good_payoff < low.avg_good_payoff,
            "f=0: {}, f=0.6: {}",
            low.avg_good_payoff,
            high.avg_good_payoff
        );
    }

    #[test]
    fn path_lengths_within_policy_bound() {
        let r = run_with(0.2, RoutingStrategy::Random, 7);
        assert!(r.avg_path_length <= 8.0);
        assert!(r.avg_path_length > 0.0);
    }

    #[test]
    fn attack_metrics_present_with_adversaries() {
        let r = run_with(0.5, RoutingStrategy::Random, 8);
        assert!(r.avg_anonymity_degree <= 1.0);
        assert!((0.0..=1.0).contains(&r.attack_exposure_rate));
    }

    #[test]
    fn no_adversaries_no_attack_observations() {
        let r = run_with(0.0, RoutingStrategy::Utility(UtilityModel::ModelI), 9);
        assert_eq!(r.attack_exposure_rate, 0.0);
        assert_eq!(r.avg_anonymity_degree, 1.0);
    }

    #[test]
    fn node_totals_cover_all_nodes() {
        let r = run_with(0.3, RoutingStrategy::Utility(UtilityModel::ModelI), 10);
        assert_eq!(r.node_totals.len(), 20);
        // Per-participation samples exist for both populations at f=0.3.
        assert!(!r.good_payoffs.is_empty());
        assert!(!r.malicious_payoffs.is_empty());
    }

    #[test]
    fn neighbor_replacement_changes_neighbor_sets() {
        let base = ScenarioConfig::quick_test(13);
        let static_run = SimulationRun::execute(base);
        let dynamic = SimulationRun::execute(ScenarioConfig {
            neighbor_replacement_rounds: Some(3),
            ..base
        });
        // Both runs complete all transmissions; the replacement policy is
        // behaviour-changing but must not break accounting invariants.
        assert_eq!(static_run.connections, dynamic.connections);
        assert!(dynamic.avg_forwarder_set > 0.0);
        assert!((0.0..=1.0).contains(&dynamic.new_edge_fraction));
    }

    #[test]
    fn epoch_settlement_preserves_economics() {
        use crate::scenario::SettlementMode;
        let mut cfg = ScenarioConfig::quick_test(21);
        cfg.fault.drop_rate = 0.05;
        cfg.fault.crash_rate = 0.02;
        cfg.fault.cheat_fraction = 0.2;
        cfg.fault.bank_downtime = 0.2;
        cfg.fault.bank_outage_mean = 30.0;
        let per_bundle = SimulationRun::execute(cfg);
        let epoch = SimulationRun::execute(ScenarioConfig {
            settlement: SettlementMode::Epoch,
            epoch_length: 120.0,
            ..cfg
        });
        // Economics are mode-invariant: only the delay model and the
        // bank-facing operation counts may differ.
        assert_eq!(per_bundle.good_payoffs, epoch.good_payoffs);
        assert_eq!(per_bundle.node_totals, epoch.node_totals);
        assert_eq!(per_bundle.delivery_ratio, epoch.delivery_ratio);
        assert_eq!(per_bundle.payment_shortfall, epoch.payment_shortfall);
        assert_eq!(per_bundle.flagged_cheaters, epoch.flagged_cheaters);
        assert_eq!(per_bundle.injected_cheaters, epoch.injected_cheaters);
        assert_eq!(per_bundle.audit_discrepancies, epoch.audit_discrepancies);
        // Per-bundle mode reports no epoch activity at all.
        assert_eq!(per_bundle.epochs_settled, 0);
        assert_eq!(per_bundle.settlement_ops_per_epoch, 0.0);
        // Epoch mode settled real windows and amortized transfers.
        assert!(epoch.epochs_settled > 0, "no epochs settled");
        assert!(epoch.epoch_netting_ratio >= 1.0);
        assert!(epoch.batch_verify_throughput >= 1.0);
    }

    #[test]
    fn epoch_mode_without_faults_reports_no_settlement() {
        use crate::scenario::SettlementMode;
        let cfg = ScenarioConfig {
            settlement: SettlementMode::Epoch,
            ..ScenarioConfig::quick_test(22)
        };
        // No fault layer means no evidence to settle: the run equals the
        // fault-free baseline with all epoch metrics zero.
        let r = SimulationRun::execute(cfg);
        let baseline = SimulationRun::execute(ScenarioConfig::quick_test(22));
        assert_eq!(r, baseline);
    }

    #[test]
    fn open_workload_arrivals_are_deterministic_and_capped() {
        use crate::scenario::WorkloadMode;
        let cfg = ScenarioConfig {
            workload: WorkloadMode::Open,
            open_arrival_rate: 0.05,
            ..ScenarioConfig::quick_test(31)
        };
        let drive = |cfg: ScenarioConfig| {
            let world = World::generate(&cfg);
            let mut run = SimulationRun::new(cfg, world);
            let mut engine = Engine::new();
            run.schedule_all(&mut engine);
            engine.run(&mut run, Some(SimTime::new(cfg.churn.horizon)));
            run
        };
        let a = drive(cfg);
        let b = drive(cfg);
        let times_a: Vec<Vec<f64>> = a.world.pairs.iter().map(|p| p.times.clone()).collect();
        let times_b: Vec<Vec<f64>> = b.world.pairs.iter().map(|p| p.times.clone()).collect();
        assert_eq!(times_a, times_b, "Poisson arrivals replay from the seed");
        assert!(a.connections > 0, "the arrival process produced traffic");
        for p in &a.world.pairs {
            assert!(p.times.len() <= cfg.max_connections as usize);
            assert!(p.times.windows(2).all(|t| t[0] <= t[1]));
            assert!(p
                .times
                .iter()
                .all(|&t| t >= cfg.warmup && t < cfg.churn.horizon));
        }
        // The two full runs also aggregate identically.
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn open_workload_tracks_delivery_under_faults() {
        use crate::scenario::WorkloadMode;
        let mut cfg = ScenarioConfig {
            workload: WorkloadMode::Open,
            open_arrival_rate: 0.05,
            ..ScenarioConfig::quick_test(33)
        };
        cfg.fault.drop_rate = 0.05;
        cfg.fault.cheat_fraction = 0.2;
        let r = SimulationRun::execute(cfg);
        assert!(r.connections > 0);
        assert!(
            (0.0..=1.0).contains(&r.delivery_ratio),
            "open-mode scheduling counts arrivals, not total_transmissions \
             (got {})",
            r.delivery_ratio
        );
    }

    #[test]
    fn windowed_metrics_ride_along_without_disturbing_aggregates() {
        let base = ScenarioConfig::quick_test(32);
        let windowed = SimulationRun::execute(ScenarioConfig {
            window_len: 240.0,
            window_warmup: 60.0,
            ..base
        });
        let baseline = SimulationRun::execute(base);
        // The collector is pure observation: every aggregate matches the
        // run without it.
        assert_eq!(windowed.good_payoffs, baseline.good_payoffs);
        assert_eq!(windowed.node_totals, baseline.node_totals);
        assert_eq!(windowed.connections, baseline.connections);
        assert!(baseline.windowed_delivery_ratio.is_empty());
        assert!(!windowed.windowed_delivery_ratio.is_empty());
        // Fault-free transmissions complete at their scheduled instant, so
        // every active window balances exactly.
        for (&ratio, &rate) in windowed
            .windowed_delivery_ratio
            .iter()
            .zip(&windowed.windowed_retry_rate)
        {
            assert!(ratio == 1.0 || ratio == 0.0, "ratio {ratio}");
            assert_eq!(rate, 0.0, "no retries without faults");
        }
        assert!(windowed.windowed_payoff_rate.iter().any(|&r| r > 0.0));
    }

    #[test]
    fn participation_payoffs_sum_to_node_totals() {
        let r = run_with(0.2, RoutingStrategy::Utility(UtilityModel::ModelI), 11);
        let samples: f64 =
            r.good_payoffs.iter().sum::<f64>() + r.malicious_payoffs.iter().sum::<f64>();
        let totals: f64 = r.node_totals.iter().sum();
        assert!((samples - totals).abs() < 1e-6);
    }
}
