//! The event-driven simulation run.
//!
//! Transmissions (one connection of one (I, R) pair, formed hop by hop
//! under the incentive mechanism) drive the run. Availability estimates
//! `α_s(v)` advance in one of two modes: **eager** (`Ev::Probe` fires every
//! probe tick and every live node runs a probing round) or **lazy** (the
//! default — probe state materializes on demand from the analytic churn
//! schedule when routing reads it, with per-node `Ev::Maintain` events at
//! exactly the ticks a neighbor replacement falls due). Under per-node
//! probe RNG streams the two modes are bit-identical. After the horizon the
//! per-bundle accounting is settled into per-node payoffs
//! (`m·P_f + P_r/‖π‖ − costs`).

use std::collections::HashSet;

use idpa_core::adversary::IntersectionAttack;
use idpa_core::bundle::{BundleAccounting, BundleId};
use idpa_core::contract::Contract;
use idpa_core::history::HistoryProfile;
use idpa_core::metrics::{self, ReformationTracker};
use idpa_core::path::form_connection_with_scratch;
use idpa_core::quality::{EdgeQuality, Weights};
use idpa_core::routing::{RouteScratch, RoutingView};
use idpa_desim::rng::{StreamFactory, Xoshiro256StarStar};
use idpa_desim::{Engine, Process, SimTime};
use idpa_netmodel::{CostModel, NodeSchedule};
use idpa_overlay::{LazyProbeSet, NodeId, ProbeEstimator};
use rand::RngExt;

use crate::scenario::{ProbeMode, ProbeRngMode, ScenarioConfig};
use crate::world::World;

/// Events of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    /// Global probe tick (eager mode): every live node runs one probing
    /// round.
    Probe,
    /// Per-node maintenance event (lazy mode): a neighbor replacement falls
    /// due for this node at this tick.
    Maintain(usize),
    /// One transmission of one (I, R) pair.
    Transmit {
        /// Index of the pair in the workload.
        pair: usize,
        /// Connection index within the pair's bundle.
        conn: u32,
    },
}

/// Probe state in either advancement mode.
enum ProbeState {
    Eager(Vec<ProbeEstimator>),
    Lazy(LazyProbeSet),
}

/// The live snapshot the routing layer reads during one transmission.
struct RunView<'a> {
    schedules: &'a [NodeSchedule],
    probes: &'a ProbeState,
    costs: &'a CostModel,
    now: SimTime,
}

impl RoutingView for RunView<'_> {
    fn live_neighbors(&self, s: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.live_neighbors_into(s, &mut out);
        out
    }

    fn live_neighbors_into(&self, s: NodeId, out: &mut Vec<NodeId>) {
        // D(s) is maintained by the node itself (its probe estimator), so
        // neighbor replacement is visible to routing.
        out.clear();
        let live = |v: &NodeId| self.schedules[v.index()].is_up(self.now);
        match self.probes {
            ProbeState::Eager(probes) => {
                out.extend(probes[s.index()].neighbors().iter().copied().filter(live));
            }
            ProbeState::Lazy(set) => set.with_neighbors(s, self.now.minutes(), |nbrs| {
                out.extend(nbrs.iter().copied().filter(live));
            }),
        }
    }

    fn availability(&self, s: NodeId, v: NodeId) -> f64 {
        match self.probes {
            ProbeState::Eager(probes) => probes[s.index()].availability(v),
            ProbeState::Lazy(set) => set.availability(s, v, self.now.minutes()),
        }
    }

    fn transmission_cost(&self, s: NodeId, v: NodeId) -> f64 {
        self.costs.transmission_cost(s.index(), v.index())
    }

    fn participation_cost(&self, _: NodeId) -> f64 {
        self.costs.participation_cost()
    }
}

/// Aggregated outcome of one simulation run.
///
/// Payoffs are aggregated **per (bundle, forwarder) participation** — the
/// paper's unit: a forwarder on a bundle earns `m·P_f + P_r/‖π‖ − costs`
/// for its `m` forwarding instances on that bundle. This is the unit in
/// which Figs. 3–4's decline with `f` and Figs. 6–7's CDFs are expressed;
/// a lifetime-total-per-node aggregation would be dominated by `P_f` and
/// mask the routing-benefit dilution the paper studies.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Per-(bundle, good forwarder) payoffs (the Figs. 6–7 CDF samples).
    pub good_payoffs: Vec<f64>,
    /// Per-(bundle, malicious forwarder) payoffs.
    pub malicious_payoffs: Vec<f64>,
    /// Lifetime total payoff per node (indexed by `NodeId`).
    pub node_totals: Vec<f64>,
    /// Mean per-(bundle, good forwarder) payoff (the Figs. 3–4 metric).
    pub avg_good_payoff: f64,
    /// Mean forwarder-set size over pairs (the Fig. 5 metric).
    pub avg_forwarder_set: f64,
    /// Mean path length `L` over pairs.
    pub avg_path_length: f64,
    /// Mean `Q(π) = L/‖π‖` over pairs.
    pub avg_path_quality: f64,
    /// `avg payoff / avg #forwarders` (the Table 2 metric).
    pub routing_efficiency: f64,
    /// Mean fraction of new edges per connection (Prop. 1's `E[X]`).
    pub new_edge_fraction: f64,
    /// Mean fraction of post-first connections that changed an edge.
    pub reformation_rate: f64,
    /// Connections actually formed.
    pub connections: u64,
    /// Fraction of pairs whose initiator the intersection attack narrowed
    /// to a single candidate.
    pub attack_exposure_rate: f64,
    /// Mean anonymity degree left by the intersection attack (1 = full
    /// anonymity).
    pub avg_anonymity_degree: f64,
}

/// The simulation process: owns all mutable run state.
pub struct SimulationRun {
    cfg: ScenarioConfig,
    world: World,
    probes: ProbeState,
    histories: Vec<HistoryProfile>,
    bundles: Vec<BundleAccounting>,
    trackers: Vec<ReformationTracker>,
    attacks: Vec<IntersectionAttack>,
    initiator_costs: Vec<f64>,
    quality: EdgeQuality,
    routing_rng: Xoshiro256StarStar,
    /// The legacy shared probe stream (consumed only under
    /// [`ProbeRngMode::SharedLegacy`]).
    probe_rng: Xoshiro256StarStar,
    /// Source of position-keyed probe draws under
    /// [`ProbeRngMode::PerNode`].
    streams: StreamFactory,
    connections: u64,
    /// Routing buffers and memo caches, reused across all transmissions.
    scratch: RouteScratch,
    /// Scratch for legacy neighbor maintenance: stale-neighbor list and a
    /// node-membership mask, reused across nodes and ticks.
    stale_scratch: Vec<NodeId>,
    member_mask: Vec<bool>,
}

impl SimulationRun {
    /// Builds the run state over a sampled world.
    #[must_use]
    pub fn new(cfg: ScenarioConfig, world: World) -> Self {
        let streams = StreamFactory::new(cfg.seed);
        let neighbor_sets: Vec<Vec<NodeId>> = (0..cfg.n_nodes)
            .map(|i| world.topology.neighbors(NodeId(i)).to_vec())
            .collect();
        let probes = match cfg.probe_mode {
            ProbeMode::Eager => ProbeState::Eager(
                neighbor_sets
                    .into_iter()
                    .enumerate()
                    .map(|(i, nbrs)| ProbeEstimator::new(NodeId(i), cfg.probe_period, nbrs))
                    .collect(),
            ),
            ProbeMode::Lazy => ProbeState::Lazy(LazyProbeSet::new(
                cfg.probe_period,
                cfg.churn.horizon,
                world.schedules.clone(),
                neighbor_sets,
                cfg.neighbor_replacement_rounds,
                streams.clone(),
            )),
        };
        let histories = (0..cfg.n_nodes)
            .map(|i| match cfg.history_capacity {
                Some(cap) => HistoryProfile::with_capacity(NodeId(i), cap),
                None => HistoryProfile::new(NodeId(i)),
            })
            .collect();
        let n_pairs = world.pairs.len();
        SimulationRun {
            quality: EdgeQuality::new(Weights::new(cfg.weights.0, cfg.weights.1)),
            probes,
            histories,
            bundles: vec![BundleAccounting::new(); n_pairs],
            trackers: vec![ReformationTracker::new(); n_pairs],
            attacks: vec![IntersectionAttack::new(); n_pairs],
            initiator_costs: vec![0.0; n_pairs],
            routing_rng: streams.stream("routing"),
            probe_rng: streams.stream("probing"),
            streams,
            connections: 0,
            scratch: RouteScratch::new(),
            stale_scratch: Vec::new(),
            member_mask: vec![false; cfg.n_nodes],
            cfg,
            world,
        }
    }

    /// Convenience: generate the world, run to the horizon, aggregate.
    #[must_use]
    pub fn execute(cfg: ScenarioConfig) -> RunResult {
        let horizon = SimTime::new(cfg.churn.horizon);
        let world = World::generate(&cfg);
        let mut run = SimulationRun::new(cfg, world);
        let mut engine = Engine::new();
        run.schedule_all(&mut engine);
        engine.run(&mut run, Some(horizon));
        run.finish()
    }

    /// Schedules every probe-related event and transmission. Probe tick `k`
    /// fires at `k·T` (computed as a product, so eager tick times agree
    /// exactly with the lazy estimator's closed-form reconstruction): in
    /// eager mode a global [`Ev::Probe`] per tick, in lazy mode only
    /// per-node [`Ev::Maintain`] events at the ticks a replacement falls
    /// due.
    pub fn schedule_all(&self, engine: &mut Engine<Ev>) {
        match &self.probes {
            ProbeState::Eager(_) => {
                let mut k = 1u64;
                loop {
                    let t = k as f64 * self.cfg.probe_period;
                    if t >= self.cfg.churn.horizon {
                        break;
                    }
                    engine.schedule_at(SimTime::new(t), Ev::Probe);
                    k += 1;
                }
            }
            ProbeState::Lazy(set) => {
                for i in 0..self.cfg.n_nodes {
                    if let Some(t) = set.next_due_after(NodeId(i), 0.0) {
                        engine.schedule_at(SimTime::new(t), Ev::Maintain(i));
                    }
                }
            }
        }
        for (pair, wl) in self.world.pairs.iter().enumerate() {
            for (conn, &time) in wl.times.iter().enumerate() {
                engine.schedule_at(
                    SimTime::new(time),
                    Ev::Transmit {
                        pair,
                        conn: conn as u32,
                    },
                );
            }
        }
    }

    fn handle_probe(&mut self, now: SimTime) {
        let ProbeState::Eager(probes) = &mut self.probes else {
            // Lazy mode schedules no global probe ticks.
            return;
        };
        let schedules = &self.world.schedules;
        for (i, probe) in probes.iter_mut().enumerate() {
            // Only live nodes probe.
            if !schedules[i].is_up(now) {
                continue;
            }
            match self.cfg.probe_rng {
                ProbeRngMode::PerNode => {
                    probe.probe_round_seeded(&self.streams, |v| schedules[v.index()].is_up(now));
                    if let Some(threshold) = self.cfg.neighbor_replacement_rounds {
                        probe.maintain_seeded(&self.streams, threshold, self.cfg.n_nodes);
                    }
                }
                ProbeRngMode::SharedLegacy => {
                    probe.probe_round(|v| schedules[v.index()].is_up(now), &mut self.probe_rng);
                    if let Some(threshold) = self.cfg.neighbor_replacement_rounds {
                        maintain_neighbors_legacy(
                            probe,
                            &mut self.probe_rng,
                            threshold,
                            self.cfg.n_nodes,
                            &mut self.stale_scratch,
                            &mut self.member_mask,
                        );
                    }
                }
            }
        }
    }

    /// Lazy-mode maintenance: sync the node through `now` (applying the
    /// replacement that fell due), then schedule its next due tick.
    fn handle_maintain(&mut self, engine: &mut Engine<Ev>, now: SimTime, node: usize) {
        let ProbeState::Lazy(set) = &self.probes else {
            return;
        };
        if let Some(t) = set.next_due_after(NodeId(node), now.minutes()) {
            engine.schedule_at(SimTime::new(t), Ev::Maintain(node));
        }
    }

    fn handle_transmit(&mut self, now: SimTime, pair: usize, conn: u32) {
        let wl = &self.world.pairs[pair];
        let contract = Contract::from_tau(BundleId(pair as u64), wl.responder, wl.pf, self.cfg.tau);
        let priors = self.bundles[pair].connections();
        let view = RunView {
            schedules: &self.world.schedules,
            probes: &self.probes,
            costs: &self.world.costs,
            now,
        };
        let outcome = form_connection_with_scratch(
            &mut self.scratch,
            wl.initiator,
            conn,
            &contract,
            priors,
            &view,
            &mut self.histories,
            &self.world.kinds,
            &self.quality,
            self.cfg.good_strategy,
            self.cfg.adversary_strategy,
            &self.cfg.policy,
            &mut self.routing_rng,
        );
        self.connections += 1;
        self.initiator_costs[pair] += outcome.initiator_cost;
        self.trackers[pair].record(&outcome.edges(wl.initiator, wl.responder));

        // Intersection attack: if any malicious node sat on the path, the
        // adversary observes the set of currently-live nodes.
        let observed = outcome
            .forwarders
            .iter()
            .any(|f| !self.world.kinds[f.index()].is_good());
        if observed {
            // The attacker intersects the active sets it can see. Its own
            // colluders are never initiator candidates (it knows them), so
            // only good nodes enter the observation.
            let active: HashSet<NodeId> = (0..self.cfg.n_nodes)
                .map(NodeId)
                .filter(|n| {
                    self.world.kinds[n.index()].is_good()
                        && self.world.schedules[n.index()].is_up(now)
                })
                .collect();
            self.attacks[pair].observe(&active);
        }

        self.bundles[pair].record_connection(&outcome.forwarders, &outcome.hop_costs);
    }

    /// Settles all bundles into the aggregate result.
    #[must_use]
    pub fn finish(self) -> RunResult {
        let n = self.cfg.n_nodes;
        let cp = self.world.costs.participation_cost();
        let mut payoff = vec![0.0f64; n];
        let mut set_sizes = Vec::with_capacity(self.bundles.len());
        let mut lengths = Vec::with_capacity(self.bundles.len());
        let mut qualities = Vec::with_capacity(self.bundles.len());

        let mut good_payoffs: Vec<f64> = Vec::new();
        let mut malicious_payoffs: Vec<f64> = Vec::new();
        for (pair, bundle) in self.bundles.iter().enumerate() {
            if bundle.connections() == 0 {
                continue;
            }
            let wl = &self.world.pairs[pair];
            let pr = self.cfg.tau * wl.pf;
            for (node, p) in bundle.payoffs(wl.pf, pr, cp) {
                payoff[node.index()] += p;
                if self.world.kinds[node.index()].is_good() {
                    good_payoffs.push(p);
                } else {
                    malicious_payoffs.push(p);
                }
            }
            set_sizes.push(bundle.forwarder_set_size() as f64);
            lengths.push(bundle.average_path_length());
            qualities.push(metrics::path_quality(
                bundle.average_path_length(),
                bundle.forwarder_set_size(),
            ));
        }

        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let avg_good_payoff = mean(&good_payoffs);
        let avg_forwarder_set = mean(&set_sizes);

        let exposure = self
            .attacks
            .iter()
            .filter(|a| a.observations() > 0)
            .filter(|a| a.exposed())
            .count();
        let observed_attacks = self.attacks.iter().filter(|a| a.observations() > 0).count();
        // Anonymity is measured over the attacker's candidate pool: the
        // good (non-colluding) nodes.
        let n_good = self
            .world
            .kinds
            .iter()
            .filter(|k| k.is_good())
            .count()
            .max(1);
        let degrees: Vec<f64> = self
            .attacks
            .iter()
            .map(|a| {
                let c = if a.observations() == 0 {
                    n_good
                } else {
                    a.candidate_count()
                };
                metrics::candidate_set_degree(c.min(n_good), n_good)
            })
            .collect();

        RunResult {
            avg_good_payoff,
            avg_forwarder_set,
            avg_path_length: mean(&lengths),
            avg_path_quality: mean(&qualities),
            routing_efficiency: metrics::routing_efficiency(avg_good_payoff, avg_forwarder_set),
            new_edge_fraction: mean(
                &self
                    .trackers
                    .iter()
                    .filter(|t| t.distinct_edges() > 0)
                    .map(ReformationTracker::new_edge_fraction)
                    .collect::<Vec<_>>(),
            ),
            reformation_rate: mean(
                &self
                    .trackers
                    .iter()
                    .filter(|t| t.distinct_edges() > 0)
                    .map(ReformationTracker::reformation_rate)
                    .collect::<Vec<_>>(),
            ),
            connections: self.connections,
            attack_exposure_rate: if observed_attacks == 0 {
                0.0
            } else {
                exposure as f64 / observed_attacks as f64
            },
            avg_anonymity_degree: mean(&degrees),
            good_payoffs,
            malicious_payoffs,
            node_totals: payoff,
        }
    }
}

/// The pre-PR-2 neighbor-maintenance pass, kept for
/// [`ProbeRngMode::SharedLegacy`] reproducibility: replaces neighbors
/// silent for `threshold`+ rounds with candidates drawn from the shared
/// probe stream. `stale` and `mask` are caller-owned scratch (the mask must
/// be all-false on entry, sized to `n_nodes`; it is restored to all-false
/// on exit), so the pass allocates nothing and candidate rejection is O(1)
/// instead of an O(d) `contains` scan.
fn maintain_neighbors_legacy(
    probe: &mut ProbeEstimator,
    rng: &mut Xoshiro256StarStar,
    threshold: u64,
    n_nodes: usize,
    stale: &mut Vec<NodeId>,
    mask: &mut [bool],
) {
    stale.clear();
    stale.extend(
        probe
            .neighbors()
            .iter()
            .copied()
            .filter(|&v| probe.rounds_since_alive(v).is_some_and(|r| r >= threshold)),
    );
    if stale.is_empty() {
        return;
    }
    for v in probe.neighbors() {
        mask[v.index()] = true;
    }
    for &old in stale.iter() {
        // Draw a replacement: not self, not already a neighbor.
        let candidate = (0..16).find_map(|_| {
            let c = NodeId(rng.random_range(0..n_nodes));
            (c != probe.owner() && !mask[c.index()]).then_some(c)
        });
        if let Some(new) = candidate {
            if probe.replace_neighbor(old, new) {
                mask[old.index()] = false;
                mask[new.index()] = true;
            }
        }
    }
    for v in probe.neighbors() {
        mask[v.index()] = false;
    }
}

impl Process for SimulationRun {
    type Event = Ev;

    fn handle(&mut self, engine: &mut Engine<Ev>, event: Ev) -> idpa_desim::engine::Control {
        let now = engine.now();
        match event {
            Ev::Probe => self.handle_probe(now),
            Ev::Maintain(node) => self.handle_maintain(engine, now, node),
            Ev::Transmit { pair, conn } => self.handle_transmit(now, pair, conn),
        }
        idpa_desim::engine::Control::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idpa_core::routing::RoutingStrategy;
    use idpa_core::utility::UtilityModel;

    fn run_with(f: f64, strategy: RoutingStrategy, seed: u64) -> RunResult {
        let cfg = ScenarioConfig {
            adversary_fraction: f,
            good_strategy: strategy,
            ..ScenarioConfig::quick_test(seed)
        };
        SimulationRun::execute(cfg)
    }

    #[test]
    fn run_is_deterministic() {
        let a = run_with(0.1, RoutingStrategy::Utility(UtilityModel::ModelI), 1);
        let b = run_with(0.1, RoutingStrategy::Utility(UtilityModel::ModelI), 1);
        assert_eq!(a.avg_good_payoff, b.avg_good_payoff);
        assert_eq!(a.good_payoffs, b.good_payoffs);
        assert_eq!(a.connections, b.connections);
    }

    #[test]
    fn all_transmissions_form_connections() {
        let r = run_with(0.0, RoutingStrategy::Utility(UtilityModel::ModelI), 2);
        assert_eq!(r.connections, 200);
    }

    #[test]
    fn payoffs_are_mostly_positive_with_paper_benefits() {
        // P_f in [50,100] dwarfs costs, so participating nodes profit.
        let r = run_with(0.0, RoutingStrategy::Utility(UtilityModel::ModelI), 3);
        assert!(r.avg_good_payoff > 0.0, "avg={}", r.avg_good_payoff);
    }

    #[test]
    fn utility_routing_beats_random_on_forwarder_set() {
        // The Fig. 5 headline, at test scale.
        let seed = 4;
        let util = run_with(0.1, RoutingStrategy::Utility(UtilityModel::ModelI), seed);
        let rand = run_with(0.1, RoutingStrategy::Random, seed);
        assert!(
            util.avg_forwarder_set < rand.avg_forwarder_set,
            "utility {} vs random {}",
            util.avg_forwarder_set,
            rand.avg_forwarder_set
        );
    }

    #[test]
    fn utility_routing_reduces_reformations() {
        // Prop. 1, empirically.
        let seed = 5;
        let util = run_with(0.0, RoutingStrategy::Utility(UtilityModel::ModelI), seed);
        let rand = run_with(0.0, RoutingStrategy::Random, seed);
        assert!(
            util.new_edge_fraction < rand.new_edge_fraction,
            "utility {} vs random {}",
            util.new_edge_fraction,
            rand.new_edge_fraction
        );
    }

    #[test]
    fn more_adversaries_reduce_good_payoff() {
        // Figs. 3–4: payoff decreases as f grows (compare extremes to
        // tolerate noise at test scale).
        let strategy = RoutingStrategy::Utility(UtilityModel::ModelI);
        let low = run_with(0.0, strategy, 6);
        let high = run_with(0.6, strategy, 6);
        assert!(
            high.avg_good_payoff < low.avg_good_payoff,
            "f=0: {}, f=0.6: {}",
            low.avg_good_payoff,
            high.avg_good_payoff
        );
    }

    #[test]
    fn path_lengths_within_policy_bound() {
        let r = run_with(0.2, RoutingStrategy::Random, 7);
        assert!(r.avg_path_length <= 8.0);
        assert!(r.avg_path_length > 0.0);
    }

    #[test]
    fn attack_metrics_present_with_adversaries() {
        let r = run_with(0.5, RoutingStrategy::Random, 8);
        assert!(r.avg_anonymity_degree <= 1.0);
        assert!((0.0..=1.0).contains(&r.attack_exposure_rate));
    }

    #[test]
    fn no_adversaries_no_attack_observations() {
        let r = run_with(0.0, RoutingStrategy::Utility(UtilityModel::ModelI), 9);
        assert_eq!(r.attack_exposure_rate, 0.0);
        assert_eq!(r.avg_anonymity_degree, 1.0);
    }

    #[test]
    fn node_totals_cover_all_nodes() {
        let r = run_with(0.3, RoutingStrategy::Utility(UtilityModel::ModelI), 10);
        assert_eq!(r.node_totals.len(), 20);
        // Per-participation samples exist for both populations at f=0.3.
        assert!(!r.good_payoffs.is_empty());
        assert!(!r.malicious_payoffs.is_empty());
    }

    #[test]
    fn neighbor_replacement_changes_neighbor_sets() {
        let base = ScenarioConfig::quick_test(13);
        let static_run = SimulationRun::execute(base);
        let dynamic = SimulationRun::execute(ScenarioConfig {
            neighbor_replacement_rounds: Some(3),
            ..base
        });
        // Both runs complete all transmissions; the replacement policy is
        // behaviour-changing but must not break accounting invariants.
        assert_eq!(static_run.connections, dynamic.connections);
        assert!(dynamic.avg_forwarder_set > 0.0);
        assert!((0.0..=1.0).contains(&dynamic.new_edge_fraction));
    }

    #[test]
    fn participation_payoffs_sum_to_node_totals() {
        let r = run_with(0.2, RoutingStrategy::Utility(UtilityModel::ModelI), 11);
        let samples: f64 =
            r.good_payoffs.iter().sum::<f64>() + r.malicious_payoffs.iter().sum::<f64>();
        let totals: f64 = r.node_totals.iter().sum();
        assert!((samples - totals).abs() < 1e-6);
    }
}
