//! One driver per paper table/figure, plus the ablations from DESIGN.md.
//!
//! Every experiment sweeps its axis with **common random numbers** (the
//! same replication seeds across all points of the sweep) and runs
//! replications in parallel on the in-tree deterministic work-queue pool
//! ([`idpa_desim::pool`]): each replication derives its RNG streams from
//! its own seed, so results are bit-identical at any thread count. Output
//! is a markdown table (shape comparison against the paper) plus a CSV per
//! experiment under the output directory.

use std::path::PathBuf;

use idpa_core::routing::{AdversaryStrategy, RoutingStrategy};
use idpa_core::utility::UtilityModel;
use idpa_desim::stats::{Ecdf, OnlineStats};
use idpa_desim::{AdversaryConfig, FaultConfig, FaultResponse};
use idpa_game::forwarding::{dominance_threshold, participation_threshold, ForwardingStageGame};

use crate::chart::{cdf_chart, line_chart, Series};
use crate::report::{fmt_ci, Table};
use crate::runner::{RunResult, SimulationRun};
use crate::scenario::{BankDurability, NodeLifecycle, ProbeMode, ScenarioConfig, SettlementMode};

/// Options shared by all experiments.
#[derive(Debug, Clone)]
pub struct Options {
    /// Replications per sweep point.
    pub reps: u64,
    /// Scale down the workload for smoke runs.
    pub quick: bool,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
    /// Worker threads for replication fan-out (0 = auto-detect, also
    /// overridable with `IDPA_THREADS`). Results are identical at any
    /// value — only wall-clock time changes.
    pub threads: usize,
    /// Probe advancement mode (`--probe-mode`); lazy and eager are
    /// bit-identical under the default per-node probe RNG.
    pub probe_mode: ProbeMode,
    /// Fault injection applied to every run (`--fault-*`; all-zero rates =
    /// off, in which case runs are bit-identical to a fault-free build).
    pub fault: FaultConfig,
    /// History-arena shard count (`--history-shards`; 0 = one shard per
    /// worker thread). Results are identical at any value — sharding
    /// partitions storage without changing record order.
    pub history_shards: usize,
    /// `w_r`, the reputation weight of the adaptive quality model
    /// (`--reputation-weight`; 0 = the paper's two-term model,
    /// bit-identical to a build without the reputation layer). When
    /// positive, `w_s` and `w_a` split the remaining `1 - w_r` evenly.
    pub reputation_weight: f64,
    /// Node-state allocation (`--node-lifecycle`): eager (the default,
    /// byte-identical to builds without the lifecycle layer) or lazy
    /// (bit-identical results, resident memory bounded by active traffic).
    pub node_lifecycle: NodeLifecycle,
    /// Payment settlement mode (`--settlement`): per bundle after the
    /// horizon (the default, byte-identical to builds without the epoch
    /// layer) or batched at epoch boundaries (identical economics,
    /// amortized bank operations).
    pub settlement: SettlementMode,
    /// Epoch length in minutes under epoch settlement (`--epoch-length`).
    pub epoch_length: f64,
    /// Bank durability (`--bank-durability`): off (the default,
    /// byte-identical to builds without the durable-bank layer) or a
    /// write-ahead-logged ledger with a warm failover replica and the
    /// runtime invariant monitor.
    pub bank_durability: BankDurability,
    /// Adversary strategy classes applied to every run (`--adversary-*`;
    /// all-zero rates = off, in which case runs are byte-identical to a
    /// build without the adversary layer).
    pub adversary: AdversaryConfig,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            reps: 10,
            quick: false,
            out_dir: PathBuf::from("results"),
            threads: 0,
            probe_mode: ProbeMode::Lazy,
            fault: FaultConfig::default(),
            history_shards: 0,
            reputation_weight: 0.0,
            node_lifecycle: NodeLifecycle::Eager,
            settlement: SettlementMode::PerBundle,
            epoch_length: 240.0,
            bank_durability: BankDurability::Off,
            adversary: AdversaryConfig::default(),
        }
    }
}

impl Options {
    fn base_config(&self, seed: u64) -> ScenarioConfig {
        let base = if self.quick {
            ScenarioConfig::quick_test(seed)
        } else {
            ScenarioConfig {
                seed,
                ..ScenarioConfig::default()
            }
        };
        ScenarioConfig {
            probe_mode: self.probe_mode,
            fault: self.fault,
            history_shards: self.history_shards,
            weights: Options::split_weights(self.reputation_weight),
            reputation_weight: self.reputation_weight,
            node_lifecycle: self.node_lifecycle,
            settlement: self.settlement,
            epoch_length: self.epoch_length,
            bank_durability: self.bank_durability,
            adversary: self.adversary,
            ..base
        }
    }

    /// `(w_s, w_a)` for a given `w_r`: the remaining mass split evenly, so
    /// `w_r = 0` reproduces the paper's `(0.5, 0.5)` exactly.
    fn split_weights(wr: f64) -> (f64, f64) {
        ((1.0 - wr) / 2.0, (1.0 - wr) / 2.0)
    }
}

/// The model II configuration used throughout the experiments (lookahead 2
/// keeps full-scale sweeps tractable; the lookahead ablation explores 1–4).
#[must_use]
pub fn model_two() -> RoutingStrategy {
    RoutingStrategy::Utility(UtilityModel::ModelII { lookahead: 2 })
}

/// Model I as a strategy.
#[must_use]
pub fn model_one() -> RoutingStrategy {
    RoutingStrategy::Utility(UtilityModel::ModelI)
}

/// Resolves the configured worker count (0 = auto).
fn thread_count(opts: &Options) -> usize {
    if opts.threads == 0 {
        idpa_desim::pool::default_threads()
    } else {
        opts.threads
    }
}

/// Runs `reps` replications of `make(seed)` in parallel on the
/// deterministic work-queue pool. Replication `rep` always runs from seed
/// `1000 + rep`, so the result vector is bit-identical at any thread
/// count.
fn replicate(opts: &Options, make: impl Fn(u64) -> ScenarioConfig + Sync) -> Vec<RunResult> {
    idpa_desim::pool::parallel_map(thread_count(opts), opts.reps as usize, |rep| {
        SimulationRun::execute(make(1000 + rep as u64))
    })
}

/// Replicates the base configuration as-is — the replication kernel exposed
/// for integration tests that pin thread-count and probe-mode invariance.
#[must_use]
pub fn replicate_base(opts: &Options) -> Vec<RunResult> {
    replicate(opts, |seed| opts.base_config(seed))
}

fn stats_of(results: &[RunResult], f: impl Fn(&RunResult) -> f64) -> OnlineStats {
    let mut s = OnlineStats::new();
    for r in results {
        s.push(f(r));
    }
    s
}

/// The adversary fractions swept in the figures.
const F_SWEEP: [f64; 10] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// Figs. 3 and 4: average payoff of a non-malicious node vs `f`, with 95%
/// confidence intervals, for the given utility model.
pub fn fig_payoff_vs_f(opts: &Options, strategy: RoutingStrategy, name: &str) -> String {
    let mut table = Table::new(&["f", "avg good payoff", "95% CI half-width"]);
    let mut points = Vec::new();
    for f in F_SWEEP {
        let results = replicate(opts, |seed| ScenarioConfig {
            adversary_fraction: f,
            good_strategy: strategy,
            ..opts.base_config(seed)
        });
        let s = stats_of(&results, |r| r.avg_good_payoff);
        let ci = s.ci95();
        points.push((f, ci.mean));
        table.row(vec![
            format!("{f:.1}"),
            format!("{:.1}", ci.mean),
            format!("{:.1}", ci.half_width),
        ]);
    }
    let _ = table.write_csv(&opts.out_dir, name);
    let chart = line_chart(
        "avg good-node payoff vs f",
        &[Series::new("payoff", points)],
        60,
        12,
    );
    format!(
        "## {name}: average payoff for a non-malicious node\n\n{}\n```text\n{chart}```\n",
        table.to_markdown()
    )
}

/// Fig. 5: average forwarder-set size vs `f` for Random / Model I / Model II.
pub fn fig5(opts: &Options) -> String {
    let strategies: [(&str, RoutingStrategy); 3] = [
        ("random", RoutingStrategy::Random),
        ("model-1", model_one()),
        ("model-2", model_two()),
    ];
    let mut table = Table::new(&["f", "random", "model I", "model II"]);
    let mut curves: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 3];
    for f in F_SWEEP {
        let mut cells = vec![format!("{f:.1}")];
        for (si, (_, strategy)) in strategies.iter().enumerate() {
            let results = replicate(opts, |seed| ScenarioConfig {
                adversary_fraction: f,
                good_strategy: *strategy,
                ..opts.base_config(seed)
            });
            let s = stats_of(&results, |r| r.avg_forwarder_set);
            curves[si].push((f, s.mean()));
            cells.push(fmt_ci(s.mean(), s.ci95().half_width));
        }
        table.row(cells);
    }
    let _ = table.write_csv(&opts.out_dir, "fig5_forwarder_set");
    let series: Vec<Series> = strategies
        .iter()
        .zip(&curves)
        .map(|((label, _), pts)| Series::new(*label, pts.clone()))
        .collect();
    let chart = line_chart("forwarder set ‖π‖ vs f", &series, 60, 12);
    format!(
        "## fig5: average forwarder-set size ‖π‖ by routing strategy\n\n{}\n```text\n{chart}```\n",
        table.to_markdown()
    )
}

/// Figs. 6–7: CDF of good-node payoffs at a fixed `f`, per strategy.
/// Reports deciles in the markdown table; full curves go to CSV.
pub fn fig_payoff_cdf(opts: &Options, f: f64, name: &str) -> String {
    let strategies: [(&str, RoutingStrategy); 3] = [
        ("random", RoutingStrategy::Random),
        ("model-1", model_one()),
        ("model-2", model_two()),
    ];
    let mut curves: Vec<(&str, Ecdf)> = Vec::new();
    for (label, strategy) in strategies {
        let results = replicate(opts, |seed| ScenarioConfig {
            adversary_fraction: f,
            good_strategy: strategy,
            ..opts.base_config(seed)
        });
        let mut ecdf = Ecdf::new();
        for r in &results {
            for &p in &r.good_payoffs {
                ecdf.push(p);
            }
        }
        curves.push((label, ecdf));
    }

    // Deciles table.
    let mut table = Table::new(&["quantile", "random", "model I", "model II"]);
    for q in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let mut cells = vec![format!("{q:.1}")];
        for (_, ecdf) in &mut curves {
            cells.push(format!("{:.0}", ecdf.quantile(q)));
        }
        table.row(cells);
    }

    // Full curves to CSV.
    let mut csv = Table::new(&["strategy", "payoff", "cdf"]);
    for (label, ecdf) in &mut curves {
        for (x, p) in ecdf.points() {
            csv.row(vec![(*label).into(), format!("{x:.3}"), format!("{p:.5}")]);
        }
    }
    let _ = csv.write_csv(&opts.out_dir, name);

    // Variance summary (the paper's observation: model I has the largest
    // spread, random the smallest).
    let mut summary = Table::new(&["strategy", "mean", "std dev", "max"]);
    for (label, ecdf) in &mut curves {
        let mut s = OnlineStats::new();
        for (x, _) in ecdf.points() {
            s.push(x);
        }
        summary.row(vec![
            (*label).into(),
            format!("{:.1}", s.mean()),
            format!("{:.1}", s.std_dev()),
            format!("{:.1}", s.max()),
        ]);
    }

    // Render the CDFs (downsampled to percentiles for the terminal).
    let series: Vec<Series> = curves
        .iter_mut()
        .map(|(label, ecdf)| {
            let pts: Vec<(f64, f64)> = (1..=100)
                .map(|p| {
                    let q = f64::from(p) / 100.0;
                    (ecdf.quantile(q), q)
                })
                .collect();
            Series::new(*label, pts)
        })
        .collect();
    let chart = cdf_chart("payoff CDF (x = payoff, y = F(x))", &series, 64, 14);
    format!(
        "## {name}: CDF of good-node payoff at f={f}\n\n### Payoff deciles\n\n{}\n### Distribution summary\n\n{}\n```text\n{chart}```\n",
        table.to_markdown(),
        summary.to_markdown()
    )
}

/// Table 2: routing efficiency (avg payoff / avg #forwarders) for utility
/// model I over `f × τ`.
pub fn table2(opts: &Options) -> String {
    let taus = [0.5, 1.0, 2.0, 4.0];
    let fs = [0.1, 0.5, 0.9];
    let mut table = Table::new(&["", "tau=0.5", "tau=1", "tau=2", "tau=4"]);
    let mut col_means = vec![OnlineStats::new(); taus.len()];
    for f in fs {
        let mut cells = vec![format!("f={f:.1}")];
        for (ti, &tau) in taus.iter().enumerate() {
            let results = replicate(opts, |seed| ScenarioConfig {
                adversary_fraction: f,
                tau,
                good_strategy: model_one(),
                ..opts.base_config(seed)
            });
            let s = stats_of(&results, |r| r.routing_efficiency);
            col_means[ti].push(s.mean());
            cells.push(format!("{:.0}", s.mean()));
        }
        table.row(cells);
    }
    let mut mean_row = vec!["mean".to_string()];
    for c in &col_means {
        mean_row.push(format!("{:.0}", c.mean()));
    }
    table.row(mean_row);
    let _ = table.write_csv(&opts.out_dir, "table2_routing_efficiency");
    format!(
        "## table2: routing efficiency, utility model I\n\n{}",
        table.to_markdown()
    )
}

/// Prop. 1: new-edge fraction (`E[X]`) and reformation rate, utility vs
/// random routing.
pub fn prop1(opts: &Options) -> String {
    let strategies: [(&str, RoutingStrategy); 3] = [
        ("random", RoutingStrategy::Random),
        ("model-1", model_one()),
        ("model-2", model_two()),
    ];
    let mut table = Table::new(&["strategy", "new-edge fraction E[X]", "reformation rate"]);
    for (label, strategy) in strategies {
        let results = replicate(opts, |seed| ScenarioConfig {
            good_strategy: strategy,
            ..opts.base_config(seed)
        });
        let ex = stats_of(&results, |r| r.new_edge_fraction);
        let rr = stats_of(&results, |r| r.reformation_rate);
        table.row(vec![
            label.into(),
            fmt_ci(ex.mean(), ex.ci95().half_width),
            fmt_ci(rr.mean(), rr.ci95().half_width),
        ]);
    }
    let _ = table.write_csv(&opts.out_dir, "prop1_reformations");
    format!(
        "## prop1: path reformations, utility vs random routing\n\n{}",
        table.to_markdown()
    )
}

/// Props. 2–3: numeric verification of the participation and dominance
/// thresholds in the stage game.
pub fn props23(_opts: &Options) -> String {
    let (cp, ct) = (5.0, 2.0);
    let (n, l, k) = (40, 4.0, 20);
    let p2 = participation_threshold(cp, ct, n, l, k);
    let p3 = dominance_threshold(cp, ct);

    let mut table = Table::new(&[
        "P_f",
        "vs Prop.2 thr",
        "session payoff > 0",
        "vs Prop.3 thr",
        "forwarding dominant",
    ]);
    for pf in [
        p2 * 0.5,
        p2 * 0.99,
        p2 * 1.01,
        p3 * 0.99,
        p3 * 1.01,
        p3 * 2.0,
        50.0,
    ] {
        let payoff = idpa_game::forwarding::expected_session_payoff(pf, cp, ct, n, l, k);
        let game = ForwardingStageGame {
            pf,
            pr: 0.0, // worst case for dominance: no routing benefit
            cp,
            ct,
            q_random: 0.0,
            q_nonrandom: 0.0,
        };
        table.row(vec![
            format!("{pf:.2}"),
            if pf > p2 { "above" } else { "below" }.into(),
            format!("{}", payoff > 0.0),
            if pf > p3 { "above" } else { "below" }.into(),
            format!("{}", game.forwarding_is_dominant(2)),
        ]);
    }
    format!(
        "## props23: thresholds (Prop.2 = {p2:.2}, Prop.3 = {p3:.2}; C^p={cp}, C^t={ct}, N={n}, L={l}, k={k})\n\n{}",
        table.to_markdown()
    )
}

/// Ablation: `w_s`/`w_a` weighting.
pub fn ablation_weights(opts: &Options) -> String {
    let mut table = Table::new(&["w_s", "w_a", "‖π‖", "avg good payoff", "E[X]"]);
    for ws in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let results = replicate(opts, |seed| ScenarioConfig {
            weights: (ws, 1.0 - ws),
            good_strategy: model_one(),
            adversary_fraction: 0.1,
            ..opts.base_config(seed)
        });
        let set = stats_of(&results, |r| r.avg_forwarder_set);
        let pay = stats_of(&results, |r| r.avg_good_payoff);
        let ex = stats_of(&results, |r| r.new_edge_fraction);
        table.row(vec![
            format!("{ws:.2}"),
            format!("{:.2}", 1.0 - ws),
            format!("{:.2}", set.mean()),
            format!("{:.0}", pay.mean()),
            format!("{:.3}", ex.mean()),
        ]);
    }
    let _ = table.write_csv(&opts.out_dir, "ablation_weights");
    format!(
        "## ablation-weights: selectivity vs availability weighting\n\n{}",
        table.to_markdown()
    )
}

/// Ablation: τ continuum.
pub fn ablation_tau(opts: &Options) -> String {
    let mut table = Table::new(&["tau", "routing efficiency", "‖π‖", "avg good payoff"]);
    for tau in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let results = replicate(opts, |seed| ScenarioConfig {
            tau,
            good_strategy: model_one(),
            adversary_fraction: 0.1,
            ..opts.base_config(seed)
        });
        let eff = stats_of(&results, |r| r.routing_efficiency);
        let set = stats_of(&results, |r| r.avg_forwarder_set);
        let pay = stats_of(&results, |r| r.avg_good_payoff);
        table.row(vec![
            format!("{tau}"),
            format!("{:.0}", eff.mean()),
            format!("{:.2}", set.mean()),
            format!("{:.0}", pay.mean()),
        ]);
    }
    let _ = table.write_csv(&opts.out_dir, "ablation_tau");
    format!(
        "## ablation-tau: routing-to-forwarding benefit ratio\n\n{}",
        table.to_markdown()
    )
}

/// Ablation: neighbor degree `d`.
pub fn ablation_degree(opts: &Options) -> String {
    let mut table = Table::new(&["d", "‖π‖", "path length L", "Q(π)"]);
    for d in [3usize, 5, 8, 12] {
        let results = replicate(opts, |seed| ScenarioConfig {
            degree: d,
            good_strategy: model_one(),
            adversary_fraction: 0.1,
            ..opts.base_config(seed)
        });
        let set = stats_of(&results, |r| r.avg_forwarder_set);
        let len = stats_of(&results, |r| r.avg_path_length);
        let q = stats_of(&results, |r| r.avg_path_quality);
        table.row(vec![
            d.to_string(),
            format!("{:.2}", set.mean()),
            format!("{:.2}", len.mean()),
            format!("{:.3}", q.mean()),
        ]);
    }
    let _ = table.write_csv(&opts.out_dir, "ablation_degree");
    format!(
        "## ablation-degree: neighbor-set size d\n\n{}",
        table.to_markdown()
    )
}

/// Ablation: probing period `T`.
pub fn ablation_probe(opts: &Options) -> String {
    let mut table = Table::new(&["T (min)", "‖π‖", "avg good payoff"]);
    for t in [1.0, 5.0, 15.0, 60.0] {
        let results = replicate(opts, |seed| ScenarioConfig {
            probe_period: t,
            good_strategy: model_one(),
            adversary_fraction: 0.1,
            ..opts.base_config(seed)
        });
        let set = stats_of(&results, |r| r.avg_forwarder_set);
        let pay = stats_of(&results, |r| r.avg_good_payoff);
        table.row(vec![
            format!("{t}"),
            format!("{:.2}", set.mean()),
            format!("{:.0}", pay.mean()),
        ]);
    }
    let _ = table.write_csv(&opts.out_dir, "ablation_probe");
    format!(
        "## ablation-probe: probing period sensitivity\n\n{}",
        table.to_markdown()
    )
}

/// Ablation: bounded history retention.
pub fn ablation_history(opts: &Options) -> String {
    let mut table = Table::new(&["history capacity", "‖π‖", "E[X]"]);
    for cap in [Some(1usize), Some(2), Some(5), Some(20), None] {
        let results = replicate(opts, |seed| ScenarioConfig {
            history_capacity: cap,
            good_strategy: model_one(),
            adversary_fraction: 0.1,
            ..opts.base_config(seed)
        });
        let set = stats_of(&results, |r| r.avg_forwarder_set);
        let ex = stats_of(&results, |r| r.new_edge_fraction);
        table.row(vec![
            cap.map_or("unbounded".into(), |c| c.to_string()),
            format!("{:.2}", set.mean()),
            format!("{:.3}", ex.mean()),
        ]);
    }
    let _ = table.write_csv(&opts.out_dir, "ablation_history");
    format!(
        "## ablation-history: history retention bound\n\n{}",
        table.to_markdown()
    )
}

/// Ablation: model II lookahead horizon (depth of the §2.4.3 backward
/// induction). Depth 1 degenerates to model I.
pub fn ablation_lookahead(opts: &Options) -> String {
    let mut table = Table::new(&["lookahead", "‖π‖", "avg good payoff", "E[X]"]);
    for la in [1u8, 2, 3, 4] {
        let results = replicate(opts, |seed| ScenarioConfig {
            good_strategy: RoutingStrategy::Utility(UtilityModel::ModelII { lookahead: la }),
            adversary_fraction: 0.1,
            ..opts.base_config(seed)
        });
        let set = stats_of(&results, |r| r.avg_forwarder_set);
        let pay = stats_of(&results, |r| r.avg_good_payoff);
        let ex = stats_of(&results, |r| r.new_edge_fraction);
        table.row(vec![
            la.to_string(),
            format!("{:.2}", set.mean()),
            format!("{:.0}", pay.mean()),
            format!("{:.3}", ex.mean()),
        ]);
    }
    let _ = table.write_csv(&opts.out_dir, "ablation_lookahead");
    format!(
        "## ablation-lookahead: model II backward-induction horizon\n\n{}",
        table.to_markdown()
    )
}

/// Ablation: recurring-connection count (`max-connections` in §3) vs the
/// intersection attack — more rounds per pair give the attacker more
/// observations.
pub fn ablation_rounds(opts: &Options) -> String {
    let mut table = Table::new(&[
        "avg rounds/pair",
        "exposure rate",
        "anonymity degree",
        "‖π‖",
    ]);
    for rounds in [5usize, 10, 20, 40] {
        let results = replicate(opts, |seed| {
            let mut cfg = opts.base_config(seed);
            cfg.total_transmissions = cfg.n_pairs * rounds;
            cfg.max_connections = (rounds * 2) as u32;
            cfg.adversary_fraction = 0.3;
            cfg.good_strategy = model_one();
            cfg
        });
        let exp = stats_of(&results, |r| r.attack_exposure_rate);
        let anon = stats_of(&results, |r| r.avg_anonymity_degree);
        let set = stats_of(&results, |r| r.avg_forwarder_set);
        table.row(vec![
            rounds.to_string(),
            format!("{:.3}", exp.mean()),
            format!("{:.3}", anon.mean()),
            format!("{:.2}", set.mean()),
        ]);
    }
    let _ = table.write_csv(&opts.out_dir, "ablation_rounds");
    format!(
        "## ablation-rounds: recurring connections vs intersection attack\n\n{}",
        table.to_markdown()
    )
}

/// Ablation: termination mode — Crowds coin vs hop-distance forwarding
/// (the two §2.2 variants), at matched expected path length.
pub fn ablation_termination(opts: &Options) -> String {
    use idpa_core::routing::PathPolicy;
    let modes: [(&str, PathPolicy); 4] = [
        ("crowds p=0.67 (E[L]=3)", PathPolicy::new(2.0 / 3.0, 8)),
        ("hop-distance L=3", PathPolicy::hop_distance(3)),
        ("crowds p=0.75 (E[L]=4)", PathPolicy::new(0.75, 8)),
        ("hop-distance L=4", PathPolicy::hop_distance(4)),
    ];
    let mut table = Table::new(&["termination", "L", "‖π‖", "Q(π)", "avg good payoff"]);
    for (label, policy) in modes {
        let results = replicate(opts, |seed| ScenarioConfig {
            policy,
            good_strategy: model_one(),
            adversary_fraction: 0.1,
            ..opts.base_config(seed)
        });
        let len = stats_of(&results, |r| r.avg_path_length);
        let set = stats_of(&results, |r| r.avg_forwarder_set);
        let q = stats_of(&results, |r| r.avg_path_quality);
        let pay = stats_of(&results, |r| r.avg_good_payoff);
        table.row(vec![
            label.into(),
            format!("{:.2}", len.mean()),
            format!("{:.2}", set.mean()),
            format!("{:.3}", q.mean()),
            format!("{:.0}", pay.mean()),
        ]);
    }
    let _ = table.write_csv(&opts.out_dir, "ablation_termination");
    format!(
        "## ablation-termination: Crowds coin vs hop-distance forwarding\n\n{}",
        table.to_markdown()
    )
}

/// Ablation: dynamic neighbor replacement (replace a neighbor after N
/// silent probe rounds; §2.3's "new neighbor found" rule re-initialises
/// the replacement).
pub fn ablation_replacement(opts: &Options) -> String {
    let mut table = Table::new(&["replace after", "‖π‖", "avg good payoff", "E[X]"]);
    for rounds in [None, Some(3u64), Some(10), Some(30)] {
        let results = replicate(opts, |seed| ScenarioConfig {
            neighbor_replacement_rounds: rounds,
            good_strategy: model_one(),
            adversary_fraction: 0.1,
            ..opts.base_config(seed)
        });
        let set = stats_of(&results, |r| r.avg_forwarder_set);
        let pay = stats_of(&results, |r| r.avg_good_payoff);
        let ex = stats_of(&results, |r| r.new_edge_fraction);
        table.row(vec![
            rounds.map_or("never".into(), |r| format!("{r} rounds")),
            format!("{:.2}", set.mean()),
            format!("{:.0}", pay.mean()),
            format!("{:.3}", ex.mean()),
        ]);
    }
    let _ = table.write_csv(&opts.out_dir, "ablation_replacement");
    format!(
        "## ablation-replacement: dynamic neighbor maintenance\n\n{}",
        table.to_markdown()
    )
}

/// §5 availability attack: attacker payoff share and anonymity impact.
pub fn attack_availability(opts: &Options) -> String {
    let mut table = Table::new(&[
        "f",
        "attack",
        "avg malicious payoff",
        "avg good payoff",
        "anonymity degree",
    ]);
    for f in [0.1, 0.3, 0.5] {
        for attack in [false, true] {
            let results = replicate(opts, |seed| ScenarioConfig {
                adversary_fraction: f,
                availability_attack: attack,
                good_strategy: model_one(),
                ..opts.base_config(seed)
            });
            let mal = stats_of(&results, |r| {
                let v = &r.malicious_payoffs;
                if v.is_empty() {
                    0.0
                } else {
                    v.iter().sum::<f64>() / v.len() as f64
                }
            });
            let good = stats_of(&results, |r| r.avg_good_payoff);
            let anon = stats_of(&results, |r| r.avg_anonymity_degree);
            table.row(vec![
                format!("{f:.1}"),
                if attack { "on" } else { "off" }.into(),
                format!("{:.0}", mal.mean()),
                format!("{:.0}", good.mean()),
                format!("{:.3}", anon.mean()),
            ]);
        }
    }
    let _ = table.write_csv(&opts.out_dir, "attack_availability");
    format!(
        "## attack-availability: §5 availability attack\n\n{}",
        table.to_markdown()
    )
}

/// §4-motivated collusion attack: malicious nodes steer traffic to each
/// other instead of routing uniformly. Measures how much payment they
/// capture and what it costs good nodes and anonymity.
pub fn attack_collusion(opts: &Options) -> String {
    let mut table = Table::new(&[
        "f",
        "adversary",
        "avg malicious payoff",
        "avg good payoff",
        "anonymity degree",
        "‖π‖",
    ]);
    for f in [0.1, 0.3, 0.5] {
        for (label, strategy) in [
            ("random", AdversaryStrategy::Random),
            ("colluding", AdversaryStrategy::Colluding),
        ] {
            let results = replicate(opts, |seed| ScenarioConfig {
                adversary_fraction: f,
                adversary_strategy: strategy,
                good_strategy: model_one(),
                ..opts.base_config(seed)
            });
            let mal = stats_of(&results, |r| {
                if r.malicious_payoffs.is_empty() {
                    0.0
                } else {
                    r.malicious_payoffs.iter().sum::<f64>() / r.malicious_payoffs.len() as f64
                }
            });
            let good = stats_of(&results, |r| r.avg_good_payoff);
            let anon = stats_of(&results, |r| r.avg_anonymity_degree);
            let set = stats_of(&results, |r| r.avg_forwarder_set);
            table.row(vec![
                format!("{f:.1}"),
                label.into(),
                format!("{:.0}", mal.mean()),
                format!("{:.0}", good.mean()),
                format!("{:.3}", anon.mean()),
                format!("{:.2}", set.mean()),
            ]);
        }
    }
    let _ = table.write_csv(&opts.out_dir, "attack_collusion");
    format!(
        "## attack-collusion: colluding vs random adversaries

{}",
        table.to_markdown()
    )
}

/// Timeline: how the system's metrics evolve over the simulated day —
/// run the same seeded world to increasing horizons (common random
/// numbers make the prefixes identical) and snapshot payoff and anonymity.
pub fn timeline(opts: &Options) -> String {
    let fractions = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let mut table = Table::new(&[
        "horizon (min)",
        "connections",
        "avg good payoff",
        "anonymity degree",
    ]);
    let mut payoff_pts = Vec::new();
    let mut anon_pts = Vec::new();
    for frac in fractions {
        // Generate the FULL world, then stop the engine early: each point
        // is a true prefix of the same trajectory (common random numbers).
        let results: Vec<crate::runner::RunResult> =
            idpa_desim::pool::parallel_map(thread_count(opts), opts.reps as usize, |rep| {
                let cfg = ScenarioConfig {
                    adversary_fraction: 0.3,
                    good_strategy: model_one(),
                    ..opts.base_config(1000 + rep as u64)
                };
                let world = crate::world::World::generate(&cfg);
                let horizon = idpa_desim::SimTime::new(cfg.churn.horizon * frac);
                let mut run = SimulationRun::new(cfg, world);
                let mut engine = idpa_desim::Engine::new();
                run.schedule_all(&mut engine);
                engine.run(&mut run, Some(horizon));
                run.finish()
            });
        let conns = stats_of(&results, |r| r.connections as f64);
        let pay = stats_of(&results, |r| r.avg_good_payoff);
        let anon = stats_of(&results, |r| r.avg_anonymity_degree);
        let horizon = ScenarioConfig::default().churn.horizon * frac;
        payoff_pts.push((horizon, pay.mean()));
        anon_pts.push((horizon, anon.mean()));
        table.row(vec![
            format!("{horizon:.0}"),
            format!("{:.0}", conns.mean()),
            format!("{:.0}", pay.mean()),
            format!("{:.3}", anon.mean()),
        ]);
    }
    let _ = table.write_csv(&opts.out_dir, "timeline");
    let chart = line_chart(
        "anonymity degree left to the attacker vs horizon (f=0.3)",
        &[Series::new("anonymity", anon_pts)],
        60,
        12,
    );
    format!(
        "## timeline: metric evolution over the simulated day\n\n{}\n```text\n{chart}```\n",
        table.to_markdown()
    )
}

/// Intersection-attack resistance by routing strategy.
pub fn attack_intersection(opts: &Options) -> String {
    let strategies: [(&str, RoutingStrategy); 3] = [
        ("random", RoutingStrategy::Random),
        ("model-1", model_one()),
        ("model-2", model_two()),
    ];
    let mut table = Table::new(&["f", "strategy", "exposure rate", "anonymity degree"]);
    for f in [0.1, 0.3, 0.5] {
        for (label, strategy) in strategies {
            let results = replicate(opts, |seed| ScenarioConfig {
                adversary_fraction: f,
                good_strategy: strategy,
                ..opts.base_config(seed)
            });
            let exp = stats_of(&results, |r| r.attack_exposure_rate);
            let anon = stats_of(&results, |r| r.avg_anonymity_degree);
            table.row(vec![
                format!("{f:.1}"),
                label.into(),
                format!("{:.3}", exp.mean()),
                format!("{:.3}", anon.mean()),
            ]);
        }
    }
    let _ = table.write_csv(&opts.out_dir, "attack_intersection");
    format!(
        "## attack-intersection: passive intersection attack vs strategy\n\n{}",
        table.to_markdown()
    )
}

/// Crowds predecessor analysis (closed form): how far the substrate
/// protocol's own probable-innocence guarantee stretches at the paper's
/// scale — the theoretical backdrop for the intersection-attack results.
pub fn crowds_analysis(opts: &Options) -> String {
    use idpa_core::metrics::{
        crowds_min_network_size, crowds_predecessor_probability, crowds_probable_innocence,
    };
    let n = 40;
    let p_f = 0.75;
    let mut table = Table::new(&[
        "collaborators c",
        "P(pred = initiator)",
        "probable innocence",
        "min N for innocence",
    ]);
    let mut points = Vec::new();
    for c in [0usize, 2, 4, 8, 12, 16, 20, 24] {
        let p = crowds_predecessor_probability(n, c, p_f);
        points.push((c as f64, p));
        table.row(vec![
            c.to_string(),
            format!("{p:.3}"),
            crowds_probable_innocence(n, c, p_f).to_string(),
            format!("{:.0}", crowds_min_network_size(c, p_f)),
        ]);
    }
    let _ = table.write_csv(&opts.out_dir, "crowds_analysis");
    let chart = line_chart(
        "P(first collaborator's predecessor = initiator), N=40, p_f=0.75",
        &[Series::new("P", points)],
        60,
        12,
    );
    format!(
        "## crowds-analysis: Reiter-Rubin predecessor bound at paper scale\n\n{}\n```text\n{chart}```\n",
        table.to_markdown()
    )
}

/// Robustness sweep: delivery ratio, retries per message, reformation
/// latency, and payment shortfall vs the per-edge drop rate, for each
/// routing strategy. Any `--fault-*` options act as a fixed background
/// (crashes, cheaters, bank outages) on top of the swept drop rate, so the
/// same experiment renders both the clean-degradation curve and the
/// compound-fault one.
pub fn fault_degradation(opts: &Options) -> String {
    let strategies: [(&str, RoutingStrategy); 3] = [
        ("random", RoutingStrategy::Random),
        ("model-1", model_one()),
        ("model-2", model_two()),
    ];
    let drop_rates = [0.0, 0.05, 0.1, 0.2, 0.4];
    let mut table = Table::new(&[
        "drop rate",
        "strategy",
        "delivery ratio",
        "retries/msg",
        "reform latency",
        "payment shortfall",
    ]);
    let mut curves: Vec<Vec<(f64, f64)>> = vec![Vec::new(); strategies.len()];
    for drop_rate in drop_rates {
        let fault = FaultConfig {
            drop_rate,
            ..opts.fault
        };
        for (si, (label, strategy)) in strategies.iter().enumerate() {
            let results = replicate(opts, |seed| ScenarioConfig {
                fault,
                good_strategy: *strategy,
                ..opts.base_config(seed)
            });
            let delivery = stats_of(&results, |r| r.delivery_ratio);
            let retries = stats_of(&results, |r| r.retries_per_message);
            let latency = stats_of(&results, |r| r.reformation_latency);
            let shortfall = stats_of(&results, |r| r.payment_shortfall);
            curves[si].push((drop_rate, delivery.mean()));
            table.row(vec![
                format!("{drop_rate:.2}"),
                (*label).into(),
                fmt_ci(delivery.mean(), delivery.ci95().half_width),
                format!("{:.3}", retries.mean()),
                format!("{:.2}", latency.mean()),
                format!("{:.2}", shortfall.mean()),
            ]);
        }
    }
    let _ = table.write_csv(&opts.out_dir, "fault_degradation");
    let series: Vec<Series> = strategies
        .iter()
        .zip(&curves)
        .map(|((label, _), pts)| Series::new(*label, pts.clone()))
        .collect();
    let chart = line_chart("delivery ratio vs per-edge drop rate", &series, 60, 12);
    format!(
        "## fault-degradation: retry-protocol resilience under injected faults\n\n{}\n```text\n{chart}```\n",
        table.to_markdown()
    )
}

/// Adaptive-vs-static fault response under a compound fault load. Sweeps
/// the cheat fraction (the one node-correlated fault class, where learned
/// reputation has signal) over a fixed crash + drop background and compares
/// `--fault-response static` against `adaptive` on delivery ratio, retries
/// per message, and reformation latency. The adaptive arm runs the
/// three-term quality model with `w_r` from `--reputation-weight`
/// (defaulting to 0.2 when unset); the static arm is the exact PR 4
/// baseline. Any `--fault-*` options replace the default background.
pub fn fault_adaptation(opts: &Options) -> String {
    let background = if opts.fault.is_active() {
        opts.fault
    } else {
        FaultConfig {
            crash_rate: 0.05,
            drop_rate: 0.10,
            ..FaultConfig::default()
        }
    };
    let wr = if opts.reputation_weight > 0.0 {
        opts.reputation_weight
    } else {
        0.2
    };
    let cheat_fractions = [0.0, 0.1, 0.2, 0.4];
    let arms: [(&str, FaultResponse, f64); 2] = [
        ("static", FaultResponse::Static, 0.0),
        ("adaptive", FaultResponse::Adaptive, wr),
    ];
    let mut table = Table::new(&[
        "cheat fraction",
        "response",
        "delivery ratio",
        "retries/msg",
        "reform latency",
    ]);
    let mut curves: Vec<Vec<(f64, f64)>> = vec![Vec::new(); arms.len()];
    for cheat_fraction in cheat_fractions {
        for (ai, (label, response, arm_wr)) in arms.iter().enumerate() {
            let fault = FaultConfig {
                cheat_fraction,
                response: *response,
                ..background
            };
            let results = replicate(opts, |seed| ScenarioConfig {
                fault,
                weights: Options::split_weights(*arm_wr),
                reputation_weight: *arm_wr,
                good_strategy: model_two(),
                ..opts.base_config(seed)
            });
            let delivery = stats_of(&results, |r| r.delivery_ratio);
            let retries = stats_of(&results, |r| r.retries_per_message);
            let latency = stats_of(&results, |r| r.reformation_latency);
            curves[ai].push((cheat_fraction, delivery.mean()));
            table.row(vec![
                format!("{cheat_fraction:.2}"),
                (*label).into(),
                fmt_ci(delivery.mean(), delivery.ci95().half_width),
                format!("{:.3}", retries.mean()),
                format!("{:.2}", latency.mean()),
            ]);
        }
    }
    let _ = table.write_csv(&opts.out_dir, "fault_adaptation");
    let series: Vec<Series> = arms
        .iter()
        .zip(&curves)
        .map(|((label, _, _), pts)| Series::new(*label, pts.clone()))
        .collect();
    let chart = line_chart("delivery ratio vs cheat fraction", &series, 60, 12);
    format!(
        "## fault-adaptation: reputation-driven response vs the static retry protocol\n\n{}\n```text\n{chart}```\n",
        table.to_markdown()
    )
}

/// Scale study: the lazy node lifecycle at growing N under
/// proportionally scaled paper churn ([`ScenarioConfig::scale`]). One run
/// per point (the object of study is the resident-state footprint, not a
/// CI): reports the run's throughput next to the peak materialized node
/// count, idle evictions, and the slab's byte estimate — the `RunResult`
/// resident-state metrics. Peak residency tracks the fixed 512-pair
/// workload, so the `peak/N` column falls as N grows.
pub fn scale_lifecycle(opts: &Options) -> String {
    // IDPA_SCALE_SMOKE=1 (the verify.sh stage) caps the sweep at the
    // quick tier even without --quick.
    let smoke = std::env::var("IDPA_SCALE_SMOKE").is_ok_and(|v| v == "1");
    let sizes: &[usize] = if opts.quick || smoke {
        &[200, 2_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let mut table = Table::new(&[
        "N",
        "connections",
        "peak materialized",
        "peak/N",
        "evictions",
        "slab KiB",
        "avg good payoff",
    ]);
    for (i, &n) in sizes.iter().enumerate() {
        let cfg = ScenarioConfig::scale(n, 1000 + i as u64);
        let r = SimulationRun::execute(cfg);
        table.row(vec![
            n.to_string(),
            r.connections.to_string(),
            r.peak_materialized_nodes.to_string(),
            format!("{:.4}", r.peak_materialized_nodes as f64 / n as f64),
            r.node_evictions.to_string(),
            format!("{:.1}", r.slab_bytes as f64 / 1024.0),
            format!("{:.0}", r.avg_good_payoff),
        ]);
    }
    let _ = table.write_csv(&opts.out_dir, "scale_lifecycle");
    format!(
        "## scale-lifecycle: resident state under the lazy node lifecycle\n\n{}",
        table.to_markdown()
    )
}

/// The adversary zoo: each §4 strategy class run with its matching defense
/// off and on, everything else held fixed, so every row pair isolates one
/// defense's effect.
///
/// * **free riders** (Prop. 2's worst case: initiate but never forward) —
///   defense = the adaptive response (reputation suppression plus probe
///   invalidation routes around the ghosts);
/// * **whitewashers** (accumulate faults, rejoin as a fresh identity) —
///   defense = identity-age discounting of the reputation term
///   (`w_r > 0` so the discount reaches path formation); a background
///   drop rate gives the whitewashed identities faults worth shedding;
/// * **colluding cliques** (a colluding responder pads its manifest with
///   phantom clique-mate hops and mints them genuine receipts) — defense =
///   the initiator's cross-confirmation check of manifest hops against the
///   hops it actually observed forwarding.
pub fn adversary_zoo(opts: &Options) -> String {
    // IDPA_AZ_SMOKE=1 (the verify.sh stage) caps the matrix at the quick
    // tier even without --quick.
    let smoke = std::env::var("IDPA_AZ_SMOKE").is_ok_and(|v| v == "1");
    let mut capped = opts.clone();
    if smoke {
        capped.quick = true;
        capped.reps = capped.reps.min(2);
    }
    let opts = &capped;

    let mut table = Table::new(&[
        "class",
        "defense",
        "delivery",
        "adversary payoff",
        "compliant payoff",
        "evasion rate",
        "phantoms flagged/injected",
        "payout leakage",
    ]);

    // Free riders: 20% of nodes ghost every forwarding duty.
    for (label, response) in [
        ("off", FaultResponse::Static),
        ("on (adaptive)", FaultResponse::Adaptive),
    ] {
        let adversary = AdversaryConfig {
            free_rider_fraction: 0.2,
            ..AdversaryConfig::default()
        };
        let fault = FaultConfig {
            response,
            ..opts.fault
        };
        let results = replicate(opts, |seed| ScenarioConfig {
            adversary,
            fault,
            good_strategy: model_two(),
            ..opts.base_config(seed)
        });
        let delivery = stats_of(&results, |r| r.delivery_ratio);
        let freeloader = stats_of(&results, |r| r.free_rider_payoff);
        let compliant = stats_of(&results, |r| r.compliant_payoff);
        table.row(vec![
            "free-rider".into(),
            label.into(),
            fmt_ci(delivery.mean(), delivery.ci95().half_width),
            format!("{:.1}", freeloader.mean()),
            format!("{:.1}", compliant.mean()),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
    }

    // Whitewashers: 20% of nodes shed their identity on a renewal
    // schedule, against a background drop rate that makes the shed
    // identity's ledger worth escaping.
    for (label, discount) in [("off", false), ("on (age discount)", true)] {
        let adversary = AdversaryConfig {
            whitewash_fraction: 0.2,
            whitewash_interval: 240.0,
            whitewash_age_discount: discount,
            reputation_maturity: 120.0,
            ..AdversaryConfig::default()
        };
        let fault = FaultConfig {
            drop_rate: 0.2,
            response: FaultResponse::Adaptive,
            ..opts.fault
        };
        let wr = 0.5;
        let results = replicate(opts, |seed| ScenarioConfig {
            adversary,
            fault,
            weights: Options::split_weights(wr),
            reputation_weight: wr,
            good_strategy: model_two(),
            ..opts.base_config(seed)
        });
        let delivery = stats_of(&results, |r| r.delivery_ratio);
        let evasion = stats_of(&results, |r| r.reputation_evasion_rate);
        table.row(vec![
            "whitewasher".into(),
            label.into(),
            fmt_ci(delivery.mean(), delivery.ci95().half_width),
            "-".into(),
            "-".into(),
            format!("{:.3}", evasion.mean()),
            "-".into(),
            "-".into(),
        ]);
    }

    // Colluding cliques: two 4-cliques forge phantom-forwarding evidence
    // on every connection their responder completes.
    for (label, cross_check) in [("off", false), ("on (cross-check)", true)] {
        let adversary = AdversaryConfig {
            clique_count: 2,
            clique_size: 4,
            clique_forge_rate: 1.0,
            clique_cross_check: cross_check,
            ..AdversaryConfig::default()
        };
        let results = replicate(opts, |seed| ScenarioConfig {
            adversary,
            good_strategy: model_two(),
            ..opts.base_config(seed)
        });
        let delivery = stats_of(&results, |r| r.delivery_ratio);
        let injected: u64 = results.iter().map(|r| r.clique_phantom_instances).sum();
        let flagged: u64 = results.iter().map(|r| r.clique_phantom_flagged).sum();
        let leakage = stats_of(&results, |r| r.clique_payout_leakage);
        table.row(vec![
            "clique".into(),
            label.into(),
            fmt_ci(delivery.mean(), delivery.ci95().half_width),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("{flagged}/{injected}"),
            format!("{:.3}", leakage.mean()),
        ]);
    }

    let _ = table.write_csv(&opts.out_dir, "adversary_zoo");
    format!(
        "## adversary-zoo: strategy classes vs their defenses\n\n{}",
        table.to_markdown()
    )
}

/// An experiment: renders its figure/table from the shared options.
pub type Experiment = fn(&Options) -> String;

/// Every experiment by name, in DESIGN.md order.
#[must_use]
pub fn registry() -> Vec<(&'static str, Experiment)> {
    vec![
        (
            "fig3",
            (|o| fig_payoff_vs_f(o, model_one(), "fig3_payoff_model1")) as Experiment,
        ),
        ("fig4", |o| {
            fig_payoff_vs_f(o, model_two(), "fig4_payoff_model2")
        }),
        ("fig5", fig5),
        ("fig6", |o| fig_payoff_cdf(o, 0.1, "fig6_payoff_cdf_f01")),
        ("fig7", |o| fig_payoff_cdf(o, 0.5, "fig7_payoff_cdf_f05")),
        ("table2", table2),
        ("prop1", prop1),
        ("props23", props23),
        ("ablation-weights", ablation_weights),
        ("ablation-tau", ablation_tau),
        ("ablation-degree", ablation_degree),
        ("ablation-probe", ablation_probe),
        ("ablation-history", ablation_history),
        ("ablation-lookahead", ablation_lookahead),
        ("ablation-rounds", ablation_rounds),
        ("ablation-replacement", ablation_replacement),
        ("ablation-termination", ablation_termination),
        ("attack-availability", attack_availability),
        ("attack-collusion", attack_collusion),
        ("attack-intersection", attack_intersection),
        ("fault-degradation", fault_degradation),
        ("fault-adaptation", fault_adaptation),
        ("scale-lifecycle", scale_lifecycle),
        ("adversary-zoo", adversary_zoo),
        ("timeline", timeline),
        ("crowds-analysis", crowds_analysis),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> Options {
        Options {
            reps: 2,
            quick: true,
            out_dir: std::env::temp_dir().join("idpa_exp_test"),
            ..Options::default()
        }
    }

    #[test]
    fn replicate_is_bit_identical_across_thread_counts() {
        // The acceptance bar for the in-tree pool: per-replication seeds
        // (1000 + rep) make the result vector independent of scheduling.
        let make = |opts: &Options| {
            replicate(opts, |seed| ScenarioConfig {
                adversary_fraction: 0.3,
                good_strategy: model_two(),
                ..opts.base_config(seed)
            })
        };
        let baseline = make(&Options {
            reps: 4,
            threads: 1,
            ..quick_opts()
        });
        for threads in [2, 8] {
            let parallel = make(&Options {
                reps: 4,
                threads,
                ..quick_opts()
            });
            assert_eq!(baseline, parallel, "threads={threads} diverged");
        }
    }

    #[test]
    fn registry_covers_all_paper_artifacts() {
        let names: Vec<&str> = registry().iter().map(|(n, _)| *n).collect();
        for required in ["fig3", "fig4", "fig5", "fig6", "fig7", "table2"] {
            assert!(names.contains(&required), "{required} missing");
        }
    }

    #[test]
    fn props23_runs_and_reports_thresholds() {
        let out = props23(&quick_opts());
        assert!(out.contains("Prop.2 = 4.50"));
        assert!(out.contains("Prop.3 = 7.00"));
        // Above both thresholds everything holds.
        assert!(out.contains("50.00"));
    }

    #[test]
    fn table2_emits_all_rows() {
        let out = table2(&quick_opts());
        assert!(out.contains("f=0.1"));
        assert!(out.contains("f=0.9"));
        assert!(out.contains("mean"));
    }

    #[test]
    fn fault_degradation_runs_quick_and_reports_degradation() {
        let out = fault_degradation(&Options {
            reps: 1,
            ..quick_opts()
        });
        assert!(out.contains("0.40"), "largest swept drop rate missing");
        assert!(out.contains("model-2") || out.contains("model II"));
        assert!(out.contains("delivery ratio"));
    }

    #[test]
    fn fault_adaptation_runs_quick_with_both_arms() {
        let out = fault_adaptation(&Options {
            reps: 1,
            ..quick_opts()
        });
        assert!(out.contains("static"));
        assert!(out.contains("adaptive"));
        assert!(out.contains("0.40"), "largest swept cheat fraction missing");
        assert!(out.contains("delivery ratio"));
    }

    #[test]
    fn scale_lifecycle_runs_quick_with_bounded_residency() {
        let out = scale_lifecycle(&quick_opts());
        assert!(out.contains("peak materialized"));
        assert!(out.contains("2000"), "largest quick size missing");
    }

    #[test]
    fn fig5_runs_quick() {
        let out = fig5(&Options {
            reps: 1,
            ..quick_opts()
        });
        assert!(out.contains("model II"));
        assert!(out.lines().count() > 10);
    }
}
