//! # idpa-sim — the full-system experiment driver
//!
//! Composes every substrate into the paper's §3 evaluation: a discrete-
//! event simulation of N = 40 peers under Poisson joins and Pareto session
//! times, 100 (I, R) pairs exchanging 2000 recurring transmissions under
//! the `(P_f, P_r)` incentive contract, with a fraction `f` of malicious
//! (randomly routing) nodes — measuring good-node payoffs, forwarder-set
//! sizes, payoff CDFs and routing efficiency.
//!
//! * [`scenario`] — configuration mirroring the paper's §3 parameters;
//! * [`error`] — typed scenario/driver errors ([`SimError`]);
//! * [`world`] — the sampled static world (topology, churn trace, costs,
//!   roles, workload);
//! * [`runner`] — the event-driven run (probe events + transmissions);
//! * [`formation`] — parallel per-pair bundle formation over the sharded
//!   history arena (throughput studies; bit-identical at any shard or
//!   thread count);
//! * [`experiments`] — one driver per paper table/figure plus ablations;
//! * [`report`] — markdown/CSV table emission;
//! * [`chart`] — terminal line/CDF charts so regenerated figures are
//!   visually comparable to the paper's;
//! * [`window`] — steady-state windowed metrics (delivery/payoff/retry
//!   series with warm-up trimming);
//! * [`snapshot`] — the versioned, checksummed snapshot codec for
//!   crash-safe service runs;
//! * [`service`] — the open-workload service runner: segmented execution
//!   with periodic checkpoints, graceful wall-clock shutdown and
//!   deterministic resume.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod chart;
pub(crate) mod durability;
pub mod error;
pub mod experiments;
pub mod formation;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod service;
pub mod slab;
pub mod snapshot;
pub mod window;
pub mod world;

pub use error::SimError;
pub use formation::{
    form_bundles, form_bundles_global, form_bundles_interleaved, form_bundles_items,
    form_bundles_sharded, partition_pairs, partition_pairs_balanced, FormationItem, PairFormation,
};
pub use idpa_desim::{AdversaryConfig, AdversaryPlan, FaultConfig, FaultResponse};
pub use runner::{RunResult, SimulationRun};
pub use scenario::{
    BankDurability, CostStorage, NodeLifecycle, ProbeMode, ProbeRngMode, ScenarioConfig,
    SettlementMode, WorkloadMode,
};
pub use service::{run_service, ServiceOptions};
pub use slab::{NodeSlab, ReputationStore};
pub use window::WindowCollector;
pub use world::World;
