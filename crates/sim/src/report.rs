//! Table and CSV emission for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple column-aligned markdown table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a GitHub-flavoured markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:<w$} |");
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV form to `dir/name.csv` (creating `dir`).
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{name}.csv")), self.to_csv())
    }
}

/// Formats `mean ± half` with sensible precision.
#[must_use]
pub fn fmt_ci(mean: f64, half: f64) -> String {
    format!("{mean:.1} ± {half:.1}")
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;

    #[test]
    fn markdown_render() {
        let mut t = Table::new(&["f", "payoff"]);
        t.row(vec!["0.1".into(), "409".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| f   | payoff |"));
        assert!(md.contains("| 0.1 | 409    |"));
        assert!(md.lines().count() == 3);
    }

    #[test]
    fn csv_render_and_escaping() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",plain\n");
    }

    #[test]
    fn csv_written_to_disk() {
        let dir = std::env::temp_dir().join("idpa_report_test");
        let mut t = Table::new(&["k"]);
        t.row(vec!["1".into()]);
        t.write_csv(&dir, "unit").unwrap();
        let content = std::fs::read_to_string(dir.join("unit.csv")).unwrap();
        assert_eq!(content, "k\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ci_formatting() {
        assert_eq!(fmt_ci(409.25, 12.04), "409.2 ± 12.0");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["one"]);
        t.row(vec!["a".into(), "b".into()]);
    }
}
