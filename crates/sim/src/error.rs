//! Typed errors for the experiment driver.
//!
//! Configuration problems used to abort with `assert!` panics deep inside
//! the run; now they surface as [`SimError`] values with the offending
//! field named, so the CLI (and library callers) can print a diagnostic
//! instead of a backtrace.

use std::fmt;

/// Everything that can go wrong before or while building a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A scenario field (or cross-field constraint) is invalid.
    InvalidConfig {
        /// The offending field (dotted path for sub-configs).
        field: &'static str,
        /// What is wrong with it.
        message: String,
    },
    /// The workload sampler could not place every transmission under the
    /// `max_connections` cap.
    WorkloadInfeasible {
        /// Transmissions placed before giving up.
        assigned: usize,
        /// Transmissions requested by the scenario.
        requested: usize,
    },
    /// A snapshot file failed to decode: bad magic, version skew, length or
    /// checksum mismatch, truncation, or a structurally invalid field. The
    /// detail string is the codec's diagnostic.
    SnapshotCodec {
        /// Human-readable decode failure (from [`idpa_desim::CodecError`]).
        detail: String,
    },
    /// A snapshot file could not be read or written.
    SnapshotIo {
        /// The path involved.
        path: String,
        /// The underlying I/O failure, rendered to text.
        detail: String,
    },
    /// A structurally valid snapshot does not belong to this run: the
    /// stored configuration fingerprint (or a derived invariant) differs
    /// from the scenario being resumed.
    SnapshotMismatch {
        /// Which invariant failed.
        what: &'static str,
    },
}

impl SimError {
    /// Shorthand for an [`SimError::InvalidConfig`].
    #[must_use]
    pub fn invalid(field: &'static str, message: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            field,
            message: message.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, message } => {
                write!(f, "invalid scenario config: {field}: {message}")
            }
            SimError::WorkloadInfeasible {
                assigned,
                requested,
            } => write!(
                f,
                "workload assignment cannot satisfy max_connections \
                 (placed {assigned} of {requested} transmissions)"
            ),
            SimError::SnapshotCodec { detail } => {
                write!(f, "snapshot decode failed: {detail}")
            }
            SimError::SnapshotIo { path, detail } => {
                write!(f, "snapshot I/O failed for {path}: {detail}")
            }
            SimError::SnapshotMismatch { what } => {
                write!(f, "snapshot does not match this scenario: {what}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = SimError::invalid("degree", "must be < n_nodes (got 40 >= 20)");
        let s = e.to_string();
        assert!(s.contains("degree"), "{s}");
        assert!(s.contains("40 >= 20"), "{s}");
    }

    #[test]
    fn workload_error_reports_progress() {
        let e = SimError::WorkloadInfeasible {
            assigned: 180,
            requested: 200,
        };
        assert!(e.to_string().contains("180 of 200"));
    }
}
