//! The lazy node lifecycle's slab layer: sparse per-node runtime state.
//!
//! Under `--node-lifecycle lazy` a node's runtime state (probe cell,
//! reputation ledger) exists only while the node is *active*: the probe
//! cell materializes from the analytic churn schedule on first touch (see
//! [`idpa_overlay::LazyProbeSet`]) and is evicted back to nothing when
//! idle, and an initiator's fault ledger materializes on its first
//! recorded observation. Both re-materialize value-identically — the probe
//! cell because it is a pure function of (schedules, streams, tick), the
//! ledger because an absent ledger *is* the clean ledger (see
//! [`idpa_core::reputation::EdgeReputation`]'s sparse semantics) and
//! recorded fault counts are never thrown away.
//!
//! [`NodeSlab`] is the sweep driver: a deterministic, event-time-keyed
//! cadence that evicts idle probe cells. Eviction is value-invisible, so
//! the cadence is pure policy — any sweep schedule yields bit-identical
//! run results; only the residency statistics move.

use std::collections::HashMap;

use idpa_core::reputation::EdgeReputation;
use idpa_overlay::LazyProbeSet;

/// Storage for per-initiator fault ledgers.
#[derive(Debug, Clone)]
pub enum ReputationStore {
    /// One ledger per node, allocated up front — the eager lifecycle.
    Dense(Vec<EdgeReputation>),
    /// Ledgers materialize on the first recorded observation. An absent
    /// ledger reads as the shared clean ledger, which is value-identical
    /// to a fresh [`EdgeReputation`] — so reads never materialize.
    Sparse {
        /// Ledger dimension handed to on-demand materialization.
        n_nodes: usize,
        /// Materialized ledgers, keyed by initiator index.
        ledgers: HashMap<usize, EdgeReputation>,
        /// The shared read target for initiators with no ledger yet.
        clean: EdgeReputation,
    },
}

impl ReputationStore {
    /// The eager store: `n_nodes` clean ledgers.
    #[must_use]
    pub fn dense(n_nodes: usize) -> Self {
        ReputationStore::Dense(vec![EdgeReputation::new(n_nodes); n_nodes])
    }

    /// The lazy store: no ledgers until a fault is recorded.
    #[must_use]
    pub fn sparse(n_nodes: usize) -> Self {
        ReputationStore::Sparse {
            n_nodes,
            ledgers: HashMap::new(),
            clean: EdgeReputation::new(n_nodes),
        }
    }

    /// Initiator `i`'s ledger for reading. Sparse reads of an absent
    /// ledger return the clean ledger (score 1, nothing suppressed) —
    /// exactly what the dense store holds before the first observation.
    #[must_use]
    pub fn get(&self, i: usize) -> &EdgeReputation {
        match self {
            ReputationStore::Dense(v) => &v[i],
            ReputationStore::Sparse { ledgers, clean, .. } => ledgers.get(&i).unwrap_or(clean),
        }
    }

    /// Initiator `i`'s ledger for writing, materializing it if absent.
    pub fn get_mut(&mut self, i: usize) -> &mut EdgeReputation {
        match self {
            ReputationStore::Dense(v) => &mut v[i],
            ReputationStore::Sparse {
                n_nodes, ledgers, ..
            } => ledgers
                .entry(i)
                .or_insert_with(|| EdgeReputation::new(*n_nodes)),
        }
    }

    /// Number of ledgers currently allocated.
    #[must_use]
    pub fn materialized(&self) -> usize {
        match self {
            ReputationStore::Dense(v) => v.len(),
            ReputationStore::Sparse { ledgers, .. } => ledgers.len(),
        }
    }

    /// Summed heap estimate of all ledger observations. Equal across the
    /// two layouts for the same run: a dense ledger that never recorded
    /// anything holds no heap entries, so only the ledgers the sparse
    /// store would have materialized contribute.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        match self {
            ReputationStore::Dense(v) => v.iter().map(EdgeReputation::approx_bytes).sum(),
            ReputationStore::Sparse { ledgers, .. } => {
                ledgers.values().map(EdgeReputation::approx_bytes).sum()
            }
        }
    }

    /// Whitewashes relay `v` across every materialized ledger: each
    /// active entry for `v` is archived into its ledger's retired store
    /// (see [`EdgeReputation::whitewash`]) so the fresh identity reads
    /// clean while the evidence survives. An absent sparse ledger is the
    /// clean ledger and holds nothing for `v`, so skipping it is
    /// value-identical to the dense walk over empty entries.
    ///
    /// Returns `(archived, evaded)`: how many ledgers held an active
    /// entry for `v`, and in how many of those `v` was suppressed at the
    /// moment of the wash — the suppression the fresh identity escapes.
    pub fn whitewash_node(&mut self, v: idpa_overlay::NodeId) -> (usize, usize) {
        let mut archived = 0usize;
        let mut evaded = 0usize;
        let mut wash = |ledger: &mut EdgeReputation| {
            let suppressed = ledger.is_suppressed(v);
            if ledger.whitewash(v) {
                archived += 1;
                if suppressed {
                    evaded += 1;
                }
            }
        };
        match self {
            ReputationStore::Dense(ledgers) => ledgers.iter_mut().for_each(&mut wash),
            ReputationStore::Sparse { ledgers, .. } => {
                // Deterministic outcome regardless of map order: the wash
                // of one ledger never reads another, and the counters are
                // order-independent sums.
                ledgers.values_mut().for_each(&mut wash);
            }
        }
        (archived, evaded)
    }

    /// Snapshot export: `(initiator, ledger entries)` for every
    /// materialized ledger, sorted by initiator index. Dense stores export
    /// all `n` ledgers (empty ones included, so the restored layout is
    /// identical); sparse stores export exactly the materialized set, so
    /// residency statistics survive a resume.
    #[must_use]
    pub fn snapshot_ledgers(&self) -> Vec<(usize, LedgerEntries)> {
        match self {
            ReputationStore::Dense(v) => v
                .iter()
                .enumerate()
                .map(|(i, l)| (i, l.snapshot_entries()))
                .collect(),
            ReputationStore::Sparse { ledgers, .. } => {
                let mut out: Vec<(usize, LedgerEntries)> = ledgers
                    .iter()
                    .map(|(&i, l)| (i, l.snapshot_entries()))
                    .collect();
                out.sort_unstable_by_key(|e| e.0);
                out
            }
        }
    }

    /// Snapshot export of the retired (whitewashed) archives:
    /// `(initiator, retired rows)` for every ledger holding at least one
    /// retired generation, sorted by initiator index. Ledgers with empty
    /// archives export nothing under either layout, so the dense and
    /// sparse exports agree byte-for-byte.
    #[must_use]
    pub fn snapshot_retired(&self) -> Vec<(usize, RetiredEntries)> {
        let collect = |iter: &mut dyn Iterator<Item = (usize, &EdgeReputation)>| {
            let mut out: Vec<(usize, RetiredEntries)> = iter
                .map(|(i, l)| (i, l.snapshot_retired()))
                .filter(|(_, r)| !r.is_empty())
                .collect();
            out.sort_unstable_by_key(|e| e.0);
            out
        };
        match self {
            ReputationStore::Dense(v) => collect(&mut v.iter().enumerate()),
            ReputationStore::Sparse { ledgers, .. } => {
                collect(&mut ledgers.iter().map(|(&i, l)| (i, l)))
            }
        }
    }

    /// Restores retired archives exported by
    /// [`ReputationStore::snapshot_retired`]. Every initiator in the
    /// export had a materialized ledger at snapshot time (an archive is
    /// only ever created by washing a materialized active entry), so
    /// materializing through `get_mut` reproduces the interrupted run's
    /// residency exactly.
    pub fn restore_retired(&mut self, entries: &[(usize, RetiredEntries)]) {
        for (i, rows) in entries {
            self.get_mut(*i).restore_retired(rows);
        }
    }
}

/// One ledger's snapshot rows: `(relay, drops, timeouts, flagged)` per
/// recorded relay — the shape [`EdgeReputation::snapshot_entries`] exports.
pub type LedgerEntries = Vec<(usize, u32, u32, bool)>;

/// One ledger's retired archive rows: per relay, the
/// `(drops, timeouts, flagged)` of each whitewashed generation in wash
/// order — the shape [`EdgeReputation::snapshot_retired`] exports.
pub type RetiredEntries = Vec<(usize, Vec<(u32, u32, bool)>)>;

/// The idle-eviction sweep driver of the lazy lifecycle.
///
/// Sweeps are keyed to probe ticks of the event clock, so the cadence is a
/// deterministic function of simulation time — but since eviction is
/// value-invisible (evicted state reconstructs bit-identically on
/// re-touch), the cadence only shapes the residency statistics, never a
/// result.
#[derive(Debug, Clone)]
pub struct NodeSlab {
    period: f64,
    evict_idle_ticks: u64,
    /// Sweep every this many ticks — half the idle window, so a cell is
    /// evicted at most 1.5× the window after its last touch.
    sweep_every: u64,
    last_sweep_tick: u64,
}

impl NodeSlab {
    /// A sweeper evicting state idle for `evict_idle_ticks` probe ticks
    /// (of length `period` minutes each).
    #[must_use]
    pub fn new(evict_idle_ticks: u64, period: f64) -> Self {
        assert!(evict_idle_ticks >= 1, "idle window must be >= 1 tick");
        assert!(period > 0.0, "probe period must be positive");
        NodeSlab {
            period,
            evict_idle_ticks,
            sweep_every: (evict_idle_ticks / 2).max(1),
            last_sweep_tick: 0,
        }
    }

    /// Snapshot export: the tick of the last sweep that ran. This is the
    /// slab's only mutable state — the cadence parameters are rebuilt from
    /// configuration on resume.
    #[must_use]
    pub fn last_sweep_tick(&self) -> u64 {
        self.last_sweep_tick
    }

    /// Restores the last-sweep tick from a snapshot, so the post-resume
    /// sweep cadence continues exactly where the interrupted run left off.
    pub fn set_last_sweep_tick(&mut self, tick: u64) {
        self.last_sweep_tick = tick;
    }

    /// Runs an eviction sweep over `probes` if one is due at `now`.
    /// Returns the number of cells evicted (0 when no sweep ran).
    pub fn maybe_sweep(&mut self, probes: &LazyProbeSet, now: f64) -> usize {
        let tick = (now / self.period) as u64;
        if tick < self.last_sweep_tick + self.sweep_every {
            return 0;
        }
        self.last_sweep_tick = tick;
        probes.evict_idle(now, self.evict_idle_ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idpa_overlay::NodeId;

    #[test]
    fn sparse_reads_match_dense_before_any_write() {
        let dense = ReputationStore::dense(6);
        let sparse = ReputationStore::sparse(6);
        for i in 0..6 {
            for v in 0..6 {
                assert_eq!(
                    dense.get(i).score(NodeId(v)),
                    sparse.get(i).score(NodeId(v))
                );
                assert_eq!(
                    dense.get(i).is_suppressed(NodeId(v)),
                    sparse.get(i).is_suppressed(NodeId(v))
                );
            }
        }
        assert_eq!(sparse.materialized(), 0, "reads must not materialize");
        assert_eq!(dense.approx_bytes(), sparse.approx_bytes());
    }

    #[test]
    fn writes_materialize_and_stay_value_identical() {
        let mut dense = ReputationStore::dense(5);
        let mut sparse = ReputationStore::sparse(5);
        for store in [&mut dense, &mut sparse] {
            store.get_mut(2).record_drop(NodeId(4));
            store.get_mut(2).record_timeout(NodeId(4));
            store.get_mut(0).flag_cheater(NodeId(1));
        }
        assert_eq!(sparse.materialized(), 2);
        for i in 0..5 {
            assert_eq!(dense.get(i), sparse.get(i), "ledger {i}");
        }
        assert_eq!(dense.approx_bytes(), sparse.approx_bytes());
        assert!(sparse.get(2).is_suppressed(NodeId(4)));
    }

    #[test]
    fn whitewash_node_is_layout_invariant() {
        let mut dense = ReputationStore::dense(5);
        let mut sparse = ReputationStore::sparse(5);
        for store in [&mut dense, &mut sparse] {
            // Suppress node 4 in ledger 2, record-but-not-suppress it in
            // ledger 0, and leave ledger 1 untouched.
            for _ in 0..3 {
                store.get_mut(2).record_drop(NodeId(4));
            }
            store.get_mut(0).record_timeout(NodeId(4));
        }
        for store in [&mut dense, &mut sparse] {
            assert_eq!(store.whitewash_node(NodeId(4)), (2, 1));
            // Second wash: nothing active remains anywhere.
            assert_eq!(store.whitewash_node(NodeId(4)), (0, 0));
        }
        assert_eq!(dense.snapshot_retired(), sparse.snapshot_retired());
        assert_eq!(dense.snapshot_retired().len(), 2);
        // Fresh identity reads clean; the evidence survived.
        for store in [&dense, &sparse] {
            assert!(!store.get(2).is_suppressed(NodeId(4)));
            assert_eq!(store.get(2).score(NodeId(4)), 1.0);
            assert_eq!(store.get(2).retired_fault_count(NodeId(4)), 3);
        }
        // Round trip through a fresh store.
        let mut restored = ReputationStore::sparse(5);
        restored.restore_retired(&sparse.snapshot_retired());
        assert_eq!(restored.snapshot_retired(), sparse.snapshot_retired());
    }

    #[test]
    fn sweep_cadence_is_tick_gated() {
        use idpa_desim::rng::StreamFactory;
        use idpa_netmodel::NodeSchedule;
        use std::sync::Arc;
        let schedules = Arc::new(vec![
            NodeSchedule::from_sessions(vec![(0.0, 200.0)]),
            NodeSchedule::from_sessions(vec![(0.0, 200.0)]),
        ]);
        let neighbors = Arc::new(vec![vec![NodeId(1)], vec![NodeId(0)]]);
        let probes = LazyProbeSet::new_sparse(
            5.0,
            200.0,
            schedules,
            neighbors,
            None,
            StreamFactory::new(1),
        );
        let mut slab = NodeSlab::new(4, 5.0);
        let _ = probes.availability(NodeId(0), NodeId(1), 10.0);
        // Inside the first cadence window: no sweep.
        assert_eq!(slab.maybe_sweep(&probes, 5.0), 0);
        // Far past the idle window: the due sweep evicts the idle cell.
        assert_eq!(slab.maybe_sweep(&probes, 150.0), 1);
        assert_eq!(probes.residency().materialized, 0);
    }
}
