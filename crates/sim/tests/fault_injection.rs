//! Integration pins for the deterministic fault-injection layer.
//!
//! The two load-bearing guarantees:
//!
//! 1. **Zero-fault bit-identicality** — with every fault rate zero, a run is
//!    bit-identical to the pre-fault-layer build. The fingerprints below
//!    were captured on the commit *before* the fault layer landed, over the
//!    original result fields; any drift in the refactored formation/commit
//!    path shows up here as a changed constant.
//! 2. **Determinism under faults** — fault draws are pure functions of the
//!    `(pair, connection, attempt)` position, so faulty runs replicate
//!    bit-identically across probe modes and repeated executions, and
//!    degradation responds monotonically to the injected rates.

use idpa_desim::FaultConfig;
use idpa_sim::{ProbeMode, ProbeRngMode, RunResult, ScenarioConfig, SimulationRun};

/// FNV-1a over the pre-fault-layer result fields (bit patterns), matching
/// the baseline capture exactly — the new fault metrics are deliberately
/// excluded so the constant pins the legacy surface.
fn fingerprint(r: &RunResult) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for v in r
        .good_payoffs
        .iter()
        .chain(&r.malicious_payoffs)
        .chain(&r.node_totals)
        .chain([
            &r.avg_good_payoff,
            &r.avg_forwarder_set,
            &r.avg_path_length,
            &r.avg_path_quality,
            &r.routing_efficiency,
            &r.new_edge_fraction,
            &r.reformation_rate,
            &r.attack_exposure_rate,
            &r.avg_anonymity_degree,
        ])
    {
        eat(v.to_bits());
    }
    eat(r.connections);
    h
}

fn base(seed: u64, replacement: Option<u64>) -> ScenarioConfig {
    ScenarioConfig {
        neighbor_replacement_rounds: replacement,
        adversary_fraction: 0.2,
        probe_rng: ProbeRngMode::PerNode,
        ..ScenarioConfig::quick_test(seed)
    }
}

fn run(cfg: ScenarioConfig) -> RunResult {
    cfg.validate().expect("scenario must be valid");
    SimulationRun::execute(cfg)
}

/// `(seed, replacement, fingerprint, avg_good_payoff bits)` captured on the
/// pre-fault-layer commit (eager and lazy were already identical).
const BASELINE: [(u64, Option<u64>, u64, u64); 6] = [
    (1, None, 0xd51afc10a8e3c367, 0x40730bffb79ce582),
    (1, Some(3), 0x172c5eda5998b960, 0x406d05c4bfa7690d),
    (7, None, 0xb68cfd87107b7817, 0x4071c00b9e48bb2a),
    (7, Some(3), 0x604446ccd329adb4, 0x406ddf312fe95040),
    (42, None, 0x8e362e89db0da04a, 0x4074a18aa74a4ec1),
    (42, Some(3), 0x4a5899e5e47b947e, 0x4072fbb62ff024b6),
];

#[test]
fn zero_fault_runs_are_bit_identical_to_the_pre_fault_baseline() {
    for (seed, replacement, expect_fp, expect_avg) in BASELINE {
        for mode in [ProbeMode::Eager, ProbeMode::Lazy] {
            let r = run(ScenarioConfig {
                probe_mode: mode,
                ..base(seed, replacement)
            });
            assert_eq!(
                fingerprint(&r),
                expect_fp,
                "seed {seed} repl {replacement:?} {mode:?}: drifted from pre-fault baseline"
            );
            assert_eq!(r.avg_good_payoff.to_bits(), expect_avg);
            assert_eq!(r.connections, 200);
            // The fault surface reports a clean run.
            assert_eq!(r.delivery_ratio, 1.0);
            assert_eq!(r.retries_per_message, 0.0);
            assert_eq!(r.payment_shortfall, 0.0);
            assert_eq!(r.settlement_delay, 0.0);
            assert!(r.flagged_cheaters.is_empty());
            assert!(r.injected_cheaters.is_empty());
            assert_eq!(r.audit_discrepancies, 0);
        }
    }
}

#[test]
fn delivery_ratio_degrades_monotonically_in_drop_rate() {
    let ratios: Vec<f64> = [0.0, 0.05, 0.1, 0.2, 0.4]
        .into_iter()
        .map(|drop_rate| {
            let mut cfg = base(1, None);
            cfg.fault = FaultConfig {
                drop_rate,
                ..FaultConfig::default()
            };
            run(cfg).delivery_ratio
        })
        .collect();
    assert_eq!(ratios[0], 1.0, "zero drop rate loses nothing");
    for w in ratios.windows(2) {
        assert!(
            w[1] <= w[0],
            "delivery ratio must not improve with more drops: {ratios:?}"
        );
    }
    assert!(
        ratios[ratios.len() - 1] < 1.0,
        "a 40% drop rate must lose messages: {ratios:?}"
    );
}

#[test]
fn faulty_runs_are_deterministic_and_probe_mode_invariant() {
    let fault = FaultConfig {
        crash_rate: 0.03,
        drop_rate: 0.08,
        delay_rate: 0.2,
        cheat_fraction: 0.25,
        ..FaultConfig::default()
    };
    for seed in [1u64, 7] {
        for replacement in [None, Some(3)] {
            let mut cfg = base(seed, replacement);
            cfg.fault = fault;
            let eager = run(ScenarioConfig {
                probe_mode: ProbeMode::Eager,
                ..cfg
            });
            let lazy = run(ScenarioConfig {
                probe_mode: ProbeMode::Lazy,
                ..cfg
            });
            assert_eq!(
                eager, lazy,
                "seed {seed} repl {replacement:?}: probe modes diverged under faults"
            );
            let again = run(ScenarioConfig {
                probe_mode: ProbeMode::Lazy,
                ..cfg
            });
            assert_eq!(lazy, again, "faulty run must replicate bit-identically");
        }
    }
}

#[test]
fn retries_recover_most_drops_and_are_bounded() {
    let mut cfg = base(3, None);
    cfg.fault = FaultConfig {
        drop_rate: 0.15,
        delay_rate: 0.3,
        ..FaultConfig::default()
    };
    let r = run(cfg);
    assert!(r.retries_per_message > 0.0, "drops must trigger retries");
    assert!(
        r.retries_per_message <= f64::from(cfg.fault.max_retries),
        "retries are bounded per message"
    );
    assert!(
        r.reformation_latency > 0.0,
        "retried deliveries pay reformation latency"
    );
    // Bounded retries recover most losses at this rate.
    assert!(
        r.delivery_ratio > 0.9,
        "delivery ratio {} too low for retry recovery",
        r.delivery_ratio
    );
    assert!(r.delivery_ratio < 1.0 || r.connections == 200);
}

#[test]
fn corrupting_cheaters_are_flagged_and_shortfall_is_audited() {
    let mut cfg = base(2, None);
    cfg.fault = FaultConfig {
        cheat_fraction: 0.35,
        cheat_corrupt_share: 1.0, // corrupt-only: every cheat leaves evidence
        ..FaultConfig::default()
    };
    let r = run(cfg);
    assert!(
        !r.injected_cheaters.is_empty(),
        "a 35% cheat fraction over 20 nodes must inject cheaters"
    );
    // Accumulated over the run's bundles, reconstructed-path validation
    // flags every injected cheater — and never an honest forwarder. (A
    // cheater masked by an upstream cheater on one connection is exposed on
    // any connection where it is the most-upstream corrupter; at this seed
    // every cheater acts unmasked at least once.)
    assert_eq!(
        r.flagged_cheaters, r.injected_cheaters,
        "validation must flag exactly the injected cheater set"
    );
    assert!(r.payment_shortfall > 0.0, "corruption destroys payment");
    assert!(
        r.audit_discrepancies > 0,
        "shortfall must reach the audit log"
    );
    // Corruption never blocks delivery — only confirmation drops do.
    assert_eq!(r.delivery_ratio, 1.0);
}

#[test]
fn bank_outages_delay_settlement_without_touching_routing() {
    let mut with_outages = base(4, None);
    with_outages.fault = FaultConfig {
        bank_downtime: 0.3,
        ..FaultConfig::default()
    };
    let faulty = run(with_outages);
    let clean = run(base(4, None));
    assert!(
        faulty.settlement_delay > 0.0,
        "a 30% bank downtime must delay some settlements"
    );
    // Bank unavailability is orthogonal to the forwarding layer.
    assert_eq!(faulty.delivery_ratio, 1.0);
    assert_eq!(faulty.connections, clean.connections);
    assert_eq!(faulty.avg_good_payoff, clean.avg_good_payoff);
}
