//! Service-mode checkpoint/resume equivalence: **interrupt anywhere,
//! resume, and the completed run is indistinguishable from an
//! uninterrupted one** — across probe modes, node lifecycles, settlement
//! modes, workloads, shard counts and live fault plans. Plus the two
//! backstops that pin service mode to the pre-service codebase: the PR 4
//! fingerprint baselines reproduce through `run_service`, and a closed
//! workload without service flags is byte-identical to
//! [`SimulationRun::execute`].
//!
//! The sweep tops 256 cases and asserts the count, so it can't silently
//! shrink.

use idpa_desim::{Engine, FaultConfig, FaultResponse, SimTime};
use idpa_sim::experiments::Options;
use idpa_sim::snapshot::{encode, restore};
use idpa_sim::{
    run_service, NodeLifecycle, ProbeMode, ProbeRngMode, RunResult, ScenarioConfig, ServiceOptions,
    SettlementMode, SimulationRun, WorkloadMode, World,
};

/// FNV-1a over the pre-fault-layer result fields — the same fingerprint
/// `tests/fault_injection.rs` and `tests/lifecycle_equivalence.rs` pin,
/// duplicated so this suite stands alone.
fn fingerprint(r: &RunResult) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for v in r
        .good_payoffs
        .iter()
        .chain(&r.malicious_payoffs)
        .chain(&r.node_totals)
        .chain([
            &r.avg_good_payoff,
            &r.avg_forwarder_set,
            &r.avg_path_length,
            &r.avg_path_quality,
            &r.routing_efficiency,
            &r.new_edge_fraction,
            &r.reformation_rate,
            &r.attack_exposure_rate,
            &r.avg_anonymity_degree,
        ])
    {
        eat(v.to_bits());
    }
    eat(r.connections);
    h
}

/// `(seed, replacement, fingerprint, avg_good_payoff bits)` — the PR 4
/// pins, identical constants to `tests/fault_injection.rs`.
const BASELINE: [(u64, Option<u64>, u64, u64); 6] = [
    (1, None, 0xd51afc10a8e3c367, 0x40730bffb79ce582),
    (1, Some(3), 0x172c5eda5998b960, 0x406d05c4bfa7690d),
    (7, None, 0xb68cfd87107b7817, 0x4071c00b9e48bb2a),
    (7, Some(3), 0x604446ccd329adb4, 0x406ddf312fe95040),
    (42, None, 0x8e362e89db0da04a, 0x4074a18aa74a4ec1),
    (42, Some(3), 0x4a5899e5e47b947e, 0x4072fbb62ff024b6),
];

fn base(seed: u64, replacement: Option<u64>) -> ScenarioConfig {
    ScenarioConfig {
        neighbor_replacement_rounds: replacement,
        adversary_fraction: 0.2,
        probe_rng: ProbeRngMode::PerNode,
        ..ScenarioConfig::quick_test(seed)
    }
}

/// The two live fault plans of the lifecycle suite: one static, one
/// adaptive with receipt corruption.
fn profiles() -> [FaultConfig; 2] {
    [
        FaultConfig {
            crash_rate: 0.03,
            drop_rate: 0.08,
            delay_rate: 0.2,
            cheat_fraction: 0.25,
            ..FaultConfig::default()
        },
        FaultConfig {
            crash_rate: 0.06,
            drop_rate: 0.12,
            cheat_fraction: 0.4,
            cheat_corrupt_share: 0.8,
            response: FaultResponse::Adaptive,
            ..FaultConfig::default()
        },
    ]
}

/// Interrupts `cfg` after `budget` events, snapshots, restores, runs the
/// rest, and checks the final result equals the uninterrupted run's.
fn interrupt_resume_matches(cfg: &ScenarioConfig, budget: u64, baseline: &RunResult) {
    let horizon = SimTime::new(cfg.churn.horizon);
    let world = World::generate(cfg);
    let mut run = SimulationRun::new(*cfg, world);
    let mut engine = Engine::new();
    run.schedule_all(&mut engine);
    engine.set_event_budget(budget);
    // Most budgets interrupt mid-run (the interesting case); a few short
    // configs exhaust the calendar first, which snapshots the end state —
    // still a valid resume point, so no assertion on the stop reason.
    engine.run(&mut run, Some(horizon));

    let bytes = encode(&run, &engine);
    drop((run, engine));
    let (mut resumed, mut engine) = restore(cfg, &bytes).expect("restore must succeed");
    engine.run(&mut resumed, Some(horizon));
    assert_eq!(
        baseline,
        &resumed.finish(),
        "resume diverged (budget {budget})"
    );
}

#[test]
fn interrupt_and_resume_reproduces_uninterrupted_runs_across_the_matrix() {
    let mut cases = 0usize;

    // Part 1 — the full mode matrix, library-level: 3 seeds x 3
    // (probe, lifecycle) x 2 settlements x 2 fault profiles x 3 shard
    // counts x 2 workloads = 216 cases, each at a distinct interrupt
    // point (the budget walks with the case index).
    for seed in [1u64, 7, 42] {
        for (probe_mode, lifecycle) in [
            (ProbeMode::Lazy, NodeLifecycle::Eager),
            (ProbeMode::Lazy, NodeLifecycle::Lazy),
            (ProbeMode::Eager, NodeLifecycle::Eager),
        ] {
            for settlement in [SettlementMode::PerBundle, SettlementMode::Epoch] {
                for fault in profiles() {
                    for shards in [1usize, 4, 16] {
                        for workload in [WorkloadMode::Closed, WorkloadMode::Open] {
                            let mut cfg = base(seed, Some(3));
                            cfg.probe_mode = probe_mode;
                            cfg.node_lifecycle = lifecycle;
                            cfg.evict_idle_ticks = 2;
                            cfg.settlement = settlement;
                            cfg.fault = fault;
                            if fault.response == FaultResponse::Adaptive {
                                cfg.weights = (0.4, 0.4);
                                cfg.reputation_weight = 0.2;
                            }
                            cfg.history_shards = shards;
                            cfg.workload = workload;
                            if workload == WorkloadMode::Open {
                                cfg.open_arrival_rate = 0.02;
                                cfg.window_len = cfg.churn.horizon / 8.0;
                                cfg.window_warmup = cfg.churn.horizon / 8.0;
                            }
                            cfg.validate().expect("matrix scenario must be valid");

                            let baseline = SimulationRun::execute(cfg);
                            let budget = 50 + (cases as u64 * 37) % 400;
                            interrupt_resume_matches(&cfg, budget, &baseline);
                            cases += 1;
                        }
                    }
                }
            }
        }
    }

    // Part 2 — PR 4 fingerprint pins through the service runner: a closed
    // workload with no service flags reproduces the pinned baselines AND
    // equals `execute` byte for byte. 6 pins x 3 shard counts = 18 cases.
    for (seed, replacement, expect_fp, expect_avg) in BASELINE {
        for shards in [1usize, 4, 16] {
            let cfg = ScenarioConfig {
                history_shards: shards,
                ..base(seed, replacement)
            };
            let direct = SimulationRun::execute(cfg);
            let service = run_service(cfg, &ServiceOptions::default()).expect("service run");
            assert_eq!(direct, service, "service mode must not perturb runs");
            assert_eq!(
                fingerprint(&service),
                expect_fp,
                "seed {seed} repl {replacement:?}: service run drifted from the PR 4 baseline"
            );
            assert_eq!(service.avg_good_payoff.to_bits(), expect_avg);
            assert!(!service.interrupted);
            cases += 1;
        }
    }

    // Part 3 — on-disk checkpoint cycle through `run_service`: checkpoint
    // periodically, resume the last checkpoint, same result. Covers the
    // open workload with windowed metrics and epoch settlement. 8 cases.
    let dir = std::env::temp_dir().join("idpa-service-resume-suite");
    std::fs::create_dir_all(&dir).expect("temp dir");
    for (i, seed) in [3u64, 5, 11, 13].iter().enumerate() {
        for open in [false, true] {
            let mut cfg = base(*seed, Some(3));
            cfg.fault = profiles()[i % 2];
            if cfg.fault.response == FaultResponse::Adaptive {
                cfg.weights = (0.4, 0.4);
                cfg.reputation_weight = 0.2;
            }
            cfg.settlement = if open {
                SettlementMode::Epoch
            } else {
                SettlementMode::PerBundle
            };
            if open {
                cfg.workload = WorkloadMode::Open;
                cfg.open_arrival_rate = 0.03;
                cfg.window_len = cfg.churn.horizon / 6.0;
                cfg.window_warmup = 0.0;
            }
            let path = dir.join(format!("case-{seed}-{open}.snap"));
            let baseline = SimulationRun::execute(cfg);
            let ckpt = run_service(
                cfg,
                &ServiceOptions {
                    snapshot_every: Some(cfg.churn.horizon / 5.0),
                    snapshot_path: Some(path.clone()),
                    ..ServiceOptions::default()
                },
            )
            .expect("checkpointing run");
            assert_eq!(baseline, ckpt, "checkpointing must not perturb the run");
            let resumed = run_service(
                cfg,
                &ServiceOptions {
                    resume: Some(path.clone()),
                    ..ServiceOptions::default()
                },
            )
            .expect("resumed run");
            assert_eq!(baseline, resumed, "resumed run diverged");
            std::fs::remove_file(&path).ok();
            cases += 1;
        }
    }

    // Part 4 — thread invariance: replicated service-equivalent runs are
    // byte-identical at any worker count (the service path itself is
    // sequential; replication is where threads enter). 8 reps x 2 = 16
    // cases.
    let replicated: Vec<Vec<RunResult>> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            let opts = Options {
                reps: 8,
                quick: true,
                threads,
                fault: profiles()[0],
                ..Options::default()
            };
            idpa_sim::experiments::replicate_base(&opts)
        })
        .collect();
    for (rep, first) in replicated[0].iter().enumerate() {
        for other in [1, 2] {
            assert_eq!(
                first, &replicated[other][rep],
                "rep {rep}: replication diverged across thread counts"
            );
            cases += 1;
        }
    }

    assert!(cases >= 256, "equivalence sweep shrank to {cases} cases");
}

/// Graceful shutdown end to end: a zero wall budget interrupts
/// immediately, writes a resumable checkpoint, and reports partial
/// aggregates with `interrupted = true`; resuming completes to the exact
/// uninterrupted result.
#[test]
fn graceful_shutdown_checkpoints_and_resumes() {
    let dir = std::env::temp_dir().join("idpa-service-shutdown-suite");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("shutdown.snap");
    let mut cfg = base(7, Some(3));
    cfg.fault = profiles()[1];
    cfg.weights = (0.4, 0.4);
    cfg.reputation_weight = 0.2;

    let partial = run_service(
        cfg,
        &ServiceOptions {
            snapshot_path: Some(path.clone()),
            max_wall_secs: Some(0),
            ..ServiceOptions::default()
        },
    )
    .expect("interrupted run");
    assert!(partial.interrupted);

    let resumed = run_service(
        cfg,
        &ServiceOptions {
            resume: Some(path.clone()),
            ..ServiceOptions::default()
        },
    )
    .expect("resume");
    assert!(!resumed.interrupted);
    assert_eq!(SimulationRun::execute(cfg), resumed);
    std::fs::remove_file(&path).ok();
}
