//! The lazy node lifecycle's load-bearing property: `--node-lifecycle
//! lazy` is **value-identical** to the eager default. Materialization on
//! first touch, idle eviction, and re-materialization are all invisible in
//! the results — only the resident-state metrics
//! (`peak_materialized_nodes`, `node_evictions`, `slab_bytes`) differ, and
//! those are zeroed before comparison.
//!
//! The suite sweeps well over 256 cases (each case = one run compared
//! against a pinned fingerprint or an eager reference run) and asserts the
//! count, so shrinking the sweep by accident fails loudly.

use idpa_desim::FaultConfig;
use idpa_sim::experiments::Options;
use idpa_sim::{
    FaultResponse, NodeLifecycle, ProbeMode, ProbeRngMode, RunResult, ScenarioConfig, SimulationRun,
};

/// FNV-1a over the pre-fault-layer result fields (bit patterns) — the same
/// fingerprint `tests/fault_injection.rs` pins, duplicated so this suite
/// stands alone. It reads none of the resident-state metrics, so the PR 4
/// pins apply to lazy-lifecycle runs unchanged.
fn fingerprint(r: &RunResult) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for v in r
        .good_payoffs
        .iter()
        .chain(&r.malicious_payoffs)
        .chain(&r.node_totals)
        .chain([
            &r.avg_good_payoff,
            &r.avg_forwarder_set,
            &r.avg_path_length,
            &r.avg_path_quality,
            &r.routing_efficiency,
            &r.new_edge_fraction,
            &r.reformation_rate,
            &r.attack_exposure_rate,
            &r.avg_anonymity_degree,
        ])
    {
        eat(v.to_bits());
    }
    eat(r.connections);
    h
}

/// Zeroes the resident-state metrics — the only fields the lifecycle is
/// *allowed* to change.
fn normalized(mut r: RunResult) -> RunResult {
    r.peak_materialized_nodes = 0;
    r.node_evictions = 0;
    r.slab_bytes = 0;
    r
}

fn base(seed: u64, replacement: Option<u64>) -> ScenarioConfig {
    ScenarioConfig {
        neighbor_replacement_rounds: replacement,
        adversary_fraction: 0.2,
        probe_rng: ProbeRngMode::PerNode,
        ..ScenarioConfig::quick_test(seed)
    }
}

fn run(cfg: ScenarioConfig) -> RunResult {
    cfg.validate().expect("scenario must be valid");
    SimulationRun::execute(cfg)
}

/// `(seed, replacement, fingerprint, avg_good_payoff bits)` — the PR 4
/// pins, identical constants to `tests/fault_injection.rs`.
const BASELINE: [(u64, Option<u64>, u64, u64); 6] = [
    (1, None, 0xd51afc10a8e3c367, 0x40730bffb79ce582),
    (1, Some(3), 0x172c5eda5998b960, 0x406d05c4bfa7690d),
    (7, None, 0xb68cfd87107b7817, 0x4071c00b9e48bb2a),
    (7, Some(3), 0x604446ccd329adb4, 0x406ddf312fe95040),
    (42, None, 0x8e362e89db0da04a, 0x4074a18aa74a4ec1),
    (42, Some(3), 0x4a5899e5e47b947e, 0x4072fbb62ff024b6),
];

#[test]
fn lazy_lifecycle_is_value_identical_to_eager_across_modes_shards_threads() {
    let mut cases = 0usize;

    // Part 1 — fingerprint pins: every pinned (seed, replacement) config
    // run under the LAZY lifecycle, across shard counts and idle-eviction
    // windows (1 tick = maximal touch/evict/re-touch churn), reproduces
    // the PR 4 fingerprint exactly. 6 x 3 x 3 = 54 cases.
    for (seed, replacement, expect_fp, expect_avg) in BASELINE {
        for shards in [1usize, 4, 16] {
            for evict in [1u64, 4, 64] {
                let r = run(ScenarioConfig {
                    node_lifecycle: NodeLifecycle::Lazy,
                    evict_idle_ticks: evict,
                    history_shards: shards,
                    ..base(seed, replacement)
                });
                assert_eq!(
                    fingerprint(&r),
                    expect_fp,
                    "seed {seed} repl {replacement:?} shards {shards} evict {evict}: \
                     lazy lifecycle drifted from the PR 4 baseline"
                );
                assert_eq!(r.avg_good_payoff.to_bits(), expect_avg);
                cases += 1;
            }
        }
    }

    // Part 2 — active-fault equivalence: under live fault plans (crashes,
    // drops, cheaters — the paths that touch the reputation ledgers), the
    // lazy lifecycle's full RunResult equals the eager reference after
    // normalizing the resident metrics, across probe modes, shard counts,
    // and eviction windows; and replays identically.
    // 8 seeds x 3 replacements x 2 profiles x (4 + 1) = 240 cases.
    let profiles = [
        FaultConfig {
            crash_rate: 0.03,
            drop_rate: 0.08,
            delay_rate: 0.2,
            cheat_fraction: 0.25,
            ..FaultConfig::default()
        },
        FaultConfig {
            crash_rate: 0.06,
            drop_rate: 0.12,
            cheat_fraction: 0.4,
            cheat_corrupt_share: 0.8,
            response: FaultResponse::Adaptive,
            ..FaultConfig::default()
        },
    ];
    for seed in [1u64, 2, 3, 5, 7, 9, 11, 42] {
        for replacement in [None, Some(2), Some(3)] {
            for fault in profiles {
                let mut cfg = base(seed, replacement);
                cfg.fault = fault;
                if fault.response == FaultResponse::Adaptive {
                    cfg.weights = (0.4, 0.4);
                    cfg.reputation_weight = 0.2;
                }
                let eager = normalized(run(ScenarioConfig {
                    node_lifecycle: NodeLifecycle::Eager,
                    ..cfg
                }));
                for (mode, shards, evict) in [
                    (ProbeMode::Lazy, 1usize, 1u64),
                    (ProbeMode::Lazy, 4, 2),
                    (ProbeMode::Eager, 16, 1),
                    (ProbeMode::Lazy, 20, 8),
                ] {
                    let lazy = run(ScenarioConfig {
                        node_lifecycle: NodeLifecycle::Lazy,
                        probe_mode: mode,
                        history_shards: shards,
                        evict_idle_ticks: evict,
                        ..cfg
                    });
                    assert_eq!(
                        eager,
                        normalized(lazy),
                        "seed {seed} repl {replacement:?} {mode:?} shards {shards} \
                         evict {evict}: lazy lifecycle diverged under faults"
                    );
                    cases += 1;
                }
                let replay = run(ScenarioConfig {
                    node_lifecycle: NodeLifecycle::Lazy,
                    evict_idle_ticks: 1,
                    ..cfg
                });
                assert_eq!(
                    eager,
                    normalized(replay),
                    "seed {seed}: lazy replay diverged"
                );
                cases += 1;
            }
        }
    }

    // Part 3 — thread invariance: lazy-lifecycle replications are
    // byte-identical at any worker count. 8 reps x 2 = 16 cases.
    let replicated: Vec<Vec<RunResult>> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            let opts = Options {
                reps: 8,
                quick: true,
                threads,
                fault: profiles[0],
                node_lifecycle: NodeLifecycle::Lazy,
                ..Options::default()
            };
            idpa_sim::experiments::replicate_base(&opts)
        })
        .collect();
    for (rep, base) in replicated[0].iter().enumerate() {
        for other in [1, 2] {
            assert_eq!(
                base, &replicated[other][rep],
                "rep {rep}: lazy replication diverged across thread counts"
            );
            cases += 1;
        }
    }

    assert!(
        cases >= 256,
        "property sweep shrank to {cases} cases (< 256)"
    );
}

/// The machinery actually cycles: with a 1-tick idle window the lazy run
/// must evict and re-materialize (guarding the identity above against a
/// dead eviction path), and the resident metrics must be populated.
#[test]
fn lazy_lifecycle_actually_evicts_and_rematerializes() {
    let r = run(ScenarioConfig {
        node_lifecycle: NodeLifecycle::Lazy,
        evict_idle_ticks: 1,
        ..base(7, Some(3))
    });
    assert!(r.node_evictions > 0, "no evictions with a 1-tick window");
    assert!(r.peak_materialized_nodes > 0);
    assert!(r.slab_bytes > 0);
}

/// At scale the resident set is bounded by active traffic, not N: the
/// scale scenario's fixed 512-pair workload touches a saturating set of
/// nodes (~3k: initiators, responders, forwarders and their probed
/// neighbors), so at N = 20,000 peak residency stays far below N — the
/// same absolute working set the `node_lifecycle` bench bounds at N = 10⁶.
#[test]
fn scale_run_keeps_residency_below_node_count() {
    let r = run(ScenarioConfig::scale(20_000, 5));
    assert!(
        r.peak_materialized_nodes < 20_000 / 4,
        "peak residency {} is not O(active) at N=20000",
        r.peak_materialized_nodes
    );
    assert!(r.node_evictions > 0, "idle sweeps must run at scale");
    assert!(r.connections > 0, "scale run formed no connections");
}
