//! Epoch-batched settlement's load-bearing property: `--settlement epoch`
//! is **economically identical** to the per-bundle default. Payoffs,
//! delivery, payment shortfall, flagged cheaters and audit discrepancies
//! are all mode-invariant — batching changes *when* settlement work
//! happens and how many bank operations it costs, never who gets paid
//! what. Only the settlement-delay model (a bank outage stalls an epoch
//! boundary instead of a bundle) and the four epoch metrics may differ,
//! and those are zeroed before comparison.
//!
//! The suite sweeps well over 256 cases (each case = one epoch-mode run
//! compared against its per-bundle reference, or a replay) and asserts
//! the count, so shrinking the sweep by accident fails loudly.

use idpa_desim::FaultConfig;
use idpa_sim::{FaultResponse, RunResult, ScenarioConfig, SettlementMode, SimulationRun};

/// Zeroes the fields epoch settlement is *allowed* to change: the delay
/// model and the epoch operation counters.
fn normalized(mut r: RunResult) -> RunResult {
    r.settlement_delay = 0.0;
    r.epochs_settled = 0;
    r.settlement_ops_per_epoch = 0.0;
    r.epoch_netting_ratio = 0.0;
    r.batch_verify_throughput = 0.0;
    r
}

fn run(cfg: ScenarioConfig) -> RunResult {
    cfg.validate().expect("scenario must be valid");
    SimulationRun::execute(cfg)
}

/// Fault profiles covering the settlement-relevant axes: static faults
/// with receipt-corrupting cheaters, the adaptive response (in-run
/// flagging feeds routing), and heavy bank outages (the delay model's
/// stress case).
fn profiles() -> [FaultConfig; 3] {
    [
        FaultConfig {
            crash_rate: 0.03,
            drop_rate: 0.08,
            cheat_fraction: 0.25,
            cheat_corrupt_share: 0.7,
            ..FaultConfig::default()
        },
        FaultConfig {
            crash_rate: 0.05,
            drop_rate: 0.10,
            cheat_fraction: 0.4,
            cheat_corrupt_share: 0.8,
            response: FaultResponse::Adaptive,
            ..FaultConfig::default()
        },
        FaultConfig {
            drop_rate: 0.05,
            cheat_fraction: 0.2,
            bank_downtime: 0.3,
            bank_outage_mean: 60.0,
            ..FaultConfig::default()
        },
    ]
}

fn base(seed: u64, fault: FaultConfig) -> ScenarioConfig {
    let mut cfg = ScenarioConfig {
        adversary_fraction: 0.2,
        fault,
        ..ScenarioConfig::quick_test(seed)
    };
    if fault.response == FaultResponse::Adaptive {
        cfg.weights = (0.4, 0.4);
        cfg.reputation_weight = 0.2;
    }
    cfg
}

#[test]
fn epoch_settlement_is_economically_identical_to_per_bundle() {
    let mut cases = 0usize;
    // Epoch lengths spanning the interesting boundary structure: many
    // short windows, the default-ish 240, a single mid-run boundary, and
    // one longer than the 1440-minute horizon (everything settles in the
    // finish-time tail flush).
    let lengths = [30.0, 120.0, 240.0, 720.0, 2000.0];
    for seed in [
        1u64, 2, 3, 5, 7, 9, 11, 13, 17, 19, 23, 29, 31, 37, 41, 42, 77, 101,
    ] {
        for fault in profiles() {
            let cfg = base(seed, fault);
            let reference = normalized(run(cfg));
            for epoch_length in lengths {
                let epoch = run(ScenarioConfig {
                    settlement: SettlementMode::Epoch,
                    epoch_length,
                    ..cfg
                });
                if epoch.connections > 0 {
                    assert!(
                        epoch.epochs_settled > 0,
                        "seed {seed} L={epoch_length}: evidence was never settled"
                    );
                }
                assert_eq!(
                    reference,
                    normalized(epoch),
                    "seed {seed} L={epoch_length}: epoch settlement changed the economics"
                );
                cases += 1;
            }
        }
    }

    // Replay determinism: the epoch arm reproduces itself bit-for-bit,
    // including the delay model and operation counters.
    for seed in [1u64, 7, 42] {
        for fault in profiles() {
            let cfg = ScenarioConfig {
                settlement: SettlementMode::Epoch,
                epoch_length: 120.0,
                ..base(seed, fault)
            };
            assert_eq!(run(cfg), run(cfg), "seed {seed}: epoch replay diverged");
            cases += 1;
        }
    }

    assert!(
        cases >= 256,
        "property sweep shrank to {cases} cases (< 256)"
    );
}

/// The batching machinery actually amortizes: with short epochs every
/// boundary settles a small window (ops per epoch stays bounded), and the
/// netting ratio exceeds 1 — multiple receipts collapse into each payout.
#[test]
fn epoch_batching_amortizes_bank_operations() {
    let cfg = ScenarioConfig {
        settlement: SettlementMode::Epoch,
        epoch_length: 120.0,
        ..base(7, profiles()[0])
    };
    let r = run(cfg);
    assert!(r.epochs_settled > 1, "expected multiple settled epochs");
    assert!(
        r.epoch_netting_ratio > 1.0,
        "netting ratio {} should exceed 1 (receipts per payout op)",
        r.epoch_netting_ratio
    );
    assert!(
        r.batch_verify_throughput > 1.0,
        "batch throughput {} should exceed 1 (receipts per batch call)",
        r.batch_verify_throughput
    );
    assert!(r.settlement_ops_per_epoch > 0.0);
}

/// Under bank outages the epoch delay model waits for the first bank-up
/// instant at or after the epoch boundary — never earlier than the
/// boundary itself would allow, and zero-delay only if every pair's last
/// completion lands exactly on an up boundary.
#[test]
fn epoch_delay_model_waits_for_epoch_boundaries() {
    let fault = profiles()[2]; // heavy bank outages
    let per_bundle = run(base(11, fault));
    let epoch = run(ScenarioConfig {
        settlement: SettlementMode::Epoch,
        epoch_length: 240.0,
        ..base(11, fault)
    });
    // Per-bundle settles as soon as the bank is up after each pair's last
    // completion; the epoch must additionally wait out its boundary, so
    // its mean delay can only be larger (or equal in degenerate cases).
    assert!(
        epoch.settlement_delay >= per_bundle.settlement_delay,
        "epoch delay {} < per-bundle delay {}",
        epoch.settlement_delay,
        per_bundle.settlement_delay
    );
}
