//! Replication fan-out determinism: mapping `SimulationRun::execute` over
//! replication seeds with [`idpa_desim::pool::parallel_map`] must be
//! bit-identical at any worker count — the pool only changes which thread
//! computes each replication, never what is computed.

use idpa_desim::pool::parallel_map;
use idpa_sim::{RunResult, ScenarioConfig, SimulationRun};

const REPS: usize = 6;

fn replicate(threads: usize) -> Vec<RunResult> {
    parallel_map(threads, REPS, |rep| {
        SimulationRun::execute(ScenarioConfig::quick_test(0xD5E1 + rep as u64))
    })
}

/// Every f64 in a `RunResult`, as raw bits, so equality is exact.
fn fingerprint(results: &[RunResult]) -> Vec<u64> {
    let mut bits = Vec::new();
    for r in results {
        for x in r
            .good_payoffs
            .iter()
            .chain(&r.malicious_payoffs)
            .chain(&r.node_totals)
        {
            bits.push(x.to_bits());
        }
        for x in [
            r.avg_good_payoff,
            r.avg_forwarder_set,
            r.avg_path_length,
            r.avg_path_quality,
            r.routing_efficiency,
            r.new_edge_fraction,
            r.reformation_rate,
            r.attack_exposure_rate,
            r.avg_anonymity_degree,
        ] {
            bits.push(x.to_bits());
        }
        bits.push(r.connections);
    }
    bits
}

#[test]
fn replication_results_bit_identical_across_pool_sizes() {
    let baseline = fingerprint(&replicate(1));
    assert!(!baseline.is_empty());
    for threads in [2, 8] {
        assert_eq!(
            fingerprint(&replicate(threads)),
            baseline,
            "replication results diverged at {threads} worker threads"
        );
    }
}
