//! Integration pins for the deterministic adversary-strategy layer.
//!
//! The load-bearing guarantees:
//!
//! 1. **Zero-rate byte-identicality** — with every adversary rate zero, the
//!    plan is never constructed, no adversary RNG stream is consumed, and a
//!    run is bit-identical to the pre-adversary-layer build. The PR 4
//!    fingerprint constants below were captured before the fault layer
//!    landed and have survived every layer since; they must keep
//!    reproducing across probe modes, node lifecycles and shard counts.
//! 2. **Whitewash rejoin properties** — a rejoin archives the shed
//!    identity's evidence (it is never destroyed) and the fresh identity's
//!    ledger starts clean; the archives survive snapshot/resume
//!    bit-identically at arbitrary interrupt points, composing with the
//!    full service-mode matrix (≥ 256 cases, count asserted).
//! 3. **Clique detection** — at paper scale the cross-confirmation check
//!    flags at least 90% of phantom-forwarding payouts; without it every
//!    phantom is paid.

use idpa_desim::{AdversaryConfig, Engine, FaultConfig, FaultResponse, SimTime};
use idpa_sim::snapshot::{encode, restore};
use idpa_sim::{
    NodeLifecycle, ProbeMode, ProbeRngMode, RunResult, ScenarioConfig, SettlementMode,
    SimulationRun, World,
};

/// FNV-1a over the pre-fault-layer result fields — the same fingerprint
/// `tests/fault_injection.rs` and `tests/service_resume.rs` pin, duplicated
/// so this suite stands alone.
fn fingerprint(r: &RunResult) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for v in r
        .good_payoffs
        .iter()
        .chain(&r.malicious_payoffs)
        .chain(&r.node_totals)
        .chain([
            &r.avg_good_payoff,
            &r.avg_forwarder_set,
            &r.avg_path_length,
            &r.avg_path_quality,
            &r.routing_efficiency,
            &r.new_edge_fraction,
            &r.reformation_rate,
            &r.attack_exposure_rate,
            &r.avg_anonymity_degree,
        ])
    {
        eat(v.to_bits());
    }
    eat(r.connections);
    h
}

/// `(seed, replacement, fingerprint, avg_good_payoff bits)` — the PR 4
/// pins, identical constants to `tests/fault_injection.rs`.
const BASELINE: [(u64, Option<u64>, u64, u64); 6] = [
    (1, None, 0xd51afc10a8e3c367, 0x40730bffb79ce582),
    (1, Some(3), 0x172c5eda5998b960, 0x406d05c4bfa7690d),
    (7, None, 0xb68cfd87107b7817, 0x4071c00b9e48bb2a),
    (7, Some(3), 0x604446ccd329adb4, 0x406ddf312fe95040),
    (42, None, 0x8e362e89db0da04a, 0x4074a18aa74a4ec1),
    (42, Some(3), 0x4a5899e5e47b947e, 0x4072fbb62ff024b6),
];

fn base(seed: u64, replacement: Option<u64>) -> ScenarioConfig {
    ScenarioConfig {
        neighbor_replacement_rounds: replacement,
        adversary_fraction: 0.2,
        probe_rng: ProbeRngMode::PerNode,
        ..ScenarioConfig::quick_test(seed)
    }
}

fn run(cfg: ScenarioConfig) -> RunResult {
    cfg.validate().expect("scenario must be valid");
    SimulationRun::execute(cfg)
}

/// An explicitly all-zero adversary config — spelled out field by field so
/// a future default-value change can't silently weaken the zero-rate pin.
fn zero_rates() -> AdversaryConfig {
    AdversaryConfig {
        free_rider_fraction: 0.0,
        whitewash_fraction: 0.0,
        clique_count: 0,
        clique_forge_rate: 0.0,
        ..AdversaryConfig::default()
    }
}

#[test]
fn zero_rate_adversary_runs_reproduce_the_pr4_pins() {
    for (seed, replacement, expect_fp, expect_avg) in BASELINE {
        for probe_mode in [ProbeMode::Eager, ProbeMode::Lazy] {
            for lifecycle in [NodeLifecycle::Eager, NodeLifecycle::Lazy] {
                for shards in [1usize, 4, 16] {
                    let mut cfg = ScenarioConfig {
                        probe_mode,
                        node_lifecycle: lifecycle,
                        history_shards: shards,
                        adversary: zero_rates(),
                        ..base(seed, replacement)
                    };
                    if lifecycle == NodeLifecycle::Lazy {
                        cfg.evict_idle_ticks = 2;
                    }
                    let r = run(cfg);
                    assert_eq!(
                        fingerprint(&r),
                        expect_fp,
                        "seed {seed} repl {replacement:?} {probe_mode:?} {lifecycle:?} \
                         shards {shards}: zero-rate adversary drifted from the PR 4 baseline"
                    );
                    assert_eq!(r.avg_good_payoff.to_bits(), expect_avg);
                    // The adversary surface reports a clean run.
                    assert!(r.free_riders.is_empty());
                    assert_eq!(r.free_rider_refusals, 0);
                    assert_eq!(r.free_rider_payoff, 0.0);
                    assert_eq!(r.whitewash_events, 0);
                    assert_eq!(r.reputation_evasion_rate, 0.0);
                    assert_eq!(r.clique_phantom_instances, 0);
                    assert_eq!(r.clique_phantom_flagged, 0);
                    assert_eq!(r.clique_payout_leakage, 0.0);
                }
            }
        }
    }
}

/// Interrupts `cfg` after `budget` events, snapshots, restores, runs the
/// rest, and checks the final result equals the uninterrupted run's —
/// including every adversary metric (RunResult implements `PartialEq`).
fn interrupt_resume_matches(cfg: &ScenarioConfig, budget: u64, baseline: &RunResult) {
    let horizon = SimTime::new(cfg.churn.horizon);
    let world = World::generate(cfg);
    let mut sim = SimulationRun::new(*cfg, world);
    let mut engine = Engine::new();
    sim.schedule_all(&mut engine);
    engine.set_event_budget(budget);
    engine.run(&mut sim, Some(horizon));

    let bytes = encode(&sim, &engine);
    drop((sim, engine));
    let (mut resumed, mut engine) = restore(cfg, &bytes).expect("restore must succeed");
    engine.run(&mut resumed, Some(horizon));
    assert_eq!(
        baseline,
        &resumed.finish(),
        "resume diverged (budget {budget})"
    );
}

/// The whitewash rejoin property suite: across the mode matrix, a run with
/// live whitewashers (and the background drop faults that give their shed
/// ledgers something to escape) is deterministic, fires its rejoin
/// schedule, and survives snapshot/resume at arbitrary interrupt points
/// bit-identically — the archived evidence of every evicted identity
/// included, since any archive drift would desynchronize the resumed
/// suppression decisions and fail the result equality.
#[test]
fn whitewash_rejoins_survive_snapshot_resume_across_the_matrix() {
    let mut cases = 0usize;
    for seed in [1u64, 7, 42, 1337] {
        for (probe_mode, lifecycle) in [
            (ProbeMode::Lazy, NodeLifecycle::Eager),
            (ProbeMode::Lazy, NodeLifecycle::Lazy),
            (ProbeMode::Eager, NodeLifecycle::Eager),
        ] {
            for settlement in [SettlementMode::PerBundle, SettlementMode::Epoch] {
                for shards in [1usize, 4, 16] {
                    for discount in [false, true] {
                        for (fraction, interval) in [(0.3, 120.0), (0.6, 60.0)] {
                            let mut cfg = base(seed, Some(3));
                            cfg.probe_mode = probe_mode;
                            cfg.node_lifecycle = lifecycle;
                            if lifecycle == NodeLifecycle::Lazy {
                                cfg.evict_idle_ticks = 2;
                            }
                            cfg.settlement = settlement;
                            cfg.history_shards = shards;
                            cfg.adversary = AdversaryConfig {
                                whitewash_fraction: fraction,
                                whitewash_interval: interval,
                                whitewash_age_discount: discount,
                                reputation_maturity: 90.0,
                                ..AdversaryConfig::default()
                            };
                            cfg.fault = FaultConfig {
                                drop_rate: 0.15,
                                response: FaultResponse::Adaptive,
                                ..FaultConfig::default()
                            };
                            cfg.weights = (0.3, 0.3);
                            cfg.reputation_weight = 0.4;
                            cfg.validate().expect("whitewash scenario must be valid");

                            let baseline = SimulationRun::execute(cfg);
                            assert!(
                                baseline.whitewash_events > 0,
                                "seed {seed} fraction {fraction}: rejoin schedule never fired"
                            );
                            // Determinism: re-execution is bit-identical.
                            assert_eq!(baseline, SimulationRun::execute(cfg));
                            // Crash anywhere, resume, same result — archives
                            // and counters included.
                            let budget = 40 + (cases as u64 * 53) % 500;
                            interrupt_resume_matches(&cfg, budget, &baseline);
                            cases += 1;
                        }
                    }
                }
            }
        }
    }
    assert!(cases >= 256, "whitewash property suite shrank to {cases}");
}

/// Free riders earn zero forwarding payoff (Prop. 2's economics) while
/// compliant nodes keep earning, and the adaptive response recovers the
/// delivery the ghosts cost.
#[test]
fn free_riders_earn_nothing_and_the_adaptive_response_routes_around_them() {
    let mut deliveries = [0.0f64; 2];
    for (i, response) in [FaultResponse::Static, FaultResponse::Adaptive]
        .into_iter()
        .enumerate()
    {
        let cfg = ScenarioConfig {
            adversary: AdversaryConfig {
                free_rider_fraction: 0.25,
                ..AdversaryConfig::default()
            },
            fault: FaultConfig {
                response,
                ..FaultConfig::default()
            },
            ..base(7, Some(3))
        };
        let r = run(cfg);
        assert!(!r.free_riders.is_empty());
        assert!(r.free_rider_refusals > 0, "ghosting must actually occur");
        assert_eq!(
            r.free_rider_payoff, 0.0,
            "a node that never forwards never earns forwarding payoff"
        );
        assert!(r.compliant_payoff > 0.0);
        deliveries[i] = r.delivery_ratio;
    }
    assert!(
        deliveries[1] >= deliveries[0],
        "adaptive must not deliver less than static under free riding \
         (static {}, adaptive {})",
        deliveries[0],
        deliveries[1]
    );
}

/// The acceptance bar at paper scale (N = 40, 100 pairs, 2000
/// transmissions): the cross-confirmation check flags at least 90% of
/// phantom-forwarding payouts; without it, every phantom is paid in full.
#[test]
fn clique_cross_check_flags_at_least_90_percent_of_phantoms_at_paper_scale() {
    for (cross_check, seed) in [(false, 11u64), (true, 11), (true, 23)] {
        let cfg = ScenarioConfig {
            seed,
            adversary: AdversaryConfig {
                clique_count: 3,
                clique_size: 4,
                clique_forge_rate: 1.0,
                clique_cross_check: cross_check,
                ..ScenarioConfig::default().adversary
            },
            ..ScenarioConfig::default()
        };
        let r = run(cfg);
        assert!(
            r.clique_phantom_instances > 0,
            "seed {seed}: the forgery never fired at paper scale"
        );
        if cross_check {
            assert!(
                r.clique_phantom_flagged as f64 >= 0.9 * r.clique_phantom_instances as f64,
                "seed {seed}: cross-check flagged only {}/{} phantoms",
                r.clique_phantom_flagged,
                r.clique_phantom_instances
            );
            assert!(r.clique_payout_leakage <= 0.1);
        } else {
            assert_eq!(
                r.clique_phantom_flagged, 0,
                "without the cross-check no phantom is flagged"
            );
            assert_eq!(r.clique_payout_leakage, 1.0);
        }
    }
}

/// Adversary runs replicate bit-identically — the plan is a pure function
/// of the seeded streams, never of wall clock or iteration order — and the
/// dense and sparse reputation stores agree under whitewashing.
#[test]
fn adversary_runs_are_deterministic_and_lifecycle_invariant() {
    let mut cfg = base(42, Some(3));
    cfg.adversary = AdversaryConfig {
        free_rider_fraction: 0.15,
        whitewash_fraction: 0.2,
        whitewash_interval: 120.0,
        clique_count: 2,
        clique_size: 3,
        clique_forge_rate: 0.5,
        clique_cross_check: true,
        ..AdversaryConfig::default()
    };
    cfg.fault = FaultConfig {
        drop_rate: 0.1,
        response: FaultResponse::Adaptive,
        ..FaultConfig::default()
    };
    cfg.weights = (0.4, 0.4);
    cfg.reputation_weight = 0.2;
    cfg.validate().expect("compound scenario must be valid");
    let eager = SimulationRun::execute(cfg);
    assert_eq!(eager, SimulationRun::execute(cfg), "re-execution diverged");

    let mut lazy_cfg = cfg;
    lazy_cfg.node_lifecycle = NodeLifecycle::Lazy;
    lazy_cfg.evict_idle_ticks = 2;
    let lazy = SimulationRun::execute(lazy_cfg);
    assert_eq!(
        eager.good_payoffs, lazy.good_payoffs,
        "lifecycle changed adversary economics"
    );
    assert_eq!(eager.whitewash_events, lazy.whitewash_events);
    assert_eq!(eager.reputation_evasion_rate, lazy.reputation_evasion_rate);
    assert_eq!(eager.free_rider_refusals, lazy.free_rider_refusals);
    assert_eq!(
        eager.clique_phantom_instances,
        lazy.clique_phantom_instances
    );
    assert_eq!(eager.clique_phantom_flagged, lazy.clique_phantom_flagged);
}
