//! Durable-bank equivalence suite: **crash anywhere, fail over, and the
//! run is indistinguishable from one that never crashed** — across
//! settlement modes, shard counts and seeds, with and without torn final
//! records, and straight through snapshot/resume. Plus the backstop the
//! whole layer rides on: `--bank-durability off` replays the PR 4
//! fingerprint pins byte-identically, so the default path never paid for
//! the new machinery.

use idpa_desim::{Engine, FaultConfig, SimTime};
use idpa_sim::snapshot::{encode, restore};
use idpa_sim::{
    BankDurability, ProbeRngMode, RunResult, ScenarioConfig, SettlementMode, SimulationRun, World,
};

/// FNV-1a over the pre-fault-layer result fields — the same fingerprint
/// `tests/fault_injection.rs` pins, duplicated so this suite stands alone.
fn fingerprint(r: &RunResult) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for v in r
        .good_payoffs
        .iter()
        .chain(&r.malicious_payoffs)
        .chain(&r.node_totals)
        .chain([
            &r.avg_good_payoff,
            &r.avg_forwarder_set,
            &r.avg_path_length,
            &r.avg_path_quality,
            &r.routing_efficiency,
            &r.new_edge_fraction,
            &r.reformation_rate,
            &r.attack_exposure_rate,
            &r.avg_anonymity_degree,
        ])
    {
        eat(v.to_bits());
    }
    eat(r.connections);
    h
}

/// `(seed, replacement, fingerprint, avg_good_payoff bits)` — the PR 4
/// pins, identical constants to `tests/fault_injection.rs`.
const BASELINE: [(u64, Option<u64>, u64, u64); 6] = [
    (1, None, 0xd51afc10a8e3c367, 0x40730bffb79ce582),
    (1, Some(3), 0x172c5eda5998b960, 0x406d05c4bfa7690d),
    (7, None, 0xb68cfd87107b7817, 0x4071c00b9e48bb2a),
    (7, Some(3), 0x604446ccd329adb4, 0x406ddf312fe95040),
    (42, None, 0x8e362e89db0da04a, 0x4074a18aa74a4ec1),
    (42, Some(3), 0x4a5899e5e47b947e, 0x4072fbb62ff024b6),
];

fn base(seed: u64, replacement: Option<u64>) -> ScenarioConfig {
    ScenarioConfig {
        neighbor_replacement_rounds: replacement,
        adversary_fraction: 0.2,
        probe_rng: ProbeRngMode::PerNode,
        ..ScenarioConfig::quick_test(seed)
    }
}

/// A scenario with real settlement traffic and the durable bank on.
fn durable(seed: u64, settlement: SettlementMode, shards: usize, crash: f64) -> ScenarioConfig {
    let mut cfg = base(seed, Some(3));
    cfg.settlement = settlement;
    cfg.history_shards = shards;
    cfg.bank_durability = BankDurability::Wal;
    cfg.fault = FaultConfig {
        drop_rate: 0.08,
        cheat_fraction: 0.2,
        bank_crash_rate: crash,
        bank_crash_torn_share: 0.5,
        ..FaultConfig::default()
    };
    cfg.validate().expect("durable scenario must be valid");
    cfg
}

/// Zeroes the fields that legitimately differ between a crashing and a
/// non-crashing run — the recovery counters. Everything else (including
/// WAL byte/record counts and the final ledger digest) must be equal.
fn scrub(mut r: RunResult) -> RunResult {
    r.bank_crashes = 0;
    r.bank_torn_tails = 0;
    r.bank_records_replayed = 0;
    r.bank_monitor_checks = 0;
    r
}

#[test]
fn failover_anywhere_is_bit_identical_to_no_failover() {
    let mut total_crashes = 0u64;
    let mut total_torn = 0u64;
    for settlement in [SettlementMode::PerBundle, SettlementMode::Epoch] {
        for shards in [1usize, 4, 16] {
            for seed in [1u64, 7] {
                let calm = SimulationRun::execute(durable(seed, settlement, shards, 0.0));
                let stormy = SimulationRun::execute(durable(seed, settlement, shards, 0.6));
                assert_eq!(stormy.bank_monitor_violations, 0, "monitor must stay clean");
                assert!(stormy.audit_chain_verified);
                assert!(stormy.bank_wal_records > 0, "durable bank must log work");
                assert_eq!(
                    calm.bank_ledger_digest, stormy.bank_ledger_digest,
                    "failover changed the final ledger ({settlement:?}, {shards} shards, seed {seed})"
                );
                total_crashes += stormy.bank_crashes;
                total_torn += stormy.bank_torn_tails;
                assert_eq!(
                    scrub(calm),
                    scrub(stormy),
                    "failover-anywhere diverged ({settlement:?}, {shards} shards, seed {seed})"
                );
            }
        }
    }
    assert!(
        total_crashes > 10,
        "crash class barely fired: {total_crashes}"
    );
    assert!(total_torn > 0, "torn-record path never exercised");
}

/// The full matrix of satellite (c): bank crashes x settlement mode x
/// shard count, each case interrupted at a walking snapshot point,
/// resumed, and required to equal the uninterrupted run bit-for-bit —
/// recovery counters included (crash draws are position-keyed, so even
/// they must reproduce across a resume).
#[test]
fn crash_recover_and_resume_matches_uninterrupted_across_the_matrix() {
    let mut cases = 0u64;
    for settlement in [SettlementMode::PerBundle, SettlementMode::Epoch] {
        for shards in [1usize, 4, 16] {
            for seed in [1u64, 7, 42] {
                let cfg = durable(seed, settlement, shards, 0.4);
                let baseline = SimulationRun::execute(cfg);
                assert!(baseline.bank_wal_records > 0);

                let horizon = SimTime::new(cfg.churn.horizon);
                let world = World::generate(&cfg);
                let mut run = SimulationRun::new(cfg, world);
                let mut engine = Engine::new();
                run.schedule_all(&mut engine);
                engine.set_event_budget(60 + (cases * 53) % 350);
                engine.run(&mut run, Some(horizon));

                let bytes = encode(&run, &engine);
                drop((run, engine));
                let (mut resumed, mut engine) = restore(&cfg, &bytes).expect("restore");
                engine.run(&mut resumed, Some(horizon));
                assert_eq!(
                    baseline,
                    resumed.finish(),
                    "crash+resume diverged ({settlement:?}, {shards} shards, seed {seed})"
                );
                cases += 1;
            }
        }
    }
    assert_eq!(cases, 18, "the matrix must not silently shrink");
}

/// `--bank-durability off` (the default) replays the PR 4 pins
/// byte-identically: the durable-bank layer costs the legacy path nothing.
#[test]
fn durability_off_replays_the_pr4_pins() {
    for (seed, replacement, pin, payoff_bits) in BASELINE {
        let cfg = ScenarioConfig {
            bank_durability: BankDurability::Off,
            ..base(seed, replacement)
        };
        let r = SimulationRun::execute(cfg);
        assert_eq!(
            fingerprint(&r),
            pin,
            "durability-off drifted from the PR 4 pin (seed {seed}, {replacement:?})"
        );
        assert_eq!(r.avg_good_payoff.to_bits(), payoff_bits);
        assert_eq!(r.bank_wal_records, 0);
        assert_eq!(r.bank_ledger_digest, 0);
        assert!(r.audit_chain_verified, "vacuously true with no audit log");
    }
}

/// Re-running the same durable scenario reproduces every bank metric —
/// the WAL image, the monitor counters and the digest are deterministic.
#[test]
fn durable_runs_replicate_bit_identically() {
    let cfg = durable(7, SettlementMode::Epoch, 4, 0.3);
    let a = SimulationRun::execute(cfg);
    let b = SimulationRun::execute(cfg);
    assert_eq!(a, b);
    assert!(a.bank_crashes > 0, "crash class must fire at rate 0.3");
    assert!(a.bank_monitor_checks > 0);
    assert_eq!(a.bank_monitor_violations, 0);
}
