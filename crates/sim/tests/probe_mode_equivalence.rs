//! Integration pins for `--probe-mode`: in compat mode (per-node probe RNG
//! streams, the default), a lazy run is **bit-identical** to an eager run —
//! same payoffs, same paths, same attack metrics — with and without
//! neighbor replacement, and replicated results are identical at any
//! thread count.

use idpa_sim::experiments::Options;
use idpa_sim::{ProbeMode, ProbeRngMode, RunResult, ScenarioConfig, SimulationRun};

/// FNV-1a over every f64 (bit pattern) and counter in the result, so "equal"
/// means equal to the last bit, not approximately.
fn fingerprint(r: &RunResult) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for v in r
        .good_payoffs
        .iter()
        .chain(&r.malicious_payoffs)
        .chain(&r.node_totals)
        .chain([
            &r.avg_good_payoff,
            &r.avg_forwarder_set,
            &r.avg_path_length,
            &r.avg_path_quality,
            &r.routing_efficiency,
            &r.new_edge_fraction,
            &r.reformation_rate,
            &r.attack_exposure_rate,
            &r.avg_anonymity_degree,
        ])
    {
        eat(v.to_bits());
    }
    eat(r.connections);
    h
}

fn run(cfg: ScenarioConfig) -> RunResult {
    cfg.validate().expect("scenario must be valid");
    SimulationRun::execute(cfg)
}

#[test]
fn lazy_run_is_bit_identical_to_eager_run() {
    for seed in [1u64, 7, 42] {
        for replacement in [None, Some(3)] {
            let base = ScenarioConfig {
                neighbor_replacement_rounds: replacement,
                adversary_fraction: 0.2,
                ..ScenarioConfig::quick_test(seed)
            };
            let eager = run(ScenarioConfig {
                probe_mode: ProbeMode::Eager,
                probe_rng: ProbeRngMode::PerNode,
                ..base
            });
            let lazy = run(ScenarioConfig {
                probe_mode: ProbeMode::Lazy,
                probe_rng: ProbeRngMode::PerNode,
                ..base
            });
            assert_eq!(
                fingerprint(&eager),
                fingerprint(&lazy),
                "seed {seed} replacement {replacement:?}: lazy diverged from eager"
            );
            assert_eq!(eager, lazy);
        }
    }
}

#[test]
fn legacy_shared_rng_mode_still_runs_eagerly() {
    let cfg = ScenarioConfig {
        probe_mode: ProbeMode::Eager,
        probe_rng: ProbeRngMode::SharedLegacy,
        neighbor_replacement_rounds: Some(3),
        ..ScenarioConfig::quick_test(5)
    };
    let a = run(cfg);
    let b = run(cfg);
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "legacy mode is deterministic"
    );
    assert_eq!(a.connections, 200);
}

#[test]
fn replication_is_thread_invariant_in_both_probe_modes() {
    for mode in [ProbeMode::Eager, ProbeMode::Lazy] {
        let results: Vec<u64> = [1usize, 2, 8]
            .into_iter()
            .map(|threads| {
                let opts = Options {
                    reps: 4,
                    quick: true,
                    threads,
                    probe_mode: mode,
                    ..Options::default()
                };
                let runs = idpa_sim::experiments::replicate_base(&opts);
                runs.iter()
                    .map(fingerprint)
                    .fold(0u64, |acc, f| acc ^ f.rotate_left(17))
            })
            .collect();
        assert_eq!(results[0], results[1], "{mode:?}: 1 vs 2 threads");
        assert_eq!(results[0], results[2], "{mode:?}: 1 vs 8 threads");
    }
}
