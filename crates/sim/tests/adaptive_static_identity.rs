//! The adaptive layer's load-bearing compatibility property: with
//! `reputation_weight = 0` and `--fault-response static` (both defaults),
//! a build that *contains* the adaptive fault-response machinery —
//! per-initiator reputation ledgers, probe invalidation, the `w_r` quality
//! term, escalated reformation — produces `RunResult`s **byte-identical**
//! to the PR 4 build, across probe modes, history-shard counts, and worker
//! thread counts.
//!
//! The suite sweeps well over 256 cases (each case = one run compared
//! against a pinned fingerprint or a reference run) and asserts the count,
//! so shrinking the sweep by accident fails loudly.

use idpa_desim::FaultConfig;
use idpa_sim::experiments::Options;
use idpa_sim::{FaultResponse, ProbeMode, ProbeRngMode, RunResult, ScenarioConfig, SimulationRun};

/// FNV-1a over the pre-fault-layer result fields (bit patterns) — the
/// same fingerprint `tests/fault_injection.rs` pins, duplicated so this
/// suite stands alone.
fn fingerprint(r: &RunResult) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for v in r
        .good_payoffs
        .iter()
        .chain(&r.malicious_payoffs)
        .chain(&r.node_totals)
        .chain([
            &r.avg_good_payoff,
            &r.avg_forwarder_set,
            &r.avg_path_length,
            &r.avg_path_quality,
            &r.routing_efficiency,
            &r.new_edge_fraction,
            &r.reformation_rate,
            &r.attack_exposure_rate,
            &r.avg_anonymity_degree,
        ])
    {
        eat(v.to_bits());
    }
    eat(r.connections);
    h
}

/// The base scenario of the pinned baselines, with the static response and
/// zero reputation weight spelled out (they are the defaults — the point
/// of this suite is that the spelled-out form is the old build).
fn static_base(seed: u64, replacement: Option<u64>) -> ScenarioConfig {
    let mut cfg = ScenarioConfig {
        neighbor_replacement_rounds: replacement,
        adversary_fraction: 0.2,
        probe_rng: ProbeRngMode::PerNode,
        reputation_weight: 0.0,
        ..ScenarioConfig::quick_test(seed)
    };
    cfg.fault.response = FaultResponse::Static;
    cfg
}

fn run(cfg: ScenarioConfig) -> RunResult {
    cfg.validate().expect("scenario must be valid");
    SimulationRun::execute(cfg)
}

/// `(seed, replacement, fingerprint, avg_good_payoff bits)` — the PR 4
/// pins, identical constants to `tests/fault_injection.rs`.
const BASELINE: [(u64, Option<u64>, u64, u64); 6] = [
    (1, None, 0xd51afc10a8e3c367, 0x40730bffb79ce582),
    (1, Some(3), 0x172c5eda5998b960, 0x406d05c4bfa7690d),
    (7, None, 0xb68cfd87107b7817, 0x4071c00b9e48bb2a),
    (7, Some(3), 0x604446ccd329adb4, 0x406ddf312fe95040),
    (42, None, 0x8e362e89db0da04a, 0x4074a18aa74a4ec1),
    (42, Some(3), 0x4a5899e5e47b947e, 0x4072fbb62ff024b6),
];

#[test]
fn static_zero_weight_is_byte_identical_to_pr4_across_modes_shards_threads() {
    let mut cases = 0usize;

    // Part 1 — fingerprint pins: every pinned (seed, replacement) config,
    // at both probe modes and three shard counts, reproduces the PR 4
    // fingerprint exactly. 6 x 2 x 3 = 36 cases.
    for (seed, replacement, expect_fp, expect_avg) in BASELINE {
        for mode in [ProbeMode::Eager, ProbeMode::Lazy] {
            for shards in [1usize, 4, 16] {
                let r = run(ScenarioConfig {
                    probe_mode: mode,
                    history_shards: shards,
                    ..static_base(seed, replacement)
                });
                assert_eq!(
                    fingerprint(&r),
                    expect_fp,
                    "seed {seed} repl {replacement:?} {mode:?} shards {shards}: \
                     adaptive build drifted from the PR 4 baseline"
                );
                assert_eq!(r.avg_good_payoff.to_bits(), expect_avg);
                cases += 1;
            }
        }
    }

    // Part 2 — active-fault invariance: under live fault plans (where the
    // adaptive machinery *would* act if enabled), static + w_r = 0 runs
    // are byte-identical across probe modes and shard counts, and replay
    // identically. 8 seeds x 3 replacements x 2 fault profiles
    // x (4 comparisons + 1 replay) = 240 cases.
    let profiles = [
        FaultConfig {
            crash_rate: 0.03,
            drop_rate: 0.08,
            delay_rate: 0.2,
            cheat_fraction: 0.25,
            response: FaultResponse::Static,
            ..FaultConfig::default()
        },
        FaultConfig {
            crash_rate: 0.06,
            drop_rate: 0.12,
            cheat_fraction: 0.4,
            cheat_corrupt_share: 0.8,
            response: FaultResponse::Static,
            ..FaultConfig::default()
        },
    ];
    for seed in [1u64, 2, 3, 5, 7, 9, 11, 42] {
        for replacement in [None, Some(2), Some(3)] {
            for fault in profiles {
                let mut cfg = static_base(seed, replacement);
                cfg.fault = fault;
                let reference = run(ScenarioConfig {
                    probe_mode: ProbeMode::Lazy,
                    history_shards: 1,
                    ..cfg
                });
                for (mode, shards) in [
                    (ProbeMode::Eager, 1usize),
                    (ProbeMode::Lazy, 4),
                    (ProbeMode::Eager, 16),
                    (ProbeMode::Lazy, 20),
                ] {
                    let r = run(ScenarioConfig {
                        probe_mode: mode,
                        history_shards: shards,
                        ..cfg
                    });
                    assert_eq!(
                        reference, r,
                        "seed {seed} repl {replacement:?} {mode:?} shards {shards}: \
                         static faulty run diverged"
                    );
                    cases += 1;
                }
                let replay = run(ScenarioConfig {
                    probe_mode: ProbeMode::Lazy,
                    history_shards: 1,
                    ..cfg
                });
                assert_eq!(reference, replay, "seed {seed}: replay diverged");
                cases += 1;
            }
        }
    }

    // Part 3 — thread invariance: replicated static faulty runs are
    // byte-identical at any worker count. 8 reps x 2 comparisons = 16
    // cases.
    let replicated: Vec<Vec<RunResult>> = [1usize, 2, 8]
        .into_iter()
        .map(|threads| {
            let opts = Options {
                reps: 8,
                quick: true,
                threads,
                fault: profiles[0],
                reputation_weight: 0.0,
                ..Options::default()
            };
            idpa_sim::experiments::replicate_base(&opts)
        })
        .collect();
    for (rep, base) in replicated[0].iter().enumerate() {
        for other in [1, 2] {
            assert_eq!(
                base, &replicated[other][rep],
                "rep {rep}: static faulty replication diverged across thread counts"
            );
            cases += 1;
        }
    }

    assert!(
        cases >= 256,
        "property sweep shrank to {cases} cases (< 256)"
    );
}

/// The flip side: the machinery exists and does something. With the same
/// fault plan, turning on the adaptive response (with a positive `w_r`)
/// changes the run — this guards against the identity above passing
/// because the adaptive path is dead code.
#[test]
fn adaptive_mode_actually_diverges_from_static_under_faults() {
    let fault = FaultConfig {
        crash_rate: 0.05,
        drop_rate: 0.1,
        cheat_fraction: 0.25,
        ..FaultConfig::default()
    };
    let mut static_cfg = static_base(7, Some(3));
    static_cfg.fault = fault;
    let mut adaptive_cfg = static_cfg;
    adaptive_cfg.fault.response = FaultResponse::Adaptive;
    adaptive_cfg.weights = (0.4, 0.4);
    adaptive_cfg.reputation_weight = 0.2;
    let s = run(static_cfg);
    let a = run(adaptive_cfg);
    assert_ne!(s, a, "adaptive response must change a faulty run");
}
