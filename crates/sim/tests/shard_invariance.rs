//! Pins for the sharded history arena (PR 4).
//!
//! Two independent guarantees:
//!
//! 1. **The event-loop runner is shard-invariant** — the arena partitions
//!    storage without changing values, so runs reproduce the PR 3
//!    fingerprints at `--history-shards 1` *and at every other shard
//!    count*, including under active fault plans.
//! 2. **The parallel formation executor is layout- and
//!    schedule-invariant** — sharded formation over the arena (any shard
//!    or thread count) forms exactly the bundles the sequential
//!    global-`Vec<HistoryProfile>` baseline forms, and commits exactly
//!    the records the baseline commits.

use idpa_core::bundle::BundleId;
use idpa_core::history::HistoryProfile;
use idpa_core::HistoryArena;
use idpa_desim::FaultConfig;
use idpa_sim::{
    form_bundles_global, form_bundles_items, form_bundles_sharded, partition_pairs,
    partition_pairs_balanced, ProbeRngMode, RunResult, ScenarioConfig, SimulationRun, World,
};

/// FNV-1a over the pre-fault-layer result fields (bit patterns) — the
/// same fingerprint `tests/fault_injection.rs` pins, duplicated here so
/// this suite stands alone.
fn fingerprint(r: &RunResult) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for v in r
        .good_payoffs
        .iter()
        .chain(&r.malicious_payoffs)
        .chain(&r.node_totals)
        .chain([
            &r.avg_good_payoff,
            &r.avg_forwarder_set,
            &r.avg_path_length,
            &r.avg_path_quality,
            &r.routing_efficiency,
            &r.new_edge_fraction,
            &r.reformation_rate,
            &r.attack_exposure_rate,
            &r.avg_anonymity_degree,
        ])
    {
        eat(v.to_bits());
    }
    eat(r.connections);
    h
}

fn base(seed: u64, replacement: Option<u64>) -> ScenarioConfig {
    ScenarioConfig {
        neighbor_replacement_rounds: replacement,
        adversary_fraction: 0.2,
        probe_rng: ProbeRngMode::PerNode,
        ..ScenarioConfig::quick_test(seed)
    }
}

fn run(cfg: ScenarioConfig) -> RunResult {
    cfg.validate().expect("scenario must be valid");
    SimulationRun::execute(cfg)
}

/// `(seed, replacement, fingerprint, avg_good_payoff bits)` captured on
/// the PR 3 build — identical constants to `tests/fault_injection.rs`.
const BASELINE: [(u64, Option<u64>, u64, u64); 6] = [
    (1, None, 0xd51afc10a8e3c367, 0x40730bffb79ce582),
    (1, Some(3), 0x172c5eda5998b960, 0x406d05c4bfa7690d),
    (7, None, 0xb68cfd87107b7817, 0x4071c00b9e48bb2a),
    (7, Some(3), 0x604446ccd329adb4, 0x406ddf312fe95040),
    (42, None, 0x8e362e89db0da04a, 0x4074a18aa74a4ec1),
    (42, Some(3), 0x4a5899e5e47b947e, 0x4072fbb62ff024b6),
];

#[test]
fn runner_reproduces_pr3_fingerprints_at_every_shard_count() {
    for (seed, replacement, expect_fp, expect_avg) in BASELINE {
        for shards in [1usize, 4, 16] {
            let r = run(ScenarioConfig {
                history_shards: shards,
                ..base(seed, replacement)
            });
            assert_eq!(
                fingerprint(&r),
                expect_fp,
                "seed {seed} repl {replacement:?} shards {shards}: drifted from PR 3 baseline"
            );
            assert_eq!(r.avg_good_payoff.to_bits(), expect_avg);
        }
    }
}

#[test]
fn runner_results_are_bit_identical_across_shard_counts_under_faults() {
    let fault = FaultConfig {
        crash_rate: 0.03,
        drop_rate: 0.08,
        delay_rate: 0.2,
        cheat_fraction: 0.25,
        ..FaultConfig::default()
    };
    for seed in [1u64, 7] {
        let mut cfg = base(seed, Some(3));
        cfg.fault = fault;
        let reference = run(ScenarioConfig {
            history_shards: 1,
            ..cfg
        });
        for shards in [2usize, 3, 8, 20] {
            let r = run(ScenarioConfig {
                history_shards: shards,
                ..cfg
            });
            assert_eq!(
                reference, r,
                "seed {seed}: faulty run diverged at {shards} shards"
            );
        }
    }
}

/// Builds the formation scenario: quick-test scale with an adversary
/// share so both routing strategies are exercised.
fn formation_cfg(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        adversary_fraction: 0.2,
        ..ScenarioConfig::quick_test(seed)
    }
}

fn fresh_profiles(cfg: &ScenarioConfig) -> Vec<HistoryProfile> {
    (0..cfg.n_nodes)
        .map(|i| match cfg.history_capacity {
            Some(cap) => HistoryProfile::with_capacity(idpa_overlay::NodeId(i), cap),
            None => HistoryProfile::new(idpa_overlay::NodeId(i)),
        })
        .collect()
}

/// Asserts the arena holds exactly the records the flat profile vector
/// holds, for every `(node, bundle)` cell.
fn assert_same_records(
    arena: &HistoryArena,
    profiles: &[HistoryProfile],
    n_pairs: usize,
    label: &str,
) {
    for (i, profile) in profiles.iter().enumerate() {
        for p in 0..n_pairs {
            let bundle = BundleId(p as u64);
            assert_eq!(
                arena.records(idpa_overlay::NodeId(i), bundle),
                profile.bundle_records(bundle).to_vec(),
                "{label}: node {i} bundle {p} records diverged"
            );
        }
    }
}

#[test]
fn sharded_formation_matches_global_at_every_shard_thread_combo() {
    for seed in [11u64, 29] {
        let cfg = formation_cfg(seed);
        cfg.validate().expect("valid formation scenario");
        let world = World::generate(&cfg);

        let mut profiles = fresh_profiles(&cfg);
        let global = form_bundles_global(&world, &cfg, &mut profiles);

        for (shards, threads) in [(1usize, 1usize), (2, 1), (3, 2), (8, 4), (20, 8)] {
            let arena = HistoryArena::with_capacity(cfg.n_nodes, shards, cfg.history_capacity);
            let sharded = form_bundles_sharded(&world, &cfg, &arena, threads);
            assert_eq!(
                global, sharded,
                "seed {seed}: outcomes diverged at shards={shards} threads={threads}"
            );
            assert_same_records(
                &arena,
                &profiles,
                cfg.n_pairs,
                &format!("seed {seed} shards={shards} threads={threads}"),
            );
        }
    }
}

#[test]
fn sharded_formation_matches_global_with_bounded_history() {
    let cfg = ScenarioConfig {
        history_capacity: Some(3),
        ..formation_cfg(5)
    };
    cfg.validate().expect("valid bounded scenario");
    let world = World::generate(&cfg);

    let mut profiles = fresh_profiles(&cfg);
    let global = form_bundles_global(&world, &cfg, &mut profiles);

    let arena = HistoryArena::with_capacity(cfg.n_nodes, 8, cfg.history_capacity);
    let sharded = form_bundles_sharded(&world, &cfg, &arena, 4);
    assert_eq!(global, sharded, "bounded-history outcomes diverged");
    assert_same_records(&arena, &profiles, cfg.n_pairs, "bounded history");
}

/// Replaces the sampled workload with a deterministic Zipf profile: the
/// rank-`p` pair carries `⌈64/(p+1)⌉` transmissions, so a handful of head
/// pairs own most of the scheduled depth — the shape that starves workers
/// under the ungrouped locality split.
fn zipf_skew_workload(world: &mut World, cfg: &ScenarioConfig) {
    let span = cfg.churn.horizon - cfg.warmup;
    for (p, wl) in world.pairs.iter_mut().enumerate() {
        let count = (64 / (p + 1)).max(1);
        wl.times = (0..count)
            .map(|j| cfg.warmup + span * (j as f64 + 1.0) / (count as f64 + 1.0))
            .collect();
    }
}

#[test]
fn balanced_split_is_bit_identical_under_zipf_skew() {
    for seed in [13u64, 31] {
        let cfg = formation_cfg(seed);
        cfg.validate().expect("valid formation scenario");
        let mut world = World::generate(&cfg);
        zipf_skew_workload(&mut world, &cfg);

        let mut profiles = fresh_profiles(&cfg);
        let global = form_bundles_global(&world, &cfg, &mut profiles);

        for (shards, threads) in [(1usize, 1usize), (4, 2), (4, 8), (16, 2), (16, 8)] {
            // The production path: depth-balanced split.
            let arena = HistoryArena::with_capacity(cfg.n_nodes, shards, cfg.history_capacity);
            let balanced = form_bundles_sharded(&world, &cfg, &arena, threads);
            assert_eq!(
                global, balanced,
                "seed {seed}: balanced split diverged at shards={shards} threads={threads}"
            );
            assert_same_records(
                &arena,
                &profiles,
                cfg.n_pairs,
                &format!("zipf balanced seed {seed} shards={shards} threads={threads}"),
            );

            // The ungrouped locality split through the same executor —
            // grouping must be value-invisible.
            let arena2 = HistoryArena::with_capacity(cfg.n_nodes, shards, cfg.history_capacity);
            let items = partition_pairs(&world, &arena2);
            let ungrouped = form_bundles_items(&world, &cfg, &arena2, threads, &items);
            assert_eq!(
                global, ungrouped,
                "seed {seed}: ungrouped split diverged at shards={shards} threads={threads}"
            );
        }
    }
}

#[test]
fn balanced_partition_is_deterministic_and_balanced() {
    let cfg = formation_cfg(17);
    let mut world = World::generate(&cfg);
    zipf_skew_workload(&mut world, &cfg);
    let arena = HistoryArena::with_capacity(cfg.n_nodes, 4, cfg.history_capacity);

    let a = partition_pairs_balanced(&world, &arena, 4);
    let b = partition_pairs_balanced(&world, &arena, 4);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.pairs, y.pairs, "partition must be deterministic");
        assert_eq!(x.shards, y.shards);
    }

    // Every pair appears exactly once, item sizes differ by at most one
    // (the round-robin deal), and shard covers are sorted and deduped.
    let mut seen: Vec<usize> = a.iter().flat_map(|i| i.pairs.clone()).collect();
    seen.sort_unstable();
    assert_eq!(seen, (0..cfg.n_pairs).collect::<Vec<_>>());
    let sizes: Vec<usize> = a.iter().map(|i| i.pairs.len()).collect();
    let (min, max) = (sizes.iter().min(), sizes.iter().max());
    assert!(
        max.expect("nonempty") - min.expect("nonempty") <= 1,
        "sizes {sizes:?}"
    );
    for item in &a {
        assert!(item.shards.windows(2).all(|w| w[0] < w[1]));
    }

    // The deal is depth-aware: no single item may hold the whole depth
    // (which the locality split can under this Zipf workload).
    let depth = |item: &idpa_sim::FormationItem| -> usize {
        item.pairs.iter().map(|&p| world.pairs[p].times.len()).sum()
    };
    let total: usize = a.iter().map(depth).sum();
    let heaviest = a.iter().map(depth).max().expect("nonempty");
    assert!(
        heaviest < total,
        "one item holds the entire depth ({heaviest}/{total})"
    );
}

#[test]
fn formation_outcomes_are_nontrivial() {
    // Guard against the equality tests passing vacuously on empty output.
    let cfg = formation_cfg(11);
    let world = World::generate(&cfg);
    let mut profiles = fresh_profiles(&cfg);
    let formed = form_bundles_global(&world, &cfg, &mut profiles);
    assert_eq!(formed.len(), cfg.n_pairs);
    let total: usize = formed.iter().map(|f| f.outcomes.len()).sum();
    assert_eq!(total, cfg.total_transmissions);
    assert!(
        formed
            .iter()
            .flat_map(|f| &f.outcomes)
            .any(|o| !o.is_empty()),
        "some connection must recruit a forwarder"
    );
    let recorded: usize = profiles.iter().map(HistoryProfile::len).sum();
    assert!(recorded > 0, "formation must commit history records");
}
