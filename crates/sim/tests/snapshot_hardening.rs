//! Decode hardening for service-mode snapshots: **no input, however
//! mangled, may panic the decoder or silently misdecode** — corruption is
//! a typed [`SimError`], always.
//!
//! Three attack layers, well over 256 cases total (asserted, so the sweep
//! can't silently shrink):
//!
//! 1. **Raw byte flips** — any single-bit change to the file is caught by
//!    the frame checksum (or the magic/version/length checks in front of
//!    it) and must decode to `Err`, never a panic.
//! 2. **Truncations** — every prefix of a valid snapshot must decode to
//!    `Err`.
//! 3. **Checksum-fixed tampering** — the hard layer: payload bytes are
//!    corrupted *and the checksum recomputed*, so the frame is pristine
//!    and the structural validators (index bounds, float validity,
//!    ordering invariants, cross-field lengths) are the only line of
//!    defense. The decoder must return `Ok` (the flip hit genuinely
//!    free state, e.g. an RNG word) or a typed `Err` — and never panic
//!    or abort.
//!
//! A final test checks the no-partial-mutation contract the service
//! runner relies on: a failed restore leaves nothing behind — a
//! subsequent restore of the intact snapshot still reproduces the
//! uninterrupted run exactly.

use idpa_desim::rng::StreamFactory;
use idpa_desim::{Engine, FaultConfig, FaultResponse, SimTime};
use idpa_sim::snapshot::{encode, restore};
use idpa_sim::{
    NodeLifecycle, ProbeMode, ScenarioConfig, SimError, SimulationRun, WorkloadMode, World,
};
use rand::RngExt;

/// Scenario variants chosen to exercise every optional snapshot section:
/// fault-free closed, faulty adaptive, epoch settlement, lazy lifecycle,
/// open workload with windowed metrics.
fn scenarios() -> Vec<ScenarioConfig> {
    let base = ScenarioConfig {
        probe_rng: idpa_sim::ProbeRngMode::PerNode,
        ..ScenarioConfig::quick_test(5)
    };
    vec![
        base,
        ScenarioConfig {
            fault: FaultConfig {
                crash_rate: 0.05,
                drop_rate: 0.1,
                cheat_fraction: 0.3,
                cheat_corrupt_share: 0.5,
                response: FaultResponse::Adaptive,
                ..FaultConfig::default()
            },
            weights: (0.4, 0.4),
            reputation_weight: 0.2,
            ..base
        },
        ScenarioConfig {
            fault: FaultConfig {
                crash_rate: 0.04,
                drop_rate: 0.06,
                ..FaultConfig::default()
            },
            settlement: idpa_sim::SettlementMode::Epoch,
            node_lifecycle: NodeLifecycle::Lazy,
            evict_idle_ticks: 2,
            ..base
        },
        ScenarioConfig {
            workload: WorkloadMode::Open,
            open_arrival_rate: 0.02,
            window_len: base.churn.horizon / 8.0,
            window_warmup: base.churn.horizon / 8.0,
            probe_mode: ProbeMode::Eager,
            ..base
        },
    ]
}

/// A mid-run snapshot of `cfg` (deep enough that every accumulator holds
/// real state).
fn mid_run_snapshot(cfg: &ScenarioConfig) -> Vec<u8> {
    let world = World::generate(cfg);
    let mut run = SimulationRun::new(*cfg, world);
    let mut engine = Engine::new();
    run.schedule_all(&mut engine);
    engine.set_event_budget(400);
    engine.run(&mut run, Some(SimTime::new(cfg.churn.horizon)));
    encode(&run, &engine)
}

/// FNV-1a, mirroring the frame checksum so tests can re-seal tampered
/// payloads.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Recomputes and rewrites the trailing checksum over the payload, so a
/// tampered snapshot passes the frame and reaches the structural decoder.
fn reseal(bytes: &mut [u8]) {
    let n = bytes.len();
    let payload = &bytes[20..n - 8];
    let sum = fnv1a(payload).to_le_bytes();
    bytes[n - 8..].copy_from_slice(&sum);
}

/// `restore` on a snapshot that must not decode; returns the typed error.
/// (Plain `expect_err` needs the `Ok` side to be `Debug`, which
/// `Engine<Ev>` deliberately isn't.)
fn must_fail(cfg: &ScenarioConfig, bytes: &[u8], what: &str) -> SimError {
    match restore(cfg, bytes) {
        Ok(_) => panic!("{what}: mangled snapshot decoded"),
        Err(e) => e,
    }
}

#[test]
fn flips_truncations_and_resealed_tampering_never_panic() {
    let mut cases = 0usize;

    for cfg in scenarios() {
        let bytes = mid_run_snapshot(&cfg);
        let mut rng = StreamFactory::new(0xFEED).stream("hardening");

        // Layer 1 — raw flips: 40 per scenario, all typed errors.
        for _ in 0..40 {
            let pos = rng.random_range(0..bytes.len());
            let bit = rng.random_range(0..8u32);
            let mut mangled = bytes.clone();
            mangled[pos] ^= 1 << bit;
            assert!(
                restore(&cfg, &mangled).is_err(),
                "flip at byte {pos} bit {bit} must not decode"
            );
            cases += 1;
        }

        // Layer 2 — truncations: every length from empty to one short, in
        // strides, plus the boundary cuts around the frame header.
        let mut cuts: Vec<usize> = (0..bytes.len()).step_by(97.max(bytes.len() / 16)).collect();
        cuts.extend([0, 1, 7, 8, 11, 12, 19, 20, bytes.len() - 9, bytes.len() - 1]);
        for cut in cuts {
            assert!(
                restore(&cfg, &bytes[..cut]).is_err(),
                "truncation to {cut} bytes must not decode"
            );
            cases += 1;
        }

        // Layer 3 — checksum-fixed tampering: the structural validators
        // are on their own. Any outcome but a panic is acceptable.
        for _ in 0..30 {
            let pos = rng.random_range(20..bytes.len() - 8);
            let bit = rng.random_range(0..8u32);
            let mut mangled = bytes.clone();
            mangled[pos] ^= 1 << bit;
            reseal(&mut mangled);
            let _ = restore(&cfg, &mangled);
            cases += 1;
        }
    }

    assert!(cases >= 256, "hardening sweep shrank to {cases} cases");
}

/// Deterministic header attacks hit their dedicated frame checks.
#[test]
fn frame_layer_rejects_each_header_field() {
    let cfg = scenarios().remove(0);
    let bytes = mid_run_snapshot(&cfg);

    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    let err = must_fail(&cfg, &bad_magic, "bad magic");
    assert!(matches!(err, SimError::SnapshotCodec { .. }), "{err}");
    assert!(err.to_string().contains("magic"), "{err}");

    let mut bad_version = bytes.clone();
    bad_version[8] = 0xEE;
    let err = must_fail(&cfg, &bad_version, "bad version");
    assert!(err.to_string().contains("version"), "{err}");

    let mut bad_len = bytes.clone();
    bad_len[12] ^= 0x01;
    let err = must_fail(&cfg, &bad_len, "bad length");
    assert!(matches!(err, SimError::SnapshotCodec { .. }), "{err}");

    let mut bad_sum = bytes.clone();
    let n = bad_sum.len();
    bad_sum[n - 1] ^= 0x01;
    let err = must_fail(&cfg, &bad_sum, "bad checksum");
    assert!(err.to_string().contains("checksum"), "{err}");
}

/// A resealed flip of the very first payload field (the configuration
/// fingerprint) must be caught as a scenario mismatch — the structural
/// layer's first gate.
#[test]
fn resealed_fingerprint_flip_is_a_mismatch() {
    let cfg = scenarios().remove(0);
    let mut bytes = mid_run_snapshot(&cfg);
    bytes[20] ^= 0x01;
    reseal(&mut bytes);
    assert_eq!(
        must_fail(&cfg, &bytes, "fingerprint must gate"),
        SimError::SnapshotMismatch {
            what: "configuration fingerprint"
        }
    );
}

/// No partial mutation: after an arbitrary number of failed restores, the
/// intact snapshot still resumes to the exact uninterrupted result.
#[test]
fn failed_restores_leave_no_trace() {
    let cfg = ScenarioConfig {
        probe_rng: idpa_sim::ProbeRngMode::PerNode,
        fault: FaultConfig {
            crash_rate: 0.05,
            drop_rate: 0.1,
            ..FaultConfig::default()
        },
        ..ScenarioConfig::quick_test(9)
    };
    let baseline = SimulationRun::execute(cfg);
    let bytes = mid_run_snapshot(&cfg);

    let mut rng = StreamFactory::new(0xBEEF).stream("no-trace");
    for _ in 0..64 {
        let pos = rng.random_range(0..bytes.len());
        let mut mangled = bytes.clone();
        mangled[pos] ^= 0x10;
        let _ = restore(&cfg, &mangled);
    }

    let (mut run, mut engine) = restore(&cfg, &bytes).expect("intact snapshot");
    engine.run(&mut run, Some(SimTime::new(cfg.churn.horizon)));
    assert_eq!(baseline, run.finish());
}
