//! Shared fixtures for the benchmark harness.
//!
//! Each paper table/figure has a bench target under `benches/` that
//! exercises exactly the code path regenerating it (the full-scale
//! regeneration itself is `cargo run --release -p idpa-sim -- <name>`).
//! Bench-scale runs use a reduced workload so `cargo bench --workspace`
//! completes in minutes while stressing the same kernels. Timing is done
//! by the in-tree median-of-N harness in [`harness`] (no external
//! dependencies; results accumulate into `BENCH_pr1.json`).

#![deny(clippy::unwrap_used)]

pub mod alloc_counter;
pub mod harness;

use idpa_core::routing::RoutingStrategy;
use idpa_core::utility::UtilityModel;
use idpa_sim::{RunResult, ScenarioConfig, SimulationRun};

/// The bench-scale scenario: the paper's topology parameters with a
/// quarter-size workload.
#[must_use]
pub fn bench_config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        n_pairs: 25,
        total_transmissions: 500,
        seed,
        ..ScenarioConfig::default()
    }
}

/// Runs one bench-scale scenario point.
#[must_use]
pub fn run_point(f: f64, strategy: RoutingStrategy, tau: f64, seed: u64) -> RunResult {
    SimulationRun::execute(ScenarioConfig {
        adversary_fraction: f,
        good_strategy: strategy,
        tau,
        ..bench_config(seed)
    })
}

/// Utility model I strategy.
#[must_use]
pub fn model_one() -> RoutingStrategy {
    RoutingStrategy::Utility(UtilityModel::ModelI)
}

/// Utility model II strategy (experiment-default lookahead).
#[must_use]
pub fn model_two() -> RoutingStrategy {
    RoutingStrategy::Utility(UtilityModel::ModelII { lookahead: 2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_valid() {
        bench_config(1)
            .validate()
            .expect("bench scenario must be valid");
    }

    #[test]
    fn run_point_produces_connections() {
        let r = run_point(0.1, model_one(), 1.0, 2);
        assert_eq!(r.connections, 500);
    }
}
