//! A counting global allocator for bounded-memory assertions.
//!
//! Wraps [`System`] and tracks live and peak heap bytes with relaxed
//! atomics. Install it in a bench binary with `#[global_allocator]` to
//! turn "the million-node world fits in bounded memory" from a claim into
//! an in-bench assertion: run the workload, then compare
//! [`CountingAllocator::peak_bytes`] against the ceiling.
//!
//! The counts are exact for sizes passed through the allocator API (they
//! do not model allocator-internal slack), which is what a residency
//! ceiling wants: the figure is independent of the system allocator's
//! bucketing policy.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A [`System`]-backed allocator counting live and peak heap bytes.
#[derive(Debug)]
pub struct CountingAllocator {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl CountingAllocator {
    /// A fresh counter (all figures zero).
    #[must_use]
    pub const fn new() -> Self {
        CountingAllocator {
            current: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Heap bytes currently live.
    #[must_use]
    pub fn current_bytes(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark since construction or the last
    /// [`CountingAllocator::reset_peak`].
    #[must_use]
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Restarts the high-water mark from the current live figure, so a
    /// measurement window excludes earlier phases' peaks.
    pub fn reset_peak(&self) {
        self.peak
            .store(self.current.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn add(&self, n: usize) {
        let live = self.current.fetch_add(n, Ordering::Relaxed) + n;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn sub(&self, n: usize) {
        self.current.fetch_sub(n, Ordering::Relaxed);
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates every allocation verbatim to `System`; the atomic
// bookkeeping never touches the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            self.add(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        self.sub(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            self.add(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                self.add(new_size - layout.size());
            } else {
                self.sub(layout.size() - new_size);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not installed as the global allocator here — the unit tests drive
    // the bookkeeping through the trait directly.
    #[test]
    fn tracks_live_and_peak_bytes() {
        let a = CountingAllocator::new();
        let layout = Layout::from_size_align(1024, 8).expect("valid layout");
        let p = unsafe { a.alloc(layout) };
        assert!(!p.is_null());
        assert_eq!(a.current_bytes(), 1024);
        assert_eq!(a.peak_bytes(), 1024);
        let q = unsafe { a.realloc(p, layout, 4096) };
        assert!(!q.is_null());
        assert_eq!(a.current_bytes(), 4096);
        assert_eq!(a.peak_bytes(), 4096);
        let grown = Layout::from_size_align(4096, 8).expect("valid layout");
        unsafe { a.dealloc(q, grown) };
        assert_eq!(a.current_bytes(), 0);
        assert_eq!(a.peak_bytes(), 4096, "peak survives the free");
        a.reset_peak();
        assert_eq!(a.peak_bytes(), 0);
    }
}
