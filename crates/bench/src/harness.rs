//! A minimal, dependency-free benchmark harness.
//!
//! Replaces the former criterion dev-dependency so the workspace builds
//! and benches fully offline. Each bench target registers kernels on a
//! [`Harness`]; a kernel is timed as the **median of N batch samples**
//! (wall clock), where the batch iteration count is auto-calibrated so a
//! batch is long enough for the clock to resolve. Results are printed as
//! a table and merged into a flat JSON file (`name -> ns/iter`), so
//! successive bench targets accumulate into one report.
//!
//! Setting `IDPA_BENCH_SMOKE=1` turns every kernel into a single
//! un-timed iteration and suppresses the report merge — CI uses this to
//! prove each bench binary still runs without paying for measurement.

use std::collections::BTreeMap;
use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

pub use std::hint::black_box as bb;

/// Target wall-clock duration of one calibrated batch.
const TARGET_BATCH_NS: f64 = 20_000_000.0; // 20 ms
/// Batches sampled per kernel (median taken).
const DEFAULT_SAMPLES: usize = 11;
/// Samples for heavyweight kernels (single-iteration batches).
const HEAVY_SAMPLES: usize = 5;
/// A single iteration longer than this skips calibration (one iter per
/// batch, fewer samples).
const HEAVY_ITER_NS: f64 = 10_000_000.0; // 10 ms

/// One measured kernel: `ns_per_iter` is the median-of-samples estimate.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Kernel name, conventionally `group/kernel`.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per batch used for the measurement.
    pub iters_per_batch: u64,
    /// Number of batch samples taken.
    pub samples: usize,
}

/// Collects kernel measurements for one bench target.
#[derive(Debug, Default)]
pub struct Harness {
    measurements: Vec<Measurement>,
}

impl Harness {
    /// An empty harness.
    #[must_use]
    pub fn new() -> Self {
        Harness::default()
    }

    /// Times `f` and records the measurement under `name`.
    ///
    /// Calibration: the iteration count doubles until one batch takes at
    /// least [`TARGET_BATCH_NS`]; kernels whose single iteration already
    /// exceeds [`HEAVY_ITER_NS`] run one iteration per batch with fewer
    /// samples. The reported figure is the median batch, divided by the
    /// batch iteration count.
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) {
        // Warm-up + calibration probe.
        let probe_start = Instant::now();
        black_box(f());
        let probe_ns = probe_start.elapsed().as_nanos() as f64;

        if smoke_mode() {
            println!("bench {name:<44} smoke: 1 iter, not timed");
            self.measurements.push(Measurement {
                name: name.to_string(),
                ns_per_iter: probe_ns,
                iters_per_batch: 1,
                samples: 1,
            });
            return;
        }

        let (iters, samples) = if probe_ns >= HEAVY_ITER_NS {
            (1u64, HEAVY_SAMPLES)
        } else {
            let per_iter = probe_ns.max(1.0);
            let mut iters = (TARGET_BATCH_NS / per_iter).ceil() as u64;
            iters = iters.clamp(1, 100_000_000);
            (iters, DEFAULT_SAMPLES)
        };

        let mut batch_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            batch_ns.push(start.elapsed().as_nanos() as f64);
        }
        batch_ns.sort_by(|a, b| a.total_cmp(b));
        let median = batch_ns[batch_ns.len() / 2];
        let m = Measurement {
            name: name.to_string(),
            ns_per_iter: median / iters as f64,
            iters_per_batch: iters,
            samples,
        };
        println!(
            "bench {:<44} {:>14} ns/iter  (x{} iters, {} samples)",
            m.name,
            format_ns(m.ns_per_iter),
            m.iters_per_batch,
            m.samples
        );
        self.measurements.push(m);
    }

    /// The measurements recorded so far.
    #[must_use]
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Merges the measurements into the flat JSON report at `path`
    /// (created if absent): existing keys not re-measured are preserved.
    ///
    /// # Errors
    /// Propagates I/O failures reading or writing the report.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut map: BTreeMap<String, f64> = match std::fs::read_to_string(path) {
            Ok(s) => parse_flat_json(&s),
            Err(_) => BTreeMap::new(),
        };
        for m in &self.measurements {
            map.insert(m.name.clone(), m.ns_per_iter);
        }
        let mut out = String::from("{\n");
        let n = map.len();
        for (i, (k, v)) in map.iter().enumerate() {
            out.push_str(&format!("  \"{k}\": {v:.1}"));
            out.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        out.push_str("}\n");
        let mut file = std::fs::File::create(path)?;
        file.write_all(out.as_bytes())
    }

    /// Merges into the default report location: `$IDPA_BENCH_OUT`, or
    /// `BENCH_pr2.json` at the workspace root. A no-op under
    /// `IDPA_BENCH_SMOKE=1` (smoke numbers are not measurements).
    ///
    /// # Errors
    /// Propagates I/O failures from [`Harness::write_json`].
    pub fn write_json_default(&self) -> std::io::Result<()> {
        if smoke_mode() {
            println!("bench report skipped (IDPA_BENCH_SMOKE=1)");
            return Ok(());
        }
        let path = std::env::var("IDPA_BENCH_OUT").unwrap_or_else(|_| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr2.json").to_string()
        });
        self.write_json(&path)?;
        println!("bench report merged into {path}");
        Ok(())
    }
}

/// Whether `IDPA_BENCH_SMOKE=1`: run each kernel once, skip the report.
#[must_use]
pub fn smoke_mode() -> bool {
    std::env::var("IDPA_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// Parses the flat `{"name": number, ...}` JSON this harness writes.
/// Tolerant of whitespace; ignores malformed entries.
fn parse_flat_json(s: &str) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    let body = s.trim().trim_start_matches('{').trim_end_matches('}');
    for entry in body.split(',') {
        let Some((k, v)) = entry.split_once(':') else {
            continue;
        };
        let key = k.trim().trim_matches('"');
        if key.is_empty() {
            continue;
        }
        if let Ok(num) = v.trim().parse::<f64>() {
            map.insert(key.to_string(), num);
        }
    }
    map
}

/// Human-readable ns with thousands separators.
fn format_ns(ns: f64) -> String {
    let raw = format!("{ns:.1}");
    let (int_part, frac) = raw.split_once('.').unwrap_or((&raw, "0"));
    let mut grouped = String::new();
    for (i, ch) in int_part.chars().rev().enumerate() {
        if i > 0 && i % 3 == 0 {
            grouped.push('_');
        }
        grouped.push(ch);
    }
    let int_grouped: String = grouped.chars().rev().collect();
    format!("{int_grouped}.{frac}")
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;

    #[test]
    fn measures_a_cheap_kernel() {
        let mut h = Harness::new();
        let mut acc = 0u64;
        h.bench("test/add", || {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(h.measurements().len(), 1);
        assert!(h.measurements()[0].ns_per_iter > 0.0);
        assert!(h.measurements()[0].iters_per_batch > 1);
    }

    #[test]
    fn json_round_trip_merges() {
        let dir = std::env::temp_dir().join("idpa_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        let mut h = Harness::new();
        h.bench("a/one", || 1u64);
        h.write_json(path).unwrap();
        let first = parse_flat_json(&std::fs::read_to_string(path).unwrap());
        assert!(first.contains_key("a/one"));

        let mut h2 = Harness::new();
        h2.bench("b/two", || 2u64);
        h2.write_json(path).unwrap();
        let merged = parse_flat_json(&std::fs::read_to_string(path).unwrap());
        assert!(merged.contains_key("a/one") && merged.contains_key("b/two"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn parser_ignores_garbage() {
        let map = parse_flat_json("{\"ok\": 1.5, \"bad\": x, nonsense}");
        assert_eq!(map.len(), 1);
        assert_eq!(map["ok"], 1.5);
    }

    #[test]
    fn format_ns_groups_thousands() {
        assert_eq!(format_ns(1_234_567.89), "1_234_567.9");
        assert_eq!(format_ns(12.3), "12.3");
    }
}
