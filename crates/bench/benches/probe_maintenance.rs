//! Maintenance-heavy lazy probing: a churny, replacement-dense scenario
//! (tight replacement threshold, short probe period, wide neighbor sets)
//! where the dominant lazy-mode cost is `next_due_after` — computing each
//! node's next replacement-due tick after every maintenance event. The
//! per-slot due-tick cache turns that from a full joint-session rescan of
//! all `d` slots per event into a cached min over per-slot closed forms,
//! recomputing only slots invalidated by an actual replacement.
//!
//! Eager and lazy arms are asserted bit-identical *before* timing (per-node
//! RNG streams make the modes equivalent), so the ratio measures the
//! maintenance bookkeeping, never behavioral drift.
//!
//! This is the regime where *eager wins*: with a replacement due nearly
//! every tick, lazy degenerates to tick replay plus due-tick scheduling
//! overhead (the cache cuts the lazy arm 1.65x; eager stays ~9x ahead).
//! It is the deliberate mirror image of `probe_scale`, where sparse reads
//! let lazy win 20x — together the two benches map the crossover.
//!
//! `IDPA_PM_QUICK=1` restricts the run to the N = 500 scale — the CI bench
//! gate uses this for its short timed pass.

use idpa_bench::harness::Harness;
use idpa_sim::{ProbeMode, ScenarioConfig, SimulationRun};

/// A maintenance-dominated scenario: replacements fall due every ~6 probe
/// rounds per silent neighbor, so lazy cells re-derive their due ticks
/// constantly while the transmission load stays light.
fn maintenance_heavy(n_nodes: usize, mode: ProbeMode) -> ScenarioConfig {
    let cfg = ScenarioConfig {
        degree: 24,
        n_pairs: 8,
        total_transmissions: 64,
        max_connections: 8,
        probe_period: 1.0,
        neighbor_replacement_rounds: Some(6),
        probe_mode: mode,
        seed: 9,
        ..ScenarioConfig::default()
    }
    .with_nodes(n_nodes);
    cfg.validate().expect("bench scenario must be valid");
    cfg
}

fn bench_scale(h: &mut Harness, tag: &str, n_nodes: usize) {
    let eager = maintenance_heavy(n_nodes, ProbeMode::Eager);
    let lazy = maintenance_heavy(n_nodes, ProbeMode::Lazy);

    // The speedup must not come from computing something different.
    let a = SimulationRun::execute(eager);
    let b = SimulationRun::execute(lazy);
    assert_eq!(a, b, "lazy run diverged from eager run at {tag}");
    println!(
        "probe_maintenance/{tag}: eager == lazy (connections={}, avg payoff={:.3})",
        a.connections, a.avg_good_payoff
    );

    h.bench(&format!("probe_maintenance/run_{tag}_eager"), || {
        SimulationRun::execute(eager)
    });
    h.bench(&format!("probe_maintenance/run_{tag}_lazy"), || {
        SimulationRun::execute(lazy)
    });
}

fn main() {
    let quick = std::env::var("IDPA_PM_QUICK").is_ok_and(|v| v == "1");

    let mut h = Harness::new();
    bench_scale(&mut h, "n500_d24_r6", 500);
    if !quick {
        bench_scale(&mut h, "n2k_d24_r6", 2000);
    }
    h.write_json_default().expect("write bench report");
}
