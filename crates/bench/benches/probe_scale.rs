//! End-to-end probe-mode trajectory: a probe-dominated large-N scenario
//! (N = 4000, d = 32, T = 1) run under `--probe-mode eager` versus
//! `--probe-mode lazy`. The eager sweep probes every node's full neighbor
//! set at every tick whether or not anyone reads the estimates; the lazy
//! estimator materializes probe state on demand from the analytic churn
//! schedule, so its cost scales with reads and replacement events instead
//! of N·d·ticks. Both modes run in compat mode (per-node RNG streams) and
//! produce bit-identical results — asserted here before timing.

use idpa_bench::harness::Harness;
use idpa_sim::{ProbeMode, ScenarioConfig, SimulationRun};

/// A scenario where the probe sweep dominates the event loop: large N,
/// wide neighbor sets, a 30-second probe period over the default 24-hour
/// horizon, and a light transmission load (64 messages over 8 pairs).
/// Neighbor sets are static (the default), the regime lazy probing is
/// built for: with no replacement schedule, probe state is touched only
/// where transmissions actually read it.
fn probe_dominated(mode: ProbeMode) -> ScenarioConfig {
    let cfg = ScenarioConfig {
        degree: 32,
        n_pairs: 8,
        total_transmissions: 64,
        max_connections: 8,
        probe_period: 0.5,
        probe_mode: mode,
        seed: 3,
        ..ScenarioConfig::default()
    }
    .with_nodes(4000);
    cfg.validate().expect("bench scenario must be valid");
    cfg
}

fn main() {
    let eager = probe_dominated(ProbeMode::Eager);
    let lazy = probe_dominated(ProbeMode::Lazy);

    // The speedup must not come from computing something different: the
    // two modes are bit-identical in compat mode.
    let a = SimulationRun::execute(eager);
    let b = SimulationRun::execute(lazy);
    assert_eq!(a, b, "lazy run diverged from eager run");
    println!(
        "probe_scale: eager == lazy at N=4000 (connections={}, avg payoff={:.3})",
        a.connections, a.avg_good_payoff
    );

    let mut h = Harness::new();
    h.bench("probe_scale/run_n4000_d32_eager", || {
        SimulationRun::execute(eager)
    });
    h.bench("probe_scale/run_n4000_d32_lazy", || {
        SimulationRun::execute(lazy)
    });
    h.write_json_default().expect("write bench report");
}
