//! Fig. 6 regeneration: CDF of good-node payoffs at f = 0.1 (deciles
//! printed), plus the cost of building the ECDF from run samples.

use criterion::{criterion_group, criterion_main, Criterion};
use idpa_bench::{model_one, run_point};
use idpa_desim::stats::Ecdf;
use std::hint::black_box;

fn fig6(c: &mut Criterion) {
    let r = run_point(0.1, model_one(), 1.0, 42);
    let mut ecdf = Ecdf::from_samples(r.good_payoffs.iter().copied());
    println!("fig6 (bench scale): payoff deciles at f=0.1 (model I)");
    for q in [0.25, 0.5, 0.75, 1.0] {
        println!("  q{q:.2}: {:.0}", ecdf.quantile(q));
    }
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("run_and_cdf", |b| {
        b.iter(|| {
            let r = run_point(0.1, model_one(), 1.0, 42);
            let mut e = Ecdf::from_samples(r.good_payoffs.iter().copied());
            black_box(e.quantile(0.5))
        })
    });
    g.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
