//! Fig. 6 regeneration: CDF of good-node payoffs at f = 0.1 (deciles
//! printed), plus the cost of building the ECDF from run samples.

use idpa_bench::harness::Harness;
use idpa_bench::{model_one, run_point};
use idpa_desim::stats::Ecdf;

fn main() {
    let r = run_point(0.1, model_one(), 1.0, 42);
    let mut ecdf = Ecdf::from_samples(r.good_payoffs.iter().copied());
    println!("fig6 (bench scale): payoff deciles at f=0.1 (model I)");
    for q in [0.25, 0.5, 0.75, 1.0] {
        println!("  q{q:.2}: {:.0}", ecdf.quantile(q));
    }
    let mut h = Harness::new();
    h.bench("fig6/run_and_cdf", || {
        let r = run_point(0.1, model_one(), 1.0, 42);
        let mut e = Ecdf::from_samples(r.good_payoffs.iter().copied());
        e.quantile(0.5)
    });
    h.write_json_default().expect("write bench report");
}
