//! The lazy node lifecycle at scale: per-tick cost and resident memory
//! must track active traffic, not N.
//!
//! Three guards run before timing:
//!
//! 1. **Value identity** — at N = 2000 the lazy lifecycle's `RunResult`
//!    equals the eager one after zeroing the resident-state metrics (the
//!    only fields the lifecycle may change).
//! 2. **Bounded residency** — the peak materialized node count of a lazy
//!    scale run stays a small fraction of N (the fixed 512-pair workload
//!    saturates around ~3.3k touched nodes regardless of N).
//! 3. **Bounded memory** — the whole run's heap high-water mark, counted
//!    by the in-tree [`CountingAllocator`], stays under a ceiling sized to
//!    the deliberate O(N) residuals (analytic churn schedules, topology)
//!    plus the O(active) slab. At N = 10⁶ the measured peak is ~400 MiB;
//!    the ceiling is 1 GiB, far below what eagerly materialized per-node
//!    state (let alone the O(N²) dense cost matrix) would need.
//!
//! Timed arms compare eager vs lazy lifecycles at N = 100k and time the
//! million-node lazy run. `IDPA_NL_QUICK=1` restricts the sweep to
//! N = 20k (and the memory assertion to N = 100k) for the CI bench gate.

use idpa_bench::alloc_counter::CountingAllocator;
use idpa_bench::harness::Harness;
use idpa_sim::{NodeLifecycle, RunResult, ScenarioConfig, SimulationRun};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// The scale scenario with an explicit lifecycle arm.
fn scale_cfg(n: usize, lifecycle: NodeLifecycle) -> ScenarioConfig {
    let cfg = ScenarioConfig {
        node_lifecycle: lifecycle,
        ..ScenarioConfig::scale(n, 1)
    };
    cfg.validate().expect("bench scenario must be valid");
    cfg
}

/// Zeroes the resident-state metrics — the only fields the lifecycle is
/// allowed to change.
fn normalized(mut r: RunResult) -> RunResult {
    r.peak_materialized_nodes = 0;
    r.node_evictions = 0;
    r.slab_bytes = 0;
    r
}

/// Runs the lazy arm at `n` under a fresh peak window, asserting residency
/// and heap stay under the ceilings. Returns the run for reporting.
fn bounded_run(n: usize, max_nodes: usize, max_heap_bytes: usize) -> RunResult {
    let cfg = scale_cfg(n, NodeLifecycle::Lazy);
    ALLOC.reset_peak();
    let r = SimulationRun::execute(cfg);
    let peak = ALLOC.peak_bytes();
    println!(
        "node_lifecycle/scale_{n}: peak heap {:.1} MiB, peak nodes {}, evictions {}, slab {:.1} KiB",
        peak as f64 / (1024.0 * 1024.0),
        r.peak_materialized_nodes,
        r.node_evictions,
        r.slab_bytes as f64 / 1024.0
    );
    assert!(
        r.peak_materialized_nodes <= max_nodes,
        "N={n}: peak residency {} exceeds the {max_nodes}-node ceiling",
        r.peak_materialized_nodes
    );
    assert!(
        peak <= max_heap_bytes,
        "N={n}: peak heap {peak} B exceeds the {max_heap_bytes} B ceiling"
    );
    r
}

fn main() {
    let quick = std::env::var("IDPA_NL_QUICK").is_ok_and(|v| v == "1");
    let mut h = Harness::new();

    // Guard 1 — value identity before any timing.
    let eager = SimulationRun::execute(scale_cfg(2_000, NodeLifecycle::Eager));
    let lazy = SimulationRun::execute(scale_cfg(2_000, NodeLifecycle::Lazy));
    assert_eq!(
        normalized(eager),
        normalized(lazy),
        "lazy lifecycle diverged from eager at N=2000"
    );
    println!("node_lifecycle: lazy == eager at N=2000 (normalized resident metrics)");

    // Guards 2 + 3 — bounded residency and heap. The working set is
    // ~3.3k nodes at every N; ceilings leave ~15x (nodes) and ~2.5x
    // (heap) headroom over the measured figures so the assert catches
    // regressions in kind, not noise.
    let (mem_n, heap_ceiling) = if quick {
        (100_000, 256 << 20)
    } else {
        (1_000_000, 1 << 30)
    };
    let r = bounded_run(mem_n, 50_000, heap_ceiling);
    assert_eq!(r.connections, 4_096, "scale run dropped transmissions");

    // Timed arms: the lifecycle comparison at fixed N, and the lazy run
    // at the largest scale for the tier.
    let compare_n = if quick { 20_000 } else { 100_000 };
    let tag = if quick { "n20k" } else { "n100k" };
    h.bench(&format!("node_lifecycle/scale_{tag}_eager"), || {
        SimulationRun::execute(scale_cfg(compare_n, NodeLifecycle::Eager))
    });
    h.bench(&format!("node_lifecycle/scale_{tag}_lazy"), || {
        SimulationRun::execute(scale_cfg(compare_n, NodeLifecycle::Lazy))
    });
    if !quick {
        h.bench("node_lifecycle/scale_1m_lazy", || {
            SimulationRun::execute(scale_cfg(1_000_000, NodeLifecycle::Lazy))
        });
    }
    h.write_json_default().expect("write bench report");
}
