//! Micro-benchmarks of the substrate kernels: event calendar throughput,
//! RNG, selectivity lookups (indexed vs rescan), path formation, model II
//! lookahead (memoised vs naive recursion), probing, the crypto
//! primitives and game solving.

use idpa_bench::harness::Harness;
use idpa_core::bundle::BundleId;
use idpa_core::contract::Contract;
use idpa_core::history::HistoryProfile;
use idpa_core::path::form_connection;
use idpa_core::quality::{EdgeQuality, Weights};
use idpa_core::routing::{
    continuation_quality_with, edge_quality_of, PathPolicy, RouteScratch, RoutingStrategy,
    RoutingView,
};
use idpa_core::utility::UtilityModel;
use idpa_crypto::bigint::BigUint;
use idpa_crypto::blind::BlindingFactor;
use idpa_crypto::chacha20::ChaCha20;
use idpa_crypto::rsa::RsaKeyPair;
use idpa_crypto::sha256::Sha256;
use idpa_desim::rng::Xoshiro256StarStar;
use idpa_desim::{Calendar, SimTime};
use idpa_overlay::{NodeId, NodeKind, ProbeEstimator, Topology};
use std::hint::black_box;

fn bench_calendar(h: &mut Harness) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(1);
    h.bench("desim/calendar_schedule_pop_10k", || {
        let mut cal = Calendar::new();
        for i in 0..10_000u32 {
            let t = (rng.next() % 1_000_000) as f64 / 1000.0;
            cal.schedule(SimTime::new(t), i);
        }
        let mut count = 0;
        while let Some(e) = cal.pop() {
            count += black_box(e.event) as u64;
        }
        count
    });
    let mut rng = Xoshiro256StarStar::seed_from_u64(2);
    h.bench("desim/xoshiro_1m_draws", || {
        let mut acc = 0u64;
        for _ in 0..1_000_000 {
            acc = acc.wrapping_add(rng.next());
        }
        acc
    });
}

struct BenchView {
    topology: Topology,
}

impl RoutingView for BenchView {
    fn live_neighbors(&self, s: NodeId) -> Vec<NodeId> {
        self.topology.neighbors(s).to_vec()
    }
    fn live_neighbors_into(&self, s: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend_from_slice(self.topology.neighbors(s));
    }
    fn availability(&self, s: NodeId, v: NodeId) -> f64 {
        ((s.index() * 13 + v.index() * 7) % 100) as f64 / 100.0
    }
    fn transmission_cost(&self, _: NodeId, _: NodeId) -> f64 {
        1.0
    }
    fn participation_cost(&self, _: NodeId) -> f64 {
        5.0
    }
}

/// A history profile loaded with `records` hops on one bundle: the
/// selectivity-lookup workload.
fn loaded_history(records: u32) -> HistoryProfile {
    let mut hist = HistoryProfile::new(NodeId(0));
    let mut rng = Xoshiro256StarStar::seed_from_u64(7);
    use rand::RngExt;
    for conn in 0..records {
        let pred = NodeId(rng.random_range(1..8usize));
        let succ = NodeId(rng.random_range(8..16usize));
        hist.record(BundleId(0), conn, pred, succ);
    }
    hist
}

fn bench_selectivity(h: &mut Harness) {
    let hist = loaded_history(512);
    let priors = 512;
    h.bench("history/selectivity_indexed_512", || {
        let mut acc = 0.0;
        for v in 8..16 {
            acc += hist.selectivity(BundleId(0), priors, NodeId(v));
        }
        acc
    });
    h.bench("history/selectivity_rescan_512", || {
        let mut acc = 0.0;
        for v in 8..16 {
            acc += hist.selectivity_rescan(BundleId(0), priors, NodeId(v));
        }
        acc
    });
    h.bench("history/selectivity_from_indexed_512", || {
        let mut acc = 0.0;
        for v in 8..16 {
            acc += hist.selectivity_from(BundleId(0), priors, NodeId(1), NodeId(v));
        }
        acc
    });
    h.bench("history/selectivity_from_rescan_512", || {
        let mut acc = 0.0;
        for v in 8..16 {
            acc += hist.selectivity_from_rescan(BundleId(0), priors, NodeId(1), NodeId(v));
        }
        acc
    });
}

/// The pre-memoisation model II recursion (the seed's algorithm), kept
/// here as the before-side of the lookahead speedup measurement.
#[allow(clippy::too_many_arguments)]
fn continuation_rec_nomemo(
    from: NodeId,
    depth: u8,
    contract: &Contract,
    priors: u32,
    histories: &[HistoryProfile],
    view: &impl RoutingView,
    quality: &EdgeQuality,
    visited: &mut Vec<NodeId>,
) -> (f64, usize) {
    let deliver = (quality.responder_edge(), 1usize);
    if depth == 0 {
        return deliver;
    }
    let mut best: Option<(f64, usize)> = None;
    let mut best_avg = f64::NEG_INFINITY;
    for v in view.live_neighbors(from) {
        if v == contract.responder || visited.contains(&v) {
            continue;
        }
        let q_edge = edge_quality_of(
            from,
            v,
            contract,
            priors,
            &histories[from.index()],
            view,
            quality,
        );
        visited.push(v);
        let (tail_sum, tail_edges) = continuation_rec_nomemo(
            v,
            depth - 1,
            contract,
            priors,
            histories,
            view,
            quality,
            visited,
        );
        visited.pop();
        let cand = (q_edge + tail_sum, 1 + tail_edges);
        let cand_avg = cand.0 / cand.1 as f64;
        if cand_avg > best_avg + 1e-12 {
            best = Some(cand);
            best_avg = cand_avg;
        }
    }
    best.unwrap_or(deliver)
}

fn bench_model2_lookahead(h: &mut Harness) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(3);
    let view = BenchView {
        topology: Topology::random(40, 5, &mut rng),
    };
    let contract = Contract::new(BundleId(0), NodeId(39), 50.0, 100.0);
    let quality = EdgeQuality::new(Weights::balanced());
    // Warmed-up histories, as mid-run routing sees them: every node has
    // prior records over its real neighbor edges.
    use rand::RngExt;
    let mut histories: Vec<HistoryProfile> =
        (0..40).map(|i| HistoryProfile::new(NodeId(i))).collect();
    for (i, hist) in histories.iter_mut().enumerate() {
        let nbrs = view.topology.neighbors(NodeId(i)).to_vec();
        for conn in 0..64u32 {
            let pred = nbrs[rng.random_range(0..nbrs.len())];
            let succ = nbrs[rng.random_range(0..nbrs.len())];
            hist.record(BundleId(0), conn, pred, succ);
        }
    }
    // One transmission evaluates the continuation for every candidate of
    // every hop: approximate with all 5 neighbors of node 0.
    let candidates: Vec<NodeId> = view.live_neighbors(NodeId(0));
    for la in [3u8, 4u8, 5u8] {
        let mut scratch = RouteScratch::new();
        h.bench(&format!("core/model2_cont_memo_la{la}"), || {
            scratch.begin_transmission();
            let mut acc = 0.0;
            for &j in &candidates {
                let q_edge =
                    edge_quality_of(NodeId(0), j, &contract, 20, &histories[0], &view, &quality);
                acc += continuation_quality_with(
                    &mut scratch,
                    NodeId(0),
                    j,
                    q_edge,
                    la,
                    &contract,
                    20,
                    &histories,
                    &view,
                    &quality,
                );
            }
            acc
        });
        h.bench(&format!("core/model2_cont_nomemo_la{la}"), || {
            let mut acc = 0.0;
            for &j in &candidates {
                let q_edge =
                    edge_quality_of(NodeId(0), j, &contract, 20, &histories[0], &view, &quality);
                let mut visited = vec![NodeId(0), j];
                let (total, edges) = continuation_rec_nomemo(
                    j,
                    la.saturating_sub(1),
                    &contract,
                    20,
                    &histories,
                    &view,
                    &quality,
                    &mut visited,
                );
                acc += (q_edge + total) / (1.0 + edges as f64);
            }
            acc
        });
    }
}

fn bench_path_formation(h: &mut Harness) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(3);
    let view = BenchView {
        topology: Topology::random(40, 5, &mut rng),
    };
    let contract = Contract::new(BundleId(0), NodeId(39), 50.0, 100.0);
    let kinds = vec![NodeKind::Good; 40];
    let quality = EdgeQuality::new(Weights::balanced());
    let policy = PathPolicy::new(0.75, 8);

    for (label, strategy) in [
        ("core/path_random", RoutingStrategy::Random),
        (
            "core/path_model1",
            RoutingStrategy::Utility(UtilityModel::ModelI),
        ),
        (
            "core/path_model2_la2",
            RoutingStrategy::Utility(UtilityModel::ModelII { lookahead: 2 }),
        ),
        (
            "core/path_model2_la3",
            RoutingStrategy::Utility(UtilityModel::ModelII { lookahead: 3 }),
        ),
    ] {
        let mut histories: Vec<HistoryProfile> =
            (0..40).map(|i| HistoryProfile::new(NodeId(i))).collect();
        let mut conn = 0u32;
        h.bench(label, || {
            let out = form_connection(
                NodeId(0),
                conn,
                &contract,
                conn.min(20),
                &view,
                &mut histories,
                &kinds,
                &quality,
                strategy,
                &policy,
                &mut rng,
            );
            conn += 1;
            out.forwarders.len()
        });
    }
}

fn bench_probing(h: &mut Harness) {
    let mut est = ProbeEstimator::new(NodeId(0), 5.0, (1..=5).map(NodeId).collect());
    let mut rng = Xoshiro256StarStar::seed_from_u64(4);
    let mut round = 0u64;
    h.bench("overlay/probe_round_d5", || {
        round += 1;
        est.probe_round(|v| !(v.index() as u64 + round).is_multiple_of(3), &mut rng);
        est.availability(NodeId(1))
    });
}

/// Random degree-`d` neighbor sets over `n` nodes (distinct, non-self).
fn random_neighbor_sets(n: usize, d: usize, rng: &mut Xoshiro256StarStar) -> Vec<Vec<NodeId>> {
    use rand::RngExt;
    (0..n)
        .map(|i| {
            let mut nbrs: Vec<NodeId> = Vec::with_capacity(d);
            while nbrs.len() < d {
                let v = NodeId(rng.random_range(0..n));
                if v.index() != i && !nbrs.contains(&v) {
                    nbrs.push(v);
                }
            }
            nbrs
        })
        .collect()
}

/// The cost the lazy path avoids paying per tick: one full eager probe
/// sweep (probe round + neighbor maintenance for every node) at network
/// sizes where it dominates the event loop.
fn bench_probe_tick(h: &mut Harness) {
    use idpa_desim::rng::StreamFactory;
    for (n, d) in [(1_000usize, 8usize), (10_000, 32)] {
        let streams = StreamFactory::new(11);
        let mut topo_rng = Xoshiro256StarStar::seed_from_u64(9);
        let sets = random_neighbor_sets(n, d, &mut topo_rng);
        let mut ests: Vec<ProbeEstimator> = sets
            .into_iter()
            .enumerate()
            .map(|(i, nbrs)| ProbeEstimator::new(NodeId(i), 5.0, nbrs))
            .collect();
        let mut round = 0u64;
        h.bench(&format!("overlay/probe_tick_eager_n{n}_d{d}"), || {
            round += 1;
            for est in &mut ests {
                est.probe_round_seeded(&streams, |v| !(v.index() as u64 + round).is_multiple_of(3));
                est.maintain_seeded(&streams, 6, n);
            }
            ests[0].rounds()
        });
    }
}

/// Lazy catch-up after a long idle gap: nothing read any probe state for
/// a full day of churn (288 probe ticks at T = 5), then the whole
/// network's cells are synchronised at once. The lazy set does one
/// closed-form advance per (node, slot) — O(session intervals) — where
/// the eager estimator replays every probe of every tick.
fn bench_lazy_catchup(h: &mut Harness) {
    use idpa_desim::rng::StreamFactory;
    use idpa_netmodel::NodeSchedule;
    use idpa_overlay::LazyProbeSet;

    let n = 256usize;
    let d = 8usize;
    let period = 5.0;
    let horizon = 24.0 * 60.0; // 288 probe ticks
    let mut topo_rng = Xoshiro256StarStar::seed_from_u64(10);
    let sets = random_neighbor_sets(n, d, &mut topo_rng);
    // Alternating sessions staggered by node index so probes see a mix of
    // live and silent neighbors.
    let schedules: Vec<NodeSchedule> = (0..n)
        .map(|i| {
            let mut sessions = Vec::new();
            let mut t = (i % 7) as f64 * 3.0;
            while t < horizon {
                let up = 40.0 + (i % 5) as f64 * 25.0;
                sessions.push((t, (t + up).min(horizon)));
                t += up + 20.0 + (i % 3) as f64 * 15.0;
            }
            NodeSchedule::from_sessions(sessions)
        })
        .collect();
    let streams = StreamFactory::new(11);
    let pristine = LazyProbeSet::new(
        period,
        horizon,
        schedules.clone(),
        sets.clone(),
        None,
        streams.clone(),
    );
    h.bench("overlay/lazy_catchup_all_288_ticks", || {
        let mut set = pristine.clone();
        set.sync_all(horizon, 1);
        set.session_time(NodeId(0), sets[0][0], horizon)
    });
    h.bench("overlay/eager_replay_all_288_ticks", || {
        let mut ests: Vec<ProbeEstimator> = sets
            .iter()
            .enumerate()
            .map(|(i, nbrs)| ProbeEstimator::new(NodeId(i), period, nbrs.clone()))
            .collect();
        for k in 1.. {
            let t = k as f64 * period;
            if t >= horizon {
                break;
            }
            let now = idpa_desim::SimTime::new(t);
            for est in &mut ests {
                if !schedules[est.owner().index()].is_up(now) {
                    continue;
                }
                est.probe_round_seeded(&streams, |v| schedules[v.index()].is_up(now));
            }
        }
        ests[0].session_time(sets[0][0])
    });
}

fn bench_crypto(h: &mut Harness) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(5);
    let keys = RsaKeyPair::generate(512, &mut rng);

    let m = BigUint::from_u64(0xdead_beef);
    h.bench("crypto/rsa512_sign_montgomery", || keys.raw_sign(&m));
    {
        // The same-width exponentiation without the Montgomery fast path:
        // a dense 511-bit exponent driven through division-based modpow.
        let n = keys.public().modulus().clone();
        let mut fake_d = BigUint::zero();
        for i in 0..n.bits() - 1 {
            if i % 2 == 0 {
                fake_d.set_bit(i);
            }
        }
        h.bench("crypto/rsa512_sign_plain_modpow", || m.modpow(&fake_d, &n));
    }
    let sig = keys.raw_sign(&m);
    h.bench("crypto/rsa512_verify", || keys.public().raw_verify(&sig));
    {
        // The uncached verification path the seed shipped (division-based
        // modpow, no shared Montgomery context) — the before-side of the
        // cached-context speedup that `crypto/rsa512_verify` now measures.
        let n = keys.public().modulus().clone();
        let e = keys.public().exponent().clone();
        h.bench("crypto/rsa512_verify_plain_modpow", || sig.modpow(&e, &n));
    }
    {
        // Batch vs individual verification of one settlement-sized batch.
        // The batch kernel runs the squared (QR-subgroup, up-to-sign)
        // combined equation — the sound form of the small-exponents test
        // over (Z/n)*. For e = 65537 it costs ~64 Montgomery multiplies per
        // item (64-bit coefficients, two interleaved accumulators) against
        // ~18 for a cached individual verify, so the batch is expected to
        // LOSE here — it beats only the uncached plain path above, which is
        // why the bank deposits with strict individual verification. These
        // two kernels keep that trade-off measured; the settlement win
        // comes from netting, not from this equation.
        let items: Vec<(BigUint, BigUint)> = (0..256u64)
            .map(|i| {
                let m = BigUint::from_bytes_be(&Sha256::digest(&i.to_be_bytes()))
                    .rem(keys.public().modulus());
                (keys.raw_sign(&m), m)
            })
            .collect();
        let mut coeff_rng = Xoshiro256StarStar::seed_from_u64(6);
        h.bench("crypto/rsa512_batch_verify_256", || {
            idpa_crypto::batch_verify(keys.public(), &items, |_| coeff_rng.next()).is_all_valid()
        });
        h.bench("crypto/rsa512_individual_verify_256", || {
            items
                .iter()
                .filter(|(sig, m)| &keys.public().raw_verify(sig) == m)
                .count()
        });
    }
    h.bench("crypto/blind_unblind", || {
        let bf = BlindingFactor::random(keys.public(), &mut rng);
        let blinded = bf.blind(keys.public(), &m);
        let sig = keys.raw_sign(&blinded);
        bf.unblind(keys.public(), &sig)
    });
    let data = vec![0xabu8; 4096];
    h.bench("crypto/sha256_4k", || Sha256::digest(&data));
    let key = [7u8; 32];
    let nonce = [1u8; 12];
    let zeros = vec![0u8; 4096];
    h.bench("crypto/chacha20_4k", || {
        ChaCha20::encrypt(&key, &nonce, &zeros)
    });
}

fn bench_games(h: &mut Harness) {
    use idpa_game::NormalFormGame;
    let game = NormalFormGame::from_fn(vec![3, 3, 3], |p| p.iter().map(|&s| s as f64).collect());
    h.bench("game/iterated_elimination_3x3x3", || {
        game.iterated_elimination()
    });
}

fn main() {
    let mut h = Harness::new();
    bench_calendar(&mut h);
    bench_selectivity(&mut h);
    bench_model2_lookahead(&mut h);
    bench_path_formation(&mut h);
    bench_probing(&mut h);
    bench_probe_tick(&mut h);
    bench_lazy_catchup(&mut h);
    bench_crypto(&mut h);
    bench_games(&mut h);
    h.write_json_default().expect("write bench report");
}
