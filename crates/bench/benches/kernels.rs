//! Micro-benchmarks of the substrate kernels: event calendar throughput,
//! RNG, path formation, probing, the crypto primitives and game solving.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use idpa_core::bundle::BundleId;
use idpa_core::contract::Contract;
use idpa_core::history::HistoryProfile;
use idpa_core::path::form_connection;
use idpa_core::quality::{EdgeQuality, Weights};
use idpa_core::routing::{PathPolicy, RoutingStrategy, RoutingView};
use idpa_core::utility::UtilityModel;
use idpa_crypto::bigint::BigUint;
use idpa_crypto::blind::BlindingFactor;
use idpa_crypto::chacha20::ChaCha20;
use idpa_crypto::rsa::RsaKeyPair;
use idpa_crypto::sha256::Sha256;
use idpa_desim::rng::Xoshiro256StarStar;
use idpa_desim::{Calendar, SimTime};
use idpa_overlay::{NodeId, NodeKind, ProbeEstimator, Topology};
use std::hint::black_box;

fn bench_calendar(c: &mut Criterion) {
    let mut g = c.benchmark_group("desim");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("calendar_schedule_pop_10k", |b| {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        b.iter(|| {
            let mut cal = Calendar::new();
            for i in 0..10_000u32 {
                let t = (rng.next() % 1_000_000) as f64 / 1000.0;
                cal.schedule(SimTime::new(t), i);
            }
            let mut count = 0;
            while let Some(e) = cal.pop() {
                count += black_box(e.event) as u64;
            }
            black_box(count)
        })
    });
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("xoshiro_1m_draws", |b| {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc = acc.wrapping_add(rng.next());
            }
            black_box(acc)
        })
    });
    g.finish();
}

struct BenchView {
    topology: Topology,
}

impl RoutingView for BenchView {
    fn live_neighbors(&self, s: NodeId) -> Vec<NodeId> {
        self.topology.neighbors(s).to_vec()
    }
    fn availability(&self, s: NodeId, v: NodeId) -> f64 {
        ((s.index() * 13 + v.index() * 7) % 100) as f64 / 100.0
    }
    fn transmission_cost(&self, _: NodeId, _: NodeId) -> f64 {
        1.0
    }
    fn participation_cost(&self, _: NodeId) -> f64 {
        5.0
    }
}

fn bench_path_formation(c: &mut Criterion) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(3);
    let view = BenchView {
        topology: Topology::random(40, 5, &mut rng),
    };
    let contract = Contract::new(BundleId(0), NodeId(39), 50.0, 100.0);
    let kinds = vec![NodeKind::Good; 40];
    let quality = EdgeQuality::new(Weights::balanced());
    let policy = PathPolicy::new(0.75, 8);

    let mut g = c.benchmark_group("core");
    for (label, strategy) in [
        ("path_random", RoutingStrategy::Random),
        ("path_model1", RoutingStrategy::Utility(UtilityModel::ModelI)),
        (
            "path_model2_la2",
            RoutingStrategy::Utility(UtilityModel::ModelII { lookahead: 2 }),
        ),
        (
            "path_model2_la3",
            RoutingStrategy::Utility(UtilityModel::ModelII { lookahead: 3 }),
        ),
    ] {
        g.bench_function(label, |b| {
            let mut histories: Vec<HistoryProfile> =
                (0..40).map(|i| HistoryProfile::new(NodeId(i))).collect();
            let mut conn = 0u32;
            b.iter(|| {
                let out = form_connection(
                    NodeId(0),
                    conn,
                    &contract,
                    conn.min(20),
                    &view,
                    &mut histories,
                    &kinds,
                    &quality,
                    strategy,
                    &policy,
                    &mut rng,
                );
                conn += 1;
                black_box(out.forwarders.len())
            })
        });
    }
    g.finish();
}

fn bench_probing(c: &mut Criterion) {
    let mut g = c.benchmark_group("overlay");
    g.bench_function("probe_round_d5", |b| {
        let mut est = ProbeEstimator::new(NodeId(0), 5.0, (1..=5).map(NodeId).collect());
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            est.probe_round(|v| (v.index() as u64 + round) % 3 != 0, &mut rng);
            black_box(est.availability(NodeId(1)))
        })
    });
    g.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(5);
    let keys = RsaKeyPair::generate(512, &mut rng);

    let mut g = c.benchmark_group("crypto");
    g.bench_function("rsa512_sign_montgomery", |b| {
        let m = BigUint::from_u64(0xdead_beef);
        b.iter(|| black_box(keys.raw_sign(&m)))
    });
    g.bench_function("rsa512_sign_plain_modpow", |b| {
        // The same-width exponentiation without the Montgomery fast path:
        // a dense 511-bit exponent driven through division-based modpow.
        let m = BigUint::from_u64(0xdead_beef);
        let n = keys.public().modulus().clone();
        let mut fake_d = BigUint::zero();
        for i in 0..n.bits() - 1 {
            if i % 2 == 0 {
                fake_d.set_bit(i);
            }
        }
        b.iter(|| black_box(m.modpow(&fake_d, &n)))
    });
    g.bench_function("rsa512_verify", |b| {
        let sig = keys.raw_sign(&BigUint::from_u64(0xdead_beef));
        b.iter(|| black_box(keys.public().raw_verify(&sig)))
    });
    g.bench_function("blind_unblind", |b| {
        let m = BigUint::from_u64(42);
        b.iter(|| {
            let bf = BlindingFactor::random(keys.public(), &mut rng);
            let blinded = bf.blind(keys.public(), &m);
            let sig = keys.raw_sign(&blinded);
            black_box(bf.unblind(keys.public(), &sig))
        })
    });
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("sha256_4k", |b| {
        let data = vec![0xabu8; 4096];
        b.iter(|| black_box(Sha256::digest(&data)))
    });
    g.bench_function("chacha20_4k", |b| {
        let key = [7u8; 32];
        let nonce = [1u8; 12];
        let data = vec![0u8; 4096];
        b.iter(|| black_box(ChaCha20::encrypt(&key, &nonce, &data)))
    });
    g.finish();
}

fn bench_games(c: &mut Criterion) {
    use idpa_game::NormalFormGame;
    let mut g = c.benchmark_group("game");
    g.bench_function("iterated_elimination_3x3x3", |b| {
        let game = NormalFormGame::from_fn(vec![3, 3, 3], |p| {
            p.iter().map(|&s| s as f64).collect()
        });
        b.iter(|| black_box(game.iterated_elimination()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_calendar,
    bench_path_formation,
    bench_probing,
    bench_crypto,
    bench_games
);
criterion_main!(benches);
