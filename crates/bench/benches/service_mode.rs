//! Service-mode overhead and open-workload throughput.
//!
//! Three questions, one bench:
//!
//! 1. **What does the service loop cost when idle?** `run_service` with no
//!    options must match [`SimulationRun::execute`] byte for byte (asserted
//!    before timing) and should cost the same wall clock — the event-budget
//!    chunking that enables graceful shutdown is bookkeeping on an `u64`,
//!    nothing more.
//! 2. **What does a checkpoint cost?** Snapshot encode and restore are timed
//!    as kernels over a mid-run state (every accumulator, history cell,
//!    reputation ledger and validator evidence list live), so the
//!    `--snapshot-every` overhead is `encode + fs::write` per boundary and
//!    can be sized against the interval.
//! 3. **What does the open workload sustain?** A Poisson-arrival run through
//!    the full service path, reported as connections per second of wall
//!    clock.
//!
//! Before any timing the bench pins the equivalences the test suites rely
//! on at bench scale: plain service == execute, checkpointed service ==
//! execute, restored checkpoint resumes to the identical result.
//!
//! `IDPA_SVC_QUICK=1` halves the workload for the CI bench gate; quick and
//! full tiers use distinct kernel names so their points never gate against
//! each other.

use idpa_bench::harness::{smoke_mode, Harness};
use idpa_desim::{Engine, SimTime};
use idpa_sim::snapshot::{encode, restore};
use idpa_sim::{run_service, ScenarioConfig, ServiceOptions, SimulationRun, WorkloadMode, World};

/// The closed-workload scenario for the overhead comparison.
fn closed_cfg(transmissions: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig {
        total_transmissions: transmissions,
        adversary_fraction: 0.2,
        seed: 0x5e41,
        ..ScenarioConfig::default()
    };
    cfg.fault.crash_rate = 0.03;
    cfg.fault.drop_rate = 0.05;
    cfg
}

/// The open-workload scenario: Poisson arrivals at `rate` per pair per
/// minute with steady-state windows over the last 20 hours.
/// (`total_transmissions` is unused by the open scheduler but must stay
/// nonzero for config validation.)
fn open_cfg(rate: f64, transmissions: usize) -> ScenarioConfig {
    let mut cfg = closed_cfg(transmissions);
    cfg.workload = WorkloadMode::Open;
    cfg.open_arrival_rate = rate;
    cfg.window_len = 4.0 * 60.0;
    cfg.window_warmup = 4.0 * 60.0;
    cfg
}

/// A deep mid-run state (about half the events handled) for the snapshot
/// kernels.
fn mid_run(cfg: &ScenarioConfig) -> (SimulationRun, Engine<idpa_sim::runner::Ev>) {
    let world = World::generate(cfg);
    let mut run = SimulationRun::new(*cfg, world);
    let mut engine = Engine::new();
    run.schedule_all(&mut engine);
    engine.set_event_budget(cfg.total_transmissions.max(2_000) as u64 * 2);
    engine.run(&mut run, Some(SimTime::new(cfg.churn.horizon / 2.0)));
    engine.clear_event_budget();
    (run, engine)
}

fn main() {
    let quick = std::env::var("IDPA_SVC_QUICK").is_ok_and(|v| v == "1");
    let (transmissions, rate, tag) = if smoke_mode() {
        (400, 0.005, "t400")
    } else if quick {
        (2_000, 0.02, "t2k")
    } else {
        (8_000, 0.08, "t8k")
    };

    let closed = closed_cfg(transmissions);
    let open = open_cfg(rate, transmissions);

    // Equivalence guards before any timing.
    let baseline = SimulationRun::execute(closed);
    let service = run_service(closed, &ServiceOptions::default()).expect("plain service run");
    assert_eq!(baseline, service, "service loop perturbed a closed run");

    let dir = std::env::temp_dir().join("idpa-bench-service");
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let path = dir.join(format!("service-{tag}.snap"));
    let ckpt = run_service(
        closed,
        &ServiceOptions {
            snapshot_every: Some(closed.churn.horizon / 6.0),
            snapshot_path: Some(path.clone()),
            ..ServiceOptions::default()
        },
    )
    .expect("checkpointing run");
    assert_eq!(baseline, ckpt, "checkpointing perturbed the run");
    let resumed = run_service(
        closed,
        &ServiceOptions {
            resume: Some(path.clone()),
            ..ServiceOptions::default()
        },
    )
    .expect("resumed run");
    assert_eq!(baseline, resumed, "resume diverged at bench scale");
    std::fs::remove_file(&path).ok();

    // Snapshot kernels over a deep mid-run state.
    let (mid, mid_engine) = mid_run(&closed);
    let bytes = encode(&mid, &mid_engine);
    println!(
        "service/{tag}: snapshot is {} KiB at {} events handled",
        bytes.len() / 1024,
        mid_engine.events_handled()
    );

    let mut h = Harness::new();
    h.bench(&format!("service/execute_closed_{tag}"), || {
        SimulationRun::execute(closed).connections
    });
    h.bench(&format!("service/service_closed_{tag}"), || {
        run_service(closed, &ServiceOptions::default())
            .expect("service run")
            .connections
    });
    h.bench(&format!("service/snapshot_encode_{tag}"), || {
        encode(&mid, &mid_engine).len()
    });
    h.bench(&format!("service/snapshot_restore_{tag}"), || {
        restore(&closed, &bytes)
            .expect("bench snapshot restores")
            .1
            .events_handled()
    });
    let open_connections = run_service(open, &ServiceOptions::default())
        .expect("open service run")
        .connections;
    h.bench(&format!("service/open_service_{tag}"), || {
        run_service(open, &ServiceOptions::default())
            .expect("open service run")
            .connections
    });

    if !smoke_mode() {
        let ns_of = |suffix: &str| {
            h.measurements()
                .iter()
                .find(|m| m.name.ends_with(suffix))
                .expect("kernel measured")
                .ns_per_iter
        };
        let execute_ns = ns_of(&format!("execute_closed_{tag}"));
        let service_ns = ns_of(&format!("service_closed_{tag}"));
        let encode_ns = ns_of(&format!("snapshot_encode_{tag}"));
        let open_ns = ns_of(&format!("open_service_{tag}"));
        println!(
            "service/{tag}: service loop overhead {:+.1}% over execute; \
             checkpoint encode {:.2} ms ({:.0} MiB/s); \
             open workload {:.0} connections/s wall",
            (service_ns / execute_ns - 1.0) * 100.0,
            encode_ns / 1e6,
            bytes.len() as f64 * 1e9 / encode_ns / (1024.0 * 1024.0),
            open_connections as f64 * 1e9 / open_ns
        );
        // Tripwire: the chunked service loop must stay within 25% of the
        // straight-line runner (it is the same event sequence; the margin
        // absorbs timer noise on a shared CI box).
        assert!(
            service_ns / execute_ns < 1.25,
            "service loop overhead collapsed: {:.2}x execute",
            service_ns / execute_ns
        );
    }
    h.write_json_default().expect("write bench report");
}
