//! Sharded-arena vs global-vec bundle formation (PR 4 tentpole bench).
//!
//! Three arms form the identical set of connection bundles:
//!
//! * `global` — the pre-sharding pathway, reproduced exactly: every
//!   connection formed in global transmission-time order (the event-loop
//!   runner's schedule) against one flat `Vec<HistoryProfile>`. Each
//!   connection lands in a different pair's region of the overlay, so at
//!   N = 10k it keeps re-touching a cold slice of the profile vector and
//!   its heap-scattered per-bundle SipHash indexes.
//! * `global_grouped` — same flat storage, but bundle-at-a-time (the new
//!   executor's schedule, sequential). Isolates how much of the win is
//!   the schedule alone.
//! * `sharded_s8` — the sharded executor: 8-shard arena, pool workers
//!   over disjoint initiator groups, every selectivity read served from
//!   the worker's bundle-local cache-resident `BundleMirror`, shard
//!   locks only at commit (ascending order).
//!
//! All arms are asserted bit-identical — at several shard/thread
//! combinations — *before* any timing, so the ratio measures schedule
//! and layout, never behavioral drift.
//!
//! `IDPA_HS_QUICK=1` restricts the sweep to N = 1k — the CI bench gate
//! uses this for its short timed pass.

use idpa_bench::harness::Harness;
use idpa_core::history::HistoryProfile;
use idpa_core::HistoryArena;
use idpa_desim::pool::default_threads;
use idpa_overlay::NodeId;
use idpa_sim::experiments::model_two;
use idpa_sim::{
    form_bundles_global, form_bundles_interleaved, form_bundles_sharded, ScenarioConfig, World,
};

/// A formation-dominated scenario: every pair re-forms its bundle from
/// scratch, so history writes and per-hop selectivity reads are the
/// entire workload (no event loop, no probes).
fn formation_cfg(n_nodes: usize, n_pairs: usize, total: usize) -> ScenarioConfig {
    let cfg = ScenarioConfig {
        degree: 12,
        n_pairs,
        total_transmissions: total,
        max_connections: 64,
        adversary_fraction: 0.1,
        good_strategy: model_two(),
        seed: 42,
        ..ScenarioConfig::default()
    }
    .with_nodes(n_nodes);
    cfg.validate().expect("bench scenario must be valid");
    cfg
}

fn fresh_profiles(cfg: &ScenarioConfig) -> Vec<HistoryProfile> {
    (0..cfg.n_nodes)
        .map(|i| HistoryProfile::new(NodeId(i)))
        .collect()
}

/// Asserts sharded formation reproduces the global baseline bit-for-bit
/// at several `(shards, threads)` combinations before anything is timed.
fn assert_arms_agree(world: &World, cfg: &ScenarioConfig) {
    let mut profiles = fresh_profiles(cfg);
    let interleaved = form_bundles_interleaved(world, cfg, &mut profiles);
    let mut profiles = fresh_profiles(cfg);
    let grouped = form_bundles_global(world, cfg, &mut profiles);
    assert_eq!(
        interleaved, grouped,
        "grouped formation diverged from the event-order baseline"
    );
    for (shards, threads) in [(1usize, 1usize), (8, 1), (8, 8)] {
        let arena = HistoryArena::new(cfg.n_nodes, shards);
        let sharded = form_bundles_sharded(world, cfg, &arena, threads);
        assert_eq!(
            interleaved, sharded,
            "sharded formation diverged at shards={shards} threads={threads}"
        );
    }
}

fn bench_scale(h: &mut Harness, tag: &str, cfg: &ScenarioConfig) {
    let world = World::generate(cfg);
    assert_arms_agree(&world, cfg);
    println!(
        "history_shard/{tag}: sharded == global ({} pairs, {} transmissions)",
        cfg.n_pairs, cfg.total_transmissions
    );

    h.bench(&format!("history_shard/form_{tag}_global"), || {
        let mut profiles = fresh_profiles(cfg);
        form_bundles_interleaved(&world, cfg, &mut profiles)
    });
    h.bench(&format!("history_shard/form_{tag}_global_grouped"), || {
        let mut profiles = fresh_profiles(cfg);
        form_bundles_global(&world, cfg, &mut profiles)
    });
    // Thread count auto-sizes to the machine (IDPA_THREADS overrides);
    // results are bit-identical at any count, so only wall clock varies.
    let threads = default_threads();
    h.bench(&format!("history_shard/form_{tag}_sharded_s8"), || {
        let arena = HistoryArena::new(cfg.n_nodes, 8);
        form_bundles_sharded(&world, cfg, &arena, threads)
    });
}

fn main() {
    let quick = std::env::var("IDPA_HS_QUICK").is_ok_and(|v| v == "1");

    let mut h = Harness::new();
    // Paper-proportioned workloads (§3 runs 100 pairs x ~20 recurring
    // connections): ~8 connections per pair at N=1k, ~32 at N=10k.
    bench_scale(&mut h, "n1k", &formation_cfg(1000, 128, 1024));
    if !quick {
        bench_scale(&mut h, "n10k", &formation_cfg(10_000, 128, 4096));
    }
    h.write_json_default().expect("write bench report");
}
