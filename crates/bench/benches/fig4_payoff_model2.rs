//! Fig. 4 regeneration: average good-node payoff vs adversary fraction,
//! utility model II (lookahead path-quality routing).

use idpa_bench::harness::Harness;
use idpa_bench::{model_two, run_point};

fn main() {
    println!("fig4 (bench scale): f -> avg good payoff (model II)");
    for step in 0..5 {
        let f = f64::from(step) * 0.2;
        let r = run_point(f, model_two(), 1.0, 42);
        println!("  f={f:.1}: {:.1}", r.avg_good_payoff);
    }
    let mut h = Harness::new();
    for f in [0.1, 0.5] {
        h.bench(&format!("fig4/point_f{f}"), || {
            run_point(f, model_two(), 1.0, 42)
        });
    }
    h.write_json_default().expect("write bench report");
}
