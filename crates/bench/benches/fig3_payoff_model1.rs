//! Fig. 3 regeneration: average good-node payoff vs adversary fraction,
//! utility model I. Prints the bench-scale series once, then benchmarks
//! the per-point regeneration cost.

use criterion::{criterion_group, criterion_main, Criterion};
use idpa_bench::{model_one, run_point};
use std::hint::black_box;

fn fig3(c: &mut Criterion) {
    println!("fig3 (bench scale): f -> avg good payoff");
    for step in 0..5 {
        let f = f64::from(step) * 0.2;
        let r = run_point(f, model_one(), 1.0, 42);
        println!("  f={f:.1}: {:.1}", r.avg_good_payoff);
    }
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    for f in [0.1, 0.5, 0.9] {
        g.bench_function(format!("point_f{f}"), |b| {
            b.iter(|| black_box(run_point(black_box(f), model_one(), 1.0, 42)))
        });
    }
    g.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
