//! Fig. 3 regeneration: average good-node payoff vs adversary fraction,
//! utility model I. Prints the bench-scale series once, then benchmarks
//! the per-point regeneration cost.

use idpa_bench::harness::Harness;
use idpa_bench::{model_one, run_point};

fn main() {
    println!("fig3 (bench scale): f -> avg good payoff");
    for step in 0..5 {
        let f = f64::from(step) * 0.2;
        let r = run_point(f, model_one(), 1.0, 42);
        println!("  f={f:.1}: {:.1}", r.avg_good_payoff);
    }
    let mut h = Harness::new();
    for f in [0.1, 0.5, 0.9] {
        h.bench(&format!("fig3/point_f{f}"), || {
            run_point(f, model_one(), 1.0, 42)
        });
    }
    h.write_json_default().expect("write bench report");
}
