//! Fig. 5 regeneration: forwarder-set size under random / model I /
//! model II routing.

use criterion::{criterion_group, criterion_main, Criterion};
use idpa_bench::{model_one, model_two, run_point};
use idpa_core::routing::RoutingStrategy;
use std::hint::black_box;

fn fig5(c: &mut Criterion) {
    println!("fig5 (bench scale): f -> ||pi|| per strategy");
    for f in [0.1, 0.5] {
        let rnd = run_point(f, RoutingStrategy::Random, 1.0, 42);
        let m1 = run_point(f, model_one(), 1.0, 42);
        let m2 = run_point(f, model_two(), 1.0, 42);
        println!(
            "  f={f:.1}: random={:.1} modelI={:.1} modelII={:.1}",
            rnd.avg_forwarder_set, m1.avg_forwarder_set, m2.avg_forwarder_set
        );
    }
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("random", |b| {
        b.iter(|| black_box(run_point(0.1, RoutingStrategy::Random, 1.0, 42)))
    });
    g.bench_function("model1", |b| {
        b.iter(|| black_box(run_point(0.1, model_one(), 1.0, 42)))
    });
    g.bench_function("model2", |b| {
        b.iter(|| black_box(run_point(0.1, model_two(), 1.0, 42)))
    });
    g.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
