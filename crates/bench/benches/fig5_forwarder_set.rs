//! Fig. 5 regeneration: forwarder-set size under random / model I /
//! model II routing.

use idpa_bench::harness::Harness;
use idpa_bench::{model_one, model_two, run_point};
use idpa_core::routing::RoutingStrategy;

fn main() {
    println!("fig5 (bench scale): f -> ||pi|| per strategy");
    for f in [0.1, 0.5] {
        let rnd = run_point(f, RoutingStrategy::Random, 1.0, 42);
        let m1 = run_point(f, model_one(), 1.0, 42);
        let m2 = run_point(f, model_two(), 1.0, 42);
        println!(
            "  f={f:.1}: random={:.1} modelI={:.1} modelII={:.1}",
            rnd.avg_forwarder_set, m1.avg_forwarder_set, m2.avg_forwarder_set
        );
    }
    let mut h = Harness::new();
    h.bench("fig5/random", || {
        run_point(0.1, RoutingStrategy::Random, 1.0, 42)
    });
    h.bench("fig5/model1", || run_point(0.1, model_one(), 1.0, 42));
    h.bench("fig5/model2", || run_point(0.1, model_two(), 1.0, 42));
    h.write_json_default().expect("write bench report");
}
