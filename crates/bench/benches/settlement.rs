//! Settlement throughput: epoch-batched settlement vs per-receipt
//! settlement at one million receipts per epoch.
//!
//! Workload model: one epoch of traffic reaches the bank as `R` forwarding
//! receipts (each a one-credit payout, escrow -> forwarder) plus one
//! bearer-token deposit per connection bundle (`D = R / 256` tokens). The
//! per-receipt arm settles the way the per-bundle bank does: one ledger
//! transfer — with its hash-chained audit entry — per receipt, and one
//! individually verified [`Bank::deposit`] per token. The epoch arm accrues
//! every receipt into an [`EpochLedger`] and settles once at the boundary:
//! token deposits submitted in one strictly verified batch call
//! ([`Bank::deposit_batch`]), transfers collapsed into one net delta per
//! account ([`Bank::apply_epoch_net`]).
//!
//! Honesty notes:
//!
//! * Both arms verify each token signature individually through the cached
//!   Montgomery context — at `e = 65537` that beats any combined batch
//!   equation (see `idpa_crypto::batch` and the `kernels` bench), so the
//!   measured epoch speedup is pure transfer netting, and it is a lower
//!   bound on the improvement over the division-based `modpow` deposits
//!   the seed shipped. The crypto-primitive deltas (plain modpow vs cached
//!   Montgomery vs squared batch equation) are measured separately in the
//!   `kernels` bench.
//! * Receipt MAC validation is identical in both settlement modes (the
//!   evidence layer verifies each receipt exactly once either way), so it
//!   is excluded from both arms.
//!
//! Before timing, both arms run once and must agree on every balance, the
//! spent-serial count, total deposits and outstanding liability — the
//! equivalence the payment property suite pins, re-checked at bench scale.
//!
//! `IDPA_ST_QUICK=1` shrinks the epoch to 64k receipts for the CI bench
//! gate; the quick and full tiers use distinct kernel names so their points
//! never gate against each other.

use idpa_bench::harness::{smoke_mode, Harness};
use idpa_desim::rng::Xoshiro256StarStar;
use idpa_payment::{AccountId, Bank, EpochLedger, EpochSettlement, Token, Wallet};

/// One epoch of settlement work, pre-generated outside the timed region.
struct Workload {
    /// Pristine bank: accounts opened, tokens withdrawn, nothing settled.
    bank: Bank,
    /// Every account the arms touch (payers, then forwarders).
    accounts: Vec<AccountId>,
    /// `(payer, forwarder)` per one-credit receipt.
    receipts: Vec<(AccountId, AccountId)>,
    /// `(credited forwarder, token)` deposits for the epoch.
    deposits: Vec<(AccountId, Token)>,
}

fn build(n_receipts: usize, n_payers: usize, n_forwarders: usize, n_tokens: usize) -> Workload {
    use rand::RngExt;
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x005e_771e);
    let mut bank = Bank::new(512, &mut rng);
    // Any payer can be hit with every receipt in the worst case.
    let payers: Vec<AccountId> = (0..n_payers)
        .map(|_| bank.open_account(n_receipts as u64))
        .collect();
    let forwarders: Vec<AccountId> = (0..n_forwarders).map(|_| bank.open_account(0)).collect();
    let funding = bank.open_account(n_tokens as u64);
    let mut wallet = Wallet::new();
    let mut deposits = Vec::with_capacity(n_tokens);
    for i in 0..n_tokens {
        bank.withdraw_into_wallet(funding, 1, &mut wallet, &mut rng)
            .expect("funding account covers every token");
        let token = wallet
            .take_exact(1)
            .expect("withdrawal minted a token")
            .pop()
            .expect("one-credit withdrawal is one token");
        deposits.push((forwarders[i % n_forwarders], token));
    }
    let receipts = (0..n_receipts)
        .map(|_| {
            (
                payers[rng.random_range(0..n_payers)],
                forwarders[rng.random_range(0..n_forwarders)],
            )
        })
        .collect();
    let mut accounts = payers;
    accounts.extend(forwarders);
    accounts.push(funding);
    Workload {
        bank,
        accounts,
        receipts,
        deposits,
    }
}

/// The per-bundle path: every receipt is its own ledger transfer (and
/// audit entry), every token its own individually verified deposit.
fn settle_per_receipt(w: &Workload) -> Bank {
    let mut bank = w.bank.clone();
    for &(payer, forwarder) in &w.receipts {
        bank.transfer(payer, forwarder, 1)
            .expect("payer balance covers the receipt");
    }
    for (account, token) in &w.deposits {
        bank.deposit(*account, token)
            .expect("token is valid and unspent");
    }
    bank
}

/// The epoch path: accrue everything, settle once at the boundary.
fn settle_epoch(w: &Workload) -> (Bank, EpochSettlement) {
    let mut bank = w.bank.clone();
    let mut ledger = EpochLedger::new();
    for &(payer, forwarder) in &w.receipts {
        ledger.accrue_transfer(payer, forwarder, 1);
    }
    for (account, token) in &w.deposits {
        ledger.queue_deposit(*account, token.clone());
    }
    let report = ledger.settle(&mut bank).expect("netted debits are covered");
    (bank, report)
}

fn main() {
    let quick = std::env::var("IDPA_ST_QUICK").is_ok_and(|v| v == "1");
    // Smoke mode proves the binary runs; keep the probe iteration short.
    let (n_receipts, n_payers, n_forwarders, tag) = if smoke_mode() {
        (8_192, 8, 128, "r8k")
    } else if quick {
        (65_536, 16, 512, "r64k")
    } else {
        (1 << 20, 64, 2_048, "r1m")
    };
    let n_tokens = n_receipts / 256;
    let w = build(n_receipts, n_payers, n_forwarders, n_tokens);

    // Equivalence guard before any timing: both arms must produce the same
    // ledger, token liability and serial state.
    let per_receipt = settle_per_receipt(&w);
    let (epoch, report) = settle_epoch(&w);
    assert_eq!(report.transfers_netted, n_receipts as u64);
    assert_eq!(report.deposits_settled, n_tokens as u64);
    assert!(report.deposit_results.iter().all(Result::is_ok));
    for &account in &w.accounts {
        assert_eq!(
            per_receipt.balance(account),
            epoch.balance(account),
            "epoch settlement changed a balance ({account:?})"
        );
    }
    assert_eq!(per_receipt.total_deposits(), epoch.total_deposits());
    assert_eq!(per_receipt.outstanding(), epoch.outstanding());
    assert_eq!(per_receipt.spent_serials(), epoch.spent_serials());
    println!(
        "settlement/{tag}: {n_receipts} receipts + {n_tokens} token deposits -> \
         {} netted accounts (netting ratio {:.0})",
        report.accounts_netted,
        report.transfers_netted as f64 / report.accounts_netted as f64
    );

    let mut h = Harness::new();
    h.bench(&format!("settlement/per_receipt_{tag}"), || {
        settle_per_receipt(&w).total_deposits()
    });
    h.bench(&format!("settlement/epoch_{tag}"), || {
        settle_epoch(&w).0.total_deposits()
    });

    if !smoke_mode() {
        let ns_of = |suffix: &str| {
            h.measurements()
                .iter()
                .find(|m| m.name.ends_with(suffix))
                .expect("both arms measured")
                .ns_per_iter
        };
        let per_ns = ns_of(&format!("per_receipt_{tag}"));
        let epoch_ns = ns_of(&format!("epoch_{tag}"));
        let speedup = per_ns / epoch_ns;
        println!(
            "settlement/{tag}: per-receipt {:.1} ms/epoch, epoch-batched {:.1} ms/epoch \
             -> {speedup:.1}x ({:.2} M receipts/s batched)",
            per_ns / 1e6,
            epoch_ns / 1e6,
            n_receipts as f64 * 1e3 / epoch_ns
        );
        // The ISSUE's acceptance floor at full scale; the quick tier keeps a
        // looser tripwire so CI still catches a collapsed speedup.
        let floor = if quick { 3.0 } else { 5.0 };
        assert!(
            speedup >= floor,
            "epoch settlement speedup {speedup:.2}x fell below the {floor}x floor"
        );
    }
    h.write_json_default().expect("write bench report");
}
