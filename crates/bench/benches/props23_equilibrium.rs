//! Props. 2-3 regeneration: stage-game dominance checks and threshold
//! evaluation across the P_f sweep.

use idpa_bench::harness::Harness;
use idpa_game::forwarding::{
    dominance_threshold, expected_session_payoff, participation_threshold,
    ForwardingStageGame,
};
use std::hint::black_box;

fn main() {
    let (cp, ct) = (5.0, 2.0);
    let p2 = participation_threshold(cp, ct, 40, 4.0, 20);
    let p3 = dominance_threshold(cp, ct);
    println!("props23: Prop.2 threshold={p2:.2} Prop.3 threshold={p3:.2}");
    for pf in [p3 * 0.9, p3 * 1.1, 50.0] {
        let game = ForwardingStageGame {
            pf, pr: 0.0, cp, ct, q_random: 0.0, q_nonrandom: 0.0,
        };
        println!(
            "  P_f={pf:.2}: dominant={} session_payoff={:.2}",
            game.forwarding_is_dominant(2),
            expected_session_payoff(pf, cp, ct, 40, 4.0, 20)
        );
    }
    let mut h = Harness::new();
    let game = ForwardingStageGame {
        pf: 50.0, pr: 100.0, cp, ct, q_random: 0.2, q_nonrandom: 0.8,
    };
    h.bench("props23/dominance_check_3p", || {
        game.forwarding_is_dominant(black_box(3))
    });
    let normal = game.to_normal_form(3);
    h.bench("props23/nash_enumeration_3p", || normal.pure_nash_equilibria());
    h.write_json_default().expect("write bench report");
}
