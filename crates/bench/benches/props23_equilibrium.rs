//! Props. 2-3 regeneration: stage-game dominance checks and threshold
//! evaluation across the P_f sweep, plus the SPNE subgame-memoization
//! speedup on a path-formation-shaped extensive game.

use idpa_bench::harness::Harness;
use idpa_game::forwarding::{
    dominance_threshold, expected_session_payoff, participation_threshold, ForwardingStageGame,
};
use idpa_game::{GameTree, NodeRef};
use std::hint::black_box;

/// A full `branching`-ary two-player tree of the given depth whose leaf
/// payoffs depend only on the parity of the move-index sum — the
/// extensive-form shape path formation produces, where the branching
/// factor is the neighbor degree and many histories reach structurally
/// identical residual subgames. Memoized backward induction collapses
/// each level to a handful of interned classes, skipping the per-node
/// action scan and value materialization the unmemoized solver pays.
fn parity_tree(depth: u32, branching: usize) -> GameTree {
    let mut t = GameTree::new(2);
    let leaves = branching.pow(depth);
    let mut level: Vec<NodeRef> = (0..leaves)
        .map(|leaf| {
            // Sum of base-`branching` digits: the number of odd moves on
            // the history reaching this leaf.
            let mut x = leaf;
            let mut digit_sum = 0usize;
            while x > 0 {
                digit_sum += x % branching;
                x /= branching;
            }
            if digit_sum.is_multiple_of(2) {
                t.terminal(vec![1.0, 0.0])
            } else {
                t.terminal(vec![0.0, 1.0])
            }
        })
        .collect();
    let mut stage = 0usize;
    while level.len() > 1 {
        let player = stage % 2;
        level = level
            .chunks(branching)
            .map(|kids| {
                let actions: Vec<(String, NodeRef)> = kids
                    .iter()
                    .enumerate()
                    .map(|(a, &c)| (format!("a{a}"), c))
                    .collect();
                t.decision(player, actions)
            })
            .collect();
        stage += 1;
    }
    t.set_root(level[0]);
    t
}

fn main() {
    let (cp, ct) = (5.0, 2.0);
    let p2 = participation_threshold(cp, ct, 40, 4.0, 20);
    let p3 = dominance_threshold(cp, ct);
    println!("props23: Prop.2 threshold={p2:.2} Prop.3 threshold={p3:.2}");
    for pf in [p3 * 0.9, p3 * 1.1, 50.0] {
        let game = ForwardingStageGame {
            pf,
            pr: 0.0,
            cp,
            ct,
            q_random: 0.0,
            q_nonrandom: 0.0,
        };
        println!(
            "  P_f={pf:.2}: dominant={} session_payoff={:.2}",
            game.forwarding_is_dominant(2),
            expected_session_payoff(pf, cp, ct, 40, 4.0, 20)
        );
    }
    let mut h = Harness::new();
    let game = ForwardingStageGame {
        pf: 50.0,
        pr: 100.0,
        cp,
        ct,
        q_random: 0.2,
        q_nonrandom: 0.8,
    };
    h.bench("props23/dominance_check_3p", || {
        game.forwarding_is_dominant(black_box(3))
    });
    let normal = game.to_normal_form(3);
    h.bench("props23/nash_enumeration_3p", || {
        normal.pure_nash_equilibria()
    });

    let tree = parity_tree(5, 8); // degree-8 path game, 37449 nodes
    let (_, stats) = tree.solve_counting();
    println!(
        "props23: SPNE interning on {} nodes: {} solved, {} memo hits",
        tree.len(),
        stats.solved,
        stats.memo_hits
    );
    h.bench("props23/spne_solve_memoized_d8", || tree.solve());
    h.bench("props23/spne_solve_unmemoized_d8", || {
        tree.solve_unmemoized()
    });
    h.write_json_default().expect("write bench report");
}
