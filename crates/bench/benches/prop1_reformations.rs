//! Prop. 1 regeneration: new-edge fraction E[X] under utility vs random
//! routing.

use criterion::{criterion_group, criterion_main, Criterion};
use idpa_bench::{model_one, run_point};
use idpa_core::routing::RoutingStrategy;
use std::hint::black_box;

fn prop1(c: &mut Criterion) {
    let rnd = run_point(0.0, RoutingStrategy::Random, 1.0, 42);
    let m1 = run_point(0.0, model_one(), 1.0, 42);
    println!(
        "prop1 (bench scale): E[X] random={:.3} modelI={:.3}",
        rnd.new_edge_fraction, m1.new_edge_fraction
    );
    let mut g = c.benchmark_group("prop1");
    g.sample_size(10);
    g.bench_function("random", |b| {
        b.iter(|| black_box(run_point(0.0, RoutingStrategy::Random, 1.0, 42).new_edge_fraction))
    });
    g.bench_function("model1", |b| {
        b.iter(|| black_box(run_point(0.0, model_one(), 1.0, 42).new_edge_fraction))
    });
    g.finish();
}

criterion_group!(benches, prop1);
criterion_main!(benches);
