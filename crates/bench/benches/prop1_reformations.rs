//! Prop. 1 regeneration: new-edge fraction E[X] under utility vs random
//! routing.

use idpa_bench::harness::Harness;
use idpa_bench::{model_one, run_point};
use idpa_core::routing::RoutingStrategy;

fn main() {
    let rnd = run_point(0.0, RoutingStrategy::Random, 1.0, 42);
    let m1 = run_point(0.0, model_one(), 1.0, 42);
    println!(
        "prop1 (bench scale): E[X] random={:.3} modelI={:.3}",
        rnd.new_edge_fraction, m1.new_edge_fraction
    );
    let mut h = Harness::new();
    h.bench("prop1/random", || {
        run_point(0.0, RoutingStrategy::Random, 1.0, 42).new_edge_fraction
    });
    h.bench("prop1/model1", || {
        run_point(0.0, model_one(), 1.0, 42).new_edge_fraction
    });
    h.write_json_default().expect("write bench report");
}
