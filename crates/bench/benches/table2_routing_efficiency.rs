//! Table 2 regeneration: routing efficiency over the f x tau grid,
//! utility model I.

use criterion::{criterion_group, criterion_main, Criterion};
use idpa_bench::{model_one, run_point};
use std::hint::black_box;

fn table2(c: &mut Criterion) {
    println!("table2 (bench scale): routing efficiency, model I");
    for f in [0.1, 0.5, 0.9] {
        let row: Vec<String> = [0.5, 1.0, 2.0, 4.0]
            .iter()
            .map(|&tau| format!("{:.1}", run_point(f, model_one(), tau, 42).routing_efficiency))
            .collect();
        println!("  f={f:.1}: {}", row.join("  "));
    }
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    for tau in [0.5, 4.0] {
        g.bench_function(format!("cell_f0.5_tau{tau}"), |b| {
            b.iter(|| black_box(run_point(0.5, model_one(), black_box(tau), 42)))
        });
    }
    g.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);
