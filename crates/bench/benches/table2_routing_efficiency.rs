//! Table 2 regeneration: routing efficiency over the f x tau grid,
//! utility model I.

use idpa_bench::harness::Harness;
use idpa_bench::{model_one, run_point};

fn main() {
    println!("table2 (bench scale): routing efficiency, model I");
    for f in [0.1, 0.5, 0.9] {
        let row: Vec<String> = [0.5, 1.0, 2.0, 4.0]
            .iter()
            .map(|&tau| {
                format!(
                    "{:.1}",
                    run_point(f, model_one(), tau, 42).routing_efficiency
                )
            })
            .collect();
        println!("  f={f:.1}: {}", row.join("  "));
    }
    let mut h = Harness::new();
    for tau in [0.5, 4.0] {
        h.bench(&format!("table2/cell_f0.5_tau{tau}"), || {
            run_point(0.5, model_one(), tau, 42)
        });
    }
    h.write_json_default().expect("write bench report");
}
