//! Durable-bank overhead and recovery throughput: what does the
//! write-ahead ledger cost at settlement time, and how fast does a cold
//! bank (or a warm replica) come back from the log?
//!
//! Workload model: one settlement-shaped op stream — an escrow account
//! funded up front, per-bundle payout transfers to a forwarder pool, and
//! periodic receipt-clearing withdraw/deposit pairs with deterministic
//! serials — applied through [`Ledger`] three ways:
//!
//! * `settle_off`: no WAL attached (the `--bank-durability off` path).
//! * `settle_wal`: per-op durable appends (the per-bundle settlement
//!   discipline: validate, log, then mutate).
//! * `settle_wal_group`: group commit, one [`Ledger::commit_wal`] per
//!   1024-op window (the epoch settlement discipline).
//!
//! Then two recovery arms over the WAL image the `settle_wal` arm
//! produced:
//!
//! * `recover`: [`Ledger::recover`] from byte zero — the cold-start path
//!   the torn-write property suite exercises.
//! * `replica_feed`: [`BankReplica::feed`] of the same stream — the warm
//!   standby that takes over on a bank crash.
//!
//! The binary asserts the ISSUE's acceptance bound inline: WAL-on
//! settlement must stay within 15% of WAL-off (the gate's ns/iter
//! comparison then holds the trajectory across commits). It also proves
//! both recovery arms land on the live ledger's exact digest before any
//! timing starts.
//!
//! `IDPA_BD_QUICK=1` shrinks the stream to 32k ops for the CI bench gate;
//! quick and full tiers use distinct kernel names so their points never
//! gate against each other.

use idpa_bench::harness::{smoke_mode, Harness};
use idpa_payment::{AccountId, BankReplica, Ledger, LedgerOp, TokenId, Wal};

/// Escrow funding large enough that no transfer or withdrawal underflows.
const ESCROW_FUND: u64 = 1 << 40;
/// Ops per group-commit window in the `settle_wal_group` arm.
const GROUP_WINDOW: usize = 1024;

/// Deterministic serial for the clearing deposits, disjoint per flush.
fn serial(flush: u64) -> TokenId {
    let mut id = [0u8; 32];
    id[..8].copy_from_slice(&flush.to_le_bytes());
    id[16] = 0xBD;
    TokenId(id)
}

/// A settlement-shaped op stream: escrow open, forwarder pool opens, then
/// interleaved payout transfers and receipt-clearing pairs.
fn build(n_ops: usize, n_forwarders: u64) -> Vec<LedgerOp> {
    let mut ops = Vec::with_capacity(n_ops + n_forwarders as usize + 1);
    ops.push(LedgerOp::Open {
        balance: ESCROW_FUND,
    });
    for _ in 0..n_forwarders {
        ops.push(LedgerOp::Open { balance: 0 });
    }
    let escrow = AccountId(0);
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut flush = 0u64;
    while ops.len() < n_ops {
        // A bundle of payouts, then one clearing pair — the per-bundle
        // settlement rhythm.
        for _ in 0..14 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ops.push(LedgerOp::Transfer {
                from: escrow,
                to: AccountId(1 + (x >> 33) % n_forwarders),
                amount: 1 + (x & 3),
            });
        }
        ops.push(LedgerOp::Withdraw {
            account: escrow,
            value: 8,
        });
        ops.push(LedgerOp::Deposit {
            account: escrow,
            serial: serial(flush),
            value: 8,
        });
        flush += 1;
    }
    ops.truncate(n_ops);
    ops
}

/// Apply the stream to a bare ledger — the `--bank-durability off` path.
fn settle_off(ops: &[LedgerOp]) -> Ledger {
    let mut ledger = Ledger::new();
    for op in ops {
        ledger.apply(op).expect("pre-generated op stream is valid");
    }
    ledger
}

/// Apply with a WAL attached, one durable append per op.
fn settle_wal(ops: &[LedgerOp]) -> Ledger {
    let mut ledger = Ledger::new();
    ledger.attach_wal(Wal::new());
    for op in ops {
        ledger.apply(op).expect("pre-generated op stream is valid");
    }
    ledger
}

/// Apply with a WAL attached in group-commit mode, committing every
/// `GROUP_WINDOW` ops — the epoch-boundary discipline.
fn settle_wal_group(ops: &[LedgerOp]) -> Ledger {
    let mut ledger = Ledger::new();
    ledger.attach_wal(Wal::new());
    ledger.set_group_commit(true);
    for chunk in ops.chunks(GROUP_WINDOW) {
        for op in chunk {
            ledger.apply(op).expect("pre-generated op stream is valid");
        }
        ledger.commit_wal();
    }
    ledger
}

fn main() {
    let quick = std::env::var("IDPA_BD_QUICK").is_ok_and(|v| v == "1");
    let (n_ops, n_forwarders, tag) = if smoke_mode() {
        (2_048, 32, "o2k")
    } else if quick {
        (32_768, 256, "o32k")
    } else {
        (1 << 19, 2_048, "o512k")
    };
    let ops = build(n_ops, n_forwarders);

    // Equivalence guard before any timing: all three settlement arms and
    // both recovery arms must land on the same ledger digest.
    let off = settle_off(&ops);
    let mut live = settle_wal(&ops);
    let grouped = settle_wal_group(&ops);
    assert_eq!(off.digest(), live.digest(), "WAL changed settlement");
    assert_eq!(
        off.digest(),
        grouped.digest(),
        "group commit changed settlement"
    );
    let wal = live.take_wal().expect("settle_wal attached a WAL");
    assert_eq!(wal.committed_records(), n_ops as u64);
    let bytes: Vec<u8> = wal.committed_bytes().to_vec();
    let (recovered, report) = Ledger::recover(&bytes);
    assert!(
        report.is_clean(),
        "a fully committed WAL must recover clean"
    );
    assert_eq!(recovered.digest(), off.digest(), "recovery diverged");
    let mut replica = BankReplica::new();
    replica.feed(&bytes);
    assert_eq!(replica.ledger().digest(), off.digest(), "replica diverged");
    println!(
        "bank_durability/{tag}: {n_ops} ops -> {} WAL bytes ({:.1} bytes/op), clean recovery",
        bytes.len(),
        bytes.len() as f64 / n_ops as f64
    );

    let mut h = Harness::new();
    h.bench(&format!("bank_durability/settle_off_{tag}"), || {
        settle_off(&ops).digest()
    });
    h.bench(&format!("bank_durability/settle_wal_{tag}"), || {
        settle_wal(&ops).digest()
    });
    h.bench(&format!("bank_durability/settle_wal_group_{tag}"), || {
        settle_wal_group(&ops).digest()
    });
    h.bench(&format!("bank_durability/recover_{tag}"), || {
        Ledger::recover(&bytes).0.digest()
    });
    h.bench(&format!("bank_durability/replica_feed_{tag}"), || {
        let mut r = BankReplica::new();
        r.feed(&bytes);
        r.ledger().digest()
    });

    if !smoke_mode() {
        let ns_of = |suffix: &str| {
            h.measurements()
                .iter()
                .find(|m| m.name.ends_with(suffix))
                .expect("all arms measured")
                .ns_per_iter
        };
        let off_ns = ns_of(&format!("settle_off_{tag}"));
        let wal_ns = ns_of(&format!("settle_wal_{tag}"));
        let group_ns = ns_of(&format!("settle_wal_group_{tag}"));
        let rec_ns = ns_of(&format!("recover_{tag}"));
        let overhead = wal_ns / off_ns - 1.0;
        println!(
            "bank_durability/{tag}: off {:.2} ms, wal {:.2} ms (+{:.1}%), group {:.2} ms (+{:.1}%)",
            off_ns / 1e6,
            wal_ns / 1e6,
            overhead * 100.0,
            group_ns / 1e6,
            (group_ns / off_ns - 1.0) * 100.0
        );
        println!(
            "bank_durability/{tag}: recovery {:.2} ms ({:.2} M ops/s replayed)",
            rec_ns / 1e6,
            n_ops as f64 * 1e3 / rec_ns
        );
        // The ISSUE's acceptance bound: durable settlement costs at most
        // 15% over the bare ledger. The gate's ns/iter comparison holds
        // the absolute trajectory on top of this relative tripwire.
        assert!(
            overhead <= 0.15,
            "WAL-on settlement overhead {:.1}% exceeds the 15% bound",
            overhead * 100.0
        );
    }
    h.write_json_default().expect("write bench report");
}
