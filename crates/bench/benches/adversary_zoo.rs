//! Adversary-zoo overhead: what does each strategy class (and its defense)
//! cost the runner?
//!
//! Four kernels at paper scale, one scenario seed:
//!
//! 1. **baseline** — the adversary layer disabled (all-zero rates), the
//!    PR 8 runner path;
//! 2. **free riders** — 20% of nodes ghosting forwarding duty under the
//!    adaptive response;
//! 3. **whitewash** — 20% of nodes rejoining on schedule with identity-age
//!    discounting armed;
//! 4. **cliques / cliques+check** — two 4-cliques forging phantom
//!    confirmations, with the cross-confirmation defense off and on.
//!
//! The in-binary gate: the clique cross-check must cost **≤ 10%** over the
//! no-cross-check arm — the defense is a per-manifest-hop membership test
//! against the observed-forwarder list, not a second validation pass.
//! Disabled-layer overhead is pinned structurally instead (the zero-rate
//! fingerprint tests prove the plan is never even constructed).
//!
//! `IDPA_AZ_QUICK=1` drops to quick scale for the CI bench gate; quick and
//! full tiers use distinct kernel names so their points never gate against
//! each other.

use idpa_bench::harness::{smoke_mode, Harness};
use idpa_desim::{AdversaryConfig, FaultConfig, FaultResponse};
use idpa_sim::{ScenarioConfig, SimulationRun};

fn base_cfg(transmissions: usize) -> ScenarioConfig {
    ScenarioConfig {
        total_transmissions: transmissions,
        adversary_fraction: 0.2,
        seed: 0xa20,
        // The default per-pair cap (40 x 100 pairs) cannot absorb the
        // full tier's 8k transmissions; raise it so every tier validates.
        max_connections: 160,
        ..ScenarioConfig::default()
    }
}

fn main() {
    let quick = std::env::var("IDPA_AZ_QUICK").is_ok_and(|v| v == "1");
    let (transmissions, tag) = if smoke_mode() {
        (400, "t400")
    } else if quick {
        (2_000, "t2k")
    } else {
        (8_000, "t8k")
    };
    let base = base_cfg(transmissions);

    let free_riders = ScenarioConfig {
        adversary: AdversaryConfig {
            free_rider_fraction: 0.2,
            ..AdversaryConfig::default()
        },
        fault: FaultConfig {
            response: FaultResponse::Adaptive,
            ..FaultConfig::default()
        },
        ..base
    };
    let whitewash = ScenarioConfig {
        adversary: AdversaryConfig {
            whitewash_fraction: 0.2,
            whitewash_interval: 240.0,
            whitewash_age_discount: true,
            reputation_maturity: 120.0,
            ..AdversaryConfig::default()
        },
        reputation_weight: 0.5,
        weights: (0.25, 0.25),
        ..base
    };
    let cliques = |cross_check: bool| ScenarioConfig {
        adversary: AdversaryConfig {
            clique_count: 2,
            clique_size: 4,
            clique_forge_rate: 1.0,
            clique_cross_check: cross_check,
            ..AdversaryConfig::default()
        },
        ..base
    };

    // Sanity before timing: the forgery fires, and the armed cross-check
    // flags what the unarmed run pays out.
    let unarmed = SimulationRun::execute(cliques(false));
    let armed = SimulationRun::execute(cliques(true));
    assert!(unarmed.clique_phantom_instances > 0, "forgery must fire");
    assert_eq!(unarmed.clique_phantom_flagged, 0);
    assert!(armed.clique_phantom_flagged as f64 >= 0.9 * armed.clique_phantom_instances as f64);

    let mut h = Harness::new();
    h.bench(&format!("adversary_zoo/baseline_{tag}"), || {
        SimulationRun::execute(base).connections
    });
    h.bench(&format!("adversary_zoo/free_riders_{tag}"), || {
        SimulationRun::execute(free_riders).connections
    });
    h.bench(&format!("adversary_zoo/whitewash_{tag}"), || {
        SimulationRun::execute(whitewash).connections
    });
    h.bench(&format!("adversary_zoo/cliques_{tag}"), || {
        SimulationRun::execute(cliques(false)).connections
    });
    h.bench(&format!("adversary_zoo/cliques_check_{tag}"), || {
        SimulationRun::execute(cliques(true)).connections
    });

    if !smoke_mode() {
        let ns_of = |suffix: &str| {
            h.measurements()
                .iter()
                .find(|m| m.name.ends_with(suffix))
                .expect("kernel measured")
                .ns_per_iter
        };
        let baseline_ns = ns_of(&format!("baseline_{tag}"));
        let cliques_ns = ns_of(&format!("cliques_{tag}"));
        let check_ns = ns_of(&format!("cliques_check_{tag}"));
        println!(
            "adversary_zoo/{tag}: cliques {:+.1}% over baseline; \
             cross-check {:+.1}% over cliques; \
             {} phantoms injected, {} flagged when armed",
            (cliques_ns / baseline_ns - 1.0) * 100.0,
            (check_ns / cliques_ns - 1.0) * 100.0,
            armed.clique_phantom_instances,
            armed.clique_phantom_flagged,
        );
        // The gate: cross-confirmation is a membership test per manifest
        // hop, not a second validation pass. The margin absorbs timer
        // noise on a shared CI box.
        assert!(
            check_ns / cliques_ns < 1.10,
            "clique cross-check overhead collapsed: {:.2}x the unarmed arm",
            check_ns / cliques_ns
        );
    }
    h.write_json_default().expect("write bench report");
}
