//! Write-ahead ledger log: the durability substrate of the bank.
//!
//! Every state-mutating ledger operation is encoded as a [`LedgerOp`],
//! framed with the same discipline as simulation snapshots
//! (`magic ‖ version ‖ payload_len ‖ payload ‖ fnv1a64(payload)`, see
//! `idpa_desim::codec`) and appended to the log *before* the in-memory
//! state mutates. The contract is **logged = committed**: only operations
//! that already passed validation are appended, so replaying any intact
//! prefix of the log always succeeds and reproduces the exact ledger state
//! at the moment that prefix was durable.
//!
//! A crash can leave a *torn tail* — a final record whose bytes were only
//! partially written. Recovery ([`scan`], driven by
//! [`crate::ledger::Ledger::recover`]) replays the longest prefix of
//! intact records and discards everything from the first record that fails
//! magic, version, length, checksum, or payload decoding. The
//! crash-anywhere property suite in `tests/wal_recovery.rs` truncates and
//! flips the log at every byte offset to prove recovery ≡ replaying the
//! intact prefix.

use std::collections::BTreeMap;

use idpa_desim::codec::{fnv1a_64, CodecError, Dec, Enc};

use crate::bank::AccountId;
use crate::token::TokenId;

/// Magic bytes opening every WAL record ("IDPA write-ahead log").
pub const WAL_MAGIC: [u8; 8] = *b"IDPAWAL\0";

/// WAL record format version.
pub const WAL_VERSION: u32 = 1;

/// Fixed bytes before the payload: magic + version + payload length.
const HEADER_LEN: usize = 8 + 4 + 8;

/// Fixed bytes after the payload: the FNV-1a-64 checksum.
const TRAILER_LEN: usize = 8;

/// One state-mutating ledger operation, as logged.
///
/// `Open` carries no account id: replay re-assigns ids from the ledger's
/// sequential counter, which reproduces the original assignment exactly
/// (ids are allocated in log order by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerOp {
    /// Open a new account with an initial balance (mints value).
    Open {
        /// Opening balance.
        balance: u64,
    },
    /// Debit an account for a blind withdrawal (value becomes outstanding
    /// bearer liability).
    Withdraw {
        /// Debited account.
        account: AccountId,
        /// Face value withdrawn.
        value: u64,
    },
    /// Credit a deposited token's face value (serial enters the spent set).
    Deposit {
        /// Credited account.
        account: AccountId,
        /// Full token serial (the bank legitimately sees it at spend time).
        serial: TokenId,
        /// Face value deposited.
        value: u64,
    },
    /// Account-to-account ledger transfer.
    Transfer {
        /// Source account.
        from: AccountId,
        /// Destination account.
        to: AccountId,
        /// Amount moved.
        amount: u64,
    },
    /// One epoch's netted balance deltas, applied atomically.
    EpochNet {
        /// The settled epoch (0-based).
        epoch: u64,
        /// Signed delta per account (ascending account order).
        deltas: BTreeMap<AccountId, i128>,
    },
}

impl LedgerOp {
    /// Encodes the record payload (everything inside the frame).
    #[must_use]
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        self.encode_payload_into(&mut e);
        e.into_bytes()
    }

    fn encode_payload_into(&self, e: &mut Enc) {
        match self {
            LedgerOp::Open { balance } => {
                e.u8(0);
                e.u64(*balance);
            }
            LedgerOp::Withdraw { account, value } => {
                e.u8(1);
                e.u64(account.0);
                e.u64(*value);
            }
            LedgerOp::Deposit {
                account,
                serial,
                value,
            } => {
                e.u8(2);
                e.u64(account.0);
                e.raw(&serial.0);
                e.u64(*value);
            }
            LedgerOp::Transfer { from, to, amount } => {
                e.u8(3);
                e.u64(from.0);
                e.u64(to.0);
                e.u64(*amount);
            }
            LedgerOp::EpochNet { epoch, deltas } => {
                e.u8(4);
                e.u64(*epoch);
                e.seq_len(deltas.len());
                for (account, delta) in deltas {
                    e.u64(account.0);
                    e.raw(&delta.to_le_bytes());
                }
            }
        }
    }

    /// Decodes a record payload; any malformation maps to a typed
    /// [`CodecError`] (never a panic).
    pub fn decode_payload(payload: &[u8]) -> Result<LedgerOp, CodecError> {
        let mut d = Dec::new(payload);
        let op = match d.u8()? {
            0 => LedgerOp::Open { balance: d.u64()? },
            1 => LedgerOp::Withdraw {
                account: AccountId(d.u64()?),
                value: d.u64()?,
            },
            2 => {
                let account = AccountId(d.u64()?);
                let mut serial = [0u8; 32];
                serial.copy_from_slice(d.raw(32)?);
                LedgerOp::Deposit {
                    account,
                    serial: TokenId(serial),
                    value: d.u64()?,
                }
            }
            3 => LedgerOp::Transfer {
                from: AccountId(d.u64()?),
                to: AccountId(d.u64()?),
                amount: d.u64()?,
            },
            4 => {
                let epoch = d.u64()?;
                // Each delta entry is 8 (account) + 16 (i128) bytes.
                let n = d.seq_len(24)?;
                let mut deltas = BTreeMap::new();
                let mut last: Option<u64> = None;
                for _ in 0..n {
                    let account = d.u64()?;
                    if last.is_some_and(|prev| prev >= account) {
                        return Err(CodecError::Invalid {
                            what: "epoch-net account order",
                        });
                    }
                    last = Some(account);
                    let mut bytes = [0u8; 16];
                    bytes.copy_from_slice(d.raw(16)?);
                    deltas.insert(AccountId(account), i128::from_le_bytes(bytes));
                }
                LedgerOp::EpochNet { epoch, deltas }
            }
            _ => {
                return Err(CodecError::Invalid {
                    what: "ledger-op tag",
                })
            }
        };
        d.finish()?;
        Ok(op)
    }

    /// Encodes the full framed record:
    /// `WAL_MAGIC ‖ version:u32 ‖ payload_len:u64 ‖ payload ‖ fnv1a64`.
    #[must_use]
    pub fn encode_record(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_record_onto(&mut out);
        out
    }

    /// Appends the framed record directly onto `out` — the append hot
    /// path. The payload is encoded in place and its length backpatched
    /// into the header, so a settlement-rate append costs no intermediate
    /// allocation or copy.
    pub fn encode_record_onto(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&WAL_MAGIC);
        out.extend_from_slice(&WAL_VERSION.to_le_bytes());
        let len_at = out.len();
        out.extend_from_slice(&[0u8; 8]);
        let payload_at = out.len();
        let mut e = Enc::from_vec(std::mem::take(out));
        self.encode_payload_into(&mut e);
        *out = e.into_bytes();
        let payload_len = (out.len() - payload_at) as u64;
        out[len_at..len_at + 8].copy_from_slice(&payload_len.to_le_bytes());
        let checksum = fnv1a_64(&out[payload_at..]);
        out.extend_from_slice(&checksum.to_le_bytes());
    }
}

/// Result of scanning a WAL byte stream for its intact record prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// The decoded intact records, oldest first.
    pub ops: Vec<LedgerOp>,
    /// End offset of each intact record (`boundaries[i]` is the byte
    /// length of the prefix holding records `0..=i`).
    pub boundaries: Vec<usize>,
    /// Length in bytes of the intact prefix (every record before the first
    /// defect).
    pub intact_len: usize,
    /// Why scanning stopped before the end of the input (`None` = the
    /// whole input is intact).
    pub defect: Option<CodecError>,
}

/// Decodes the longest intact prefix of `bytes` as framed records.
///
/// Never panics and never errors: a defect anywhere (bad magic, version,
/// length, checksum, payload) terminates the scan at the last intact
/// record boundary and is reported in [`WalScan::defect`]. This is the
/// torn-write recovery rule — a crash mid-append leaves a partial final
/// record, which the checksum/length checks reject deterministically.
#[must_use]
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut ops = Vec::new();
    let mut boundaries = Vec::new();
    let mut at = 0usize;
    let defect = loop {
        if at == bytes.len() {
            break None;
        }
        match scan_record(bytes, at) {
            Ok((op, next)) => {
                ops.push(op);
                boundaries.push(next);
                at = next;
            }
            Err(e) => break Some(e),
        }
    };
    WalScan {
        ops,
        boundaries,
        intact_len: at,
        defect,
    }
}

/// Decodes one record starting at `at`, returning the op and the offset of
/// the next record.
fn scan_record(bytes: &[u8], at: usize) -> Result<(LedgerOp, usize), CodecError> {
    let remaining = bytes.len() - at;
    if remaining < HEADER_LEN {
        return Err(CodecError::UnexpectedEof {
            offset: at,
            needed: HEADER_LEN - remaining,
        });
    }
    if bytes[at..at + 8] != WAL_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let mut v = [0u8; 4];
    v.copy_from_slice(&bytes[at + 8..at + 12]);
    let version = u32::from_le_bytes(v);
    if version != WAL_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let mut l = [0u8; 8];
    l.copy_from_slice(&bytes[at + 12..at + 20]);
    let declared = u64::from_le_bytes(l);
    // Validate the declared length against the bytes actually present
    // before any slicing — a flipped length byte must not panic or scan
    // past the input.
    let body = (remaining - HEADER_LEN) as u64;
    if declared.checked_add(TRAILER_LEN as u64).is_none() || declared + TRAILER_LEN as u64 > body {
        return Err(CodecError::LengthMismatch {
            declared,
            present: body.saturating_sub(TRAILER_LEN as u64),
        });
    }
    #[allow(clippy::cast_possible_truncation)] // declared <= body < usize::MAX
    let len = declared as usize;
    let payload = &bytes[at + HEADER_LEN..at + HEADER_LEN + len];
    let mut c = [0u8; 8];
    c.copy_from_slice(&bytes[at + HEADER_LEN + len..at + HEADER_LEN + len + 8]);
    let expected = u64::from_le_bytes(c);
    let actual = fnv1a_64(payload);
    if expected != actual {
        return Err(CodecError::ChecksumMismatch { expected, actual });
    }
    let op = LedgerOp::decode_payload(payload)?;
    Ok((op, at + HEADER_LEN + len + TRAILER_LEN))
}

/// The append-only write-ahead log (the durable medium, abstracted as an
/// owned byte buffer).
///
/// Appends go either straight to the committed image (`append`) or into a
/// staging buffer (`stage`) that [`Wal::commit`] makes durable as one
/// group — the epoch-boundary group-commit. Only `committed_bytes()`
/// survive a crash; staged bytes are lost with the process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Wal {
    committed: Vec<u8>,
    staged: Vec<u8>,
    committed_records: u64,
    staged_records: u64,
}

impl Wal {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Wal::default()
    }

    /// Rebuilds a log around an already-verified intact byte prefix (the
    /// recovery path: the caller scanned `bytes` and counted `records`).
    #[must_use]
    pub fn from_recovered(bytes: Vec<u8>, records: u64) -> Self {
        Wal {
            committed: bytes,
            staged: Vec::new(),
            committed_records: records,
            staged_records: 0,
        }
    }

    /// Appends one record durably (per-op commit).
    pub fn append(&mut self, op: &LedgerOp) {
        op.encode_record_onto(&mut self.committed);
        self.committed_records += 1;
    }

    /// Appends one record to the staging buffer (group commit: durable
    /// only after [`Wal::commit`]).
    pub fn stage(&mut self, op: &LedgerOp) {
        op.encode_record_onto(&mut self.staged);
        self.staged_records += 1;
    }

    /// Makes all staged records durable as one group. Returns how many
    /// records the group contained.
    pub fn commit(&mut self) -> u64 {
        let n = self.staged_records;
        self.committed.append(&mut self.staged);
        self.committed_records += n;
        self.staged_records = 0;
        n
    }

    /// Appends raw bytes to the committed image *without* a record frame —
    /// the crash-simulation hook used to model a torn final record (and by
    /// fuzzing to splice garbage). Never used on the clean path.
    pub fn append_torn(&mut self, bytes: &[u8]) {
        self.committed.extend_from_slice(bytes);
    }

    /// Truncates the committed image to `len` bytes (discarding a torn
    /// tail identified by recovery).
    pub fn truncate(&mut self, len: usize) {
        self.committed.truncate(len);
    }

    /// The durable byte image (what survives a crash).
    #[must_use]
    pub fn committed_bytes(&self) -> &[u8] {
        &self.committed
    }

    /// Durable length in bytes.
    #[must_use]
    pub fn committed_len(&self) -> usize {
        self.committed.len()
    }

    /// Number of durably committed records.
    #[must_use]
    pub fn committed_records(&self) -> u64 {
        self.committed_records
    }

    /// Records staged but not yet committed.
    #[must_use]
    pub fn staged_records(&self) -> u64 {
        self.staged_records
    }

    /// Drops all staged (uncommitted) records — what a crash does to the
    /// in-memory group buffer.
    pub fn discard_staged(&mut self) {
        self.staged.clear();
        self.staged_records = 0;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;

    fn sample_ops() -> Vec<LedgerOp> {
        let mut deltas = BTreeMap::new();
        deltas.insert(AccountId(0), -17i128);
        deltas.insert(AccountId(1), 17i128);
        vec![
            LedgerOp::Open { balance: 100 },
            LedgerOp::Open { balance: 0 },
            LedgerOp::Withdraw {
                account: AccountId(0),
                value: 37,
            },
            LedgerOp::Deposit {
                account: AccountId(1),
                serial: TokenId([7u8; 32]),
                value: 37,
            },
            LedgerOp::Transfer {
                from: AccountId(1),
                to: AccountId(0),
                amount: 5,
            },
            LedgerOp::EpochNet { epoch: 3, deltas },
        ]
    }

    #[test]
    fn ops_round_trip_through_records() {
        for op in sample_ops() {
            let rec = op.encode_record();
            let s = scan(&rec);
            assert_eq!(s.defect, None);
            assert_eq!(s.intact_len, rec.len());
            assert_eq!(s.ops, vec![op]);
        }
    }

    #[test]
    fn scan_reads_a_whole_log() {
        let ops = sample_ops();
        let mut wal = Wal::new();
        for op in &ops {
            wal.append(op);
        }
        let s = scan(wal.committed_bytes());
        assert_eq!(s.ops, ops);
        assert_eq!(s.intact_len, wal.committed_len());
        assert_eq!(s.defect, None);
        assert_eq!(wal.committed_records(), ops.len() as u64);
    }

    #[test]
    fn truncation_anywhere_yields_an_intact_prefix() {
        let ops = sample_ops();
        let mut wal = Wal::new();
        let mut boundaries = vec![0usize];
        for op in &ops {
            wal.append(op);
            boundaries.push(wal.committed_len());
        }
        let bytes = wal.committed_bytes();
        for cut in 0..=bytes.len() {
            let s = scan(&bytes[..cut]);
            // The intact prefix is the greatest record boundary <= cut.
            let k = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(s.intact_len, boundaries[k], "cut at {cut}");
            assert_eq!(s.ops, ops[..k], "cut at {cut}");
            assert_eq!(s.defect.is_some(), cut != boundaries[k], "cut at {cut}");
        }
    }

    #[test]
    fn byte_flip_anywhere_stops_at_the_corrupt_record() {
        let ops = sample_ops();
        let mut wal = Wal::new();
        let mut boundaries = vec![0usize];
        for op in &ops {
            wal.append(op);
            boundaries.push(wal.committed_len());
        }
        let clean = wal.committed_bytes().to_vec();
        for at in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x40;
            let s = scan(&bytes);
            // Records strictly before the flipped record decode intact.
            let k = boundaries.iter().filter(|&&b| b <= at).count() - 1;
            assert_eq!(s.intact_len, boundaries[k], "flip at {at}");
            assert_eq!(s.ops, ops[..k], "flip at {at}");
            assert!(s.defect.is_some(), "flip at {at} must be detected");
        }
    }

    #[test]
    fn group_commit_stages_until_commit() {
        let ops = sample_ops();
        let mut wal = Wal::new();
        for op in &ops {
            wal.stage(op);
        }
        assert_eq!(wal.committed_len(), 0, "staged bytes are not durable");
        assert_eq!(wal.staged_records(), ops.len() as u64);
        assert_eq!(wal.commit(), ops.len() as u64);
        assert_eq!(wal.staged_records(), 0);
        let s = scan(wal.committed_bytes());
        assert_eq!(s.ops, ops);
    }

    #[test]
    fn torn_append_is_rejected_by_scan() {
        let mut wal = Wal::new();
        wal.append(&LedgerOp::Open { balance: 9 });
        let intact = wal.committed_len();
        let rec = LedgerOp::Open { balance: 10 }.encode_record();
        wal.append_torn(&rec[..rec.len() - 3]);
        let s = scan(wal.committed_bytes());
        assert_eq!(s.intact_len, intact);
        assert_eq!(s.ops.len(), 1);
        assert!(s.defect.is_some());
        wal.truncate(intact);
        assert_eq!(scan(wal.committed_bytes()).defect, None);
    }

    #[test]
    fn unordered_epoch_net_payload_rejected() {
        let mut deltas = BTreeMap::new();
        deltas.insert(AccountId(2), 1i128);
        deltas.insert(AccountId(5), -1i128);
        let op = LedgerOp::EpochNet { epoch: 0, deltas };
        let mut payload = op.encode_payload();
        // Swap the two account ids (bytes 17.. and 41..) to break ordering.
        let (a, b) = (17, 41);
        for i in 0..8 {
            payload.swap(a + i, b + i);
        }
        assert!(matches!(
            LedgerOp::decode_payload(&payload),
            Err(CodecError::Invalid { .. })
        ));
    }
}
