//! Epoch-batched settlement: accumulate a whole epoch's payment activity
//! and settle it against the bank in one pass.
//!
//! Per-bundle settlement costs the bank one signature verification per
//! token and one ledger transfer per payout — the scalability choke at
//! heavy traffic. Orion-style *seasons* amortize the ledger side: receipts
//! accumulate per (forwarder, epoch), and all transfers collapse into one
//! net balance delta per account ([`Bank::apply_epoch_net`]) with one
//! audit entry per account instead of one per receipt. Token deposits are
//! submitted in one call at the boundary ([`Bank::deposit_batch`]), where
//! each signature is verified individually and strictly — the
//! small-exponents combined equation is unsound over `(Z/n)*` and slower
//! at `e = 65537` besides (see `idpa_crypto::batch`); netting, not the
//! signature check, is where epoch settlement wins.
//!
//! The incentive argument (Buragohain et al., PAPERS.md): aggregation
//! preserves the forwarding equilibrium as long as each forwarder's
//! per-epoch payout equals the sum of its per-bundle payouts — which
//! netting guarantees identically, not just in expectation. The property
//! suite in `tests/props.rs` pins this: a netted epoch settle ends in the
//! same balances, serials, and outstanding liability as the sequential
//! per-bundle operations it replaces.

use std::collections::BTreeMap;

use crate::bank::{AccountId, Bank, DepositError, EpochNetError};
use crate::token::Token;

/// Accumulates one epoch's deposits and transfers for batched settlement.
#[derive(Debug, Default)]
pub struct EpochLedger {
    /// The epoch currently accumulating (0-based, advances on settle).
    epoch: u64,
    /// Token deposits queued this epoch, in submission order.
    deposits: Vec<(AccountId, Token)>,
    /// Net signed delta per account from the epoch's accrued transfers.
    /// `i128`, so no sum of `u64` transfer amounts can wrap it.
    net: BTreeMap<AccountId, i128>,
    /// Number of individual transfers collapsed into `net`.
    transfers_accrued: u64,
}

/// Report of one settled epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSettlement {
    /// The epoch that was settled.
    pub epoch: u64,
    /// Per-deposit outcome, in submission order (semantics identical to
    /// sequential [`Bank::deposit`] calls).
    pub deposit_results: Vec<Result<(), DepositError>>,
    /// Deposits accepted (signature valid, serial fresh).
    pub deposits_settled: u64,
    /// Accounts whose netted delta was nonzero — the number of ledger
    /// operations the bank actually performed for all accrued transfers.
    pub accounts_netted: u64,
    /// Individual transfers that were collapsed into those deltas. The
    /// epoch netting ratio is `transfers_netted / accounts_netted`.
    pub transfers_netted: u64,
}

/// A settle that deposited its queue but could not apply the transfer
/// net. The deposits *were* applied to the bank (their audit entries are
/// written), so their per-item verdicts — the forged-signature and
/// double-spend outcomes cheater flagging consumes — are carried here
/// rather than lost; the transfer net is restored in the ledger for a
/// retry once the failure is resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSettleError {
    /// The epoch whose settle failed (unchanged; it has not advanced).
    pub epoch: u64,
    /// Per-deposit outcome of the queue that was applied before the net
    /// failed, in submission order — identical to what a successful
    /// settle would have reported.
    pub deposit_results: Vec<Result<(), DepositError>>,
    /// Why the netted deltas could not be applied.
    pub error: EpochNetError,
}

impl EpochLedger {
    /// An empty ledger at epoch 0.
    #[must_use]
    pub fn new() -> Self {
        EpochLedger::default()
    }

    /// The epoch currently accumulating.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether nothing is queued for the current epoch.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deposits.is_empty() && self.transfers_accrued == 0
    }

    /// Number of deposits queued for the current epoch.
    #[must_use]
    pub fn pending_deposits(&self) -> usize {
        self.deposits.len()
    }

    /// Queues a token deposit for the epoch boundary.
    pub fn queue_deposit(&mut self, account: AccountId, token: Token) {
        self.deposits.push((account, token));
    }

    /// Accrues a transfer into the epoch's per-account nets. Funds are not
    /// checked here — debit coverage is validated at [`EpochLedger::settle`].
    /// Accumulation is in `i128`: any `u64` amount is accepted, and no
    /// realizable number of transfers can overflow a per-account net.
    pub fn accrue_transfer(&mut self, from: AccountId, to: AccountId, amount: u64) {
        let amount = i128::from(amount);
        *self.net.entry(from).or_insert(0) -= amount;
        *self.net.entry(to).or_insert(0) += amount;
        self.transfers_accrued += 1;
    }

    /// Settles the epoch: deposits every queued token (individually,
    /// strictly verified — see [`Bank::deposit_batch`]), then applies the
    /// netted transfer deltas atomically, and advances to the next epoch.
    ///
    /// Deposits settle first — they only add funds, so any debit a
    /// sequential interleaving could have covered is covered here too. If
    /// the net still fails (a debit exceeding its account), the deposits
    /// remain applied and the returned [`EpochSettleError`] carries their
    /// per-item verdicts; the transfer nets are restored for a retry and
    /// the epoch does not advance.
    pub fn settle(&mut self, bank: &mut Bank) -> Result<EpochSettlement, EpochSettleError> {
        let deposits = std::mem::take(&mut self.deposits);
        let net = std::mem::take(&mut self.net);
        let transfers_netted = std::mem::take(&mut self.transfers_accrued);

        let deposit_results = bank.deposit_batch(&deposits);
        if let Err(error) = bank.apply_epoch_net(self.epoch, &net) {
            self.net = net;
            self.transfers_accrued = transfers_netted;
            return Err(EpochSettleError {
                epoch: self.epoch,
                deposit_results,
                error,
            });
        }

        let settlement = EpochSettlement {
            epoch: self.epoch,
            deposits_settled: deposit_results.iter().filter(|r| r.is_ok()).count() as u64,
            accounts_netted: net.values().filter(|&&d| d != 0).count() as u64,
            transfers_netted,
            deposit_results,
        };
        self.epoch += 1;
        Ok(settlement)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;
    use crate::token::Wallet;
    use idpa_desim::rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    /// Two banks from the same seed, so keys and accounts line up.
    fn twin_banks(seed: u64) -> (Bank, Bank) {
        (
            Bank::new(256, &mut rng(seed)),
            Bank::new(256, &mut rng(seed)),
        )
    }

    #[test]
    fn netted_settle_matches_sequential_operations() {
        let (mut seq, mut epoch) = twin_banks(1);
        let accounts: Vec<AccountId> = (0..4).map(|_| seq.open_account(100)).collect();
        for _ in 0..4 {
            epoch.open_account(100);
        }

        // Sequential arm: interleaved transfers and deposits.
        let mut wallet = Wallet::new();
        seq.withdraw_into_wallet(accounts[0], 7, &mut wallet, &mut rng(3))
            .unwrap();
        let tokens = wallet.take_exact(7).unwrap();
        seq.transfer(accounts[0], accounts[1], 10).unwrap();
        seq.transfer(accounts[1], accounts[2], 4).unwrap();
        seq.transfer(accounts[0], accounts[2], 6).unwrap();
        for t in &tokens {
            seq.deposit(accounts[3], t).unwrap();
        }

        // Epoch arm: same operations accrued, one settle.
        let mut wallet = Wallet::new();
        epoch
            .withdraw_into_wallet(accounts[0], 7, &mut wallet, &mut rng(3))
            .unwrap();
        let tokens = wallet.take_exact(7).unwrap();
        let mut ledger = EpochLedger::new();
        ledger.accrue_transfer(accounts[0], accounts[1], 10);
        ledger.accrue_transfer(accounts[1], accounts[2], 4);
        ledger.accrue_transfer(accounts[0], accounts[2], 6);
        for t in tokens {
            ledger.queue_deposit(accounts[3], t);
        }
        let report = ledger.settle(&mut epoch).unwrap();

        assert!(report.deposit_results.iter().all(Result::is_ok));
        assert_eq!(report.transfers_netted, 3);
        // a1's net is +10-4=+6, so all 4 touched accounts are nonzero... a0
        // -16, a1 +6, a2 +10; a3 only deposits. 3 netted accounts.
        assert_eq!(report.accounts_netted, 3);
        for &a in &accounts {
            assert_eq!(seq.balance(a), epoch.balance(a), "account {a:?}");
        }
        assert_eq!(seq.total_deposits(), epoch.total_deposits());
        assert_eq!(seq.outstanding(), epoch.outstanding());
        assert_eq!(seq.spent_serials(), epoch.spent_serials());
    }

    #[test]
    fn settle_advances_epoch_and_clears_state() {
        let (mut bank, _) = twin_banks(4);
        let a = bank.open_account(50);
        let b = bank.open_account(0);
        let mut ledger = EpochLedger::new();
        assert_eq!(ledger.epoch(), 0);
        ledger.accrue_transfer(a, b, 5);
        assert!(!ledger.is_empty());
        ledger.settle(&mut bank).unwrap();
        assert_eq!(ledger.epoch(), 1);
        assert!(ledger.is_empty());
        assert_eq!(bank.balance(b), Some(5));
        // The audit trail records the net, not the transfer.
        assert!(bank
            .audit()
            .entries()
            .iter()
            .any(|e| matches!(e.event, crate::AuditEvent::EpochNet { epoch: 0, .. })));
    }

    #[test]
    fn uncovered_debit_restores_the_net_for_retry() {
        let (mut bank, _) = twin_banks(5);
        let a = bank.open_account(3);
        let b = bank.open_account(0);
        let mut ledger = EpochLedger::new();
        ledger.accrue_transfer(a, b, 10);
        assert_eq!(
            ledger.settle(&mut bank),
            Err(EpochSettleError {
                epoch: 0,
                deposit_results: Vec::new(),
                error: EpochNetError::InsufficientFunds(a),
            })
        );
        assert_eq!(ledger.epoch(), 0, "failed settle must not advance");
        assert!(!ledger.is_empty(), "net restored for retry");
        assert_eq!(bank.balance(a), Some(3), "nothing applied");
        // Fund the debit and retry the same epoch.
        let c = bank.open_account(20);
        ledger.accrue_transfer(c, a, 10);
        let report = ledger.settle(&mut bank).unwrap();
        assert_eq!(report.transfers_netted, 2);
        assert_eq!(bank.balance(b), Some(10));
    }

    /// The per-deposit verdicts survive a failed net application: the
    /// deposits are applied to the bank, the error carries their results
    /// (cheater flagging reads them), and the retry settles the restored
    /// transfer net against the already-credited deposits.
    #[test]
    fn deposit_verdicts_survive_a_failed_net() {
        let (mut bank, _) = twin_banks(6);
        let funder = bank.open_account(100);
        let payee = bank.open_account(0);
        let broke = bank.open_account(0);
        let mut wallet = Wallet::new();
        bank.withdraw_into_wallet(funder, 1, &mut wallet, &mut rng(7))
            .unwrap();
        let token = wallet.take_exact(1).unwrap().pop().unwrap();

        let mut ledger = EpochLedger::new();
        ledger.queue_deposit(payee, token.clone());
        ledger.queue_deposit(payee, token); // intra-epoch duplicate
        ledger.accrue_transfer(broke, payee, 50); // uncovered debit
        let err = ledger.settle(&mut bank).unwrap_err();
        assert_eq!(err.epoch, 0);
        assert_eq!(err.error, EpochNetError::InsufficientFunds(broke));
        assert_eq!(
            err.deposit_results,
            vec![Ok(()), Err(DepositError::DoubleSpend)],
            "verdicts must not be lost with the failed net"
        );
        assert_eq!(bank.balance(payee), Some(1), "deposit stayed applied");
        assert_eq!(ledger.pending_deposits(), 0, "queue was consumed");

        // Cover the debit; the retry settles the restored net alone.
        bank.transfer(funder, broke, 50).unwrap();
        let report = ledger.settle(&mut bank).expect("retry settles");
        assert!(report.deposit_results.is_empty());
        assert_eq!(report.transfers_netted, 1);
        assert_eq!(bank.balance(payee), Some(51));
    }

    #[test]
    fn intra_and_cross_epoch_double_spends_rejected() {
        let (mut bank, _) = twin_banks(6);
        let a = bank.open_account(10);
        let payee = bank.open_account(0);
        let mut wallet = Wallet::new();
        bank.withdraw_into_wallet(a, 1, &mut wallet, &mut rng(7))
            .unwrap();
        let token = wallet.take_exact(1).unwrap().pop().unwrap();

        let mut ledger = EpochLedger::new();
        ledger.queue_deposit(payee, token.clone());
        ledger.queue_deposit(payee, token.clone()); // intra-epoch duplicate
        let report = ledger.settle(&mut bank).unwrap();
        assert_eq!(
            report.deposit_results,
            vec![Ok(()), Err(DepositError::DoubleSpend)]
        );

        ledger.queue_deposit(payee, token); // cross-epoch duplicate
        let report = ledger.settle(&mut bank).unwrap();
        assert_eq!(report.deposit_results, vec![Err(DepositError::DoubleSpend)]);
        assert_eq!(bank.balance(payee), Some(1));
    }

    /// Amounts above `i64::MAX` accrue without panicking and settle (or
    /// fail validation) through the same i128 pipeline.
    #[test]
    fn huge_transfer_amounts_accrue_without_overflow() {
        let (mut bank, _) = twin_banks(8);
        let a = bank.open_account(5);
        let b = bank.open_account(0);
        let mut ledger = EpochLedger::new();
        // Two maximal transfers in the same direction: the per-account
        // net is ±2·u64::MAX, far outside i64 — must not wrap.
        ledger.accrue_transfer(a, b, u64::MAX);
        ledger.accrue_transfer(a, b, u64::MAX);
        let err = ledger.settle(&mut bank).unwrap_err();
        assert_eq!(err.error, EpochNetError::InsufficientFunds(a));
        assert_eq!(bank.balance(a), Some(5), "nothing applied");
        assert_eq!(bank.balance(b), Some(0), "no wrapped credit");
    }
}
