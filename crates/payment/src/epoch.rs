//! Epoch-batched settlement: accumulate a whole epoch's payment activity
//! and settle it against the bank in one pass.
//!
//! Per-bundle settlement costs the bank one signature verification per
//! token and one ledger transfer per payout — the scalability choke at
//! heavy traffic. Orion-style *seasons* amortize both: receipts accumulate
//! per (forwarder, epoch), token deposits are signature-checked as one
//! batch ([`Bank::deposit_batch`]), double spends are caught by a single
//! deferred scan over the epoch's serial set, and all transfers collapse
//! into one net balance delta per account ([`Bank::apply_epoch_net`]).
//!
//! The incentive argument (Buragohain et al., PAPERS.md): aggregation
//! preserves the forwarding equilibrium as long as each forwarder's
//! per-epoch payout equals the sum of its per-bundle payouts — which
//! netting guarantees identically, not just in expectation. The property
//! suite in `tests/props.rs` pins this: a netted epoch settle ends in the
//! same balances, serials, and outstanding liability as the sequential
//! per-bundle operations it replaces.

use std::collections::BTreeMap;

use crate::bank::{AccountId, Bank, DepositError, EpochNetError};
use crate::token::Token;

/// Accumulates one epoch's deposits and transfers for batched settlement.
#[derive(Debug, Default)]
pub struct EpochLedger {
    /// The epoch currently accumulating (0-based, advances on settle).
    epoch: u64,
    /// Token deposits queued this epoch, in submission order.
    deposits: Vec<(AccountId, Token)>,
    /// Net signed delta per account from the epoch's accrued transfers.
    net: BTreeMap<AccountId, i64>,
    /// Number of individual transfers collapsed into `net`.
    transfers_accrued: u64,
}

/// Report of one settled epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochSettlement {
    /// The epoch that was settled.
    pub epoch: u64,
    /// Per-deposit outcome, in submission order (semantics identical to
    /// sequential [`Bank::deposit`] calls).
    pub deposit_results: Vec<Result<(), DepositError>>,
    /// Deposits accepted (signature valid, serial fresh).
    pub deposits_settled: u64,
    /// Accounts whose netted delta was nonzero — the number of ledger
    /// operations the bank actually performed for all accrued transfers.
    pub accounts_netted: u64,
    /// Individual transfers that were collapsed into those deltas. The
    /// epoch netting ratio is `transfers_netted / accounts_netted`.
    pub transfers_netted: u64,
}

impl EpochLedger {
    /// An empty ledger at epoch 0.
    #[must_use]
    pub fn new() -> Self {
        EpochLedger::default()
    }

    /// The epoch currently accumulating.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether nothing is queued for the current epoch.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deposits.is_empty() && self.transfers_accrued == 0
    }

    /// Number of deposits queued for the current epoch.
    #[must_use]
    pub fn pending_deposits(&self) -> usize {
        self.deposits.len()
    }

    /// Queues a token deposit for the epoch boundary.
    pub fn queue_deposit(&mut self, account: AccountId, token: Token) {
        self.deposits.push((account, token));
    }

    /// Accrues a transfer into the epoch's per-account nets. Funds are not
    /// checked here — debit coverage is validated at [`EpochLedger::settle`].
    pub fn accrue_transfer(&mut self, from: AccountId, to: AccountId, amount: u64) {
        let amount = i64::try_from(amount).expect("transfer amount fits i64");
        *self.net.entry(from).or_insert(0) -= amount;
        *self.net.entry(to).or_insert(0) += amount;
        self.transfers_accrued += 1;
    }

    /// Settles the epoch: batch-deposits every queued token, then applies
    /// the netted transfer deltas atomically, and advances to the next
    /// epoch. `coeff(i)` keys the batch-verification coefficients by
    /// deposit submission position (deterministic replay).
    ///
    /// Deposits settle first — they only add funds, so any debit a
    /// sequential interleaving could have covered is covered here too. If
    /// the net still fails (a debit exceeding its account), the deposits
    /// remain applied, the transfer nets are restored for a retry, and the
    /// epoch does not advance.
    pub fn settle(
        &mut self,
        bank: &mut Bank,
        coeff: impl FnMut(usize) -> u64,
    ) -> Result<EpochSettlement, EpochNetError> {
        let deposits = std::mem::take(&mut self.deposits);
        let net = std::mem::take(&mut self.net);
        let transfers_netted = std::mem::take(&mut self.transfers_accrued);

        let deposit_results = bank.deposit_batch(&deposits, coeff);
        if let Err(e) = bank.apply_epoch_net(self.epoch, &net) {
            self.net = net;
            self.transfers_accrued = transfers_netted;
            return Err(e);
        }

        let settlement = EpochSettlement {
            epoch: self.epoch,
            deposits_settled: deposit_results.iter().filter(|r| r.is_ok()).count() as u64,
            accounts_netted: net.values().filter(|&&d| d != 0).count() as u64,
            transfers_netted,
            deposit_results,
        };
        self.epoch += 1;
        Ok(settlement)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;
    use crate::token::Wallet;
    use idpa_desim::rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    /// Two banks from the same seed, so keys and accounts line up.
    fn twin_banks(seed: u64) -> (Bank, Bank) {
        (
            Bank::new(256, &mut rng(seed)),
            Bank::new(256, &mut rng(seed)),
        )
    }

    #[test]
    fn netted_settle_matches_sequential_operations() {
        let (mut seq, mut epoch) = twin_banks(1);
        let mut r = rng(2);
        let accounts: Vec<AccountId> = (0..4).map(|_| seq.open_account(100)).collect();
        for _ in 0..4 {
            epoch.open_account(100);
        }

        // Sequential arm: interleaved transfers and deposits.
        let mut wallet = Wallet::new();
        seq.withdraw_into_wallet(accounts[0], 7, &mut wallet, &mut rng(3))
            .unwrap();
        let tokens = wallet.take_exact(7).unwrap();
        seq.transfer(accounts[0], accounts[1], 10).unwrap();
        seq.transfer(accounts[1], accounts[2], 4).unwrap();
        seq.transfer(accounts[0], accounts[2], 6).unwrap();
        for t in &tokens {
            seq.deposit(accounts[3], t).unwrap();
        }

        // Epoch arm: same operations accrued, one settle.
        let mut wallet = Wallet::new();
        epoch
            .withdraw_into_wallet(accounts[0], 7, &mut wallet, &mut rng(3))
            .unwrap();
        let tokens = wallet.take_exact(7).unwrap();
        let mut ledger = EpochLedger::new();
        ledger.accrue_transfer(accounts[0], accounts[1], 10);
        ledger.accrue_transfer(accounts[1], accounts[2], 4);
        ledger.accrue_transfer(accounts[0], accounts[2], 6);
        for t in tokens {
            ledger.queue_deposit(accounts[3], t);
        }
        let report = ledger.settle(&mut epoch, |_| r.next()).unwrap();

        assert!(report.deposit_results.iter().all(Result::is_ok));
        assert_eq!(report.transfers_netted, 3);
        // a1's net is +10-4=+6, so all 4 touched accounts are nonzero... a0
        // -16, a1 +6, a2 +10; a3 only deposits. 3 netted accounts.
        assert_eq!(report.accounts_netted, 3);
        for &a in &accounts {
            assert_eq!(seq.balance(a), epoch.balance(a), "account {a:?}");
        }
        assert_eq!(seq.total_deposits(), epoch.total_deposits());
        assert_eq!(seq.outstanding(), epoch.outstanding());
        assert_eq!(seq.spent_serials(), epoch.spent_serials());
    }

    #[test]
    fn settle_advances_epoch_and_clears_state() {
        let (mut bank, _) = twin_banks(4);
        let a = bank.open_account(50);
        let b = bank.open_account(0);
        let mut ledger = EpochLedger::new();
        assert_eq!(ledger.epoch(), 0);
        ledger.accrue_transfer(a, b, 5);
        assert!(!ledger.is_empty());
        ledger.settle(&mut bank, |_| 1).unwrap();
        assert_eq!(ledger.epoch(), 1);
        assert!(ledger.is_empty());
        assert_eq!(bank.balance(b), Some(5));
        // The audit trail records the net, not the transfer.
        assert!(bank
            .audit()
            .entries()
            .iter()
            .any(|e| matches!(e.event, crate::AuditEvent::EpochNet { epoch: 0, .. })));
    }

    #[test]
    fn uncovered_debit_restores_the_net_for_retry() {
        let (mut bank, _) = twin_banks(5);
        let a = bank.open_account(3);
        let b = bank.open_account(0);
        let mut ledger = EpochLedger::new();
        ledger.accrue_transfer(a, b, 10);
        assert_eq!(
            ledger.settle(&mut bank, |_| 1),
            Err(EpochNetError::InsufficientFunds(a))
        );
        assert_eq!(ledger.epoch(), 0, "failed settle must not advance");
        assert!(!ledger.is_empty(), "net restored for retry");
        assert_eq!(bank.balance(a), Some(3), "nothing applied");
        // Fund the debit and retry the same epoch.
        bank.transfer(b, a, 0).ok();
        let c = bank.open_account(20);
        ledger.accrue_transfer(c, a, 10);
        let report = ledger.settle(&mut bank, |_| 1).unwrap();
        assert_eq!(report.transfers_netted, 2);
        assert_eq!(bank.balance(b), Some(10));
    }

    #[test]
    fn intra_and_cross_epoch_double_spends_rejected() {
        let (mut bank, _) = twin_banks(6);
        let a = bank.open_account(10);
        let payee = bank.open_account(0);
        let mut wallet = Wallet::new();
        bank.withdraw_into_wallet(a, 1, &mut wallet, &mut rng(7))
            .unwrap();
        let token = wallet.take_exact(1).unwrap().pop().unwrap();

        let mut ledger = EpochLedger::new();
        ledger.queue_deposit(payee, token.clone());
        ledger.queue_deposit(payee, token.clone()); // intra-epoch duplicate
        let report = ledger.settle(&mut bank, |_| 1).unwrap();
        assert_eq!(
            report.deposit_results,
            vec![Ok(()), Err(DepositError::DoubleSpend)]
        );

        ledger.queue_deposit(payee, token); // cross-epoch duplicate
        let report = ledger.settle(&mut bank, |_| 1).unwrap();
        assert_eq!(report.deposit_results, vec![Err(DepositError::DoubleSpend)]);
        assert_eq!(bank.balance(payee), Some(1));
    }
}
