//! Bearer payment tokens with blind bank signatures.
//!
//! A token is `(serial, value, signature)` where the signature is the
//! bank's RSA signature over `SHA-256(serial ‖ value)`. Because the bank
//! signed it *blindly* during withdrawal, a deposited token cannot be
//! linked to the account that withdrew it — the unlinkability property the
//! paper's payment mechanism needs to avoid deanonymising initiators.

use idpa_crypto::bigint::BigUint;
use idpa_crypto::blind::BlindingFactor;
use idpa_crypto::rsa::RsaPublicKey;
use idpa_crypto::sha256::Sha256;
use idpa_desim::rng::Xoshiro256StarStar;

/// A token's serial number: 32 random bytes drawn by the withdrawer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenId(pub [u8; 32]);

impl TokenId {
    /// Draws a fresh random serial.
    #[must_use]
    pub fn random(rng: &mut Xoshiro256StarStar) -> Self {
        let mut bytes = [0u8; 32];
        for chunk in bytes.chunks_mut(8) {
            chunk.copy_from_slice(&rng.next().to_le_bytes());
        }
        TokenId(bytes)
    }
}

/// The message representative the bank signs: `SHA-256(serial ‖ value)`
/// reduced mod n.
#[must_use]
pub fn token_digest(id: &TokenId, value: u64, key: &RsaPublicKey) -> BigUint {
    let mut h = Sha256::new();
    h.update(&id.0);
    h.update(&value.to_be_bytes());
    BigUint::from_bytes_be(&h.finalize()).rem(key.modulus())
}

/// A bearer token: whoever holds a valid token can deposit it once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Serial number (unique; double-spends are detected on it).
    pub id: TokenId,
    /// Face value in credits.
    pub value: u64,
    /// Bank signature over [`token_digest`].
    pub signature: BigUint,
}

impl Token {
    /// Verifies the bank signature.
    #[must_use]
    pub fn verify(&self, bank_key: &RsaPublicKey) -> bool {
        bank_key.raw_verify(&self.signature) == token_digest(&self.id, self.value, bank_key)
    }
}

/// A withdrawal in progress: the serial/value plus the blinding factor
/// needed to unblind the bank's response. Held client-side; the bank only
/// ever sees [`PendingWithdrawal::blinded`].
pub struct PendingWithdrawal {
    id: TokenId,
    value: u64,
    factor: BlindingFactor,
    blinded: BigUint,
}

impl PendingWithdrawal {
    /// Prepares a withdrawal of `value` credits: draws a serial, blinds its
    /// digest under the bank key.
    #[must_use]
    pub fn prepare(value: u64, bank_key: &RsaPublicKey, rng: &mut Xoshiro256StarStar) -> Self {
        let id = TokenId::random(rng);
        let digest = token_digest(&id, value, bank_key);
        let factor = BlindingFactor::random(bank_key, rng);
        let blinded = factor.blind(bank_key, &digest);
        PendingWithdrawal {
            id,
            value,
            factor,
            blinded,
        }
    }

    /// The blinded representative to send to the bank.
    #[must_use]
    pub fn blinded(&self) -> &BigUint {
        &self.blinded
    }

    /// The face value being withdrawn (the bank must know it to debit the
    /// account and apply the right denomination policy).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Unblinds the bank's blind signature into a spendable token.
    #[must_use]
    pub fn complete(self, bank_key: &RsaPublicKey, blind_sig: &BigUint) -> Token {
        Token {
            id: self.id,
            value: self.value,
            signature: self.factor.unblind(bank_key, blind_sig),
        }
    }
}

/// Errors during withdrawal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WithdrawError {
    /// The account balance does not cover the requested value.
    InsufficientFunds,
    /// The account does not exist.
    UnknownAccount,
}

/// A client-side purse of bearer tokens.
#[derive(Debug, Default)]
pub struct Wallet {
    tokens: Vec<Token>,
}

impl Wallet {
    /// An empty wallet.
    #[must_use]
    pub fn new() -> Self {
        Wallet::default()
    }

    /// Adds a token.
    pub fn put(&mut self, token: Token) {
        self.tokens.push(token);
    }

    /// Total face value held.
    #[must_use]
    pub fn balance(&self) -> u64 {
        self.tokens.iter().map(|t| t.value).sum()
    }

    /// Number of tokens held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the wallet is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Removes tokens totalling **exactly** `amount`, greedily largest
    /// first; returns `None` (wallet unchanged) if no exact subset is found
    /// by the greedy pass. Withdrawal denominations are chosen by
    /// [`denominations`], which guarantees greedy-exact representability.
    pub fn take_exact(&mut self, amount: u64) -> Option<Vec<Token>> {
        let mut remaining = amount;
        let mut indices: Vec<usize> = (0..self.tokens.len()).collect();
        indices.sort_by_key(|&i| std::cmp::Reverse(self.tokens[i].value));
        let mut chosen = Vec::new();
        for i in indices {
            if self.tokens[i].value <= remaining {
                remaining -= self.tokens[i].value;
                chosen.push(i);
                if remaining == 0 {
                    break;
                }
            }
        }
        if remaining != 0 {
            return None;
        }
        chosen.sort_unstable_by(|a, b| b.cmp(a)); // remove from the back
        Some(chosen.into_iter().map(|i| self.tokens.remove(i)).collect())
    }
}

/// Splits `amount` into power-of-two denominations (binary representation),
/// the denomination policy used for withdrawals: any amount up to 2^63 is
/// representable, and greedy largest-first change-making is exact.
#[must_use]
pub fn denominations(amount: u64) -> Vec<u64> {
    (0..64)
        .filter(|bit| amount & (1 << bit) != 0)
        .map(|bit| 1u64 << bit)
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;
    use idpa_crypto::rsa::RsaKeyPair;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn bank_keys(seed: u64) -> RsaKeyPair {
        RsaKeyPair::generate(256, &mut rng(seed))
    }

    fn mint(value: u64, bank: &RsaKeyPair, rng: &mut Xoshiro256StarStar) -> Token {
        let pending = PendingWithdrawal::prepare(value, bank.public(), rng);
        let blind_sig = bank.raw_sign(pending.blinded());
        pending.complete(bank.public(), &blind_sig)
    }

    #[test]
    fn withdrawal_produces_valid_token() {
        let bank = bank_keys(1);
        let mut r = rng(2);
        let token = mint(50, &bank, &mut r);
        assert_eq!(token.value, 50);
        assert!(token.verify(bank.public()));
    }

    #[test]
    fn tampered_value_fails_verification() {
        let bank = bank_keys(3);
        let mut r = rng(4);
        let mut token = mint(50, &bank, &mut r);
        token.value = 5000; // inflate the face value
        assert!(!token.verify(bank.public()));
    }

    #[test]
    fn tampered_serial_fails_verification() {
        let bank = bank_keys(5);
        let mut r = rng(6);
        let mut token = mint(50, &bank, &mut r);
        token.id.0[0] ^= 1;
        assert!(!token.verify(bank.public()));
    }

    #[test]
    fn token_from_wrong_bank_fails() {
        let bank_a = bank_keys(7);
        let bank_b = bank_keys(8);
        let mut r = rng(9);
        let token = mint(50, &bank_a, &mut r);
        assert!(!token.verify(bank_b.public()));
    }

    #[test]
    fn blinded_representative_differs_from_digest() {
        let bank = bank_keys(10);
        let mut r = rng(11);
        let pending = PendingWithdrawal::prepare(50, bank.public(), &mut r);
        let digest = token_digest(&pending.id, 50, bank.public());
        assert_ne!(pending.blinded(), &digest);
    }

    #[test]
    fn serials_are_unique() {
        let mut r = rng(12);
        let a = TokenId::random(&mut r);
        let b = TokenId::random(&mut r);
        assert_ne!(a, b);
    }

    #[test]
    fn denominations_are_binary() {
        assert_eq!(denominations(0), Vec::<u64>::new());
        assert_eq!(denominations(1), vec![1]);
        assert_eq!(denominations(6), vec![2, 4]);
        assert_eq!(denominations(150), vec![2, 4, 16, 128]);
        assert_eq!(denominations(150).iter().sum::<u64>(), 150);
    }

    #[test]
    fn wallet_take_exact_with_binary_denoms() {
        let bank = bank_keys(13);
        let mut r = rng(14);
        let mut w = Wallet::new();
        for v in denominations(150) {
            w.put(mint(v, &bank, &mut r));
        }
        assert_eq!(w.balance(), 150);
        let taken = w.take_exact(130).expect("130 = 128 + 2");
        assert_eq!(taken.iter().map(|t| t.value).sum::<u64>(), 130);
        assert_eq!(w.balance(), 20);
    }

    #[test]
    fn wallet_take_exact_fails_without_subset() {
        let bank = bank_keys(15);
        let mut r = rng(16);
        let mut w = Wallet::new();
        w.put(mint(8, &bank, &mut r));
        assert!(w.take_exact(5).is_none());
        assert_eq!(w.balance(), 8, "failed take leaves wallet unchanged");
    }

    #[test]
    fn wallet_take_all() {
        let bank = bank_keys(17);
        let mut r = rng(18);
        let mut w = Wallet::new();
        w.put(mint(4, &bank, &mut r));
        w.put(mint(2, &bank, &mut r));
        let taken = w.take_exact(6).unwrap();
        assert_eq!(taken.len(), 2);
        assert!(w.is_empty());
    }
}
