//! Escrowed settlement of a connection bundle.
//!
//! The paper's timing rule — "the payment is made by I only after all the
//! connections in π are completed" — creates a non-payment risk: the
//! initiator could enjoy the bundle and then refuse to pay. The escrow
//! closes that hole: the initiator funds the escrow with bearer tokens
//! *before* the bundle runs (committing `k·L̂·P_f + P_r` where `L̂` is the
//! per-connection hop budget), and settlement after completion pays each
//! forwarder `m·P_f + P_r/‖π‖` from the escrow against validated receipts.
//! Leftover escrow value is refunded to the (still anonymous) initiator as
//! change tokens.

use idpa_desim::rng::Xoshiro256StarStar;

use crate::bank::{AccountId, Bank, DepositError};
use crate::receipt::ReceiptBook;
use crate::token::{denominations, PendingWithdrawal, Token, Wallet};

/// Errors during settlement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SettlementError {
    /// A funding token was rejected by the bank.
    BadFunding(DepositError),
    /// The validated claims exceed the escrowed amount.
    OverClaim {
        /// Amount owed according to validated receipts.
        owed: u64,
        /// Amount actually escrowed.
        escrowed: u64,
    },
    /// No valid receipts — nothing to settle.
    EmptyBundle,
    /// The escrow was already settled.
    AlreadySettled,
}

/// Outcome of a successful settlement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SettlementReport {
    /// Per-forwarder payout `m·P_f + P_r/‖π‖` (integer division remainder
    /// of the routing pool stays in the refund).
    pub payouts: Vec<(AccountId, u64)>,
    /// The forwarder-set size `‖π‖`.
    pub forwarder_set_size: usize,
    /// Receipts dropped as invalid/duplicate/foreign.
    pub rejected_receipts: usize,
    /// Change returned to the initiator (as fresh bearer tokens).
    pub refund: u64,
}

/// A funded escrow for one connection bundle.
pub struct Escrow {
    bundle_id: u64,
    /// The escrow's own bank account, holding the committed funds.
    account: AccountId,
    funded: u64,
    pf: u64,
    pr: u64,
    settled: bool,
}

impl Escrow {
    /// Opens an escrow for `bundle_id` with contract terms `(P_f, P_r)` and
    /// funds it with bearer `tokens`. Every token is deposited into a fresh
    /// escrow account — the bank sees the deposit but cannot link the
    /// tokens to the initiator's withdrawal.
    pub fn open(
        bank: &mut Bank,
        bundle_id: u64,
        pf: u64,
        pr: u64,
        tokens: Vec<Token>,
    ) -> Result<Self, SettlementError> {
        let account = bank.open_account(0);
        let mut funded = 0;
        for token in &tokens {
            bank.deposit(account, token)
                .map_err(SettlementError::BadFunding)?;
            funded += token.value;
        }
        Ok(Escrow {
            bundle_id,
            account,
            funded,
            pf,
            pr,
            settled: false,
        })
    }

    /// The bundle this escrow covers.
    #[must_use]
    pub fn bundle_id(&self) -> u64 {
        self.bundle_id
    }

    /// Amount held.
    #[must_use]
    pub fn funded(&self) -> u64 {
        self.funded
    }

    /// The escrow budget needed for `k` connections with at most
    /// `max_hops` forwarding instances each: `k·max_hops·P_f + P_r`.
    #[must_use]
    pub fn required_budget(pf: u64, pr: u64, k: u32, max_hops: u32) -> u64 {
        u64::from(k) * u64::from(max_hops) * pf + pr
    }

    /// Settles the bundle: validates `receipts` under `bundle_key`, pays
    /// each forwarder `m·P_f + P_r/‖π‖`, and returns the change to the
    /// initiator as fresh blind-signed tokens in `refund_wallet`.
    ///
    /// On error nothing is paid and the escrow remains open (a later
    /// corrected settlement, or a timeout claim, can still run).
    pub fn settle(
        &mut self,
        bank: &mut Bank,
        bundle_key: &[u8],
        receipts: &ReceiptBook,
        refund_wallet: &mut Wallet,
        rng: &mut Xoshiro256StarStar,
    ) -> Result<SettlementReport, SettlementError> {
        if self.settled {
            return Err(SettlementError::AlreadySettled);
        }
        let (counts, rejected) = receipts.validated_counts(bundle_key, self.bundle_id);
        if counts.is_empty() {
            return Err(SettlementError::EmptyBundle);
        }
        let set_size = counts.len() as u64;
        let routing_share = self.pr / set_size;

        let payouts: Vec<(AccountId, u64)> = counts
            .iter()
            .map(|(&acct, &m)| (acct, m * self.pf + routing_share))
            .collect();
        let owed: u64 = payouts.iter().map(|&(_, v)| v).sum();
        if owed > self.funded {
            return Err(SettlementError::OverClaim {
                owed,
                escrowed: self.funded,
            });
        }

        // Execute transfers from the escrow account.
        for &(acct, amount) in &payouts {
            bank.transfer(self.account, acct, amount)
                .expect("escrow balance was checked against owed");
        }
        let refund = self.funded - owed;
        if refund > 0 {
            // Refund as fresh bearer tokens (a blind withdrawal from the
            // escrow account), so the initiator stays unlinked.
            for value in denominations(refund) {
                let pending = PendingWithdrawal::prepare(value, bank.public_key(), rng);
                let blind_sig = bank
                    .withdraw_blinded(self.account, value, pending.blinded())
                    .expect("refund is covered by the escrow balance");
                refund_wallet.put(pending.complete(&bank.public_key().clone(), &blind_sig));
            }
        }
        self.settled = true;
        self.funded = 0;
        Ok(SettlementReport {
            payouts,
            forwarder_set_size: counts.len(),
            rejected_receipts: rejected,
            refund,
        })
    }
}

impl Escrow {
    /// Timeout settlement: after the bundle deadline passes without the
    /// initiator submitting a settlement, any forwarder can present the
    /// receipt book and the bank pays out from the escrow — the mechanism
    /// that makes initiator non-payment harmless. Unlike
    /// [`Escrow::settle`], no refund tokens are minted (the anonymous
    /// initiator is not present to receive them); the residual stays in
    /// the escrow account and remains claimable by a later
    /// initiator-driven settlement of the remainder.
    pub fn settle_by_timeout(
        &mut self,
        bank: &mut Bank,
        bundle_key: &[u8],
        receipts: &ReceiptBook,
    ) -> Result<SettlementReport, SettlementError> {
        if self.settled {
            return Err(SettlementError::AlreadySettled);
        }
        let (counts, rejected) = receipts.validated_counts(bundle_key, self.bundle_id);
        if counts.is_empty() {
            return Err(SettlementError::EmptyBundle);
        }
        let set_size = counts.len() as u64;
        let routing_share = self.pr / set_size;
        let payouts: Vec<(AccountId, u64)> = counts
            .iter()
            .map(|(&acct, &m)| (acct, m * self.pf + routing_share))
            .collect();
        let owed: u64 = payouts.iter().map(|&(_, v)| v).sum();
        if owed > self.funded {
            return Err(SettlementError::OverClaim {
                owed,
                escrowed: self.funded,
            });
        }
        for &(acct, amount) in &payouts {
            bank.transfer(self.account, acct, amount)
                .expect("escrow balance checked against owed");
        }
        self.funded -= owed;
        self.settled = true;
        Ok(SettlementReport {
            payouts,
            forwarder_set_size: counts.len(),
            rejected_receipts: rejected,
            refund: 0,
        })
    }

    /// Residual value still held after a timeout settlement.
    #[must_use]
    pub fn residual(&self) -> u64 {
        self.funded
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;
    use crate::receipt::Receipt;

    const KEY: &[u8] = b"bundle key";

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    struct World {
        bank: Bank,
        initiator: AccountId,
        forwarders: Vec<AccountId>,
        rng: Xoshiro256StarStar,
    }

    fn world(seed: u64) -> World {
        let mut r = rng(seed);
        let mut bank = Bank::new(256, &mut r);
        let initiator = bank.open_account(10_000);
        let forwarders = (0..4).map(|_| bank.open_account(0)).collect();
        World {
            bank,
            initiator,
            forwarders,
            rng: r,
        }
    }

    /// Funds an escrow from the initiator's account through bearer tokens.
    fn fund_escrow(w: &mut World, bundle_id: u64, pf: u64, pr: u64, budget: u64) -> Escrow {
        let mut wallet = Wallet::new();
        w.bank
            .withdraw_into_wallet(w.initiator, budget, &mut wallet, &mut w.rng)
            .unwrap();
        let tokens = wallet.take_exact(budget).unwrap();
        Escrow::open(&mut w.bank, bundle_id, pf, pr, tokens).unwrap()
    }

    #[test]
    fn happy_path_settlement() {
        let mut w = world(1);
        let budget = Escrow::required_budget(50, 100, 2, 3); // 2*3*50+100 = 400
        let mut escrow = fund_escrow(&mut w, 1, 50, 100, budget);
        assert_eq!(escrow.funded(), 400);

        // Two connections; forwarder 0 on both, forwarder 1 on the second.
        let mut book = ReceiptBook::new();
        book.add(Receipt::issue(KEY, 1, 0, 0, w.forwarders[0]));
        book.add(Receipt::issue(KEY, 1, 1, 0, w.forwarders[0]));
        book.add(Receipt::issue(KEY, 1, 1, 1, w.forwarders[1]));

        let mut refund = Wallet::new();
        let report = escrow
            .settle(&mut w.bank, KEY, &book, &mut refund, &mut w.rng)
            .unwrap();

        assert_eq!(report.forwarder_set_size, 2);
        // f0: 2*50 + 100/2 = 150 ; f1: 1*50 + 50 = 100
        assert_eq!(w.bank.balance(w.forwarders[0]), Some(150));
        assert_eq!(w.bank.balance(w.forwarders[1]), Some(100));
        assert_eq!(report.refund, 400 - 250);
        assert_eq!(refund.balance(), 150);
    }

    #[test]
    fn refund_tokens_are_spendable_and_anonymous() {
        let mut w = world(2);
        let mut escrow = fund_escrow(&mut w, 1, 10, 10, 100);
        let mut book = ReceiptBook::new();
        book.add(Receipt::issue(KEY, 1, 0, 0, w.forwarders[0]));
        let mut refund = Wallet::new();
        let report = escrow
            .settle(&mut w.bank, KEY, &book, &mut refund, &mut w.rng)
            .unwrap();
        assert_eq!(report.refund, 100 - 20);
        // The refunded tokens deposit cleanly into any account.
        let stash = w.bank.open_account(0);
        for t in refund.take_exact(80).unwrap() {
            w.bank.deposit(stash, &t).unwrap();
        }
        assert_eq!(w.bank.balance(stash), Some(80));
    }

    #[test]
    fn conservation_across_whole_flow() {
        let mut w = world(3);
        let total_before = w.bank.total_deposits() + w.bank.outstanding();
        let mut escrow = fund_escrow(&mut w, 1, 50, 100, 400);
        let mut book = ReceiptBook::new();
        book.add(Receipt::issue(KEY, 1, 0, 0, w.forwarders[0]));
        let mut refund = Wallet::new();
        escrow
            .settle(&mut w.bank, KEY, &book, &mut refund, &mut w.rng)
            .unwrap();
        assert_eq!(
            w.bank.total_deposits() + w.bank.outstanding(),
            total_before,
            "value is conserved through fund->settle->refund"
        );
    }

    #[test]
    fn non_payment_impossible_funds_precommitted() {
        // The "initiator walks away" scenario: funds are already in escrow,
        // so settlement can proceed from receipts alone.
        let mut w = world(4);
        let initiator_before = w.bank.balance(w.initiator).unwrap();
        let mut escrow = fund_escrow(&mut w, 1, 50, 100, 400);
        assert_eq!(
            w.bank.balance(w.initiator),
            Some(initiator_before - 400),
            "funds leave the initiator before any connection runs"
        );
        let mut book = ReceiptBook::new();
        book.add(Receipt::issue(KEY, 1, 0, 0, w.forwarders[0]));
        let mut refund = Wallet::new();
        let report = escrow
            .settle(&mut w.bank, KEY, &book, &mut refund, &mut w.rng)
            .unwrap();
        assert_eq!(w.bank.balance(w.forwarders[0]), Some(report.payouts[0].1));
    }

    #[test]
    fn over_claim_rejected() {
        let mut w = world(5);
        // Tiny escrow, many claimed instances.
        let mut escrow = fund_escrow(&mut w, 1, 50, 100, 120);
        let mut book = ReceiptBook::new();
        for c in 0..5 {
            book.add(Receipt::issue(KEY, 1, c, 0, w.forwarders[0]));
        }
        let mut refund = Wallet::new();
        let err = escrow.settle(&mut w.bank, KEY, &book, &mut refund, &mut w.rng);
        assert!(matches!(err, Err(SettlementError::OverClaim { .. })));
        // Nothing was paid.
        assert_eq!(w.bank.balance(w.forwarders[0]), Some(0));
        assert_eq!(escrow.funded(), 120);
    }

    #[test]
    fn forged_receipts_do_not_get_paid() {
        let mut w = world(6);
        let mut escrow = fund_escrow(&mut w, 1, 50, 100, 400);
        let mut book = ReceiptBook::new();
        book.add(Receipt::issue(KEY, 1, 0, 0, w.forwarders[0]));
        let mut forged = Receipt::issue(KEY, 1, 1, 0, w.forwarders[0]);
        forged.forwarder = w.forwarders[2]; // divert to another account
        book.add(forged);
        let mut refund = Wallet::new();
        let report = escrow
            .settle(&mut w.bank, KEY, &book, &mut refund, &mut w.rng)
            .unwrap();
        assert_eq!(report.rejected_receipts, 1);
        assert_eq!(w.bank.balance(w.forwarders[2]), Some(0));
    }

    #[test]
    fn double_settlement_rejected() {
        let mut w = world(7);
        let mut escrow = fund_escrow(&mut w, 1, 10, 10, 100);
        let mut book = ReceiptBook::new();
        book.add(Receipt::issue(KEY, 1, 0, 0, w.forwarders[0]));
        let mut refund = Wallet::new();
        escrow
            .settle(&mut w.bank, KEY, &book, &mut refund, &mut w.rng)
            .unwrap();
        let again = escrow.settle(&mut w.bank, KEY, &book, &mut refund, &mut w.rng);
        assert_eq!(again.unwrap_err(), SettlementError::AlreadySettled);
    }

    #[test]
    fn empty_bundle_rejected() {
        let mut w = world(8);
        let mut escrow = fund_escrow(&mut w, 1, 10, 10, 100);
        let book = ReceiptBook::new();
        let mut refund = Wallet::new();
        let err = escrow.settle(&mut w.bank, KEY, &book, &mut refund, &mut w.rng);
        assert_eq!(err.unwrap_err(), SettlementError::EmptyBundle);
    }

    #[test]
    fn double_spent_funding_rejected() {
        let mut w = world(9);
        let mut wallet = Wallet::new();
        w.bank
            .withdraw_into_wallet(w.initiator, 1, &mut wallet, &mut w.rng)
            .unwrap();
        let tokens = wallet.take_exact(1).unwrap();
        // Spend the token once normally.
        let sink = w.bank.open_account(0);
        w.bank.deposit(sink, &tokens[0]).unwrap();
        // Then try to fund an escrow with the same token.
        let err = Escrow::open(&mut w.bank, 2, 1, 1, tokens);
        assert!(matches!(
            err,
            Err(SettlementError::BadFunding(DepositError::DoubleSpend))
        ));
    }

    #[test]
    fn required_budget_formula() {
        assert_eq!(Escrow::required_budget(50, 100, 20, 6), 20 * 6 * 50 + 100);
    }

    #[test]
    fn timeout_settlement_pays_without_initiator() {
        let mut w = world(11);
        let mut escrow = fund_escrow(&mut w, 1, 50, 100, 400);
        // The initiator vanishes; a forwarder presents the receipts.
        let mut book = ReceiptBook::new();
        book.add(Receipt::issue(KEY, 1, 0, 0, w.forwarders[0]));
        book.add(Receipt::issue(KEY, 1, 1, 0, w.forwarders[0]));
        let report = escrow.settle_by_timeout(&mut w.bank, KEY, &book).unwrap();
        // 2*50 + 100/1 = 200 paid; 200 residual held.
        assert_eq!(w.bank.balance(w.forwarders[0]), Some(200));
        assert_eq!(report.refund, 0);
        assert_eq!(escrow.residual(), 200);
        // No double settlement afterwards.
        assert_eq!(
            escrow.settle_by_timeout(&mut w.bank, KEY, &book),
            Err(SettlementError::AlreadySettled)
        );
    }

    #[test]
    fn timeout_settlement_still_rejects_forgeries() {
        let mut w = world(12);
        let mut escrow = fund_escrow(&mut w, 1, 50, 100, 400);
        let mut book = ReceiptBook::new();
        let mut forged = Receipt::issue(KEY, 1, 0, 0, w.forwarders[0]);
        forged.forwarder = w.forwarders[1];
        book.add(forged);
        let err = escrow.settle_by_timeout(&mut w.bank, KEY, &book);
        assert_eq!(err, Err(SettlementError::EmptyBundle));
        assert_eq!(w.bank.balance(w.forwarders[1]), Some(0));
    }

    #[test]
    fn routing_pool_divides_among_forwarder_set() {
        // 3 forwarders, Pr = 100 => 33 each; remainder 1 goes to refund.
        let mut w = world(10);
        let mut escrow = fund_escrow(&mut w, 1, 10, 100, 400);
        let mut book = ReceiptBook::new();
        book.add(Receipt::issue(KEY, 1, 0, 0, w.forwarders[0]));
        book.add(Receipt::issue(KEY, 1, 0, 1, w.forwarders[1]));
        book.add(Receipt::issue(KEY, 1, 0, 2, w.forwarders[2]));
        let mut refund = Wallet::new();
        let report = escrow
            .settle(&mut w.bank, KEY, &book, &mut refund, &mut w.rng)
            .unwrap();
        for &(_, amount) in &report.payouts {
            assert_eq!(amount, 10 + 33);
        }
        assert_eq!(report.refund, 400 - 3 * 43);
    }
}
