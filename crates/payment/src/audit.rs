//! Tamper-evident audit log for the bank.
//!
//! The paper's payment system must "handle typical scenarios of cheating
//! and malicious attacks" — and disputes need evidence. The bank keeps an
//! append-only log of every balance-affecting operation, hash-chained
//! (each entry commits to its predecessor via SHA-256), so after the fact
//! any party holding the log can verify that no entry was altered,
//! reordered or dropped. The log stores *account-level* events only: token
//! serials appear at deposit (where the bank legitimately sees them), and
//! withdrawals record only amounts — the unlinkability of blind signatures
//! is preserved.

use idpa_crypto::sha256::Sha256;

use crate::bank::AccountId;

/// One balance-affecting operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditEvent {
    /// Account opened with an initial balance.
    Open {
        /// The new account.
        account: AccountId,
        /// Opening balance.
        balance: u64,
    },
    /// Blind withdrawal (serial unknown to the bank by design).
    Withdraw {
        /// Debited account.
        account: AccountId,
        /// Face value withdrawn.
        value: u64,
    },
    /// Token deposit (the serial becomes public at spend time).
    Deposit {
        /// Credited account.
        account: AccountId,
        /// Face value deposited.
        value: u64,
        /// First 8 bytes of the token serial (enough to match disputes
        /// without reproducing the full serial in every log copy).
        serial_prefix: [u8; 8],
    },
    /// Ledger transfer (escrow payouts).
    Transfer {
        /// Source account.
        from: AccountId,
        /// Destination account.
        to: AccountId,
        /// Amount moved.
        amount: u64,
    },
    /// Net balance delta applied at an epoch boundary: the one entry that
    /// replaces the per-bundle `Transfer` entries an account accumulated
    /// during the epoch under epoch-batched settlement. Deltas of one
    /// epoch's settlement sum to zero across accounts (transfers only move
    /// value), so conservation survives netting.
    EpochNet {
        /// The settled epoch (0-based).
        epoch: u64,
        /// The account whose epoch activity is being netted.
        account: AccountId,
        /// Net signed delta applied to the balance. `i128` end to end: the
        /// ledger accrues nets in `i128`, so the log must record what was
        /// applied without narrowing (encoded as 16 big-endian bytes).
        delta: i128,
    },
    /// Detected-versus-paid discrepancy from §5 reconstructed-path
    /// validation: a bundle whose manifests claim `expected` forwarding
    /// instances but whose surviving receipts validate only `validated`.
    /// Balance-neutral (nothing moves), but on the record for disputes.
    Discrepancy {
        /// The connection bundle the shortfall was detected in.
        bundle: u64,
        /// Forwarding instances the path manifests attest to.
        expected: u64,
        /// Instances backed by a valid receipt (what was actually paid).
        validated: u64,
        /// Forwarders flagged as confirmation cheaters for this bundle.
        flagged: u64,
    },
}

impl AuditEvent {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40);
        match self {
            AuditEvent::Open { account, balance } => {
                out.push(0);
                out.extend_from_slice(&account.0.to_be_bytes());
                out.extend_from_slice(&balance.to_be_bytes());
            }
            AuditEvent::Withdraw { account, value } => {
                out.push(1);
                out.extend_from_slice(&account.0.to_be_bytes());
                out.extend_from_slice(&value.to_be_bytes());
            }
            AuditEvent::Deposit {
                account,
                value,
                serial_prefix,
            } => {
                out.push(2);
                out.extend_from_slice(&account.0.to_be_bytes());
                out.extend_from_slice(&value.to_be_bytes());
                out.extend_from_slice(serial_prefix);
            }
            AuditEvent::Transfer { from, to, amount } => {
                out.push(3);
                out.extend_from_slice(&from.0.to_be_bytes());
                out.extend_from_slice(&to.0.to_be_bytes());
                out.extend_from_slice(&amount.to_be_bytes());
            }
            AuditEvent::EpochNet {
                epoch,
                account,
                delta,
            } => {
                out.push(5);
                out.extend_from_slice(&epoch.to_be_bytes());
                out.extend_from_slice(&account.0.to_be_bytes());
                out.extend_from_slice(&delta.to_be_bytes());
            }
            AuditEvent::Discrepancy {
                bundle,
                expected,
                validated,
                flagged,
            } => {
                out.push(4);
                out.extend_from_slice(&bundle.to_be_bytes());
                out.extend_from_slice(&expected.to_be_bytes());
                out.extend_from_slice(&validated.to_be_bytes());
                out.extend_from_slice(&flagged.to_be_bytes());
            }
        }
        out
    }
}

/// One chained log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// Sequence number (0-based).
    pub seq: u64,
    /// The event.
    pub event: AuditEvent,
    /// `SHA-256(prev_hash ‖ seq ‖ encode(event))`.
    pub hash: [u8; 32],
}

/// The append-only, hash-chained audit log.
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
}

/// The genesis "previous hash" of an empty chain.
const GENESIS: [u8; 32] = [0u8; 32];

fn chain_hash(prev: &[u8; 32], seq: u64, event: &AuditEvent) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(prev);
    h.update(&seq.to_be_bytes());
    h.update(&event.encode());
    h.finalize()
}

impl AuditLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        AuditLog::default()
    }

    /// Reconstructs a log from entries read back from untrusted storage.
    /// No recomputation happens here — call [`AuditLog::verify`] to check
    /// the chain; this constructor exists precisely so that auditors (and
    /// property tests) can load a possibly tampered log and interrogate it.
    #[must_use]
    pub fn from_entries(entries: Vec<AuditEntry>) -> Self {
        AuditLog { entries }
    }

    /// Appends an event, extending the hash chain.
    pub fn append(&mut self, event: AuditEvent) {
        let seq = self.entries.len() as u64;
        let prev = self.entries.last().map_or(GENESIS, |e| e.hash);
        let hash = chain_hash(&prev, seq, &event);
        self.entries.push(AuditEntry { seq, event, hash });
    }

    /// The entries, oldest first.
    #[must_use]
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The chain head (commitment to the entire history).
    #[must_use]
    pub fn head(&self) -> [u8; 32] {
        self.entries.last().map_or(GENESIS, |e| e.hash)
    }

    /// Verifies the whole chain; returns the index of the first corrupt
    /// entry, or `Ok(())`.
    pub fn verify(&self) -> Result<(), usize> {
        let mut prev = GENESIS;
        for (i, entry) in self.entries.iter().enumerate() {
            if entry.seq != i as u64 {
                return Err(i);
            }
            let expect = chain_hash(&prev, entry.seq, &entry.event);
            if expect != entry.hash {
                return Err(i);
            }
            prev = entry.hash;
        }
        Ok(())
    }

    /// End-of-run chain assertion: `true` iff the whole hash chain
    /// verifies. Every experiment/example run asserts this before
    /// reporting results; use [`AuditLog::verify`] when the index of the
    /// first corrupt entry is needed.
    #[must_use]
    pub fn verify_chain(&self) -> bool {
        self.verify().is_ok()
    }

    /// Net balance delta of `account` according to the log — the replay
    /// check used to audit the ledger.
    #[must_use]
    pub fn replay_balance(&self, account: AccountId) -> i128 {
        let mut bal: i128 = 0;
        for e in &self.entries {
            match e.event {
                AuditEvent::Open {
                    account: a,
                    balance,
                } if a == account => {
                    bal += i128::from(balance);
                }
                AuditEvent::Withdraw { account: a, value } if a == account => {
                    bal -= i128::from(value);
                }
                AuditEvent::Deposit {
                    account: a, value, ..
                } if a == account => {
                    bal += i128::from(value);
                }
                AuditEvent::Transfer { from, to, amount } => {
                    if from == account {
                        bal -= i128::from(amount);
                    }
                    if to == account {
                        bal += i128::from(amount);
                    }
                }
                AuditEvent::EpochNet {
                    account: a, delta, ..
                } if a == account => {
                    bal += delta;
                }
                _ => {}
            }
        }
        bal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> AuditLog {
        let mut log = AuditLog::new();
        log.append(AuditEvent::Open {
            account: AccountId(0),
            balance: 100,
        });
        log.append(AuditEvent::Withdraw {
            account: AccountId(0),
            value: 30,
        });
        log.append(AuditEvent::Deposit {
            account: AccountId(1),
            value: 30,
            serial_prefix: *b"serial00",
        });
        log.append(AuditEvent::Transfer {
            from: AccountId(1),
            to: AccountId(0),
            amount: 10,
        });
        log
    }

    #[test]
    fn clean_chain_verifies() {
        assert_eq!(sample_log().verify(), Ok(()));
    }

    #[test]
    fn tampered_event_detected() {
        let mut log = sample_log();
        if let AuditEvent::Withdraw { value, .. } = &mut log.entries[1].event {
            *value = 3; // shave the withdrawal
        }
        assert_eq!(log.verify(), Err(1));
    }

    #[test]
    fn dropped_entry_detected() {
        let mut log = sample_log();
        log.entries.remove(1);
        assert!(log.verify().is_err());
    }

    #[test]
    fn reordered_entries_detected() {
        let mut log = sample_log();
        log.entries.swap(1, 2);
        assert!(log.verify().is_err());
    }

    #[test]
    fn recomputed_hash_after_tamper_still_detected_downstream() {
        // An attacker who rewrites an event AND its hash breaks the link
        // to the next entry.
        let mut log = sample_log();
        if let AuditEvent::Withdraw { value, .. } = &mut log.entries[1].event {
            *value = 3;
        }
        let prev = log.entries[0].hash;
        log.entries[1].hash = chain_hash(&prev, 1, &log.entries[1].event);
        assert_eq!(log.verify(), Err(2), "next link must fail");
    }

    #[test]
    fn head_commits_to_history() {
        let a = sample_log();
        let mut b = sample_log();
        assert_eq!(a.head(), b.head());
        b.append(AuditEvent::Open {
            account: AccountId(9),
            balance: 0,
        });
        assert_ne!(a.head(), b.head());
    }

    #[test]
    fn replay_balance_reconstructs_ledger() {
        let log = sample_log();
        // Account 0: +100 - 30 + 10 = 80 ; account 1: +30 - 10 = 20.
        assert_eq!(log.replay_balance(AccountId(0)), 80);
        assert_eq!(log.replay_balance(AccountId(1)), 20);
        assert_eq!(log.replay_balance(AccountId(42)), 0);
    }

    #[test]
    fn discrepancy_entries_chain_and_are_balance_neutral() {
        let mut log = sample_log();
        let before = log.replay_balance(AccountId(0));
        log.append(AuditEvent::Discrepancy {
            bundle: 7,
            expected: 12,
            validated: 9,
            flagged: 1,
        });
        assert_eq!(log.verify(), Ok(()));
        assert_eq!(log.replay_balance(AccountId(0)), before);
        let mut t = log.clone();
        if let AuditEvent::Discrepancy { validated, .. } = &mut t.entries[4].event {
            *validated = 12; // cover up the shortfall
        }
        assert_eq!(t.verify(), Err(4));
    }

    #[test]
    fn epoch_net_entries_chain_and_replay_as_signed_deltas() {
        let mut log = sample_log();
        log.append(AuditEvent::EpochNet {
            epoch: 3,
            account: AccountId(0),
            delta: -25,
        });
        log.append(AuditEvent::EpochNet {
            epoch: 3,
            account: AccountId(1),
            delta: 25,
        });
        assert_eq!(log.verify(), Ok(()));
        // Account 0: 80 - 25 = 55 ; account 1: 20 + 25 = 45.
        assert_eq!(log.replay_balance(AccountId(0)), 55);
        assert_eq!(log.replay_balance(AccountId(1)), 45);
        let mut t = log.clone();
        if let AuditEvent::EpochNet { delta, .. } = &mut t.entries[4].event {
            *delta = -5; // understate the debit
        }
        assert_eq!(t.verify(), Err(4));
    }

    #[test]
    fn from_entries_round_trips_and_preserves_tampering() {
        let log = sample_log();
        let reloaded = AuditLog::from_entries(log.entries().to_vec());
        assert_eq!(reloaded.verify(), Ok(()));
        assert_eq!(reloaded.head(), log.head());

        let mut entries = log.entries().to_vec();
        entries[2].hash[0] ^= 1;
        let tampered = AuditLog::from_entries(entries);
        assert_eq!(tampered.verify(), Err(2));
    }

    #[test]
    fn empty_log_invariants() {
        let log = AuditLog::new();
        assert!(log.is_empty());
        assert_eq!(log.verify(), Ok(()));
        assert_eq!(log.head(), GENESIS);
    }
}
