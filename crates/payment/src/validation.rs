//! §5 reconstructed-path validation and cheater flagging.
//!
//! "Each intermediate forwarder also includes path information which is
//! then used by I to recreate the path and validate it." The initiator's
//! side of that sentence lives here: the responder seals the true path of
//! each completed connection into a MAC'd [`PathManifest`] (it knows the
//! path — the payload reached it hop by hop), every forwarder's receipt is
//! countersigned under the same per-bundle key as the confirmation returns,
//! and at settlement the initiator replays the evidence.
//!
//! A cheating forwarder on the reverse path cannot forge downstream
//! receipts (it lacks the bundle key's signing view of slots it never
//! held), so its profitable deviation is *destruction*: corrupt the
//! receipts of the hops below it while keeping its own. The manifest makes
//! that self-incriminating — the first invalid receipt sits directly below
//! an intact prefix, and the forwarder at the deepest valid position is the
//! most-upstream node that handled every corrupted receipt. Flagging it
//! never accuses an honest forwarder; a cheater masked by another cheater
//! upstream of it on one connection is exposed on any connection where it
//! acts as the most-upstream corrupter. Detected-versus-paid discrepancies
//! are recorded in the bank's [`crate::audit::AuditLog`] as
//! [`crate::audit::AuditEvent::Discrepancy`] entries.

use std::collections::{BTreeMap, BTreeSet};

use idpa_crypto::hmac::{hmac_sha256, verify_hmac};

use crate::bank::AccountId;
use crate::receipt::Receipt;

/// The responder's sealed statement of one connection's true path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathManifest {
    /// The connection bundle.
    pub bundle_id: u64,
    /// Connection index within the bundle.
    pub connection: u32,
    /// Forwarder accounts in path order (`f_1 … f_n`, endpoints excluded).
    pub hops: Vec<AccountId>,
    /// MAC under the bundle key over all fields above.
    pub mac: [u8; 32],
}

fn manifest_message(bundle_id: u64, connection: u32, hops: &[AccountId]) -> Vec<u8> {
    let mut msg = Vec::with_capacity(8 + 4 + 8 * hops.len());
    msg.extend_from_slice(&bundle_id.to_be_bytes());
    msg.extend_from_slice(&connection.to_be_bytes());
    for h in hops {
        msg.extend_from_slice(&h.0.to_be_bytes());
    }
    msg
}

impl PathManifest {
    /// Seals the path under the bundle key (executed by the responder).
    #[must_use]
    pub fn issue(bundle_key: &[u8], bundle_id: u64, connection: u32, hops: Vec<AccountId>) -> Self {
        let mac = hmac_sha256(bundle_key, &manifest_message(bundle_id, connection, &hops));
        PathManifest {
            bundle_id,
            connection,
            hops,
            mac,
        }
    }

    /// Verifies the seal.
    #[must_use]
    pub fn verify(&self, bundle_key: &[u8]) -> bool {
        verify_hmac(
            bundle_key,
            &manifest_message(self.bundle_id, self.connection, &self.hops),
            &self.mac,
        )
    }
}

/// Everything the initiator holds about one completed connection: the
/// responder's manifest plus the receipts that survived the reverse path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionEvidence {
    /// The responder's sealed path statement.
    pub manifest: PathManifest,
    /// Receipts as received (possibly corrupted by a cheater in transit).
    pub receipts: Vec<Receipt>,
    /// The hops the initiator *observed* forwarding, in path order — the
    /// cross-confirmation defense against colluding cliques. A clique
    /// responder holds the bundle key, so a manifest padded with phantom
    /// clique mates carries a valid MAC and valid receipts; the only
    /// authority the responder cannot forge is the initiator's own record
    /// of who it handed the payload to. `None` disables the cross-check
    /// for this entry (the pre-defense behavior, byte-identical for
    /// honest evidence).
    pub observed_hops: Option<Vec<AccountId>>,
}

/// Accumulates a bundle's evidence and validates it at settlement.
#[derive(Debug, Clone)]
pub struct PathValidator {
    key: Vec<u8>,
    bundle_id: u64,
    evidence: Vec<ConnectionEvidence>,
}

impl PathValidator {
    /// A validator for one bundle under its shared key.
    #[must_use]
    pub fn new(bundle_key: &[u8], bundle_id: u64) -> Self {
        PathValidator {
            key: bundle_key.to_vec(),
            bundle_id,
            evidence: Vec::new(),
        }
    }

    /// Records one completed connection's evidence.
    pub fn add_connection(&mut self, evidence: ConnectionEvidence) {
        self.evidence.push(evidence);
    }

    /// Completed connections recorded so far.
    #[must_use]
    pub fn connections(&self) -> usize {
        self.evidence.len()
    }

    /// Snapshot export: the recorded evidence entries, in insertion order.
    /// (The key and bundle id are not exported — resume re-derives them
    /// deterministically and rebuilds via [`PathValidator::from_snapshot`].)
    #[must_use]
    pub fn evidence(&self) -> &[ConnectionEvidence] {
        &self.evidence
    }

    /// Rebuilds a validator from its deterministic identity (key, bundle
    /// id) plus a [`PathValidator::evidence`] export.
    #[must_use]
    pub fn from_snapshot(
        bundle_key: &[u8],
        bundle_id: u64,
        evidence: Vec<ConnectionEvidence>,
    ) -> Self {
        PathValidator {
            key: bundle_key.to_vec(),
            bundle_id,
            evidence,
        }
    }

    /// Replays one evidence entry into `report` — the shared kernel of
    /// whole-bundle settlement ([`PathValidator::validate`]) and the
    /// adaptive runner's per-connection check
    /// ([`PathValidator::flag_connection`]).
    fn apply_evidence(&self, ev: &ConnectionEvidence, report: &mut ValidationReport) {
        let m = &ev.manifest;
        if m.bundle_id != self.bundle_id || !m.verify(&self.key) {
            report.invalid_manifests += 1;
            return;
        }
        // Receipt for hop h (1-based): must exist, MAC-verify, and name
        // the forwarder the manifest places there. With observed hops on
        // record, a manifest entry that disagrees with the initiator's own
        // observation is a *phantom*: its (valid!) receipt is withheld
        // from payment and the vouched-for account is reported, without
        // perturbing the intact-prefix walk over the genuine hops.
        let mut prefix_valid = 0usize; // deepest intact prefix
        let mut broken = false;
        for (i, &account) in m.hops.iter().enumerate() {
            if let Some(obs) = &ev.observed_hops {
                if obs.get(i) != Some(&account) {
                    report.phantom_accounts.insert(account);
                    let hop = (i + 1) as u32;
                    let vouched = ev.receipts.iter().any(|r| {
                        r.connection == m.connection
                            && r.hop == hop
                            && r.bundle_id == self.bundle_id
                            && r.forwarder == account
                            && r.verify(&self.key)
                    });
                    if vouched {
                        report.phantom_instances += 1;
                    }
                    continue;
                }
            }
            report.expected_instances += 1;
            let hop = (i + 1) as u32;
            let receipt = ev
                .receipts
                .iter()
                .find(|r| r.connection == m.connection && r.hop == hop);
            let valid = receipt.is_some_and(|r| {
                r.bundle_id == self.bundle_id && r.forwarder == account && r.verify(&self.key)
            });
            if valid {
                report.validated_instances += 1;
                *report.paid_counts.entry(account).or_insert(0) += 1;
                if !broken {
                    prefix_valid = i + 1;
                }
            } else {
                broken = true;
            }
        }
        if broken {
            if prefix_valid >= 1 {
                report.flagged.insert(m.hops[prefix_valid - 1]);
            } else {
                report.unattributed += 1;
            }
        }
    }

    /// Replays all evidence: counts payable forwarding instances, measures
    /// the corruption shortfall, and flags cheaters by the intact-prefix
    /// rule described in the module docs.
    #[must_use]
    pub fn validate(&self) -> ValidationReport {
        let mut report = ValidationReport::default();
        for ev in &self.evidence {
            self.apply_evidence(ev, &mut report);
        }
        report
    }

    /// Replays the evidence entries in `[start, end)` (insertion order) —
    /// the epoch-settlement kernel. [`PathValidator::apply_evidence`] is
    /// per-entry independent, so partitioning a bundle's evidence into
    /// epoch windows and merging the per-window reports (summing counters,
    /// unioning `paid_counts`/`flagged`) reproduces the whole-bundle
    /// [`PathValidator::validate`] exactly; out-of-range indices are
    /// simply skipped.
    #[must_use]
    pub fn validate_range(&self, start: usize, end: usize) -> ValidationReport {
        let mut report = ValidationReport::default();
        let end = end.min(self.evidence.len());
        for ev in self.evidence.get(start..end).unwrap_or(&[]) {
            self.apply_evidence(ev, &mut report);
        }
        report
    }

    /// Validates a single recorded connection (by insertion order) with
    /// the same intact-prefix rule as [`PathValidator::validate`] and
    /// returns the forwarder it pins the corruption on, if any.
    ///
    /// This is the adaptive fault-response feedback hook: instead of
    /// learning about cheaters only at end-of-run settlement, the
    /// initiator checks each connection's evidence as its confirmation
    /// returns and feeds the flag straight into its reputation ledger, so
    /// the cheater is suppressed from the *rest of the same run's* path
    /// formations. A connection flags at most one forwarder (the
    /// most-upstream acting corrupter).
    #[must_use]
    pub fn flag_connection(&self, index: usize) -> Option<AccountId> {
        let mut report = ValidationReport::default();
        self.apply_evidence(self.evidence.get(index)?, &mut report);
        report.flagged.into_iter().next()
    }
}

/// The outcome of validating one bundle's evidence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Forwarding instances the manifests say happened.
    pub expected_instances: u64,
    /// Instances backed by a valid receipt (what settlement will pay).
    pub validated_instances: u64,
    /// Payable instance counts per forwarder (the settlement input).
    pub paid_counts: BTreeMap<AccountId, u64>,
    /// Forwarders flagged as confirmation cheaters.
    pub flagged: BTreeSet<AccountId>,
    /// Connections whose corruption could not be pinned on any forwarder
    /// (no intact prefix at all).
    pub unattributed: u64,
    /// Evidence entries whose manifest failed verification.
    pub invalid_manifests: u64,
    /// Phantom forwarding instances caught by the observed-hops
    /// cross-check: manifest entries with a valid receipt that the
    /// initiator never actually routed through. Withheld from payment.
    pub phantom_instances: u64,
    /// Accounts the cross-check caught being vouched for phantom work.
    pub phantom_accounts: BTreeSet<AccountId>,
}

impl ValidationReport {
    /// Fraction of earned forwarding payment lost to corruption
    /// (`0` when everything validated, including the empty bundle).
    #[must_use]
    pub fn shortfall(&self) -> f64 {
        if self.expected_instances == 0 {
            return 0.0;
        }
        1.0 - self.validated_instances as f64 / self.expected_instances as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &[u8] = b"bundle key for validation tests";
    const BUNDLE: u64 = 9;

    fn account(i: u64) -> AccountId {
        AccountId(i)
    }

    /// Builds a connection's evidence over the given path, corrupting the
    /// receipts of every hop strictly below `corrupt_from` (1-based, as a
    /// cheating forwarder at that position would).
    fn evidence(connection: u32, path: &[u64], corrupt_from: Option<usize>) -> ConnectionEvidence {
        let hops: Vec<AccountId> = path.iter().map(|&i| account(i)).collect();
        let manifest = PathManifest::issue(KEY, BUNDLE, connection, hops.clone());
        let receipts = hops
            .iter()
            .enumerate()
            .map(|(i, &acct)| {
                let mut r = Receipt::issue(KEY, BUNDLE, connection, (i + 1) as u32, acct);
                if corrupt_from.is_some_and(|cf| i + 1 > cf) {
                    r.mac[0] ^= 0x55;
                }
                r
            })
            .collect();
        ConnectionEvidence {
            manifest,
            receipts,
            observed_hops: None,
        }
    }

    #[test]
    fn manifest_round_trip_and_tamper_detection() {
        let m = PathManifest::issue(KEY, BUNDLE, 3, vec![account(1), account(2)]);
        assert!(m.verify(KEY));
        assert!(!m.verify(b"wrong key"));
        let mut t = m.clone();
        t.hops[1] = account(7);
        assert!(!t.verify(KEY), "substituted hop must break the seal");
        let mut t = m;
        t.connection = 4;
        assert!(!t.verify(KEY));
    }

    #[test]
    fn clean_bundle_pays_everyone_and_flags_no_one() {
        let mut v = PathValidator::new(KEY, BUNDLE);
        v.add_connection(evidence(0, &[1, 2, 3], None));
        v.add_connection(evidence(1, &[1, 4], None));
        let r = v.validate();
        assert_eq!(r.expected_instances, 5);
        assert_eq!(r.validated_instances, 5);
        assert_eq!(r.shortfall(), 0.0);
        assert!(r.flagged.is_empty());
        assert_eq!(r.unattributed, 0);
        assert_eq!(r.paid_counts[&account(1)], 2);
        assert_eq!(r.paid_counts[&account(3)], 1);
    }

    #[test]
    fn corruption_flags_the_most_upstream_acting_cheater() {
        // Cheater at position 2 (account 5) corrupts hops 3..: the deepest
        // intact prefix ends at position 2, so account 5 is flagged, and
        // the honest victims below it are the ones who lose payment.
        let mut v = PathValidator::new(KEY, BUNDLE);
        v.add_connection(evidence(0, &[4, 5, 6, 7], Some(2)));
        let r = v.validate();
        assert_eq!(r.flagged.iter().copied().collect::<Vec<_>>(), [account(5)]);
        assert_eq!(r.expected_instances, 4);
        assert_eq!(r.validated_instances, 2);
        assert!((r.shortfall() - 0.5).abs() < 1e-12);
        assert!(!r.paid_counts.contains_key(&account(6)));
        assert!(!r.paid_counts.contains_key(&account(7)));
    }

    #[test]
    fn every_injected_cheater_is_flagged_across_a_bundle() {
        // Three cheaters (5, 6, 7). On any one connection only the most
        // upstream acting cheater is exposed; across the bundle's
        // connections each of them acts as the most-upstream corrupter on
        // at least one path, so accumulation flags all three and never an
        // honest node.
        let cheaters = [5u64, 6, 7];
        let mut v = PathValidator::new(KEY, BUNDLE);
        v.add_connection(evidence(0, &[1, 5, 6, 2], Some(2))); // 5 masks 6
        v.add_connection(evidence(1, &[1, 6, 3, 2], Some(2))); // 6 exposed
        v.add_connection(evidence(2, &[7, 4, 1], Some(1))); // 7 exposed
        let r = v.validate();
        let flagged: Vec<u64> = r.flagged.iter().map(|a| a.0).collect();
        assert_eq!(flagged, cheaters, "all cheaters flagged, nobody else");
        assert_eq!(r.unattributed, 0);
    }

    #[test]
    fn missing_receipts_are_shortfall_not_false_accusation() {
        // A dropped confirmation yields no evidence at all; a partially
        // delivered receipt set with an intact prefix flags the boundary.
        let mut v = PathValidator::new(KEY, BUNDLE);
        let mut ev = evidence(0, &[1, 2, 3], None);
        ev.receipts.truncate(1); // hops 2 and 3 never arrived
        v.add_connection(ev);
        let r = v.validate();
        assert_eq!(r.validated_instances, 1);
        assert_eq!(
            r.flagged.iter().copied().collect::<Vec<_>>(),
            [account(1)],
            "the holder of the deepest valid receipt is the suspect"
        );
    }

    #[test]
    fn fully_corrupted_connection_is_unattributed() {
        let mut v = PathValidator::new(KEY, BUNDLE);
        v.add_connection(evidence(0, &[1, 2], Some(0)));
        let r = v.validate();
        assert_eq!(r.validated_instances, 0);
        assert!(r.flagged.is_empty(), "no intact prefix, no accusation");
        assert_eq!(r.unattributed, 1);
        assert_eq!(r.shortfall(), 1.0);
    }

    #[test]
    fn invalid_manifest_is_counted_and_skipped() {
        let mut v = PathValidator::new(KEY, BUNDLE);
        let mut ev = evidence(0, &[1, 2], None);
        ev.manifest.hops[0] = account(9); // forged path statement
        v.add_connection(ev);
        let r = v.validate();
        assert_eq!(r.invalid_manifests, 1);
        assert_eq!(r.expected_instances, 0);
        assert_eq!(r.shortfall(), 0.0);
    }

    #[test]
    fn flag_connection_matches_whole_bundle_settlement() {
        let mut v = PathValidator::new(KEY, BUNDLE);
        v.add_connection(evidence(0, &[1, 2, 3], None)); // clean
        v.add_connection(evidence(1, &[4, 5, 6, 7], Some(2))); // 5 corrupts
        v.add_connection(evidence(2, &[1, 2], Some(0))); // unattributable
        assert_eq!(v.flag_connection(0), None);
        assert_eq!(v.flag_connection(1), Some(account(5)));
        assert_eq!(v.flag_connection(2), None);
        assert_eq!(v.flag_connection(99), None, "out of range is no flag");
        // The per-connection flags are exactly the settlement flags.
        let settled = v.validate();
        assert_eq!(
            settled.flagged.iter().copied().collect::<Vec<_>>(),
            [account(5)]
        );
    }

    /// Clique forgery: the responder pads the manifest with phantom mates
    /// and issues them valid receipts (it holds the bundle key, so every
    /// MAC verifies).
    fn forged_evidence(connection: u32, genuine: &[u64], phantoms: &[u64]) -> ConnectionEvidence {
        let mut hops: Vec<AccountId> = genuine.iter().map(|&i| account(i)).collect();
        hops.extend(phantoms.iter().map(|&i| account(i)));
        let manifest = PathManifest::issue(KEY, BUNDLE, connection, hops.clone());
        let receipts = hops
            .iter()
            .enumerate()
            .map(|(i, &acct)| Receipt::issue(KEY, BUNDLE, connection, (i + 1) as u32, acct))
            .collect();
        ConnectionEvidence {
            manifest,
            receipts,
            observed_hops: Some(genuine.iter().map(|&i| account(i)).collect()),
        }
    }

    #[test]
    fn cross_check_withholds_phantom_payouts_and_names_the_accounts() {
        let mut v = PathValidator::new(KEY, BUNDLE);
        v.add_connection(forged_evidence(0, &[1, 2], &[8, 9]));
        let r = v.validate();
        // Genuine work is paid in full; the forged MAC-valid suffix is not.
        assert_eq!(r.expected_instances, 2);
        assert_eq!(r.validated_instances, 2);
        assert_eq!(r.shortfall(), 0.0, "forgery must not dilute shortfall");
        assert_eq!(r.phantom_instances, 2);
        let phantoms: Vec<u64> = r.phantom_accounts.iter().map(|a| a.0).collect();
        assert_eq!(phantoms, [8, 9]);
        assert!(!r.paid_counts.contains_key(&account(8)));
        assert!(!r.paid_counts.contains_key(&account(9)));
        assert!(
            r.flagged.is_empty(),
            "phantoms are reported, not confused with corrupters"
        );
    }

    #[test]
    fn cross_check_off_pays_the_forged_suffix() {
        // Without observed hops the forgery is indistinguishable from
        // genuine evidence — the attack wins, which is exactly what the
        // adversary-zoo leakage metric measures.
        let mut v = PathValidator::new(KEY, BUNDLE);
        let mut ev = forged_evidence(0, &[1, 2], &[8]);
        ev.observed_hops = None;
        v.add_connection(ev);
        let r = v.validate();
        assert_eq!(r.validated_instances, 3);
        assert_eq!(r.paid_counts[&account(8)], 1);
        assert_eq!(r.phantom_instances, 0);
    }

    #[test]
    fn cross_check_with_matching_observation_is_invisible() {
        let mut v = PathValidator::new(KEY, BUNDLE);
        let mut honest = evidence(0, &[1, 2, 3], None);
        honest.observed_hops = Some(vec![account(1), account(2), account(3)]);
        v.add_connection(honest);
        let baseline = {
            let mut vb = PathValidator::new(KEY, BUNDLE);
            vb.add_connection(evidence(0, &[1, 2, 3], None));
            vb.validate()
        };
        assert_eq!(v.validate(), baseline, "honest evidence is unaffected");
    }

    #[test]
    fn cross_check_composes_with_receipt_corruption() {
        // A cheater corrupts the genuine suffix while the responder pads
        // phantoms: the intact-prefix rule still pins the corrupter, and
        // the phantoms are still withheld.
        let mut v = PathValidator::new(KEY, BUNDLE);
        let genuine = [4u64, 5, 6];
        let mut ev = forged_evidence(0, &genuine, &[8]);
        for r in &mut ev.receipts {
            if r.hop > 1 && r.hop <= 3 {
                r.mac[0] ^= 0x55; // corrupt genuine hops 2..=3
            }
        }
        v.add_connection(ev);
        let r = v.validate();
        assert_eq!(r.flagged.iter().copied().collect::<Vec<_>>(), [account(4)]);
        assert_eq!(r.phantom_instances, 1);
        assert_eq!(r.validated_instances, 1);
    }

    #[test]
    fn receipt_for_wrong_forwarder_breaks_at_that_hop() {
        // A receipt redirected to another account fails the manifest match
        // even though its MAC verifies for the original fields.
        let mut v = PathValidator::new(KEY, BUNDLE);
        let mut ev = evidence(0, &[1, 2, 3], None);
        ev.receipts[1] = Receipt::issue(KEY, BUNDLE, 0, 2, account(8));
        v.add_connection(ev);
        let r = v.validate();
        assert_eq!(r.validated_instances, 2);
        assert_eq!(r.flagged.iter().copied().collect::<Vec<_>>(), [account(1)]);
    }
}
