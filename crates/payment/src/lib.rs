//! # idpa-payment — the anonymity-preserving payment system
//!
//! §2.2 of the paper: "After evaluating the path quality, the initiator
//! uses a central entity (bank) to make payments to the forwarders. ...
//! The payment is made by I only after all the connections in π are
//! completed." §5 adds that the payment mechanism must not decrease the
//! anonymity the forwarding system provides, and that it must "handle
//! typical scenarios of cheating and malicious attacks".
//!
//! The design implemented here (the paper's own protocol details live in
//! its unavailable technical report; DESIGN.md §5 documents the
//! substitution):
//!
//! * **Bearer tokens with Chaum blind signatures** ([`token`]): the
//!   initiator withdraws tokens whose serial numbers the bank never sees,
//!   so settling them later cannot be linked back to the withdrawal — the
//!   bank learns *that* forwarders were paid, never *which initiator* paid
//!   them.
//! * **A central bank** ([`bank`]): accounts, withdrawal (debit + blind
//!   sign), deposit (verify + double-spend check + credit).
//! * **Receipts** ([`receipt`]): per-forwarding-instance records MAC'd
//!   with a per-bundle key, which is what lets the initiator validate the
//!   reconstructed path and lets forwarders prove their participation.
//! * **Reconstructed-path validation** ([`validation`]): the initiator
//!   replays each connection's MAC'd path manifest against the surviving
//!   receipts, pays only validated instances, and flags the most-upstream
//!   forwarder below which every receipt went bad — the §5 "recreate the
//!   path and validate it" step that makes confirmation cheating traceable.
//! * **Escrow settlement** ([`escrow`]): the initiator funds an escrow with
//!   bearer tokens *before* the connection bundle runs (no non-payment
//!   cheating), and after the bundle completes each forwarder is paid
//!   `m·P_f + P_r/‖π‖` against validated receipts (no over-claiming).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod audit;
pub mod bank;
pub mod epoch;
pub mod escrow;
pub mod ledger;
pub mod monitor;
pub mod receipt;
pub mod token;
pub mod validation;
pub mod wal;

pub use audit::{AuditEvent, AuditLog};
pub use bank::{AccountId, Bank, DepositError, EpochNetError};
pub use epoch::{EpochLedger, EpochSettleError, EpochSettlement};
pub use escrow::{Escrow, SettlementError, SettlementReport};
pub use ledger::{ApplyError, BankReplica, Ledger, RecoveryReport};
pub use monitor::{InvariantKind, InvariantMonitor, InvariantViolation};
pub use receipt::{Receipt, ReceiptBook};
pub use token::{Token, TokenId, Wallet, WithdrawError};
pub use validation::{ConnectionEvidence, PathManifest, PathValidator, ValidationReport};
pub use wal::{LedgerOp, Wal, WalScan};
