//! Forwarding receipts and the path-validation record.
//!
//! §2.2: "after R receives the payload, it sends back a confirmation
//! through the reverse path. Each intermediate forwarder also includes path
//! information which is then used by I to recreate the path and validate
//! it." We realise the validation with HMACs under a per-bundle key that
//! the initiator shares with the responder at bundle setup: a forwarder's
//! receipt for connection `c` is countersigned (MAC'd) as the confirmation
//! passes through it on the reverse path, so the initiator can verify that
//! a claimed `(forwarder, connection)` participation really lies on the
//! path the responder confirmed, and a forwarder cannot inflate its count
//! of forwarding instances.

use idpa_crypto::hmac::{hmac_sha256, verify_hmac};

use crate::bank::AccountId;

/// A per-forwarding-instance receipt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    /// The connection bundle this belongs to.
    pub bundle_id: u64,
    /// Index of the connection within the bundle (`π^k`).
    pub connection: u32,
    /// Position of the forwarder on the path (hop index from the initiator).
    pub hop: u32,
    /// The forwarder's payment account (its payee identity — the paper's
    /// design hides the *initiator*, not the forwarders, from the bank).
    pub forwarder: AccountId,
    /// MAC under the bundle key over all the fields above.
    pub mac: [u8; 32],
}

fn receipt_message(bundle_id: u64, connection: u32, hop: u32, forwarder: AccountId) -> Vec<u8> {
    let mut msg = Vec::with_capacity(8 + 4 + 4 + 8);
    msg.extend_from_slice(&bundle_id.to_be_bytes());
    msg.extend_from_slice(&connection.to_be_bytes());
    msg.extend_from_slice(&hop.to_be_bytes());
    msg.extend_from_slice(&forwarder.0.to_be_bytes());
    msg
}

impl Receipt {
    /// Issues a receipt MAC'd under `bundle_key` (executed by the
    /// responder-side confirmation as it passes the forwarder).
    #[must_use]
    pub fn issue(
        bundle_key: &[u8],
        bundle_id: u64,
        connection: u32,
        hop: u32,
        forwarder: AccountId,
    ) -> Self {
        let mac = hmac_sha256(
            bundle_key,
            &receipt_message(bundle_id, connection, hop, forwarder),
        );
        Receipt {
            bundle_id,
            connection,
            hop,
            forwarder,
            mac,
        }
    }

    /// Verifies the MAC under the bundle key.
    #[must_use]
    pub fn verify(&self, bundle_key: &[u8]) -> bool {
        verify_hmac(
            bundle_key,
            &receipt_message(self.bundle_id, self.connection, self.hop, self.forwarder),
            &self.mac,
        )
    }
}

/// The initiator's collection of receipts for one bundle, with validation.
#[derive(Debug, Default)]
pub struct ReceiptBook {
    receipts: Vec<Receipt>,
}

impl ReceiptBook {
    /// An empty book.
    #[must_use]
    pub fn new() -> Self {
        ReceiptBook::default()
    }

    /// Adds a receipt collected from the reverse path.
    pub fn add(&mut self, receipt: Receipt) {
        self.receipts.push(receipt);
    }

    /// Number of receipts collected.
    #[must_use]
    pub fn len(&self) -> usize {
        self.receipts.len()
    }

    /// Whether the book is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.receipts.is_empty()
    }

    /// Validates every receipt against the bundle key and `bundle_id`,
    /// deduplicates `(connection, hop)` slots (a forwarder cannot claim the
    /// same slot twice), and returns per-forwarder forwarding-instance
    /// counts `m` — the input to settlement.
    ///
    /// Invalid or duplicate receipts are dropped (and counted in the
    /// second return value) rather than failing the whole bundle: a
    /// malicious forwarder must not be able to block everyone's payment.
    #[must_use]
    pub fn validated_counts(
        &self,
        bundle_key: &[u8],
        bundle_id: u64,
    ) -> (std::collections::BTreeMap<AccountId, u64>, usize) {
        let mut seen_slots = std::collections::HashSet::new();
        let mut counts = std::collections::BTreeMap::new();
        let mut rejected = 0usize;
        for r in &self.receipts {
            let valid = r.bundle_id == bundle_id
                && r.verify(bundle_key)
                && seen_slots.insert((r.connection, r.hop));
            if valid {
                *counts.entry(r.forwarder).or_insert(0) += 1;
            } else {
                rejected += 1;
            }
        }
        (counts, rejected)
    }

    /// The distinct forwarders appearing in **valid** receipts — the
    /// forwarder set `π` whose size divides the routing benefit.
    #[must_use]
    pub fn forwarder_set(&self, bundle_key: &[u8], bundle_id: u64) -> Vec<AccountId> {
        self.validated_counts(bundle_key, bundle_id)
            .0
            .into_keys()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &[u8] = b"per-bundle shared key";

    #[test]
    fn issue_verify_round_trip() {
        let r = Receipt::issue(KEY, 7, 3, 1, AccountId(42));
        assert!(r.verify(KEY));
    }

    #[test]
    fn wrong_key_rejected() {
        let r = Receipt::issue(KEY, 7, 3, 1, AccountId(42));
        assert!(!r.verify(b"other key"));
    }

    #[test]
    fn tampered_fields_rejected() {
        let r = Receipt::issue(KEY, 7, 3, 1, AccountId(42));
        let mut t = r.clone();
        t.forwarder = AccountId(43); // redirect payment
        assert!(!t.verify(KEY));
        let mut t = r.clone();
        t.connection = 4; // claim an extra connection
        assert!(!t.verify(KEY));
        let mut t = r;
        t.hop = 2;
        assert!(!t.verify(KEY));
    }

    #[test]
    fn validated_counts_aggregate_per_forwarder() {
        let mut book = ReceiptBook::new();
        // Forwarder 1 on two connections, forwarder 2 on one.
        book.add(Receipt::issue(KEY, 9, 0, 0, AccountId(1)));
        book.add(Receipt::issue(KEY, 9, 1, 0, AccountId(1)));
        book.add(Receipt::issue(KEY, 9, 0, 1, AccountId(2)));
        let (counts, rejected) = book.validated_counts(KEY, 9);
        assert_eq!(rejected, 0);
        assert_eq!(counts[&AccountId(1)], 2);
        assert_eq!(counts[&AccountId(2)], 1);
    }

    #[test]
    fn duplicate_slot_claims_are_rejected() {
        let mut book = ReceiptBook::new();
        let r = Receipt::issue(KEY, 9, 0, 0, AccountId(1));
        book.add(r.clone());
        book.add(r); // replay the same receipt
        let (counts, rejected) = book.validated_counts(KEY, 9);
        assert_eq!(counts[&AccountId(1)], 1, "replay must not double-count");
        assert_eq!(rejected, 1);
    }

    #[test]
    fn forged_receipt_rejected_without_blocking_others() {
        let mut book = ReceiptBook::new();
        book.add(Receipt::issue(KEY, 9, 0, 0, AccountId(1)));
        let mut forged = Receipt::issue(KEY, 9, 1, 0, AccountId(2));
        forged.forwarder = AccountId(3);
        book.add(forged);
        let (counts, rejected) = book.validated_counts(KEY, 9);
        assert_eq!(rejected, 1);
        assert_eq!(counts.len(), 1);
        assert!(counts.contains_key(&AccountId(1)));
    }

    #[test]
    fn receipts_from_other_bundle_rejected() {
        let mut book = ReceiptBook::new();
        book.add(Receipt::issue(KEY, 8, 0, 0, AccountId(1))); // bundle 8
        let (counts, rejected) = book.validated_counts(KEY, 9);
        assert!(counts.is_empty());
        assert_eq!(rejected, 1);
    }

    #[test]
    fn forwarder_set_is_distinct_accounts() {
        let mut book = ReceiptBook::new();
        book.add(Receipt::issue(KEY, 9, 0, 0, AccountId(5)));
        book.add(Receipt::issue(KEY, 9, 1, 0, AccountId(5)));
        book.add(Receipt::issue(KEY, 9, 1, 1, AccountId(6)));
        assert_eq!(book.forwarder_set(KEY, 9), vec![AccountId(5), AccountId(6)]);
    }
}
