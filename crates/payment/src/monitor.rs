//! Runtime invariant monitor for the bank ledger.
//!
//! The monitor is the independent auditor the durable-bank subsystem runs
//! *continuously*: a cheap O(1) check on every WAL flush and a deep check
//! at every settlement and recovery. Each invariant is stated over the
//! [`crate::ledger::Ledger`] + [`crate::AuditLog`] pair, and a violation
//! pinpoints the first audit sequence number at which the books diverge —
//! so seeded corruption is attributed to an operation, not just detected.
//!
//! Invariants (see DESIGN.md §12 for why each holds on the clean path):
//! 1. **Conservation** — `Σ balances + outstanding == minted`.
//! 2. **No double deposit** — every deposited serial is unique.
//! 3. **Audit chain intact** — the SHA-256 hash chain verifies end to end.
//! 4. **Epoch nets sum to zero** — per epoch, the logged deltas cancel.
//! 5. **Replay agreement** — the audit log's replayed balance total
//!    matches the live ledger (catches mutations that skipped the log).

use std::collections::{BTreeMap, HashSet};

use crate::audit::AuditEvent;
use crate::ledger::Ledger;

/// Which invariant a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// Balances + outstanding liability drifted from minted value.
    Conservation,
    /// A serial appears in two deposit events.
    DoubleDeposit,
    /// The audit hash chain fails to verify.
    AuditChainBroken,
    /// An epoch's net deltas do not sum to zero.
    EpochNetNonZero,
    /// Replaying the audit log disagrees with the live balance total.
    ReplayMismatch,
}

/// One detected invariant violation, attributed where possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The broken invariant.
    pub kind: InvariantKind,
    /// Audit sequence number of the first offending entry, when the
    /// violation is attributable to a specific operation.
    pub audit_seq: Option<u64>,
    /// Human-readable detail for logs and test output.
    pub detail: String,
}

/// Stateless invariant checker with violation/check counters.
#[derive(Debug, Clone, Default)]
pub struct InvariantMonitor {
    checks: u64,
    violations: u64,
}

impl InvariantMonitor {
    /// A fresh monitor.
    #[must_use]
    pub fn new() -> Self {
        InvariantMonitor::default()
    }

    /// Checks run so far (quick + full).
    #[must_use]
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Total violations observed so far.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// The O(1) hot-path check: conservation only. Suitable for every
    /// WAL flush.
    pub fn check_quick(&mut self, ledger: &Ledger) -> Result<(), InvariantViolation> {
        self.checks += 1;
        if ledger.conservation_holds() {
            return Ok(());
        }
        self.violations += 1;
        Err(InvariantViolation {
            kind: InvariantKind::Conservation,
            audit_seq: None,
            detail: format!(
                "balances {} + outstanding {} != minted {}",
                ledger.total_balance(),
                ledger.outstanding(),
                ledger.minted()
            ),
        })
    }

    /// The deep settlement-time check: every invariant, walking the full
    /// audit log. Returns all violations found (empty = clean).
    pub fn check_full(&mut self, ledger: &Ledger) -> Vec<InvariantViolation> {
        self.checks += 1;
        let mut out = Vec::new();

        // 1. Conservation, recomputed from scratch (not the incremental
        // counter — the whole point is an independent second opinion).
        let recomputed: u128 = ledger
            .sorted_accounts()
            .iter()
            .map(|&(_, b)| u128::from(b))
            .sum();
        if recomputed + u128::from(ledger.outstanding()) != ledger.minted() {
            out.push(InvariantViolation {
                kind: InvariantKind::Conservation,
                audit_seq: None,
                detail: format!(
                    "recomputed balances {recomputed} + outstanding {} != minted {}",
                    ledger.outstanding(),
                    ledger.minted()
                ),
            });
        }

        // 3. Audit chain — verify() reports the first bad seq, which IS
        // the injected op on seeded corruption.
        if let Err(seq) = ledger.audit().verify() {
            out.push(InvariantViolation {
                kind: InvariantKind::AuditChainBroken,
                audit_seq: Some(seq as u64),
                detail: format!("hash chain breaks at audit seq {seq}"),
            });
        }

        // 2 + 4 + 5 in one log walk.
        let mut seen_serials: HashSet<[u8; 8]> = HashSet::new();
        let mut epoch_sums: BTreeMap<u64, (i128, u64)> = BTreeMap::new();
        let mut replay_total: i128 = 0;
        for entry in ledger.audit().entries() {
            match entry.event {
                AuditEvent::Open { balance, .. } => {
                    replay_total += i128::from(balance);
                }
                AuditEvent::Withdraw { value, .. } => {
                    replay_total -= i128::from(value);
                }
                AuditEvent::Deposit {
                    serial_prefix,
                    value,
                    ..
                } => {
                    replay_total += i128::from(value);
                    if !seen_serials.insert(serial_prefix) {
                        out.push(InvariantViolation {
                            kind: InvariantKind::DoubleDeposit,
                            audit_seq: Some(entry.seq),
                            detail: format!("serial prefix {serial_prefix:02x?} deposited twice"),
                        });
                    }
                }
                AuditEvent::EpochNet { epoch, delta, .. } => {
                    replay_total += delta;
                    let slot = epoch_sums.entry(epoch).or_insert((0, entry.seq));
                    slot.0 += delta;
                }
                // Transfers move value between accounts (total-neutral);
                // discrepancies move nothing at all.
                AuditEvent::Transfer { .. } | AuditEvent::Discrepancy { .. } => {}
            }
        }
        // Cross-check: the ledger's spent set and the log's deposit events
        // must agree in count (a deposit that skipped the log, or a log
        // entry without a spent serial, shows up here).
        if seen_serials.len() != ledger.spent_serials() {
            out.push(InvariantViolation {
                kind: InvariantKind::DoubleDeposit,
                audit_seq: None,
                detail: format!(
                    "audit log records {} distinct deposits but ledger spent set has {}",
                    seen_serials.len(),
                    ledger.spent_serials()
                ),
            });
        }
        for (epoch, (sum, first_seq)) in &epoch_sums {
            if *sum != 0 {
                out.push(InvariantViolation {
                    kind: InvariantKind::EpochNetNonZero,
                    audit_seq: Some(*first_seq),
                    detail: format!("epoch {epoch} nets to {sum}, expected 0"),
                });
            }
        }

        // 5. The log's replayed balance total must match the live ledger:
        // a mutation that skipped the log (or a log entry nothing applied)
        // shows up as a drift between the two.
        let live = i128::try_from(ledger.total_balance()).unwrap_or(i128::MAX);
        if replay_total != live {
            out.push(InvariantViolation {
                kind: InvariantKind::ReplayMismatch,
                audit_seq: None,
                detail: format!("audit replay total {replay_total} != live balance total {live}"),
            });
        }

        self.violations += out.len() as u64;
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;
    use crate::bank::AccountId;
    use crate::token::TokenId;
    use std::collections::BTreeMap as Net;

    fn clean_ledger() -> Ledger {
        let mut l = Ledger::new();
        let a = l.open_account(1_000);
        let b = l.open_account(200);
        l.withdraw(a, 300).unwrap();
        l.deposit_serial(b, TokenId([7; 32]), 300).unwrap();
        let mut net = Net::new();
        net.insert(a, -40i128);
        net.insert(b, 40i128);
        l.apply_epoch_net(3, &net).unwrap();
        l
    }

    #[test]
    fn clean_ledger_passes_all_checks() {
        let l = clean_ledger();
        let mut m = InvariantMonitor::new();
        assert!(m.check_quick(&l).is_ok());
        assert!(m.check_full(&l).is_empty());
        assert_eq!(m.checks(), 2);
        assert_eq!(m.violations(), 0);
    }

    #[test]
    fn tampered_audit_entry_is_pinpointed() {
        let mut l = clean_ledger();
        // Flip the withdraw (seq 2) into a different value: the chain
        // breaks exactly there and the monitor must say so.
        let mut entries = l.audit().entries().to_vec();
        entries[2].event = AuditEvent::Withdraw {
            account: AccountId(0),
            value: 999,
        };
        *l.audit_mut() = crate::audit::AuditLog::from_entries(entries);
        let mut m = InvariantMonitor::new();
        let violations = m.check_full(&l);
        let chain = violations
            .iter()
            .find(|v| v.kind == InvariantKind::AuditChainBroken)
            .expect("chain break detected");
        assert_eq!(chain.audit_seq, Some(2), "pinpoints the injected op");
    }

    #[test]
    fn double_deposit_in_log_is_flagged_at_its_seq() {
        let mut l = clean_ledger();
        let mut entries = l.audit().entries().to_vec();
        // Splice a duplicate of the deposit event (seq 3) at the tail.
        let dup = entries[3].event.clone();
        let seq = entries.len() as u64;
        entries.push(crate::audit::AuditEntry {
            seq,
            event: dup,
            hash: [0; 32],
        });
        *l.audit_mut() = crate::audit::AuditLog::from_entries(entries);
        let mut m = InvariantMonitor::new();
        let violations = m.check_full(&l);
        assert!(violations
            .iter()
            .any(|v| v.kind == InvariantKind::DoubleDeposit && v.audit_seq == Some(seq)));
    }

    #[test]
    fn nonzero_epoch_net_is_flagged() {
        let mut l = clean_ledger();
        let mut entries = l.audit().entries().to_vec();
        let seq = entries.len() as u64;
        entries.push(crate::audit::AuditEntry {
            seq,
            event: AuditEvent::EpochNet {
                epoch: 9,
                account: AccountId(0),
                delta: 17,
            },
            hash: [0; 32],
        });
        *l.audit_mut() = crate::audit::AuditLog::from_entries(entries);
        let mut m = InvariantMonitor::new();
        let violations = m.check_full(&l);
        assert!(violations
            .iter()
            .any(|v| v.kind == InvariantKind::EpochNetNonZero && v.audit_seq == Some(seq)));
    }

    #[test]
    fn quick_check_is_conservation_only() {
        let l = clean_ledger();
        let mut m = InvariantMonitor::new();
        for _ in 0..100 {
            assert!(m.check_quick(&l).is_ok());
        }
        assert_eq!(m.checks(), 100);
    }
}
