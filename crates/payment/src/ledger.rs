//! The crypto-free ledger core of the bank, with optional write-ahead
//! durability.
//!
//! [`Ledger`] owns everything the bank knows that is *state* — account
//! balances, the spent-serial set, outstanding bearer liability, the
//! hash-chained audit log — and none of the cryptography. [`crate::Bank`]
//! wraps it with RSA blind signing/verification; the simulation's durable
//! shadow bank uses it directly on the crypto-free hot path.
//!
//! Durability contract (enforced by every mutating method): validate
//! (read-only) → append the [`LedgerOp`] to the attached [`Wal`] → mutate.
//! Only validated operations reach the log, so replaying any intact log
//! prefix succeeds and reproduces the exact state that prefix describes —
//! the property [`Ledger::recover`] relies on and the crash-anywhere suite
//! in `tests/wal_recovery.rs` proves byte by byte.

use std::collections::{BTreeMap, HashMap, HashSet};

use idpa_desim::codec::{fnv1a_64, Enc};

use crate::audit::{AuditEvent, AuditLog};
use crate::bank::{AccountId, DepositError, EpochNetError};
use crate::token::{TokenId, WithdrawError};
use crate::wal::{scan, LedgerOp, Wal};

/// Why an intact-looking WAL record failed to apply during replay — this
/// can only happen when the log was corrupted in a way the frame checksums
/// cannot see (e.g. a spliced duplicate of a valid record), because the
/// clean path logs only validated operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyError {
    /// The operation references an account the replayed state lacks.
    UnknownAccount,
    /// A debit exceeds the replayed balance.
    InsufficientFunds,
    /// The deposit's serial is already in the replayed spent set.
    DoubleSpend,
    /// A credit would overflow a balance.
    BalanceOverflow,
}

/// What recovery found in a WAL byte image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records replayed into the recovered ledger.
    pub records_replayed: u64,
    /// Bytes of the log accepted as the intact prefix.
    pub bytes_replayed: usize,
    /// Bytes discarded as the torn/corrupt tail.
    pub torn_bytes: usize,
    /// Human-readable reason the tail was discarded (`None` = the whole
    /// image was intact and applied).
    pub defect: Option<String>,
}

impl RecoveryReport {
    /// Whether the whole image was intact and replayed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.torn_bytes == 0 && self.defect.is_none()
    }
}

/// The bank's account/serial/liability state plus the audit chain, with an
/// optional attached write-ahead log.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    accounts: HashMap<AccountId, u64>,
    spent: HashSet<TokenId>,
    next_account: u64,
    /// Total value of tokens signed but not yet deposited — outstanding
    /// bearer liability (used by the conservation-of-value invariant).
    outstanding: u64,
    /// Total value ever minted by `open_account` (`u128`: many max-value
    /// accounts must not wrap the conservation check).
    minted: u128,
    /// Sum of all balances, maintained incrementally so the conservation
    /// invariant is O(1) to check on the hot path.
    total_balance: u128,
    /// Tamper-evident log of every balance-affecting operation.
    audit: AuditLog,
    /// The write-ahead log; `None` runs the exact non-durable path.
    wal: Option<Wal>,
    /// Whether `log` stages records for group commit instead of appending
    /// them durably one by one.
    group_commit: bool,
}

impl Ledger {
    /// An empty ledger with no WAL attached.
    #[must_use]
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Attaches a write-ahead log; subsequent mutations append to it
    /// before touching state.
    pub fn attach_wal(&mut self, wal: Wal) {
        self.wal = Some(wal);
    }

    /// Detaches and returns the WAL (the durable medium outlives the
    /// in-memory ledger across a simulated crash).
    pub fn take_wal(&mut self) -> Option<Wal> {
        self.wal.take()
    }

    /// The attached WAL, if any.
    #[must_use]
    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    /// Switches between per-op durability (`false`, the default) and
    /// group commit (`true`: records stage until [`Ledger::commit_wal`]).
    pub fn set_group_commit(&mut self, group: bool) {
        self.group_commit = group;
    }

    /// Group-commits all staged records; returns how many became durable.
    /// A no-op without a WAL or in per-op mode.
    pub fn commit_wal(&mut self) -> u64 {
        self.wal.as_mut().map_or(0, Wal::commit)
    }

    /// Appends a validated op to the WAL (stage or commit per the mode).
    /// Called *before* the mutation it describes.
    fn log(&mut self, op: &LedgerOp) {
        if let Some(wal) = self.wal.as_mut() {
            if self.group_commit {
                wal.stage(op);
            } else {
                wal.append(op);
            }
        }
    }

    /// Opens an account with an initial balance, returning its id.
    /// Ids are sequential, so log replay re-assigns them identically.
    pub fn open_account(&mut self, initial_balance: u64) -> AccountId {
        self.log(&LedgerOp::Open {
            balance: initial_balance,
        });
        let id = AccountId(self.next_account);
        self.next_account += 1;
        self.accounts.insert(id, initial_balance);
        self.minted += u128::from(initial_balance);
        self.total_balance += u128::from(initial_balance);
        self.audit.append(AuditEvent::Open {
            account: id,
            balance: initial_balance,
        });
        id
    }

    /// Balance of an account, or `None` if unknown.
    #[must_use]
    pub fn balance(&self, account: AccountId) -> Option<u64> {
        self.accounts.get(&account).copied()
    }

    /// Whether the account exists.
    #[must_use]
    pub fn has_account(&self, account: AccountId) -> bool {
        self.accounts.contains_key(&account)
    }

    /// Debits `value` from `account`, moving it to outstanding bearer
    /// liability (the ledger half of a blind withdrawal).
    pub fn withdraw(&mut self, account: AccountId, value: u64) -> Result<(), WithdrawError> {
        let Some(&balance) = self.accounts.get(&account) else {
            return Err(WithdrawError::UnknownAccount);
        };
        if balance < value {
            return Err(WithdrawError::InsufficientFunds);
        }
        self.log(&LedgerOp::Withdraw { account, value });
        *self.accounts.get_mut(&account).expect("checked above") = balance - value;
        self.total_balance -= u128::from(value);
        self.outstanding += value;
        self.audit.append(AuditEvent::Withdraw { account, value });
        Ok(())
    }

    /// Credits a deposited serial's face value: rejects unknown accounts
    /// and double spends (the signature check lives in [`crate::Bank`]).
    pub fn deposit_serial(
        &mut self,
        account: AccountId,
        serial: TokenId,
        value: u64,
    ) -> Result<(), DepositError> {
        if !self.accounts.contains_key(&account) {
            return Err(DepositError::UnknownAccount);
        }
        if self.spent.contains(&serial) {
            return Err(DepositError::DoubleSpend);
        }
        self.log(&LedgerOp::Deposit {
            account,
            serial,
            value,
        });
        self.spent.insert(serial);
        self.outstanding = self.outstanding.saturating_sub(value);
        *self.accounts.get_mut(&account).expect("checked above") += value;
        self.total_balance += u128::from(value);
        let mut serial_prefix = [0u8; 8];
        serial_prefix.copy_from_slice(&serial.0[..8]);
        self.audit.append(AuditEvent::Deposit {
            account,
            value,
            serial_prefix,
        });
        Ok(())
    }

    /// Account-to-account transfer. Checks the destination first, then the
    /// source, then funds (the order [`crate::Bank::transfer`] pins).
    pub fn transfer(
        &mut self,
        from: AccountId,
        to: AccountId,
        amount: u64,
    ) -> Result<(), WithdrawError> {
        if !self.accounts.contains_key(&to) {
            return Err(WithdrawError::UnknownAccount);
        }
        let Some(&src) = self.accounts.get(&from) else {
            return Err(WithdrawError::UnknownAccount);
        };
        if src < amount {
            return Err(WithdrawError::InsufficientFunds);
        }
        self.log(&LedgerOp::Transfer { from, to, amount });
        *self.accounts.get_mut(&from).expect("checked above") = src - amount;
        *self.accounts.get_mut(&to).expect("checked above") += amount;
        self.audit.append(AuditEvent::Transfer { from, to, amount });
        Ok(())
    }

    /// Applies one net balance delta per account for a settled epoch,
    /// atomically: every delta is validated before any applies, and the
    /// whole net is one WAL record — the epoch-boundary group the log
    /// commits together.
    pub fn apply_epoch_net(
        &mut self,
        epoch: u64,
        net: &BTreeMap<AccountId, i128>,
    ) -> Result<(), EpochNetError> {
        for (&account, &delta) in net {
            let Some(&balance) = self.accounts.get(&account) else {
                return Err(EpochNetError::UnknownAccount(account));
            };
            let new = i128::from(balance) + delta;
            if new < 0 {
                return Err(EpochNetError::InsufficientFunds(account));
            }
            if new > i128::from(u64::MAX) {
                return Err(EpochNetError::BalanceOverflow(account));
            }
        }
        self.log(&LedgerOp::EpochNet {
            epoch,
            deltas: net.clone(),
        });
        for (&account, &delta) in net {
            if delta == 0 {
                continue;
            }
            let balance = self.accounts.get_mut(&account).expect("validated above");
            let old = u128::from(*balance);
            *balance = u64::try_from(i128::from(*balance) + delta).expect("validated above");
            self.total_balance = self.total_balance - old + u128::from(*balance);
            self.audit.append(AuditEvent::EpochNet {
                epoch,
                account,
                delta,
            });
        }
        Ok(())
    }

    /// Applies a replayed WAL record through the same validated paths the
    /// live methods use (with the WAL detached during recovery, nothing is
    /// re-logged). Failure means the log was corrupted in a way the frame
    /// checksums cannot detect.
    pub fn apply(&mut self, op: &LedgerOp) -> Result<(), ApplyError> {
        match op {
            LedgerOp::Open { balance } => {
                self.open_account(*balance);
                Ok(())
            }
            LedgerOp::Withdraw { account, value } => {
                self.withdraw(*account, *value).map_err(ApplyError::from)
            }
            LedgerOp::Deposit {
                account,
                serial,
                value,
            } => self
                .deposit_serial(*account, *serial, *value)
                .map_err(ApplyError::from),
            LedgerOp::Transfer { from, to, amount } => {
                self.transfer(*from, *to, *amount).map_err(ApplyError::from)
            }
            LedgerOp::EpochNet { epoch, deltas } => self
                .apply_epoch_net(*epoch, deltas)
                .map_err(ApplyError::from),
        }
    }

    /// Rebuilds a ledger from a WAL byte image: replays the longest intact
    /// record prefix, discards the torn/corrupt tail, and re-attaches a
    /// WAL holding exactly the replayed prefix — so the recovered ledger
    /// continues the same log where the intact history ends.
    ///
    /// Never fails: corruption of any kind (torn frame, flipped byte,
    /// spliced record that no longer applies) just shortens the accepted
    /// prefix, reported in the [`RecoveryReport`].
    #[must_use]
    pub fn recover(bytes: &[u8]) -> (Ledger, RecoveryReport) {
        let s = scan(bytes);
        let mut ledger = Ledger::new();
        let mut accepted = s.intact_len;
        let mut records = 0u64;
        let mut defect = s.defect.as_ref().map(ToString::to_string);
        for (i, op) in s.ops.iter().enumerate() {
            if let Err(e) = ledger.apply(op) {
                // The frame was intact but the op contradicts the replayed
                // state: cut the accepted prefix at this record's start.
                accepted = if i == 0 { 0 } else { s.boundaries[i - 1] };
                defect = Some(format!("record {i} failed to apply: {e:?}"));
                break;
            }
            records += 1;
        }
        ledger.attach_wal(Wal::from_recovered(bytes[..accepted].to_vec(), records));
        let report = RecoveryReport {
            records_replayed: records,
            bytes_replayed: accepted,
            torn_bytes: bytes.len() - accepted,
            defect,
        };
        (ledger, report)
    }

    /// Sum of all account balances (u64 view, matching
    /// [`crate::Bank::total_deposits`]).
    #[must_use]
    pub fn total_deposits(&self) -> u64 {
        self.accounts.values().sum()
    }

    /// Sum of all balances as maintained incrementally (exact, `u128`).
    #[must_use]
    pub fn total_balance(&self) -> u128 {
        self.total_balance
    }

    /// Total value ever minted by account openings.
    #[must_use]
    pub fn minted(&self) -> u128 {
        self.minted
    }

    /// Outstanding bearer-token liability (withdrawn, not yet deposited).
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.outstanding
    }

    /// Number of accounts.
    #[must_use]
    pub fn accounts_len(&self) -> usize {
        self.accounts.len()
    }

    /// Number of serials seen.
    #[must_use]
    pub fn spent_serials(&self) -> usize {
        self.spent.len()
    }

    /// The tamper-evident audit log.
    #[must_use]
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Mutable audit access for corruption-injection tests (the invariant
    /// monitor must pinpoint a tampered entry).
    #[doc(hidden)]
    pub fn audit_mut(&mut self) -> &mut AuditLog {
        &mut self.audit
    }

    /// The O(1) conservation-of-value invariant: balances + outstanding
    /// liability equals everything ever minted. Exact (`u128`) — any
    /// silent loss or creation of value breaks it.
    #[must_use]
    pub fn conservation_holds(&self) -> bool {
        self.total_balance + u128::from(self.outstanding) == self.minted
    }

    /// Account balances in ascending id order (canonical iteration for
    /// digests and deep invariant checks).
    #[must_use]
    pub fn sorted_accounts(&self) -> Vec<(AccountId, u64)> {
        let mut v: Vec<(AccountId, u64)> = self.accounts.iter().map(|(&a, &b)| (a, b)).collect();
        v.sort_unstable_by_key(|(a, _)| *a);
        v
    }

    /// FNV-1a-64 digest of the canonical ledger state: sorted balances,
    /// sorted spent serials, counters, and the audit-chain head (which
    /// commits to the entire operation history). Two ledgers with equal
    /// digests went through identical state trajectories.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut e = Enc::new();
        let accounts = self.sorted_accounts();
        e.seq_len(accounts.len());
        for (a, b) in accounts {
            e.u64(a.0);
            e.u64(b);
        }
        let mut serials: Vec<&TokenId> = self.spent.iter().collect();
        serials.sort_unstable_by_key(|t| t.0);
        e.seq_len(serials.len());
        for s in serials {
            e.raw(&s.0);
        }
        e.u64(self.next_account);
        e.u64(self.outstanding);
        e.u64((self.minted >> 64) as u64);
        e.u64(self.minted as u64);
        e.u64((self.total_balance >> 64) as u64);
        e.u64(self.total_balance as u64);
        e.u64(self.audit.len() as u64);
        e.raw(&self.audit.head());
        fnv1a_64(&e.into_bytes())
    }
}

impl From<WithdrawError> for ApplyError {
    fn from(e: WithdrawError) -> Self {
        match e {
            WithdrawError::UnknownAccount => ApplyError::UnknownAccount,
            WithdrawError::InsufficientFunds => ApplyError::InsufficientFunds,
        }
    }
}

impl From<DepositError> for ApplyError {
    fn from(e: DepositError) -> Self {
        match e {
            DepositError::UnknownAccount => ApplyError::UnknownAccount,
            DepositError::DoubleSpend => ApplyError::DoubleSpend,
            // The ledger never checks signatures; unreachable by
            // construction, mapped defensively.
            DepositError::InvalidSignature => ApplyError::UnknownAccount,
        }
    }
}

impl From<EpochNetError> for ApplyError {
    fn from(e: EpochNetError) -> Self {
        match e {
            EpochNetError::UnknownAccount(_) => ApplyError::UnknownAccount,
            EpochNetError::InsufficientFunds(_) => ApplyError::InsufficientFunds,
            EpochNetError::BalanceOverflow(_) => ApplyError::BalanceOverflow,
        }
    }
}

/// A warm standby that consumes the primary's WAL stream and can take
/// over deterministically after a crash.
///
/// The replica applies intact records incrementally from its byte cursor;
/// because the WAL is append-only and logs only validated operations, a
/// replica fed to offset `c` is *bit-identical* to a primary whose durable
/// log is `c` bytes long — which is exactly the failover guarantee the
/// runner's crash class relies on.
#[derive(Debug, Clone, Default)]
pub struct BankReplica {
    ledger: Ledger,
    cursor: usize,
}

impl BankReplica {
    /// A cold replica (empty ledger, cursor at the log's start).
    #[must_use]
    pub fn new() -> Self {
        BankReplica::default()
    }

    /// A warm replica re-created after a failover: `ledger` is a clone of
    /// the promoted primary's state (WAL detached), `cursor` the byte
    /// length of the log it reflects.
    #[must_use]
    pub fn warm(mut ledger: Ledger, cursor: usize) -> Self {
        ledger.take_wal();
        BankReplica { ledger, cursor }
    }

    /// Applies every intact record between the cursor and the end of
    /// `wal_bytes`, returning how many records were applied. A torn tail
    /// (or a record that fails to apply) leaves the cursor at the last
    /// good boundary; feeding again after the primary repairs or extends
    /// the log resumes from there.
    pub fn feed(&mut self, wal_bytes: &[u8]) -> u64 {
        if self.cursor >= wal_bytes.len() {
            return 0;
        }
        let s = scan(&wal_bytes[self.cursor..]);
        let mut applied = 0u64;
        for (i, op) in s.ops.iter().enumerate() {
            if self.ledger.apply(op).is_err() {
                break;
            }
            self.cursor += if i == 0 {
                s.boundaries[0]
            } else {
                s.boundaries[i] - s.boundaries[i - 1]
            };
            applied += 1;
        }
        applied
    }

    /// Byte offset of the log prefix the replica reflects.
    #[must_use]
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// The replica's ledger state.
    #[must_use]
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Promotes the replica: consumes it, returning the ledger (no WAL
    /// attached — the caller re-attaches the recovered log) and the byte
    /// cursor it had caught up to.
    #[must_use]
    pub fn promote(self) -> (Ledger, usize) {
        (self.ledger, self.cursor)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;

    fn serial(tag: u8) -> TokenId {
        TokenId([tag; 32])
    }

    /// A ledger with a WAL attached and a representative mixed workload.
    fn sample() -> Ledger {
        let mut l = Ledger::new();
        l.attach_wal(Wal::new());
        let a = l.open_account(1_000);
        let b = l.open_account(0);
        l.withdraw(a, 200).unwrap();
        l.deposit_serial(b, serial(1), 150).unwrap();
        l.deposit_serial(b, serial(2), 50).unwrap();
        l.transfer(b, a, 30).unwrap();
        let mut net = BTreeMap::new();
        net.insert(a, -25i128);
        net.insert(b, 25i128);
        l.apply_epoch_net(0, &net).unwrap();
        l
    }

    #[test]
    fn conservation_holds_across_a_mixed_workload() {
        let l = sample();
        assert!(l.conservation_holds());
        assert_eq!(l.total_balance(), u128::from(l.total_deposits()));
        assert_eq!(l.outstanding(), 0);
        assert_eq!(l.minted(), 1_000);
    }

    #[test]
    fn recover_reproduces_the_exact_state() {
        let l = sample();
        let bytes = l.wal().unwrap().committed_bytes().to_vec();
        let (r, report) = Ledger::recover(&bytes);
        assert!(report.is_clean());
        assert_eq!(report.records_replayed, 7);
        assert_eq!(r.digest(), l.digest());
        assert_eq!(r.sorted_accounts(), l.sorted_accounts());
        assert_eq!(r.audit().head(), l.audit().head());
        // The recovered ledger continues the same log.
        assert_eq!(r.wal().unwrap().committed_bytes(), &bytes[..]);
    }

    #[test]
    fn recover_discards_a_torn_tail() {
        let l = sample();
        let mut bytes = l.wal().unwrap().committed_bytes().to_vec();
        let full = bytes.len();
        bytes.truncate(full - 5);
        let (r, report) = Ledger::recover(&bytes);
        assert!(!report.is_clean());
        assert_eq!(report.records_replayed, 6, "final record torn");
        assert_eq!(report.bytes_replayed + report.torn_bytes, bytes.len());
        assert!(r.conservation_holds());
    }

    #[test]
    fn recover_rejects_a_spliced_duplicate_record() {
        // Frame-intact corruption: duplicate the deposit of serial(1).
        // Checksums pass, but replay hits a double spend — recovery must
        // cut the prefix there, not panic or apply it.
        let l = sample();
        let bytes = l.wal().unwrap().committed_bytes();
        let s = scan(bytes);
        let dep_end = s.boundaries[3]; // records 0..=3 end (deposit #1)
        let dep_start = s.boundaries[2];
        let mut spliced = bytes[..dep_end].to_vec();
        spliced.extend_from_slice(&bytes[dep_start..dep_end]);
        let (r, report) = Ledger::recover(&spliced);
        assert_eq!(report.records_replayed, 4);
        assert_eq!(report.bytes_replayed, dep_end);
        assert!(report
            .defect
            .as_deref()
            .unwrap()
            .contains("failed to apply"));
        assert!(r.conservation_holds());
    }

    #[test]
    fn replica_follows_the_stream_and_promotes_identically() {
        let mut l = Ledger::new();
        l.attach_wal(Wal::new());
        let mut replica = BankReplica::new();
        let a = l.open_account(500);
        let b = l.open_account(0);
        replica.feed(l.wal().unwrap().committed_bytes());
        assert_eq!(replica.ledger().digest(), strip_wal(&l).digest());
        l.withdraw(a, 100).unwrap();
        l.deposit_serial(b, serial(9), 100).unwrap();
        let fed = replica.feed(l.wal().unwrap().committed_bytes());
        assert_eq!(fed, 2, "incremental feed applies only new records");
        assert_eq!(replica.cursor(), l.wal().unwrap().committed_len());
        let (promoted, cursor) = replica.promote();
        assert_eq!(promoted.digest(), strip_wal(&l).digest());
        assert_eq!(cursor, l.wal().unwrap().committed_len());
    }

    #[test]
    fn group_commit_keeps_records_out_of_the_durable_image() {
        let mut l = Ledger::new();
        l.attach_wal(Wal::new());
        l.set_group_commit(true);
        l.open_account(10);
        assert_eq!(l.wal().unwrap().committed_len(), 0);
        assert_eq!(l.wal().unwrap().staged_records(), 1);
        assert_eq!(l.commit_wal(), 1);
        let (r, report) = Ledger::recover(l.wal().unwrap().committed_bytes());
        assert!(report.is_clean());
        assert_eq!(r.balance(AccountId(0)), Some(10));
    }

    #[test]
    fn failed_operations_are_never_logged() {
        let mut l = Ledger::new();
        l.attach_wal(Wal::new());
        let a = l.open_account(5);
        let before = l.wal().unwrap().committed_records();
        assert!(l.withdraw(a, 100).is_err());
        assert!(l.transfer(a, AccountId(404), 1).is_err());
        assert!(l.deposit_serial(AccountId(404), serial(3), 1).is_err());
        let mut net = BTreeMap::new();
        net.insert(a, -100i128);
        assert!(l.apply_epoch_net(0, &net).is_err());
        assert_eq!(
            l.wal().unwrap().committed_records(),
            before,
            "validate → log → mutate: failures must leave no record"
        );
    }

    #[test]
    fn digest_tracks_every_state_component() {
        let base = sample().digest();
        let mut l2 = sample();
        l2.open_account(0);
        assert_ne!(l2.digest(), base, "accounts move the digest");
        let mut l3 = sample();
        let a0 = AccountId(0);
        l3.withdraw(a0, 1).unwrap();
        assert_ne!(l3.digest(), base, "outstanding moves the digest");
    }

    /// Clone without the WAL (digest ignores the WAL, but replica ledgers
    /// never carry one — keep comparisons honest).
    fn strip_wal(l: &Ledger) -> Ledger {
        let mut c = l.clone();
        c.take_wal();
        c
    }
}
