//! The central bank: accounts, blind-signed withdrawal, deposit with
//! double-spend detection.
//!
//! The bank is trusted for *payment integrity* only — it sees account
//! balances and deposited token serials, but by construction (blind
//! signatures) it cannot link a deposit back to a withdrawal, so it never
//! learns which initiator paid which forwarder.

use std::collections::{BTreeMap, HashMap, HashSet};

use idpa_crypto::batch::{batch_verify, BatchOutcome};
use idpa_crypto::bigint::BigUint;
use idpa_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use idpa_desim::rng::Xoshiro256StarStar;

use crate::audit::{AuditEvent, AuditLog};
use crate::token::{
    denominations, token_digest, PendingWithdrawal, Token, TokenId, Wallet, WithdrawError,
};

/// Identifier of a bank account (peers and the escrow service hold these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccountId(pub u64);

/// Errors during deposit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepositError {
    /// The token's bank signature is invalid (forgery).
    InvalidSignature,
    /// The token's serial has already been deposited (double spend).
    DoubleSpend,
    /// The target account does not exist.
    UnknownAccount,
}

/// Error applying an epoch's netted balance deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochNetError {
    /// A netted account does not exist.
    UnknownAccount(AccountId),
    /// A net debit exceeds the account's balance.
    InsufficientFunds(AccountId),
}

/// The central bank.
///
/// `Clone` snapshots the entire bank — keys (the cached Montgomery context
/// is shared), ledger, serial set and audit chain — which is what lets
/// benches and tests replay the same settlement workload from a pristine
/// state.
#[derive(Clone)]
pub struct Bank {
    keys: RsaKeyPair,
    accounts: HashMap<AccountId, u64>,
    spent: HashSet<TokenId>,
    next_account: u64,
    /// Total value of tokens signed but not yet deposited — outstanding
    /// bearer liability (used by the conservation-of-value invariant).
    outstanding: u64,
    /// Tamper-evident log of every balance-affecting operation.
    audit: AuditLog,
}

impl Bank {
    /// Creates a bank with fresh RSA keys of `modulus_bits`.
    #[must_use]
    pub fn new(modulus_bits: usize, rng: &mut Xoshiro256StarStar) -> Self {
        Bank {
            keys: RsaKeyPair::generate(modulus_bits, rng),
            accounts: HashMap::new(),
            spent: HashSet::new(),
            next_account: 0,
            outstanding: 0,
            audit: AuditLog::new(),
        }
    }

    /// The bank's public key (token verification).
    #[must_use]
    pub fn public_key(&self) -> &RsaPublicKey {
        self.keys.public()
    }

    /// Opens an account with an initial balance, returning its id.
    pub fn open_account(&mut self, initial_balance: u64) -> AccountId {
        let id = AccountId(self.next_account);
        self.next_account += 1;
        self.accounts.insert(id, initial_balance);
        self.audit.append(AuditEvent::Open {
            account: id,
            balance: initial_balance,
        });
        id
    }

    /// Balance of an account, or `None` if unknown.
    #[must_use]
    pub fn balance(&self, account: AccountId) -> Option<u64> {
        self.accounts.get(&account).copied()
    }

    /// Executes the bank side of a withdrawal: debits the account by the
    /// declared value and blind-signs the representative. The serial stays
    /// hidden inside the blinding.
    pub fn withdraw_blinded(
        &mut self,
        account: AccountId,
        declared_value: u64,
        blinded: &BigUint,
    ) -> Result<BigUint, WithdrawError> {
        let balance = self
            .accounts
            .get_mut(&account)
            .ok_or(WithdrawError::UnknownAccount)?;
        if *balance < declared_value {
            return Err(WithdrawError::InsufficientFunds);
        }
        *balance -= declared_value;
        self.outstanding += declared_value;
        self.audit.append(AuditEvent::Withdraw {
            account,
            value: declared_value,
        });
        Ok(self.keys.raw_sign(blinded))
    }

    /// Client-plus-bank convenience: withdraws `amount` as binary
    /// denominations into `wallet`.
    pub fn withdraw_into_wallet(
        &mut self,
        account: AccountId,
        amount: u64,
        wallet: &mut Wallet,
        rng: &mut Xoshiro256StarStar,
    ) -> Result<(), WithdrawError> {
        // Check funds up-front so a partial failure cannot strand value.
        let balance = self
            .accounts
            .get(&account)
            .ok_or(WithdrawError::UnknownAccount)?;
        if *balance < amount {
            return Err(WithdrawError::InsufficientFunds);
        }
        for value in denominations(amount) {
            let pending = PendingWithdrawal::prepare(value, self.public_key(), rng);
            let blind_sig = self
                .withdraw_blinded(account, value, pending.blinded())
                .expect("funds were checked");
            wallet.put(pending.complete(&self.keys.public().clone(), &blind_sig));
        }
        Ok(())
    }

    /// Deposits a bearer token into an account: verifies the signature,
    /// rejects double spends, credits the face value.
    pub fn deposit(&mut self, account: AccountId, token: &Token) -> Result<(), DepositError> {
        if !self.accounts.contains_key(&account) {
            return Err(DepositError::UnknownAccount);
        }
        if !token.verify(self.keys.public()) {
            return Err(DepositError::InvalidSignature);
        }
        if self.spent.contains(&token.id) {
            return Err(DepositError::DoubleSpend);
        }
        self.spent.insert(token.id);
        self.outstanding = self.outstanding.saturating_sub(token.value);
        *self.accounts.get_mut(&account).expect("checked") += token.value;
        let mut serial_prefix = [0u8; 8];
        serial_prefix.copy_from_slice(&token.id.0[..8]);
        self.audit.append(AuditEvent::Deposit {
            account,
            value: token.value,
            serial_prefix,
        });
        Ok(())
    }

    /// Deposits a whole epoch's tokens in one pass, batch-verifying the
    /// blind signatures ([`idpa_crypto::batch_verify`]) and deferring the
    /// double-spend check to a single scan over the epoch's serial set.
    ///
    /// `coeff(i)` supplies the batch-verification coefficient for the item
    /// at submission position `i` (position-keyed so verdicts replay).
    ///
    /// Exactly equivalent to calling [`Bank::deposit`] once per item in
    /// submission order: same per-item results, same final balances,
    /// serials, outstanding liability, and audit entries. The error
    /// precedence of `deposit` is preserved — unknown account shadows a
    /// bad signature, a bad signature never burns the serial, and the
    /// first of two duplicate serials in the batch wins.
    pub fn deposit_batch(
        &mut self,
        deposits: &[(AccountId, Token)],
        mut coeff: impl FnMut(usize) -> u64,
    ) -> Vec<Result<(), DepositError>> {
        let mut results: Vec<Option<Result<(), DepositError>>> = vec![None; deposits.len()];

        // 1. Account existence, checked first exactly as in `deposit`.
        let to_verify: Vec<usize> = deposits
            .iter()
            .enumerate()
            .filter_map(|(i, (account, _))| {
                if self.accounts.contains_key(account) {
                    Some(i)
                } else {
                    results[i] = Some(Err(DepositError::UnknownAccount));
                    None
                }
            })
            .collect();

        // 2. One combined signature check; when it fails, the individual
        //    fallback inside `batch_verify` names the exact offenders.
        let items: Vec<(BigUint, BigUint)> = to_verify
            .iter()
            .map(|&i| {
                let t = &deposits[i].1;
                (
                    t.signature.clone(),
                    token_digest(&t.id, t.value, self.keys.public()),
                )
            })
            .collect();
        if let BatchOutcome::Rejected(bad) =
            batch_verify(self.keys.public(), &items, |k| coeff(to_verify[k]))
        {
            for k in bad {
                results[to_verify[k]] = Some(Err(DepositError::InvalidSignature));
            }
        }

        // 3. Deferred double-spend scan in submission order — the growing
        //    `spent` set rejects intra-batch duplicates — then apply.
        for (i, (account, token)) in deposits.iter().enumerate() {
            if results[i].is_some() {
                continue;
            }
            results[i] = Some(if self.spent.contains(&token.id) {
                Err(DepositError::DoubleSpend)
            } else {
                self.spent.insert(token.id);
                self.outstanding = self.outstanding.saturating_sub(token.value);
                *self.accounts.get_mut(account).expect("existence checked") += token.value;
                let mut serial_prefix = [0u8; 8];
                serial_prefix.copy_from_slice(&token.id.0[..8]);
                self.audit.append(AuditEvent::Deposit {
                    account: *account,
                    value: token.value,
                    serial_prefix,
                });
                Ok(())
            });
        }
        results
            .into_iter()
            .map(|r| r.expect("every item resolved"))
            .collect()
    }

    /// Applies one net balance delta per account for a settled epoch,
    /// atomically: every delta applies (one [`AuditEvent::EpochNet`] entry
    /// per nonzero delta, ascending account order) or none does. For
    /// transfer netting the deltas sum to zero, so `total_deposits` is
    /// unchanged — [`crate::EpochLedger`] constructs exactly such nets.
    pub fn apply_epoch_net(
        &mut self,
        epoch: u64,
        net: &BTreeMap<AccountId, i64>,
    ) -> Result<(), EpochNetError> {
        for (&account, &delta) in net {
            let Some(&balance) = self.accounts.get(&account) else {
                return Err(EpochNetError::UnknownAccount(account));
            };
            if delta < 0 && balance < delta.unsigned_abs() {
                return Err(EpochNetError::InsufficientFunds(account));
            }
        }
        for (&account, &delta) in net {
            if delta == 0 {
                continue;
            }
            let balance = self.accounts.get_mut(&account).expect("validated above");
            if delta < 0 {
                *balance -= delta.unsigned_abs();
            } else {
                *balance += delta.unsigned_abs();
            }
            self.audit.append(AuditEvent::EpochNet {
                epoch,
                account,
                delta,
            });
        }
        Ok(())
    }

    /// Account-to-account ledger transfer (used by escrow payouts, which
    /// need no anonymity — forwarder payees are known to the bank by
    /// design; only the initiator side is hidden).
    pub fn transfer(
        &mut self,
        from: AccountId,
        to: AccountId,
        amount: u64,
    ) -> Result<(), WithdrawError> {
        if !self.accounts.contains_key(&to) {
            return Err(WithdrawError::UnknownAccount);
        }
        let src = self
            .accounts
            .get_mut(&from)
            .ok_or(WithdrawError::UnknownAccount)?;
        if *src < amount {
            return Err(WithdrawError::InsufficientFunds);
        }
        *src -= amount;
        *self.accounts.get_mut(&to).expect("checked above") += amount;
        self.audit.append(AuditEvent::Transfer { from, to, amount });
        Ok(())
    }

    /// Sum of all account balances.
    #[must_use]
    pub fn total_deposits(&self) -> u64 {
        self.accounts.values().sum()
    }

    /// Outstanding bearer-token liability (withdrawn, not yet deposited).
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.outstanding
    }

    /// Number of serials seen (telemetry / tests).
    #[must_use]
    pub fn spent_serials(&self) -> usize {
        self.spent.len()
    }

    /// The tamper-evident audit log.
    #[must_use]
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;
    use crate::token::PendingWithdrawal;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn bank(seed: u64) -> Bank {
        Bank::new(256, &mut rng(seed))
    }

    #[test]
    fn open_account_and_balance() {
        let mut b = bank(1);
        let acct = b.open_account(100);
        assert_eq!(b.balance(acct), Some(100));
        assert_eq!(b.balance(AccountId(999)), None);
    }

    #[test]
    fn withdraw_deposit_round_trip_moves_value() {
        let mut b = bank(2);
        let mut r = rng(3);
        let alice = b.open_account(100);
        let bob = b.open_account(0);

        let mut wallet = Wallet::new();
        b.withdraw_into_wallet(alice, 37, &mut wallet, &mut r)
            .unwrap();
        assert_eq!(b.balance(alice), Some(63));
        assert_eq!(wallet.balance(), 37);
        assert_eq!(b.outstanding(), 37);

        for token in wallet.take_exact(37).unwrap() {
            b.deposit(bob, &token).unwrap();
        }
        assert_eq!(b.balance(bob), Some(37));
        assert_eq!(b.outstanding(), 0);
    }

    #[test]
    fn conservation_of_value() {
        let mut b = bank(4);
        let mut r = rng(5);
        let alice = b.open_account(1000);
        let bob = b.open_account(500);
        let total_before = b.total_deposits();

        let mut wallet = Wallet::new();
        b.withdraw_into_wallet(alice, 123, &mut wallet, &mut r)
            .unwrap();
        assert_eq!(b.total_deposits() + b.outstanding(), total_before);

        for token in wallet.take_exact(123).unwrap() {
            b.deposit(bob, &token).unwrap();
        }
        assert_eq!(b.total_deposits(), total_before);
    }

    #[test]
    fn insufficient_funds_rejected_atomically() {
        let mut b = bank(6);
        let mut r = rng(7);
        let alice = b.open_account(10);
        let mut wallet = Wallet::new();
        let err = b.withdraw_into_wallet(alice, 11, &mut wallet, &mut r);
        assert_eq!(err, Err(WithdrawError::InsufficientFunds));
        assert_eq!(b.balance(alice), Some(10), "no partial debit");
        assert!(wallet.is_empty());
    }

    #[test]
    fn double_spend_detected() {
        let mut b = bank(8);
        let mut r = rng(9);
        let alice = b.open_account(100);
        let bob = b.open_account(0);
        let carol = b.open_account(0);

        let mut wallet = Wallet::new();
        b.withdraw_into_wallet(alice, 1, &mut wallet, &mut r)
            .unwrap();
        let token = wallet.take_exact(1).unwrap().pop().unwrap();

        b.deposit(bob, &token).unwrap();
        assert_eq!(b.deposit(carol, &token), Err(DepositError::DoubleSpend));
        assert_eq!(b.balance(carol), Some(0));
    }

    #[test]
    fn forged_token_rejected() {
        let mut b = bank(10);
        let mut r = rng(11);
        let bob = b.open_account(0);
        // Forge: self-signed garbage.
        let forged = Token {
            id: TokenId::random(&mut r),
            value: 1_000_000,
            signature: BigUint::from_u64(12345),
        };
        assert_eq!(b.deposit(bob, &forged), Err(DepositError::InvalidSignature));
    }

    #[test]
    fn inflated_value_rejected() {
        let mut b = bank(12);
        let mut r = rng(13);
        let alice = b.open_account(100);
        let bob = b.open_account(0);
        let mut wallet = Wallet::new();
        b.withdraw_into_wallet(alice, 2, &mut wallet, &mut r)
            .unwrap();
        let mut token = wallet.take_exact(2).unwrap().pop().unwrap();
        token.value = 200; // claim a bigger denomination
        assert_eq!(b.deposit(bob, &token), Err(DepositError::InvalidSignature));
    }

    #[test]
    fn deposit_to_unknown_account_rejected() {
        let mut b = bank(14);
        let mut r = rng(15);
        let alice = b.open_account(100);
        let mut wallet = Wallet::new();
        b.withdraw_into_wallet(alice, 1, &mut wallet, &mut r)
            .unwrap();
        let token = wallet.take_exact(1).unwrap().pop().unwrap();
        assert_eq!(
            b.deposit(AccountId(404), &token),
            Err(DepositError::UnknownAccount)
        );
        // The serial must NOT be burned by the failed attempt.
        let bob = b.open_account(0);
        assert_eq!(b.deposit(bob, &token), Ok(()));
    }

    #[test]
    fn unlinkability_bank_never_sees_serial_at_withdrawal() {
        // Mechanical check: the blinded representative the bank signs is
        // unequal to the digest it later verifies at deposit.
        let mut b = bank(16);
        let mut r = rng(17);
        let alice = b.open_account(10);
        let pending = PendingWithdrawal::prepare(1, b.public_key(), &mut r);
        let seen_by_bank = pending.blinded().clone();
        let blind_sig = b.withdraw_blinded(alice, 1, &seen_by_bank).unwrap();
        let token = pending.complete(&b.public_key().clone(), &blind_sig);
        let digest = crate::token::token_digest(&token.id, token.value, b.public_key());
        assert_ne!(seen_by_bank, digest);
        assert!(token.verify(b.public_key()));
    }

    #[test]
    fn account_ids_are_sequential_and_distinct() {
        let mut b = bank(18);
        let a = b.open_account(0);
        let c = b.open_account(0);
        assert_ne!(a, c);
    }

    #[test]
    fn audit_log_chains_and_replays_ledger() {
        let mut b = bank(19);
        let mut r = rng(20);
        let alice = b.open_account(100);
        let bob = b.open_account(0);
        let mut wallet = Wallet::new();
        b.withdraw_into_wallet(alice, 5, &mut wallet, &mut r)
            .unwrap();
        for t in wallet.take_exact(5).unwrap() {
            b.deposit(bob, &t).unwrap();
        }
        b.transfer(bob, alice, 2).unwrap();

        // The chain verifies, and replaying it reconstructs every balance.
        assert_eq!(b.audit().verify(), Ok(()));
        assert_eq!(
            b.audit().replay_balance(alice),
            i128::from(b.balance(alice).unwrap())
        );
        assert_eq!(
            b.audit().replay_balance(bob),
            i128::from(b.balance(bob).unwrap())
        );
    }

    #[test]
    fn failed_operations_leave_no_audit_entries() {
        let mut b = bank(21);
        let mut r = rng(22);
        let alice = b.open_account(1);
        let before = b.audit().len();
        let mut w = Wallet::new();
        let _ = b.withdraw_into_wallet(alice, 100, &mut w, &mut r); // fails
        let _ = b.transfer(alice, AccountId(404), 1); // fails
        assert_eq!(b.audit().len(), before, "failures must not be logged");
    }
}
