//! The central bank: accounts, blind-signed withdrawal, deposit with
//! double-spend detection.
//!
//! The bank is trusted for *payment integrity* only — it sees account
//! balances and deposited token serials, but by construction (blind
//! signatures) it cannot link a deposit back to a withdrawal, so it never
//! learns which initiator paid which forwarder.
//!
//! All state lives in the crypto-free [`Ledger`]; the bank adds RSA blind
//! signing and verification on top. That split is what makes the ledger
//! durable: attach a WAL ([`Bank::enable_wal`]) and every state mutation
//! is logged before it applies, and [`Bank::recover`] rebuilds the exact
//! pre-crash state from the intact log prefix (keys are long-lived
//! material restored separately — the WAL never holds private keys).

use std::collections::BTreeMap;

use idpa_crypto::bigint::BigUint;
use idpa_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use idpa_desim::rng::Xoshiro256StarStar;

use crate::audit::AuditLog;
use crate::ledger::{Ledger, RecoveryReport};
use crate::token::{denominations, PendingWithdrawal, Token, Wallet, WithdrawError};
use crate::wal::Wal;

/// Identifier of a bank account (peers and the escrow service hold these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccountId(pub u64);

/// Errors during deposit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepositError {
    /// The token's bank signature is invalid (forgery).
    InvalidSignature,
    /// The token's serial has already been deposited (double spend).
    DoubleSpend,
    /// The target account does not exist.
    UnknownAccount,
}

/// Error applying an epoch's netted balance deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochNetError {
    /// A netted account does not exist.
    UnknownAccount(AccountId),
    /// A net debit exceeds the account's balance.
    InsufficientFunds(AccountId),
    /// A net credit would push the account's balance past `u64::MAX`.
    BalanceOverflow(AccountId),
}

/// The central bank.
///
/// `Clone` snapshots the entire bank — keys (the cached Montgomery context
/// is shared), ledger, serial set and audit chain — which is what lets
/// benches and tests replay the same settlement workload from a pristine
/// state.
#[derive(Clone)]
pub struct Bank {
    keys: RsaKeyPair,
    ledger: Ledger,
}

impl Bank {
    /// Creates a bank with fresh RSA keys of `modulus_bits`.
    #[must_use]
    pub fn new(modulus_bits: usize, rng: &mut Xoshiro256StarStar) -> Self {
        Bank {
            keys: RsaKeyPair::generate(modulus_bits, rng),
            ledger: Ledger::new(),
        }
    }

    /// Rebuilds a bank from its long-lived keys and a write-ahead log
    /// image: replays the intact record prefix, discards any torn tail
    /// (details in the report), and leaves the WAL attached so operation
    /// resumes where the durable history ends. Never fails — corruption
    /// only shortens the accepted prefix.
    #[must_use]
    pub fn recover(keys: RsaKeyPair, wal_bytes: &[u8]) -> (Self, RecoveryReport) {
        let (ledger, report) = Ledger::recover(wal_bytes);
        (Bank { keys, ledger }, report)
    }

    /// Attaches a fresh write-ahead log: from here on every state
    /// mutation appends a checksummed record before applying.
    pub fn enable_wal(&mut self) {
        self.ledger.attach_wal(Wal::new());
    }

    /// The bank's keys (to pair with a WAL image in [`Bank::recover`]).
    #[must_use]
    pub fn keys(&self) -> &RsaKeyPair {
        &self.keys
    }

    /// The underlying crypto-free ledger (invariant monitor input).
    #[must_use]
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Mutable ledger access (WAL mode switches, corruption-injection
    /// tests).
    pub fn ledger_mut(&mut self) -> &mut Ledger {
        &mut self.ledger
    }

    /// The bank's public key (token verification).
    #[must_use]
    pub fn public_key(&self) -> &RsaPublicKey {
        self.keys.public()
    }

    /// Opens an account with an initial balance, returning its id.
    pub fn open_account(&mut self, initial_balance: u64) -> AccountId {
        self.ledger.open_account(initial_balance)
    }

    /// Balance of an account, or `None` if unknown.
    #[must_use]
    pub fn balance(&self, account: AccountId) -> Option<u64> {
        self.ledger.balance(account)
    }

    /// Executes the bank side of a withdrawal: debits the account by the
    /// declared value and blind-signs the representative. The serial stays
    /// hidden inside the blinding.
    pub fn withdraw_blinded(
        &mut self,
        account: AccountId,
        declared_value: u64,
        blinded: &BigUint,
    ) -> Result<BigUint, WithdrawError> {
        self.ledger.withdraw(account, declared_value)?;
        Ok(self.keys.raw_sign(blinded))
    }

    /// Client-plus-bank convenience: withdraws `amount` as binary
    /// denominations into `wallet`.
    pub fn withdraw_into_wallet(
        &mut self,
        account: AccountId,
        amount: u64,
        wallet: &mut Wallet,
        rng: &mut Xoshiro256StarStar,
    ) -> Result<(), WithdrawError> {
        // Check funds up-front so a partial failure cannot strand value.
        let balance = self
            .ledger
            .balance(account)
            .ok_or(WithdrawError::UnknownAccount)?;
        if balance < amount {
            return Err(WithdrawError::InsufficientFunds);
        }
        for value in denominations(amount) {
            let pending = PendingWithdrawal::prepare(value, self.public_key(), rng);
            let blind_sig = self
                .withdraw_blinded(account, value, pending.blinded())
                .expect("funds were checked");
            wallet.put(pending.complete(&self.keys.public().clone(), &blind_sig));
        }
        Ok(())
    }

    /// Deposits a bearer token into an account: verifies the signature,
    /// rejects double spends, credits the face value.
    pub fn deposit(&mut self, account: AccountId, token: &Token) -> Result<(), DepositError> {
        if !self.ledger.has_account(account) {
            return Err(DepositError::UnknownAccount);
        }
        if !token.verify(self.keys.public()) {
            return Err(DepositError::InvalidSignature);
        }
        self.ledger.deposit_serial(account, token.id, token.value)
    }

    /// Deposits a whole epoch's tokens in one call: each token is
    /// verified **individually and strictly** through the cached per-key
    /// Montgomery context, in submission order.
    ///
    /// Exactly equivalent to calling [`Bank::deposit`] once per item —
    /// same per-item results, same final balances, serials, outstanding
    /// liability, and audit entries — *by construction*, not up to a
    /// probabilistic bound. An earlier revision checked signatures with
    /// the small-exponents combined equation; over `(Z/n)*` that test is
    /// unsound (Boyd–Pavlovski: negating an even number of valid
    /// signatures passes it with probability 1 while every negated token
    /// fails [`Token::verify`]), and at `e = 65537` it is also slower
    /// than cached individual verification (see `idpa_crypto::batch` and
    /// the `kernels` bench). The epoch-settlement win is transfer
    /// netting ([`Bank::apply_epoch_net`]), not the signature check.
    pub fn deposit_batch(
        &mut self,
        deposits: &[(AccountId, Token)],
    ) -> Vec<Result<(), DepositError>> {
        deposits
            .iter()
            .map(|(account, token)| self.deposit(*account, token))
            .collect()
    }

    /// Applies one net balance delta per account for a settled epoch,
    /// atomically: every delta applies (one [`crate::AuditEvent::EpochNet`]
    /// entry per nonzero delta, ascending account order) or none does — a
    /// failed validation (unknown account, uncovered debit, or a credit
    /// overflowing `u64`) leaves every balance untouched. Deltas are
    /// `i128`, so any sum of `u64` transfer amounts is representable
    /// without wrapping. For transfer netting the deltas sum to zero, so
    /// `total_deposits` is unchanged — [`crate::EpochLedger`] constructs
    /// exactly such nets.
    pub fn apply_epoch_net(
        &mut self,
        epoch: u64,
        net: &BTreeMap<AccountId, i128>,
    ) -> Result<(), EpochNetError> {
        self.ledger.apply_epoch_net(epoch, net)
    }

    /// Account-to-account ledger transfer (used by escrow payouts, which
    /// need no anonymity — forwarder payees are known to the bank by
    /// design; only the initiator side is hidden).
    pub fn transfer(
        &mut self,
        from: AccountId,
        to: AccountId,
        amount: u64,
    ) -> Result<(), WithdrawError> {
        self.ledger.transfer(from, to, amount)
    }

    /// Sum of all account balances.
    #[must_use]
    pub fn total_deposits(&self) -> u64 {
        self.ledger.total_deposits()
    }

    /// Outstanding bearer-token liability (withdrawn, not yet deposited).
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.ledger.outstanding()
    }

    /// Number of serials seen (telemetry / tests).
    #[must_use]
    pub fn spent_serials(&self) -> usize {
        self.ledger.spent_serials()
    }

    /// The tamper-evident audit log.
    #[must_use]
    pub fn audit(&self) -> &AuditLog {
        self.ledger.audit()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;
    use crate::token::{PendingWithdrawal, TokenId};

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn bank(seed: u64) -> Bank {
        Bank::new(256, &mut rng(seed))
    }

    #[test]
    fn open_account_and_balance() {
        let mut b = bank(1);
        let acct = b.open_account(100);
        assert_eq!(b.balance(acct), Some(100));
        assert_eq!(b.balance(AccountId(999)), None);
    }

    #[test]
    fn withdraw_deposit_round_trip_moves_value() {
        let mut b = bank(2);
        let mut r = rng(3);
        let alice = b.open_account(100);
        let bob = b.open_account(0);

        let mut wallet = Wallet::new();
        b.withdraw_into_wallet(alice, 37, &mut wallet, &mut r)
            .unwrap();
        assert_eq!(b.balance(alice), Some(63));
        assert_eq!(wallet.balance(), 37);
        assert_eq!(b.outstanding(), 37);

        for token in wallet.take_exact(37).unwrap() {
            b.deposit(bob, &token).unwrap();
        }
        assert_eq!(b.balance(bob), Some(37));
        assert_eq!(b.outstanding(), 0);
    }

    #[test]
    fn conservation_of_value() {
        let mut b = bank(4);
        let mut r = rng(5);
        let alice = b.open_account(1000);
        let bob = b.open_account(500);
        let total_before = b.total_deposits();

        let mut wallet = Wallet::new();
        b.withdraw_into_wallet(alice, 123, &mut wallet, &mut r)
            .unwrap();
        assert_eq!(b.total_deposits() + b.outstanding(), total_before);

        for token in wallet.take_exact(123).unwrap() {
            b.deposit(bob, &token).unwrap();
        }
        assert_eq!(b.total_deposits(), total_before);
    }

    #[test]
    fn insufficient_funds_rejected_atomically() {
        let mut b = bank(6);
        let mut r = rng(7);
        let alice = b.open_account(10);
        let mut wallet = Wallet::new();
        let err = b.withdraw_into_wallet(alice, 11, &mut wallet, &mut r);
        assert_eq!(err, Err(WithdrawError::InsufficientFunds));
        assert_eq!(b.balance(alice), Some(10), "no partial debit");
        assert!(wallet.is_empty());
    }

    #[test]
    fn double_spend_detected() {
        let mut b = bank(8);
        let mut r = rng(9);
        let alice = b.open_account(100);
        let bob = b.open_account(0);
        let carol = b.open_account(0);

        let mut wallet = Wallet::new();
        b.withdraw_into_wallet(alice, 1, &mut wallet, &mut r)
            .unwrap();
        let token = wallet.take_exact(1).unwrap().pop().unwrap();

        b.deposit(bob, &token).unwrap();
        assert_eq!(b.deposit(carol, &token), Err(DepositError::DoubleSpend));
        assert_eq!(b.balance(carol), Some(0));
    }

    #[test]
    fn forged_token_rejected() {
        let mut b = bank(10);
        let mut r = rng(11);
        let bob = b.open_account(0);
        // Forge: self-signed garbage.
        let forged = Token {
            id: TokenId::random(&mut r),
            value: 1_000_000,
            signature: BigUint::from_u64(12345),
        };
        assert_eq!(b.deposit(bob, &forged), Err(DepositError::InvalidSignature));
    }

    #[test]
    fn inflated_value_rejected() {
        let mut b = bank(12);
        let mut r = rng(13);
        let alice = b.open_account(100);
        let bob = b.open_account(0);
        let mut wallet = Wallet::new();
        b.withdraw_into_wallet(alice, 2, &mut wallet, &mut r)
            .unwrap();
        let mut token = wallet.take_exact(2).unwrap().pop().unwrap();
        token.value = 200; // claim a bigger denomination
        assert_eq!(b.deposit(bob, &token), Err(DepositError::InvalidSignature));
    }

    /// Regression for the Boyd–Pavlovski sign attack on batched deposits:
    /// a negated signature (`sig → n - sig`) fails strict verification,
    /// and `deposit_batch` must reject it exactly like `deposit` — even
    /// when an even number of negated tokens share one batch (the case
    /// the old combined-equation check accepted with probability 1).
    #[test]
    fn negated_signatures_rejected_by_batch_exactly_like_deposit() {
        let (mut seq, mut batch) = (bank(30), bank(30));
        let alice = seq.open_account(100);
        batch.open_account(100);
        let bob = seq.open_account(0);
        batch.open_account(0);

        // Four one-credit withdrawals, so the batch holds four tokens.
        let mint = |bank: &mut Bank| {
            let mut r = rng(32);
            let mut wallet = Wallet::new();
            let mut tokens = Vec::with_capacity(4);
            for _ in 0..4 {
                bank.withdraw_into_wallet(alice, 1, &mut wallet, &mut r)
                    .unwrap();
                tokens.extend(wallet.take_exact(1).unwrap());
            }
            tokens
        };
        let mut tokens = mint(&mut seq);
        assert_eq!(tokens, mint(&mut batch), "twin mints agree");
        assert_eq!(tokens.len(), 4);

        // Negate an even number of signatures (indices 1 and 3).
        let n = seq.public_key().modulus().clone();
        for i in [1, 3] {
            tokens[i].signature = n.sub(&tokens[i].signature);
        }
        let entries: Vec<(AccountId, Token)> = tokens.iter().map(|t| (bob, t.clone())).collect();

        let sequential: Vec<_> = entries.iter().map(|(a, t)| seq.deposit(*a, t)).collect();
        let batched = batch.deposit_batch(&entries);
        assert_eq!(sequential, batched);
        assert_eq!(
            batched,
            vec![
                Ok(()),
                Err(DepositError::InvalidSignature),
                Ok(()),
                Err(DepositError::InvalidSignature),
            ]
        );
        assert_eq!(seq.balance(bob), batch.balance(bob));
        assert_eq!(seq.audit().head(), batch.audit().head());
    }

    #[test]
    fn epoch_net_rejects_overflowing_credit_atomically() {
        let mut b = bank(33);
        let rich = b.open_account(u64::MAX - 5);
        let poor = b.open_account(100);
        let mut net: BTreeMap<AccountId, i128> = BTreeMap::new();
        net.insert(rich, 10);
        net.insert(poor, -10);
        assert_eq!(
            b.apply_epoch_net(0, &net),
            Err(EpochNetError::BalanceOverflow(rich))
        );
        assert_eq!(b.balance(rich), Some(u64::MAX - 5), "nothing applied");
        assert_eq!(b.balance(poor), Some(100), "nothing applied");
    }

    #[test]
    fn epoch_net_handles_deltas_beyond_i64() {
        // Nets larger than i64::MAX in magnitude must validate, not wrap:
        // a debit of 2·(i64::MAX) against a small balance is an
        // InsufficientFunds error, never a silent wraparound credit.
        let mut b = bank(34);
        let a = b.open_account(7);
        let c = b.open_account(0);
        let huge = 2 * i128::from(i64::MAX);
        let mut net: BTreeMap<AccountId, i128> = BTreeMap::new();
        net.insert(a, -huge);
        net.insert(c, huge);
        assert_eq!(
            b.apply_epoch_net(0, &net),
            Err(EpochNetError::InsufficientFunds(a))
        );
        assert_eq!(b.balance(a), Some(7));
        assert_eq!(b.balance(c), Some(0));
    }

    #[test]
    fn deposit_to_unknown_account_rejected() {
        let mut b = bank(14);
        let mut r = rng(15);
        let alice = b.open_account(100);
        let mut wallet = Wallet::new();
        b.withdraw_into_wallet(alice, 1, &mut wallet, &mut r)
            .unwrap();
        let token = wallet.take_exact(1).unwrap().pop().unwrap();
        assert_eq!(
            b.deposit(AccountId(404), &token),
            Err(DepositError::UnknownAccount)
        );
        // The serial must NOT be burned by the failed attempt.
        let bob = b.open_account(0);
        assert_eq!(b.deposit(bob, &token), Ok(()));
    }

    #[test]
    fn unlinkability_bank_never_sees_serial_at_withdrawal() {
        // Mechanical check: the blinded representative the bank signs is
        // unequal to the digest it later verifies at deposit.
        let mut b = bank(16);
        let mut r = rng(17);
        let alice = b.open_account(10);
        let pending = PendingWithdrawal::prepare(1, b.public_key(), &mut r);
        let seen_by_bank = pending.blinded().clone();
        let blind_sig = b.withdraw_blinded(alice, 1, &seen_by_bank).unwrap();
        let token = pending.complete(&b.public_key().clone(), &blind_sig);
        let digest = crate::token::token_digest(&token.id, token.value, b.public_key());
        assert_ne!(seen_by_bank, digest);
        assert!(token.verify(b.public_key()));
    }

    #[test]
    fn account_ids_are_sequential_and_distinct() {
        let mut b = bank(18);
        let a = b.open_account(0);
        let c = b.open_account(0);
        assert_ne!(a, c);
    }

    #[test]
    fn audit_log_chains_and_replays_ledger() {
        let mut b = bank(19);
        let mut r = rng(20);
        let alice = b.open_account(100);
        let bob = b.open_account(0);
        let mut wallet = Wallet::new();
        b.withdraw_into_wallet(alice, 5, &mut wallet, &mut r)
            .unwrap();
        for t in wallet.take_exact(5).unwrap() {
            b.deposit(bob, &t).unwrap();
        }
        b.transfer(bob, alice, 2).unwrap();

        // The chain verifies, and replaying it reconstructs every balance.
        assert_eq!(b.audit().verify(), Ok(()));
        assert_eq!(
            b.audit().replay_balance(alice),
            i128::from(b.balance(alice).unwrap())
        );
        assert_eq!(
            b.audit().replay_balance(bob),
            i128::from(b.balance(bob).unwrap())
        );
    }

    #[test]
    fn failed_operations_leave_no_audit_entries() {
        let mut b = bank(21);
        let mut r = rng(22);
        let alice = b.open_account(1);
        let before = b.audit().len();
        let mut w = Wallet::new();
        let _ = b.withdraw_into_wallet(alice, 100, &mut w, &mut r); // fails
        let _ = b.transfer(alice, AccountId(404), 1); // fails
        assert_eq!(b.audit().len(), before, "failures must not be logged");
    }

    #[test]
    fn wal_enabled_bank_recovers_to_identical_state() {
        let mut b = bank(23);
        b.enable_wal();
        let mut r = rng(24);
        let alice = b.open_account(100);
        let bob = b.open_account(0);
        let mut wallet = Wallet::new();
        b.withdraw_into_wallet(alice, 9, &mut wallet, &mut r)
            .unwrap();
        for t in wallet.take_exact(9).unwrap() {
            b.deposit(bob, &t).unwrap();
        }
        b.transfer(bob, alice, 4).unwrap();

        let wal = b.ledger().wal().unwrap().committed_bytes().to_vec();
        let (recovered, report) = Bank::recover(b.keys().clone(), &wal);
        assert!(report.is_clean());
        assert_eq!(recovered.ledger().digest(), {
            let mut stripped = b.ledger().clone();
            stripped.take_wal();
            stripped.digest()
        });
        assert_eq!(recovered.balance(alice), b.balance(alice));
        assert_eq!(recovered.balance(bob), b.balance(bob));
        assert_eq!(recovered.audit().head(), b.audit().head());
        assert!(recovered.audit().verify_chain());
        // The recovered bank keeps its keys: round-trip a fresh token.
        let mut b2 = recovered;
        let mut w2 = Wallet::new();
        let mut r2 = rng(25);
        b2.withdraw_into_wallet(alice, 1, &mut w2, &mut r2).unwrap();
        let t = w2.take_exact(1).unwrap().pop().unwrap();
        assert!(t.verify(b2.public_key()));
    }

    #[test]
    fn wal_off_bank_has_no_log_overhead() {
        let b = bank(26);
        assert!(b.ledger().wal().is_none(), "durability is opt-in");
    }
}
