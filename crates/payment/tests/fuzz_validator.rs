//! Deterministic structured fuzzing of the settlement-critical surfaces:
//! [`PathValidator`] under adversarial receipt interleavings and
//! byte-mutated manifests, [`Bank::deposit_batch`] under forged and
//! double-spent tokens, and [`EpochLedger`] under arbitrary
//! queue/accrue/settle interleavings.
//!
//! No external fuzzer: each case is generated from a seed by an in-tree
//! mutation grammar, so every failure is a one-u64 reproducer. Seeds of
//! past failures (and a spread of structural corner cases) are committed
//! under `tests/fuzz_corpus/` at the repo root and replayed first on every
//! run — the regression corpus grows, never shrinks.
//!
//! Tiers (all bit-deterministic):
//!
//! * default: a bounded pseudo-random sweep on top of the corpus;
//! * `IDPA_FUZZ_SMOKE=1` — the corpus plus a short sweep, for the
//!   `scripts/verify.sh` stage (≤ 30 s);
//! * `IDPA_FUZZ_LONG=1` — the nightly CI tier, two orders of magnitude
//!   more cases.

use idpa_desim::rng::Xoshiro256StarStar;
use idpa_payment::{
    AccountId, Bank, ConnectionEvidence, EpochLedger, PathManifest, PathValidator, Receipt, Token,
    ValidationReport, Wallet,
};

const KEY: &[u8] = b"fuzz bundle key";
const BUNDLE: u64 = 77;

/// Case budget for one fuzz target under the active tier.
fn budget(default_cases: u64) -> u64 {
    let is = |k: &str| std::env::var(k).is_ok_and(|v| v == "1");
    if is("IDPA_FUZZ_LONG") {
        default_cases * 100
    } else if is("IDPA_FUZZ_SMOKE") {
        default_cases / 4
    } else {
        default_cases
    }
}

/// The committed regression corpus: one seed per line, `#` comments
/// allowed, shared by every target. Replayed before the pseudo-random
/// sweep; the file must exist and hold at least one seed so the corpus
/// can't silently vanish.
fn corpus_seeds() -> Vec<u64> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fuzz_corpus/seeds.txt"
    );
    let text = std::fs::read_to_string(path).expect("fuzz corpus must be present");
    let seeds: Vec<u64> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.parse().expect("corpus line must be a u64 seed"))
        .collect();
    assert!(!seeds.is_empty(), "fuzz corpus must hold at least one seed");
    seeds
}

/// Every seed the target will run: the corpus first, then the sweep.
fn case_seeds(target: u64, cases: u64) -> Vec<u64> {
    let mut seeds = corpus_seeds();
    // The sweep derives per-target streams so the three targets explore
    // different cases from the same corpus file.
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x5eed ^ target);
    seeds.extend((0..cases).map(|_| rng.next()));
    seeds
}

fn account(i: u64) -> AccountId {
    AccountId(i)
}

/// One fuzzed connection: a genuine path, then seeded structural mutations
/// — receipt corruption/duplication/reordering/truncation, manifest byte
/// flips and hop edits, phantom padding with receipts minted under the
/// real key (the clique forgery), and randomized `observed_hops`.
#[allow(clippy::too_many_lines)] // one linear mutation grammar
fn fuzz_evidence(rng: &mut Xoshiro256StarStar, connection: u32) -> ConnectionEvidence {
    let n_hops = 1 + (rng.next() % 6) as usize;
    let mut hops: Vec<AccountId> = (0..n_hops).map(|_| account(1 + rng.next() % 40)).collect();
    let genuine = hops.clone();

    // Clique-style phantom padding: extra hops appended to the manifest
    // before sealing, with valid receipts minted below.
    let phantoms = (rng.next() % 3) as usize;
    for _ in 0..phantoms {
        hops.push(account(100 + rng.next() % 8));
    }

    let mut manifest = PathManifest::issue(KEY, BUNDLE, connection, hops.clone());

    let mut receipts: Vec<Receipt> = hops
        .iter()
        .enumerate()
        .map(|(i, &a)| Receipt::issue(KEY, BUNDLE, connection, (i + 1) as u32, a))
        .collect();

    // Receipt-level mutations, each applied with seeded probability.
    for i in 0..receipts.len() {
        match rng.next() % 12 {
            0 => receipts[i].mac[(rng.next() % 32) as usize] ^= 1 << (rng.next() % 8),
            1 => receipts[i].hop = (rng.next() % 10) as u32,
            2 => receipts[i].forwarder = account(rng.next() % 50),
            3 => receipts[i].bundle_id = rng.next() % 100,
            4 => receipts[i].connection = (rng.next() % 8) as u32,
            _ => {}
        }
    }
    // Structural mutations of the receipt *set*.
    match rng.next() % 8 {
        0 if !receipts.is_empty() => {
            // Duplicate a receipt somewhere else in the sequence.
            let r = receipts[(rng.next() as usize) % receipts.len()].clone();
            let at = (rng.next() as usize) % (receipts.len() + 1);
            receipts.insert(at, r);
        }
        1 => receipts.reverse(),
        2 => {
            // Seeded shuffle (Fisher–Yates).
            for i in (1..receipts.len()).rev() {
                receipts.swap(i, (rng.next() as usize) % (i + 1));
            }
        }
        3 => receipts.truncate((rng.next() as usize) % (receipts.len() + 1)),
        4 => receipts.clear(),
        _ => {}
    }
    // Manifest mutations: byte-flip the MAC, edit hops after sealing, or
    // reseal under a different identity.
    match rng.next() % 8 {
        0 => manifest.mac[(rng.next() % 32) as usize] ^= 1 << (rng.next() % 8),
        1 if !manifest.hops.is_empty() => {
            let at = (rng.next() as usize) % manifest.hops.len();
            manifest.hops[at] = account(rng.next() % 50);
        }
        2 => manifest.bundle_id = rng.next() % 100,
        3 => manifest.connection = (rng.next() % 8) as u32,
        _ => {}
    }

    // Cross-check arm: none, the genuine view, or a corrupted view.
    let observed_hops = match rng.next() % 4 {
        0 | 1 => None,
        2 => Some(genuine),
        _ => {
            let mut obs = genuine;
            if !obs.is_empty() && rng.next() % 2 == 0 {
                let at = (rng.next() as usize) % obs.len();
                obs[at] = account(rng.next() % 50);
            }
            if rng.next() % 3 == 0 {
                obs.truncate(obs.len().saturating_sub(1));
            }
            Some(obs)
        }
    };

    ConnectionEvidence {
        manifest,
        receipts,
        observed_hops,
    }
}

/// Merges `b` into `a` the way epoch settlement merges per-window reports.
fn merge(a: &mut ValidationReport, b: ValidationReport) {
    a.expected_instances += b.expected_instances;
    a.validated_instances += b.validated_instances;
    for (k, v) in b.paid_counts {
        *a.paid_counts.entry(k).or_insert(0) += v;
    }
    a.flagged.extend(b.flagged);
    a.unattributed += b.unattributed;
    a.invalid_manifests += b.invalid_manifests;
    a.phantom_instances += b.phantom_instances;
    a.phantom_accounts.extend(b.phantom_accounts);
}

/// PathValidator under the full mutation grammar. Invariants: no panic on
/// any input; payment never exceeds the manifests' claims; windowed
/// validation partitions losslessly; flags and phantoms only ever name
/// manifest hops; per-connection flagging agrees with whole-bundle
/// settlement.
#[test]
fn fuzz_path_validator_invariants() {
    for seed in case_seeds(1, budget(2000)) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut v = PathValidator::new(KEY, BUNDLE);
        let n_conns = 1 + (rng.next() % 6) as u32;
        for c in 0..n_conns {
            v.add_connection(fuzz_evidence(&mut rng, c));
        }
        let report = v.validate();

        assert!(
            report.validated_instances <= report.expected_instances,
            "seed {seed}: paid more instances than the manifests claim"
        );
        let paid_sum: u64 = report.paid_counts.values().sum();
        assert_eq!(
            paid_sum, report.validated_instances,
            "seed {seed}: per-account payments disagree with the validated total"
        );
        assert!(
            (0.0..=1.0).contains(&report.shortfall()),
            "seed {seed}: shortfall out of range"
        );

        // Windowed settlement partitions losslessly at any split points.
        let mut windows = ValidationReport::default();
        let mut start = 0usize;
        while start < v.connections() {
            let end = start + 1 + (rng.next() as usize) % 3;
            merge(&mut windows, v.validate_range(start, end));
            start = end;
        }
        assert_eq!(
            windows, report,
            "seed {seed}: windowed validation diverged from whole-bundle"
        );

        // Flags, payments, and phantom reports only ever name accounts
        // some manifest vouched for.
        let manifest_accounts: std::collections::BTreeSet<AccountId> = v
            .evidence()
            .iter()
            .flat_map(|e| e.manifest.hops.iter().copied())
            .collect();
        for f in &report.flagged {
            assert!(
                manifest_accounts.contains(f),
                "seed {seed}: flagged an account no manifest names"
            );
        }
        for a in report.paid_counts.keys() {
            assert!(
                manifest_accounts.contains(a),
                "seed {seed}: paid an account no manifest names"
            );
        }
        for a in &report.phantom_accounts {
            assert!(
                manifest_accounts.contains(a),
                "seed {seed}: phantom-reported an account no manifest names"
            );
        }

        // Per-connection flagging is exactly the union of whole-bundle
        // flags (each connection pins at most one forwarder).
        let mut union = std::collections::BTreeSet::new();
        for i in 0..v.connections() {
            union.extend(v.flag_connection(i));
        }
        assert_eq!(
            union, report.flagged,
            "seed {seed}: per-connection flags diverged from settlement"
        );
    }
}

/// With the cross-check armed and truthful (`observed_hops` = the hops the
/// initiator routed), phantom-padded manifests never pay the phantoms: the
/// paid instances are bounded by the genuine hop count, and every padded
/// account with a valid receipt is reported.
#[test]
fn fuzz_cross_check_never_pays_phantoms() {
    for seed in case_seeds(2, budget(2000)) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let n_genuine = 1 + (rng.next() % 5) as usize;
        let genuine: Vec<AccountId> = (0..n_genuine)
            .map(|_| account(1 + rng.next() % 40))
            .collect();
        let n_phantom = 1 + (rng.next() % 4) as usize;
        let mut hops = genuine.clone();
        for _ in 0..n_phantom {
            hops.push(account(100 + rng.next() % 8));
        }
        let manifest = PathManifest::issue(KEY, BUNDLE, 0, hops.clone());
        let receipts: Vec<Receipt> = hops
            .iter()
            .enumerate()
            .map(|(i, &a)| Receipt::issue(KEY, BUNDLE, 0, (i + 1) as u32, a))
            .collect();
        let mut v = PathValidator::new(KEY, BUNDLE);
        v.add_connection(ConnectionEvidence {
            manifest,
            receipts,
            observed_hops: Some(genuine),
        });
        let report = v.validate();
        assert_eq!(
            report.validated_instances, n_genuine as u64,
            "seed {seed}: phantom padding changed what gets paid"
        );
        assert_eq!(
            report.phantom_instances, n_phantom as u64,
            "seed {seed}: a vouched phantom went unreported"
        );
        for a in report.paid_counts.keys() {
            assert!(
                a.0 < 100,
                "seed {seed}: a phantom account ended up in the paid set"
            );
        }
    }
}

/// `Bank::deposit_batch` under forged, mutated and double-spent tokens:
/// verdicts and end state must match the sequential `deposit` path on a
/// twin bank exactly, for every interleaving.
#[test]
fn fuzz_deposit_batch_matches_sequential() {
    // Key generation dominates; one bank pair serves all cases.
    let mut seq = Bank::new(256, &mut Xoshiro256StarStar::seed_from_u64(9));
    let mut bat = Bank::new(256, &mut Xoshiro256StarStar::seed_from_u64(9));
    let alice = seq.open_account(1_000_000);
    bat.open_account(1_000_000);
    let bob = seq.open_account(0);
    bat.open_account(0);

    for seed in case_seeds(3, budget(24)) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        // Mint a small batch of genuine tokens on both banks (the twin
        // mints consume identical RNG streams, so the tokens agree).
        let mint = |bank: &mut Bank, seed: u64| -> Vec<Token> {
            let mut r = Xoshiro256StarStar::seed_from_u64(seed);
            let mut w = Wallet::new();
            let mut tokens = Vec::new();
            for _ in 0..4 {
                bank.withdraw_into_wallet(alice, 1, &mut w, &mut r)
                    .expect("withdraw");
                tokens.extend(w.take_exact(1).expect("exact"));
            }
            tokens
        };
        let tokens_seq = mint(&mut seq, seed);
        let tokens_bat = mint(&mut bat, seed);
        assert_eq!(tokens_seq, tokens_bat, "seed {seed}: twin mints diverged");

        // Mutate: forge values, flip serial bytes, duplicate for a
        // double-spend — identically on both sides.
        let mutate = |tokens: &[Token], rng: &mut Xoshiro256StarStar| -> Vec<(AccountId, Token)> {
            let mut out = Vec::new();
            for t in tokens {
                let mut t = t.clone();
                match rng.next() % 5 {
                    0 => t.value = 1 + rng.next() % 500,
                    1 => t.id.0[(rng.next() % 32) as usize] ^= 1 << (rng.next() % 8),
                    2 => out.push((bob, t.clone())), // duplicate → 2nd is a double-spend
                    _ => {}
                }
                out.push((bob, t));
            }
            out
        };
        let rng_state = rng.next();
        let deposits = mutate(
            &tokens_seq,
            &mut Xoshiro256StarStar::seed_from_u64(rng_state),
        );
        let deposits_b = mutate(
            &tokens_bat,
            &mut Xoshiro256StarStar::seed_from_u64(rng_state),
        );

        let sequential: Vec<_> = deposits.iter().map(|(a, t)| seq.deposit(*a, t)).collect();
        let batched = bat.deposit_batch(&deposits_b);
        assert_eq!(
            sequential, batched,
            "seed {seed}: batch verdicts diverged from sequential deposits"
        );
        assert_eq!(seq.balance(bob), bat.balance(bob), "seed {seed}: balances");
        assert_eq!(
            seq.total_deposits(),
            bat.total_deposits(),
            "seed {seed}: totals"
        );
        assert_eq!(
            seq.spent_serials(),
            bat.spent_serials(),
            "seed {seed}: serial sets"
        );
    }
}

/// `EpochLedger` under arbitrary queue/accrue/settle interleavings against
/// a sequential twin: successful settles reproduce the sequential end
/// state; failed settles (uncovered debits) keep the net for retry, apply
/// only the deposits, and never advance the epoch.
#[test]
fn fuzz_epoch_ledger_interleavings() {
    let mut seq = Bank::new(256, &mut Xoshiro256StarStar::seed_from_u64(21));
    let mut epo = Bank::new(256, &mut Xoshiro256StarStar::seed_from_u64(21));
    let accounts: Vec<AccountId> = (0..4).map(|i| seq.open_account(50 + i * 10)).collect();
    for i in 0..4u64 {
        epo.open_account(50 + i * 10);
    }

    for seed in case_seeds(4, budget(48)) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut ledger = EpochLedger::new();
        let epoch_before = ledger.epoch();

        // A random program of transfers (some deliberately uncoverable).
        let mut pending: Vec<(AccountId, AccountId, u64)> = Vec::new();
        for _ in 0..(1 + rng.next() % 8) {
            let from = accounts[(rng.next() as usize) % accounts.len()];
            let to = accounts[(rng.next() as usize) % accounts.len()];
            let amount = rng.next() % 120; // can exceed a balance
            ledger.accrue_transfer(from, to, amount);
            pending.push((from, to, amount));
        }

        let before: Vec<_> = accounts.iter().map(|&a| epo.balance(a)).collect();
        match ledger.settle(&mut epo) {
            Ok(s) => {
                assert_eq!(s.epoch, epoch_before, "seed {seed}: settled wrong epoch");
                assert_eq!(ledger.epoch(), epoch_before + 1);
                assert!(ledger.is_empty(), "seed {seed}: settle left state behind");
                assert_eq!(
                    s.transfers_netted,
                    pending.len() as u64,
                    "seed {seed}: transfer count"
                );
                // Replay on the twin. Sequential transfer ordering can
                // bounce where the net covers it, so the twin applies the
                // *net* — the semantics the ledger defines.
                let mut net: std::collections::BTreeMap<AccountId, i128> = Default::default();
                for &(from, to, amount) in &pending {
                    *net.entry(from).or_insert(0) -= i128::from(amount);
                    *net.entry(to).or_insert(0) += i128::from(amount);
                }
                seq.apply_epoch_net(s.epoch, &net).expect(
                    "seed: the twin must accept the same net the ledger settled successfully",
                );
                for &a in &accounts {
                    assert_eq!(
                        seq.balance(a),
                        epo.balance(a),
                        "seed {seed}: balances diverged after settle"
                    );
                }
            }
            Err(e) => {
                assert_eq!(e.epoch, epoch_before);
                assert_eq!(
                    ledger.epoch(),
                    epoch_before,
                    "seed {seed}: failed settle advanced the epoch"
                );
                assert!(
                    !ledger.is_empty(),
                    "seed {seed}: failed settle must keep the net for retry"
                );
                // A failed net leaves every balance untouched.
                let after: Vec<_> = accounts.iter().map(|&a| epo.balance(a)).collect();
                assert_eq!(before, after, "seed {seed}: failed settle moved balances");
                // Keep the twins in lockstep for the next case.
                let retry = ledger.settle(&mut epo);
                if retry.is_err() {
                    // Unrecoverable program (net debits exceed balances):
                    // drop the ledger; both banks are untouched.
                    continue;
                }
                let mut net: std::collections::BTreeMap<AccountId, i128> = Default::default();
                for &(from, to, amount) in &pending {
                    *net.entry(from).or_insert(0) -= i128::from(amount);
                    *net.entry(to).or_insert(0) += i128::from(amount);
                }
                seq.apply_epoch_net(epoch_before, &net)
                    .expect("twin retry must succeed when the ledger's did");
            }
        }
    }
    // The twins must still agree at the end of the whole sweep.
    for &a in &accounts {
        assert_eq!(seq.balance(a), epo.balance(a), "final balances diverged");
    }
}

/// WAL decode/recovery under a seeded corruption grammar: build a valid
/// log from seeded ledger ops, then truncate, flip bytes, splice
/// (duplicate/drop/swap) whole records, or inject garbage runs.
/// Invariants: scanning and recovery never panic on any input; the
/// accepted prefix never exceeds the input; record boundaries are
/// strictly increasing and bounded by the intact length; recovery equals
/// an independent replay of the accepted prefix, is idempotent, and
/// always lands on a conservation-clean state.
#[test]
fn fuzz_wal_decode_and_recovery() {
    use idpa_payment::ledger::Ledger;
    use idpa_payment::wal::{scan, Wal};
    use idpa_payment::TokenId;

    for seed in case_seeds(5, budget(2000)) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);

        // A valid log: seeded mix of every op kind on a small ledger.
        let mut l = Ledger::new();
        l.attach_wal(Wal::new());
        let accounts: Vec<AccountId> = (0..3)
            .map(|_| l.open_account(100 + rng.next() % 400))
            .collect();
        for i in 0..(2 + rng.next() % 10) {
            let a = accounts[(rng.next() as usize) % accounts.len()];
            let b = accounts[(rng.next() as usize) % accounts.len()];
            match rng.next() % 4 {
                0 | 1 => {
                    // Withdraw/deposit pair: bearer value leaves `a` and
                    // lands at `b`, keeping the history conservation-clean
                    // (a bare deposit would mint value from nowhere).
                    let v = 1 + rng.next() % 30;
                    if l.withdraw(a, v).is_ok() {
                        let mut id = [0u8; 32];
                        id[..8].copy_from_slice(&(seed ^ i).to_le_bytes());
                        id[9] = 0x5A;
                        let _ = l.deposit_serial(b, TokenId(id), v);
                    }
                }
                2 => {
                    let _ = l.transfer(a, b, 1 + rng.next() % 20);
                }
                _ => {
                    if a != b {
                        let d = i128::from(1 + rng.next() % 10);
                        let mut net: std::collections::BTreeMap<AccountId, i128> =
                            Default::default();
                        net.insert(a, -d);
                        net.insert(b, d);
                        let _ = l.apply_epoch_net(i, &net);
                    }
                }
            }
        }
        let mut bytes = l.wal().expect("attached").committed_bytes().to_vec();
        let clean_boundaries = scan(&bytes).boundaries;

        // Seeded corruption grammar. Splices can produce frame-intact
        // streams that are not a prefix of the real history, so the
        // conservation assertion below is scoped to non-spliced cases
        // (detecting spliced value creation is the invariant monitor's
        // job, not recovery's).
        let mut spliced = false;
        for _ in 0..(rng.next() % 4) {
            match rng.next() % 5 {
                0 if !bytes.is_empty() => {
                    bytes.truncate((rng.next() as usize) % (bytes.len() + 1));
                }
                1 if !bytes.is_empty() => {
                    let at = (rng.next() as usize) % bytes.len();
                    bytes[at] ^= 1 << (rng.next() % 8);
                }
                2 if clean_boundaries.len() > 1 => {
                    // Splice: re-insert a whole record from the clean log.
                    spliced = true;
                    let i = (rng.next() as usize) % clean_boundaries.len();
                    let start = if i == 0 { 0 } else { clean_boundaries[i - 1] };
                    let rec: Vec<u8> = l.wal().expect("attached").committed_bytes()
                        [start..clean_boundaries[i]]
                        .to_vec();
                    let at = (rng.next() as usize) % (bytes.len() + 1);
                    for (k, byte) in rec.into_iter().enumerate() {
                        bytes.insert(at + k, byte);
                    }
                }
                3 => {
                    // Garbage run at the tail (looks like a torn write).
                    for _ in 0..(rng.next() % 24) {
                        bytes.push((rng.next() & 0xff) as u8);
                    }
                }
                _ => {}
            }
        }

        // Invariants: total decode/recovery safety on arbitrary input.
        let s = scan(&bytes);
        assert!(s.intact_len <= bytes.len(), "seed {seed}");
        assert_eq!(s.ops.len(), s.boundaries.len(), "seed {seed}");
        for w in s.boundaries.windows(2) {
            assert!(w[0] < w[1], "seed {seed}: boundaries not increasing");
        }
        if let Some(&last) = s.boundaries.last() {
            assert!(last <= s.intact_len, "seed {seed}");
        }

        let (recovered, report) = Ledger::recover(&bytes);
        assert!(report.bytes_replayed <= bytes.len(), "seed {seed}");
        assert_eq!(
            report.bytes_replayed + report.torn_bytes,
            bytes.len(),
            "seed {seed}: prefix + tail must cover the input"
        );
        // Recovery ≡ independent replay of the accepted prefix.
        let mut oracle = Ledger::new();
        for op in &scan(&bytes[..report.bytes_replayed]).ops {
            oracle.apply(op).expect("seed: accepted prefix must apply");
        }
        assert_eq!(recovered.digest(), oracle.digest(), "seed {seed}");
        if !spliced {
            // Truncation and byte flips only shorten the accepted prefix
            // of a conservation-clean history, so the recovered state
            // must conserve value exactly.
            assert!(recovered.conservation_holds(), "seed {seed}");
        }
        // Idempotence: recovering the recovered image is a fixed point.
        let again = Ledger::recover(
            recovered
                .wal()
                .expect("recover reattaches")
                .committed_bytes(),
        );
        assert!(again.1.is_clean(), "seed {seed}");
        assert_eq!(again.0.digest(), recovered.digest(), "seed {seed}");
    }
}
