//! Property-based tests of the payment system: under arbitrary operation
//! sequences, value is conserved and cheats are rejected.
//!
//! Randomized with fixed-seed Xoshiro256** streams (in-tree, offline):
//! each property runs hundreds of generated operation sequences and is
//! exactly reproducible.

use idpa_desim::rng::Xoshiro256StarStar;
use idpa_payment::audit::{AuditEntry, AuditEvent, AuditLog};
use idpa_payment::bank::{AccountId, Bank};
use idpa_payment::token::{Token, Wallet};

const CASES: usize = 256;

/// A randomised operation against the bank.
#[derive(Debug, Clone, Copy)]
enum Op {
    Withdraw { account: usize, amount: u64 },
    DepositNext { account: usize },
    ReplayLastDeposit { account: usize },
    Transfer { from: usize, to: usize, amount: u64 },
}

fn random_op(rng: &mut Xoshiro256StarStar) -> Op {
    match rng.next() % 4 {
        0 => Op::Withdraw {
            account: (rng.next() % 4) as usize,
            amount: 1 + rng.next() % 49,
        },
        1 => Op::DepositNext {
            account: (rng.next() % 4) as usize,
        },
        2 => Op::ReplayLastDeposit {
            account: (rng.next() % 4) as usize,
        },
        _ => Op::Transfer {
            from: (rng.next() % 4) as usize,
            to: (rng.next() % 4) as usize,
            amount: 1 + rng.next() % 49,
        },
    }
}

fn random_ops(rng: &mut Xoshiro256StarStar, max_len: u64) -> Vec<Op> {
    let len = 1 + (rng.next() % max_len) as usize;
    (0..len).map(|_| random_op(rng)).collect()
}

/// Conservation: deposits + outstanding tokens stay constant under any
/// mix of withdrawals, deposits, replays and transfers.
#[test]
fn value_conserved_under_arbitrary_ops() {
    let mut gen = Xoshiro256StarStar::seed_from_u64(0x2001);
    for _ in 0..CASES {
        let ops = random_ops(&mut gen, 24);
        let mut rng = Xoshiro256StarStar::seed_from_u64(gen.next());
        let mut bank = Bank::new(256, &mut rng);
        let accounts: Vec<AccountId> = (0..4).map(|_| bank.open_account(500)).collect();
        let initial = bank.total_deposits();

        // Bearer tokens in flight, and the last deposited token (for
        // double-spend replays).
        let mut in_flight: Vec<Token> = Vec::new();
        let mut last_deposited: Option<Token> = None;

        for op in &ops {
            match *op {
                Op::Withdraw { account, amount } => {
                    let mut w = Wallet::new();
                    if bank
                        .withdraw_into_wallet(accounts[account], amount, &mut w, &mut rng)
                        .is_ok()
                    {
                        let balance = w.balance();
                        in_flight.extend(w.take_exact(balance).unwrap());
                    }
                }
                Op::DepositNext { account } => {
                    if let Some(token) = in_flight.pop() {
                        bank.deposit(accounts[account], &token).unwrap();
                        last_deposited = Some(token);
                    }
                }
                Op::ReplayLastDeposit { account } => {
                    if let Some(token) = &last_deposited {
                        // A replay must always bounce.
                        assert!(bank.deposit(accounts[account], token).is_err());
                    }
                }
                Op::Transfer { from, to, amount } => {
                    let _ = bank.transfer(accounts[from], accounts[to], amount);
                }
            }
            // The conservation invariant holds after EVERY operation.
            assert_eq!(
                bank.total_deposits() + bank.outstanding(),
                initial,
                "conservation violated after {op:?}"
            );
        }

        // Depositing the remaining in-flight tokens restores all value to
        // ledger balances.
        let sink = bank.open_account(0);
        for token in &in_flight {
            bank.deposit(sink, token).unwrap();
        }
        assert_eq!(bank.total_deposits(), initial);
        assert_eq!(bank.outstanding(), 0);
    }
}

/// No sequence of operations can mint value into a single account beyond
/// what the system held initially.
#[test]
fn no_account_exceeds_total_supply() {
    let mut gen = Xoshiro256StarStar::seed_from_u64(0x2002);
    for _ in 0..CASES {
        let ops = random_ops(&mut gen, 19);
        let mut rng = Xoshiro256StarStar::seed_from_u64(gen.next());
        let mut bank = Bank::new(256, &mut rng);
        let accounts: Vec<AccountId> = (0..4).map(|_| bank.open_account(100)).collect();
        let supply = bank.total_deposits();
        let mut in_flight: Vec<Token> = Vec::new();

        for op in &ops {
            match *op {
                Op::Withdraw { account, amount } => {
                    let mut w = Wallet::new();
                    if bank
                        .withdraw_into_wallet(accounts[account], amount, &mut w, &mut rng)
                        .is_ok()
                    {
                        let b = w.balance();
                        in_flight.extend(w.take_exact(b).unwrap());
                    }
                }
                Op::DepositNext { account } => {
                    if let Some(t) = in_flight.pop() {
                        bank.deposit(accounts[account], &t).unwrap();
                    }
                }
                Op::ReplayLastDeposit { .. } => {}
                Op::Transfer { from, to, amount } => {
                    let _ = bank.transfer(accounts[from], accounts[to], amount);
                }
            }
            for &acct in &accounts {
                assert!(bank.balance(acct).unwrap() <= supply);
            }
        }
    }
}

/// A random balance-affecting (or discrepancy) audit event over a small
/// account universe.
fn random_audit_event(rng: &mut Xoshiro256StarStar) -> AuditEvent {
    let acct = |rng: &mut Xoshiro256StarStar| AccountId(rng.next() % 4);
    match rng.next() % 5 {
        0 => AuditEvent::Open {
            account: acct(rng),
            balance: rng.next() % 200,
        },
        1 => AuditEvent::Withdraw {
            account: acct(rng),
            value: 1 + rng.next() % 49,
        },
        2 => {
            let mut serial_prefix = [0u8; 8];
            for b in &mut serial_prefix {
                *b = (rng.next() % 256) as u8;
            }
            AuditEvent::Deposit {
                account: acct(rng),
                value: 1 + rng.next() % 49,
                serial_prefix,
            }
        }
        3 => AuditEvent::Transfer {
            from: acct(rng),
            to: acct(rng),
            amount: 1 + rng.next() % 49,
        },
        _ => {
            let expected = rng.next() % 30;
            AuditEvent::Discrepancy {
                bundle: rng.next() % 8,
                expected,
                validated: if expected == 0 {
                    0
                } else {
                    rng.next() % expected
                },
                flagged: rng.next() % 3,
            }
        }
    }
}

/// XORs one nonzero byte into some field of the entry: the sequence
/// number, the chain hash, or any field of the event payload.
fn flip_entry_byte(entry: &mut AuditEntry, rng: &mut Xoshiro256StarStar) {
    let m = 1 + (rng.next() % 255) as u8;
    let word = u64::from(m) << (8 * (rng.next() % 8));
    match rng.next() % 3 {
        0 => entry.seq ^= word,
        1 => {
            let i = (rng.next() % 32) as usize;
            entry.hash[i] ^= m;
        }
        _ => match &mut entry.event {
            AuditEvent::Open { account, balance } => match rng.next() % 2 {
                0 => account.0 ^= word,
                _ => *balance ^= word,
            },
            AuditEvent::Withdraw { account, value } => match rng.next() % 2 {
                0 => account.0 ^= word,
                _ => *value ^= word,
            },
            AuditEvent::Deposit {
                account,
                value,
                serial_prefix,
            } => match rng.next() % 3 {
                0 => account.0 ^= word,
                1 => *value ^= word,
                _ => serial_prefix[(rng.next() % 8) as usize] ^= m,
            },
            AuditEvent::Transfer { from, to, amount } => match rng.next() % 3 {
                0 => from.0 ^= word,
                1 => to.0 ^= word,
                _ => *amount ^= word,
            },
            AuditEvent::Discrepancy {
                bundle,
                expected,
                validated,
                flagged,
            } => match rng.next() % 4 {
                0 => *bundle ^= word,
                1 => *expected ^= word,
                2 => *validated ^= word,
                _ => *flagged ^= word,
            },
        },
    }
}

/// Tamper-evidence is byte-exact: flipping ANY byte of ANY entry — seq,
/// hash, or any event field of any variant — makes `verify()` report that
/// entry's index, never a different one and never `Ok`.
#[test]
fn any_single_byte_flip_is_detected_at_the_exact_entry() {
    let mut gen = Xoshiro256StarStar::seed_from_u64(0x2003);
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(gen.next());
        let n = 1 + (rng.next() % 12) as usize;
        let mut log = AuditLog::new();
        for _ in 0..n {
            log.append(random_audit_event(&mut rng));
        }
        assert_eq!(log.verify(), Ok(()));

        let target = (rng.next() % n as u64) as usize;
        let mut entries = log.entries().to_vec();
        flip_entry_byte(&mut entries[target], &mut rng);
        let tampered = AuditLog::from_entries(entries);
        assert_eq!(
            tampered.verify(),
            Err(target),
            "case {case}: flip in entry {target} of {n} must be pinned there"
        );
    }
}

/// A seeded Fisher–Yates shuffle.
fn shuffle<T>(items: &mut [T], rng: &mut Xoshiro256StarStar) {
    for i in (1..items.len()).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// `replay_balance` is a pure function of the event *multiset*: any two
/// interleavings of the same events reconstruct identical per-account
/// balances, and both orderings form valid chains when appended honestly.
#[test]
fn replay_balance_is_invariant_under_event_interleaving() {
    let mut gen = Xoshiro256StarStar::seed_from_u64(0x2004);
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(gen.next());
        let n = 1 + (rng.next() % 16) as usize;
        let events: Vec<AuditEvent> = (0..n).map(|_| random_audit_event(&mut rng)).collect();

        let mut first = events.clone();
        let mut second = events;
        shuffle(&mut first, &mut rng);
        shuffle(&mut second, &mut rng);

        let build = |evs: Vec<AuditEvent>| {
            let mut log = AuditLog::new();
            for e in evs {
                log.append(e);
            }
            log
        };
        let log_a = build(first);
        let log_b = build(second);
        assert_eq!(log_a.verify(), Ok(()));
        assert_eq!(log_b.verify(), Ok(()));
        for id in 0..4 {
            assert_eq!(
                log_a.replay_balance(AccountId(id)),
                log_b.replay_balance(AccountId(id)),
                "case {case}: account {id} diverges between interleavings"
            );
        }
    }
}
