//! Property-based tests of the payment system: under arbitrary operation
//! sequences, value is conserved and cheats are rejected.
//!
//! Randomized with fixed-seed Xoshiro256** streams (in-tree, offline):
//! each property runs hundreds of generated operation sequences and is
//! exactly reproducible.

use idpa_desim::rng::Xoshiro256StarStar;
use idpa_payment::bank::{AccountId, Bank};
use idpa_payment::token::{Token, Wallet};

const CASES: usize = 256;

/// A randomised operation against the bank.
#[derive(Debug, Clone, Copy)]
enum Op {
    Withdraw { account: usize, amount: u64 },
    DepositNext { account: usize },
    ReplayLastDeposit { account: usize },
    Transfer { from: usize, to: usize, amount: u64 },
}

fn random_op(rng: &mut Xoshiro256StarStar) -> Op {
    match rng.next() % 4 {
        0 => Op::Withdraw {
            account: (rng.next() % 4) as usize,
            amount: 1 + rng.next() % 49,
        },
        1 => Op::DepositNext {
            account: (rng.next() % 4) as usize,
        },
        2 => Op::ReplayLastDeposit {
            account: (rng.next() % 4) as usize,
        },
        _ => Op::Transfer {
            from: (rng.next() % 4) as usize,
            to: (rng.next() % 4) as usize,
            amount: 1 + rng.next() % 49,
        },
    }
}

fn random_ops(rng: &mut Xoshiro256StarStar, max_len: u64) -> Vec<Op> {
    let len = 1 + (rng.next() % max_len) as usize;
    (0..len).map(|_| random_op(rng)).collect()
}

/// Conservation: deposits + outstanding tokens stay constant under any
/// mix of withdrawals, deposits, replays and transfers.
#[test]
fn value_conserved_under_arbitrary_ops() {
    let mut gen = Xoshiro256StarStar::seed_from_u64(0x2001);
    for _ in 0..CASES {
        let ops = random_ops(&mut gen, 24);
        let mut rng = Xoshiro256StarStar::seed_from_u64(gen.next());
        let mut bank = Bank::new(256, &mut rng);
        let accounts: Vec<AccountId> = (0..4).map(|_| bank.open_account(500)).collect();
        let initial = bank.total_deposits();

        // Bearer tokens in flight, and the last deposited token (for
        // double-spend replays).
        let mut in_flight: Vec<Token> = Vec::new();
        let mut last_deposited: Option<Token> = None;

        for op in &ops {
            match *op {
                Op::Withdraw { account, amount } => {
                    let mut w = Wallet::new();
                    if bank
                        .withdraw_into_wallet(accounts[account], amount, &mut w, &mut rng)
                        .is_ok()
                    {
                        let balance = w.balance();
                        in_flight.extend(w.take_exact(balance).unwrap());
                    }
                }
                Op::DepositNext { account } => {
                    if let Some(token) = in_flight.pop() {
                        bank.deposit(accounts[account], &token).unwrap();
                        last_deposited = Some(token);
                    }
                }
                Op::ReplayLastDeposit { account } => {
                    if let Some(token) = &last_deposited {
                        // A replay must always bounce.
                        assert!(bank.deposit(accounts[account], token).is_err());
                    }
                }
                Op::Transfer { from, to, amount } => {
                    let _ = bank.transfer(accounts[from], accounts[to], amount);
                }
            }
            // The conservation invariant holds after EVERY operation.
            assert_eq!(
                bank.total_deposits() + bank.outstanding(),
                initial,
                "conservation violated after {op:?}"
            );
        }

        // Depositing the remaining in-flight tokens restores all value to
        // ledger balances.
        let sink = bank.open_account(0);
        for token in &in_flight {
            bank.deposit(sink, token).unwrap();
        }
        assert_eq!(bank.total_deposits(), initial);
        assert_eq!(bank.outstanding(), 0);
    }
}

/// No sequence of operations can mint value into a single account beyond
/// what the system held initially.
#[test]
fn no_account_exceeds_total_supply() {
    let mut gen = Xoshiro256StarStar::seed_from_u64(0x2002);
    for _ in 0..CASES {
        let ops = random_ops(&mut gen, 19);
        let mut rng = Xoshiro256StarStar::seed_from_u64(gen.next());
        let mut bank = Bank::new(256, &mut rng);
        let accounts: Vec<AccountId> = (0..4).map(|_| bank.open_account(100)).collect();
        let supply = bank.total_deposits();
        let mut in_flight: Vec<Token> = Vec::new();

        for op in &ops {
            match *op {
                Op::Withdraw { account, amount } => {
                    let mut w = Wallet::new();
                    if bank
                        .withdraw_into_wallet(accounts[account], amount, &mut w, &mut rng)
                        .is_ok()
                    {
                        let b = w.balance();
                        in_flight.extend(w.take_exact(b).unwrap());
                    }
                }
                Op::DepositNext { account } => {
                    if let Some(t) = in_flight.pop() {
                        bank.deposit(accounts[account], &t).unwrap();
                    }
                }
                Op::ReplayLastDeposit { .. } => {}
                Op::Transfer { from, to, amount } => {
                    let _ = bank.transfer(accounts[from], accounts[to], amount);
                }
            }
            for &acct in &accounts {
                assert!(bank.balance(acct).unwrap() <= supply);
            }
        }
    }
}
