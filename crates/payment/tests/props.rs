//! Property-based tests of the payment system: under arbitrary operation
//! sequences, value is conserved and cheats are rejected.
//!
//! Randomized with fixed-seed Xoshiro256** streams (in-tree, offline):
//! each property runs hundreds of generated operation sequences and is
//! exactly reproducible.

use idpa_desim::rng::Xoshiro256StarStar;
use idpa_payment::audit::{AuditEntry, AuditEvent, AuditLog};
use idpa_payment::bank::{AccountId, Bank};
use idpa_payment::token::{Token, Wallet};

const CASES: usize = 256;

/// A randomised operation against the bank.
#[derive(Debug, Clone, Copy)]
enum Op {
    Withdraw { account: usize, amount: u64 },
    DepositNext { account: usize },
    ReplayLastDeposit { account: usize },
    Transfer { from: usize, to: usize, amount: u64 },
}

fn random_op(rng: &mut Xoshiro256StarStar) -> Op {
    match rng.next() % 4 {
        0 => Op::Withdraw {
            account: (rng.next() % 4) as usize,
            amount: 1 + rng.next() % 49,
        },
        1 => Op::DepositNext {
            account: (rng.next() % 4) as usize,
        },
        2 => Op::ReplayLastDeposit {
            account: (rng.next() % 4) as usize,
        },
        _ => Op::Transfer {
            from: (rng.next() % 4) as usize,
            to: (rng.next() % 4) as usize,
            amount: 1 + rng.next() % 49,
        },
    }
}

fn random_ops(rng: &mut Xoshiro256StarStar, max_len: u64) -> Vec<Op> {
    let len = 1 + (rng.next() % max_len) as usize;
    (0..len).map(|_| random_op(rng)).collect()
}

/// Conservation: deposits + outstanding tokens stay constant under any
/// mix of withdrawals, deposits, replays and transfers.
#[test]
fn value_conserved_under_arbitrary_ops() {
    let mut gen = Xoshiro256StarStar::seed_from_u64(0x2001);
    for _ in 0..CASES {
        let ops = random_ops(&mut gen, 24);
        let mut rng = Xoshiro256StarStar::seed_from_u64(gen.next());
        let mut bank = Bank::new(256, &mut rng);
        let accounts: Vec<AccountId> = (0..4).map(|_| bank.open_account(500)).collect();
        let initial = bank.total_deposits();

        // Bearer tokens in flight, and the last deposited token (for
        // double-spend replays).
        let mut in_flight: Vec<Token> = Vec::new();
        let mut last_deposited: Option<Token> = None;

        for op in &ops {
            match *op {
                Op::Withdraw { account, amount } => {
                    let mut w = Wallet::new();
                    if bank
                        .withdraw_into_wallet(accounts[account], amount, &mut w, &mut rng)
                        .is_ok()
                    {
                        let balance = w.balance();
                        in_flight.extend(w.take_exact(balance).unwrap());
                    }
                }
                Op::DepositNext { account } => {
                    if let Some(token) = in_flight.pop() {
                        bank.deposit(accounts[account], &token).unwrap();
                        last_deposited = Some(token);
                    }
                }
                Op::ReplayLastDeposit { account } => {
                    if let Some(token) = &last_deposited {
                        // A replay must always bounce.
                        assert!(bank.deposit(accounts[account], token).is_err());
                    }
                }
                Op::Transfer { from, to, amount } => {
                    let _ = bank.transfer(accounts[from], accounts[to], amount);
                }
            }
            // The conservation invariant holds after EVERY operation.
            assert_eq!(
                bank.total_deposits() + bank.outstanding(),
                initial,
                "conservation violated after {op:?}"
            );
        }

        // Depositing the remaining in-flight tokens restores all value to
        // ledger balances.
        let sink = bank.open_account(0);
        for token in &in_flight {
            bank.deposit(sink, token).unwrap();
        }
        assert_eq!(bank.total_deposits(), initial);
        assert_eq!(bank.outstanding(), 0);
    }
}

/// No sequence of operations can mint value into a single account beyond
/// what the system held initially.
#[test]
fn no_account_exceeds_total_supply() {
    let mut gen = Xoshiro256StarStar::seed_from_u64(0x2002);
    for _ in 0..CASES {
        let ops = random_ops(&mut gen, 19);
        let mut rng = Xoshiro256StarStar::seed_from_u64(gen.next());
        let mut bank = Bank::new(256, &mut rng);
        let accounts: Vec<AccountId> = (0..4).map(|_| bank.open_account(100)).collect();
        let supply = bank.total_deposits();
        let mut in_flight: Vec<Token> = Vec::new();

        for op in &ops {
            match *op {
                Op::Withdraw { account, amount } => {
                    let mut w = Wallet::new();
                    if bank
                        .withdraw_into_wallet(accounts[account], amount, &mut w, &mut rng)
                        .is_ok()
                    {
                        let b = w.balance();
                        in_flight.extend(w.take_exact(b).unwrap());
                    }
                }
                Op::DepositNext { account } => {
                    if let Some(t) = in_flight.pop() {
                        bank.deposit(accounts[account], &t).unwrap();
                    }
                }
                Op::ReplayLastDeposit { .. } => {}
                Op::Transfer { from, to, amount } => {
                    let _ = bank.transfer(accounts[from], accounts[to], amount);
                }
            }
            for &acct in &accounts {
                assert!(bank.balance(acct).unwrap() <= supply);
            }
        }
    }
}

/// A random balance-affecting (or discrepancy) audit event over a small
/// account universe.
fn random_audit_event(rng: &mut Xoshiro256StarStar) -> AuditEvent {
    let acct = |rng: &mut Xoshiro256StarStar| AccountId(rng.next() % 4);
    match rng.next() % 6 {
        5 => AuditEvent::EpochNet {
            epoch: rng.next() % 8,
            account: acct(rng),
            delta: i128::from(rng.next() % 99) - 49,
        },
        0 => AuditEvent::Open {
            account: acct(rng),
            balance: rng.next() % 200,
        },
        1 => AuditEvent::Withdraw {
            account: acct(rng),
            value: 1 + rng.next() % 49,
        },
        2 => {
            let mut serial_prefix = [0u8; 8];
            for b in &mut serial_prefix {
                *b = (rng.next() % 256) as u8;
            }
            AuditEvent::Deposit {
                account: acct(rng),
                value: 1 + rng.next() % 49,
                serial_prefix,
            }
        }
        3 => AuditEvent::Transfer {
            from: acct(rng),
            to: acct(rng),
            amount: 1 + rng.next() % 49,
        },
        _ => {
            let expected = rng.next() % 30;
            AuditEvent::Discrepancy {
                bundle: rng.next() % 8,
                expected,
                validated: if expected == 0 {
                    0
                } else {
                    rng.next() % expected
                },
                flagged: rng.next() % 3,
            }
        }
    }
}

/// XORs one nonzero byte into some field of the entry: the sequence
/// number, the chain hash, or any field of the event payload.
fn flip_entry_byte(entry: &mut AuditEntry, rng: &mut Xoshiro256StarStar) {
    let m = 1 + (rng.next() % 255) as u8;
    let word = u64::from(m) << (8 * (rng.next() % 8));
    match rng.next() % 3 {
        0 => entry.seq ^= word,
        1 => {
            let i = (rng.next() % 32) as usize;
            entry.hash[i] ^= m;
        }
        _ => match &mut entry.event {
            AuditEvent::Open { account, balance } => match rng.next() % 2 {
                0 => account.0 ^= word,
                _ => *balance ^= word,
            },
            AuditEvent::Withdraw { account, value } => match rng.next() % 2 {
                0 => account.0 ^= word,
                _ => *value ^= word,
            },
            AuditEvent::Deposit {
                account,
                value,
                serial_prefix,
            } => match rng.next() % 3 {
                0 => account.0 ^= word,
                1 => *value ^= word,
                _ => serial_prefix[(rng.next() % 8) as usize] ^= m,
            },
            AuditEvent::Transfer { from, to, amount } => match rng.next() % 3 {
                0 => from.0 ^= word,
                1 => to.0 ^= word,
                _ => *amount ^= word,
            },
            AuditEvent::Discrepancy {
                bundle,
                expected,
                validated,
                flagged,
            } => match rng.next() % 4 {
                0 => *bundle ^= word,
                1 => *expected ^= word,
                2 => *validated ^= word,
                _ => *flagged ^= word,
            },
            AuditEvent::EpochNet {
                epoch,
                account,
                delta,
            } => match rng.next() % 3 {
                0 => *epoch ^= word,
                1 => account.0 ^= word,
                // XOR into a random byte of the 16-byte encoding.
                _ => *delta ^= i128::from(word) << (64 * (rng.next() % 2)),
            },
        },
    }
}

/// Tamper-evidence is byte-exact: flipping ANY byte of ANY entry — seq,
/// hash, or any event field of any variant — makes `verify()` report that
/// entry's index, never a different one and never `Ok`.
#[test]
fn any_single_byte_flip_is_detected_at_the_exact_entry() {
    let mut gen = Xoshiro256StarStar::seed_from_u64(0x2003);
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(gen.next());
        let n = 1 + (rng.next() % 12) as usize;
        let mut log = AuditLog::new();
        for _ in 0..n {
            log.append(random_audit_event(&mut rng));
        }
        assert_eq!(log.verify(), Ok(()));

        let target = (rng.next() % n as u64) as usize;
        let mut entries = log.entries().to_vec();
        flip_entry_byte(&mut entries[target], &mut rng);
        let tampered = AuditLog::from_entries(entries);
        assert_eq!(
            tampered.verify(),
            Err(target),
            "case {case}: flip in entry {target} of {n} must be pinned there"
        );
    }
}

/// A seeded Fisher–Yates shuffle.
fn shuffle<T>(items: &mut [T], rng: &mut Xoshiro256StarStar) {
    for i in (1..items.len()).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// `replay_balance` is a pure function of the event *multiset*: any two
/// interleavings of the same events reconstruct identical per-account
/// balances, and both orderings form valid chains when appended honestly.
#[test]
fn replay_balance_is_invariant_under_event_interleaving() {
    let mut gen = Xoshiro256StarStar::seed_from_u64(0x2004);
    for case in 0..CASES {
        let mut rng = Xoshiro256StarStar::seed_from_u64(gen.next());
        let n = 1 + (rng.next() % 16) as usize;
        let events: Vec<AuditEvent> = (0..n).map(|_| random_audit_event(&mut rng)).collect();

        let mut first = events.clone();
        let mut second = events;
        shuffle(&mut first, &mut rng);
        shuffle(&mut second, &mut rng);

        let build = |evs: Vec<AuditEvent>| {
            let mut log = AuditLog::new();
            for e in evs {
                log.append(e);
            }
            log
        };
        let log_a = build(first);
        let log_b = build(second);
        assert_eq!(log_a.verify(), Ok(()));
        assert_eq!(log_b.verify(), Ok(()));
        for id in 0..4 {
            assert_eq!(
                log_a.replay_balance(AccountId(id)),
                log_b.replay_balance(AccountId(id)),
                "case {case}: account {id} diverges between interleavings"
            );
        }
    }
}

/// One batch-deposit entry class the generator can emit.
#[derive(Debug, Clone, Copy)]
enum BatchEntry {
    /// A fresh valid token to a known account.
    Valid,
    /// A replay of a serial already submitted (earlier in this batch or in
    /// a previous epoch).
    Duplicate,
    /// A valid token with a tampered signature or inflated value.
    Forged,
    /// A valid token aimed at a nonexistent account.
    UnknownAccount,
}

fn random_batch_entry(rng: &mut Xoshiro256StarStar) -> BatchEntry {
    match rng.next() % 8 {
        0 => BatchEntry::Duplicate,
        1 => BatchEntry::Forged,
        2 => BatchEntry::UnknownAccount,
        _ => BatchEntry::Valid,
    }
}

/// Builds twin banks (same seed => same keys, accounts, audit genesis) and
/// a pool of identical tokens withdrawn from both.
fn twin_banks_with_tokens(
    seed: u64,
    supply: u64,
    n_tokens: u64,
) -> (Bank, Bank, Vec<AccountId>, Vec<Token>) {
    let mut bank_a = Bank::new(256, &mut Xoshiro256StarStar::seed_from_u64(seed));
    let mut bank_b = Bank::new(256, &mut Xoshiro256StarStar::seed_from_u64(seed));
    let accounts: Vec<AccountId> = (0..4).map(|_| bank_a.open_account(supply)).collect();
    for _ in 0..4 {
        bank_b.open_account(supply);
    }
    let withdraw = |bank: &mut Bank| {
        let mut r = Xoshiro256StarStar::seed_from_u64(seed ^ 0x5eed);
        let mut w = Wallet::new();
        bank.withdraw_into_wallet(accounts[0], n_tokens, &mut w, &mut r)
            .unwrap();
        let b = w.balance();
        w.take_exact(b).unwrap()
    };
    let tokens_a = withdraw(&mut bank_a);
    let tokens_b = withdraw(&mut bank_b);
    assert_eq!(tokens_a, tokens_b, "twin banks must mint identical tokens");
    (bank_a, bank_b, accounts, tokens_a)
}

/// Batch deposit ≡ sequential deposits: over random batches mixing valid
/// tokens, intra-batch and cross-epoch duplicate serials, forgeries, and
/// unknown accounts, `deposit_batch` returns the exact per-item results of
/// sequential `deposit` calls and leaves the bank in a byte-identical
/// state — balances, `spent_serials`, `outstanding`, and the audit hash
/// chain all match.
#[test]
fn batch_deposit_equals_sequential_deposits() {
    let mut gen = Xoshiro256StarStar::seed_from_u64(0x2005);
    for case in 0..CASES {
        let seed = gen.next();
        let mut rng = Xoshiro256StarStar::seed_from_u64(gen.next());
        let n_tokens = 6 + rng.next() % 9;
        let (mut seq, mut batch, accounts, mut pool) = twin_banks_with_tokens(seed, 500, n_tokens);
        let modulus = seq.public_key().modulus().clone();

        // Two epochs; serials submitted in epoch 0 can be replayed in
        // epoch 1 (cross-epoch duplicates against the persistent set).
        let mut submitted: Vec<Token> = Vec::new();
        for _epoch in 0..2 {
            let k = 1 + (rng.next() % 9) as usize;
            let mut entries: Vec<(AccountId, Token)> = Vec::with_capacity(k);
            for _ in 0..k {
                let account = accounts[(rng.next() % 4) as usize];
                match random_batch_entry(&mut rng) {
                    BatchEntry::Duplicate if !submitted.is_empty() => {
                        let i = (rng.next() % submitted.len() as u64) as usize;
                        entries.push((account, submitted[i].clone()));
                    }
                    BatchEntry::Forged if !pool.is_empty() => {
                        let mut t = pool.pop().unwrap();
                        match rng.next() % 3 {
                            0 => {
                                t.signature =
                                    t.signature.add(&idpa_crypto::BigUint::one()).rem(&modulus);
                            }
                            // Negated signature (sig → n - sig): valid up
                            // to sign, so the Boyd–Pavlovski shape the old
                            // combined-equation batch check waved through.
                            1 => t.signature = modulus.sub(&t.signature),
                            _ => t.value += 100,
                        }
                        entries.push((account, t));
                    }
                    BatchEntry::UnknownAccount if !pool.is_empty() => {
                        entries.push((AccountId(9_999), pool.pop().unwrap()));
                    }
                    _ => {
                        if let Some(t) = pool.pop() {
                            entries.push((account, t));
                        }
                    }
                }
            }
            submitted.extend(entries.iter().map(|(_, t)| t.clone()));

            let sequential: Vec<_> = entries
                .iter()
                .map(|(account, token)| seq.deposit(*account, token))
                .collect();
            let batched = batch.deposit_batch(&entries);

            assert_eq!(sequential, batched, "case {case}: per-item results");
        }
        for &a in &accounts {
            assert_eq!(seq.balance(a), batch.balance(a), "case {case}");
        }
        assert_eq!(seq.spent_serials(), batch.spent_serials(), "case {case}");
        assert_eq!(seq.outstanding(), batch.outstanding(), "case {case}");
        assert_eq!(seq.total_deposits(), batch.total_deposits(), "case {case}");
        assert_eq!(
            seq.audit().head(),
            batch.audit().head(),
            "case {case}: audit chains diverge"
        );
    }
}

/// Epoch-ledger settlement conserves the economics of the sequential
/// per-bundle operations it replaces: random interleavings of transfers
/// and token deposits, accumulated over two epochs and settled in batches,
/// end with the same balances, total deposits, outstanding liability, and
/// spent-serial count as applying each operation immediately.
#[test]
fn epoch_ledger_settlement_matches_sequential_economics() {
    use idpa_payment::EpochLedger;
    let mut gen = Xoshiro256StarStar::seed_from_u64(0x2006);
    for case in 0..CASES {
        let seed = gen.next();
        let mut rng = Xoshiro256StarStar::seed_from_u64(gen.next());
        let n_tokens = 4 + rng.next() % 7;
        let (mut seq, mut epoch, accounts, mut pool) = twin_banks_with_tokens(seed, 300, n_tokens);
        let mut ledger = EpochLedger::new();

        for epoch_no in 0..2u64 {
            let ops = 1 + rng.next() % 10;
            for _ in 0..ops {
                if rng.next().is_multiple_of(2) {
                    let from = accounts[(rng.next() % 4) as usize];
                    let to = accounts[(rng.next() % 4) as usize];
                    let amount = 1 + rng.next() % 60;
                    // Accrue only transfers the sequential arm accepted, so
                    // both arms describe the same completed payments.
                    if seq.transfer(from, to, amount).is_ok() {
                        ledger.accrue_transfer(from, to, amount);
                    }
                } else if let Some(t) = pool.pop() {
                    let account = accounts[(rng.next() % 4) as usize];
                    seq.deposit(account, &t).unwrap();
                    ledger.queue_deposit(account, t);
                }
            }
            let report = ledger.settle(&mut epoch).unwrap();
            assert_eq!(report.epoch, epoch_no, "case {case}");
            assert!(
                report.deposit_results.iter().all(Result::is_ok),
                "case {case}: fresh tokens must all settle"
            );
        }

        for &a in &accounts {
            assert_eq!(seq.balance(a), epoch.balance(a), "case {case}");
        }
        assert_eq!(seq.total_deposits(), epoch.total_deposits(), "case {case}");
        assert_eq!(seq.outstanding(), epoch.outstanding(), "case {case}");
        assert_eq!(seq.spent_serials(), epoch.spent_serials(), "case {case}");
        // Both audit chains replay to the same per-account balances even
        // though one records transfers and the other epoch nets.
        for &a in &accounts {
            assert_eq!(
                seq.audit().replay_balance(a),
                epoch.audit().replay_balance(a),
                "case {case}: replayed balance diverges"
            );
        }
    }
}
