//! Property-based tests of the payment system: under arbitrary operation
//! sequences, value is conserved and cheats are rejected.

use idpa_desim::rng::Xoshiro256StarStar;
use idpa_payment::bank::{AccountId, Bank};
use idpa_payment::token::{Token, Wallet};
use proptest::prelude::*;

/// A randomised operation against the bank.
#[derive(Debug, Clone)]
enum Op {
    Withdraw { account: usize, amount: u64 },
    DepositNext { account: usize },
    ReplayLastDeposit { account: usize },
    Transfer { from: usize, to: usize, amount: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..4, 1u64..50).prop_map(|(account, amount)| Op::Withdraw { account, amount }),
        (0usize..4).prop_map(|account| Op::DepositNext { account }),
        (0usize..4).prop_map(|account| Op::ReplayLastDeposit { account }),
        (0usize..4, 0usize..4, 1u64..50)
            .prop_map(|(from, to, amount)| Op::Transfer { from, to, amount }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation: deposits + outstanding tokens stay constant under any
    /// mix of withdrawals, deposits, replays and transfers.
    #[test]
    fn value_conserved_under_arbitrary_ops(ops in prop::collection::vec(op_strategy(), 1..25),
                                           seed in any::<u64>()) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut bank = Bank::new(256, &mut rng);
        let accounts: Vec<AccountId> = (0..4).map(|_| bank.open_account(500)).collect();
        let initial = bank.total_deposits();

        // Bearer tokens in flight, and the last deposited token (for
        // double-spend replays).
        let mut in_flight: Vec<Token> = Vec::new();
        let mut last_deposited: Option<Token> = None;

        for op in &ops {
            match *op {
                Op::Withdraw { account, amount } => {
                    let mut w = Wallet::new();
                    if bank
                        .withdraw_into_wallet(accounts[account], amount, &mut w, &mut rng)
                        .is_ok()
                    {
                        let balance = w.balance();
                        in_flight.extend(w.take_exact(balance).unwrap());
                    }
                }
                Op::DepositNext { account } => {
                    if let Some(token) = in_flight.pop() {
                        bank.deposit(accounts[account], &token).unwrap();
                        last_deposited = Some(token);
                    }
                }
                Op::ReplayLastDeposit { account } => {
                    if let Some(token) = &last_deposited {
                        // A replay must always bounce.
                        prop_assert!(bank.deposit(accounts[account], token).is_err());
                    }
                }
                Op::Transfer { from, to, amount } => {
                    let _ = bank.transfer(accounts[from], accounts[to], amount);
                }
            }
            // The conservation invariant holds after EVERY operation.
            prop_assert_eq!(
                bank.total_deposits() + bank.outstanding(),
                initial,
                "conservation violated after {:?}", op
            );
        }

        // Depositing the remaining in-flight tokens restores all value to
        // ledger balances.
        let sink = bank.open_account(0);
        for token in &in_flight {
            bank.deposit(sink, token).unwrap();
        }
        prop_assert_eq!(bank.total_deposits(), initial);
        prop_assert_eq!(bank.outstanding(), 0);
    }

    /// No sequence of operations can mint value into a single account
    /// beyond what the system held initially.
    #[test]
    fn no_account_exceeds_total_supply(ops in prop::collection::vec(op_strategy(), 1..20),
                                       seed in any::<u64>()) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut bank = Bank::new(256, &mut rng);
        let accounts: Vec<AccountId> = (0..4).map(|_| bank.open_account(100)).collect();
        let supply = bank.total_deposits();
        let mut in_flight: Vec<Token> = Vec::new();

        for op in &ops {
            match *op {
                Op::Withdraw { account, amount } => {
                    let mut w = Wallet::new();
                    if bank
                        .withdraw_into_wallet(accounts[account], amount, &mut w, &mut rng)
                        .is_ok()
                    {
                        let b = w.balance();
                        in_flight.extend(w.take_exact(b).unwrap());
                    }
                }
                Op::DepositNext { account } => {
                    if let Some(t) = in_flight.pop() {
                        bank.deposit(accounts[account], &t).unwrap();
                    }
                }
                Op::ReplayLastDeposit { .. } => {}
                Op::Transfer { from, to, amount } => {
                    let _ = bank.transfer(accounts[from], accounts[to], amount);
                }
            }
            for &acct in &accounts {
                prop_assert!(bank.balance(acct).unwrap() <= supply);
            }
        }
    }
}
