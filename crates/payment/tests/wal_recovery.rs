//! Crash-anywhere property suite for the write-ahead ledger.
//!
//! The durability claim is exact: a crash at *any* byte offset of the WAL
//! — torn final record, flipped byte, spliced frame — recovers to the
//! state reached by replaying the longest intact record prefix, which is
//! the state of an uninterrupted run over those operations. The suite
//! proves it exhaustively, one case per byte offset (well over the
//! 256-case floor: the reference log is several KiB long).

use std::collections::BTreeMap;

use idpa_desim::rng::Xoshiro256StarStar;
use idpa_payment::bank::AccountId;
use idpa_payment::ledger::Ledger;
use idpa_payment::monitor::InvariantMonitor;
use idpa_payment::token::TokenId;
use idpa_payment::wal::{scan, Wal};
use idpa_payment::Bank;

/// Deterministic serial from a counter (no crypto needed at this layer).
fn serial(i: u64) -> TokenId {
    let mut id = [0u8; 32];
    id[..8].copy_from_slice(&i.to_le_bytes());
    id[8] = 0xA5;
    TokenId(id)
}

/// Tiny deterministic generator (the payment crate has no RNG dep; the
/// workload only needs varied, reproducible amounts).
fn mix(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

/// A mixed workload that exercises every `LedgerOp` variant repeatedly,
/// producing a WAL long enough that byte-granular sweeps exceed the
/// 256-case acceptance floor many times over.
fn reference_ledger() -> Ledger {
    let mut l = Ledger::new();
    l.attach_wal(Wal::new());
    let mut state = 0x9a17u64;
    let accounts: Vec<AccountId> = (0..8).map(|i| l.open_account(1_000 + i * 37)).collect();
    let mut next_serial = 0u64;
    for round in 0..12u64 {
        for (i, &a) in accounts.iter().enumerate() {
            let amount = 1 + (mix(&mut state) % 50);
            if l.balance(a).unwrap_or(0) >= amount {
                l.withdraw(a, amount).expect("funds checked");
                let payee = accounts[(i + 1) % accounts.len()];
                l.deposit_serial(payee, serial(next_serial), amount)
                    .expect("fresh serial");
                next_serial += 1;
            }
            let to = accounts[(i + 3) % accounts.len()];
            let xfer = 1 + (mix(&mut state) % 20);
            if a != to && l.balance(a).unwrap_or(0) >= xfer {
                l.transfer(a, to, xfer).expect("funds checked");
            }
        }
        // One zero-sum epoch net per round.
        let mut net: BTreeMap<AccountId, i128> = BTreeMap::new();
        let d = 1 + (mix(&mut state) % 10) as i128;
        net.insert(accounts[0], -d);
        net.insert(accounts[7], d);
        l.apply_epoch_net(round, &net).expect("covered net");
    }
    l
}

/// Replay the intact prefix of `bytes` through a fresh ledger — the
/// independent oracle every recovery result is compared against.
fn oracle_replay(bytes: &[u8]) -> Ledger {
    let s = scan(bytes);
    let mut l = Ledger::new();
    for op in &s.ops {
        l.apply(op).expect("intact prefix ops always apply");
    }
    l
}

#[test]
fn truncation_at_every_byte_offset_recovers_the_intact_prefix() {
    let reference = reference_ledger();
    let full = reference.wal().expect("wal attached").committed_bytes();
    assert!(
        full.len() >= 2_048,
        "reference workload must dwarf the 256-case floor, got {} bytes",
        full.len()
    );
    let boundaries = scan(full).boundaries;
    let mut monitor = InvariantMonitor::new();
    for cut in 0..=full.len() {
        let (recovered, report) = Ledger::recover(&full[..cut]);
        // The accepted prefix is exactly the greatest record boundary ≤ cut.
        let expect_intact = boundaries.iter().rev().find(|&&b| b <= cut).copied();
        assert_eq!(
            report.bytes_replayed,
            expect_intact.unwrap_or(0),
            "cut at {cut}"
        );
        assert_eq!(report.torn_bytes, cut - report.bytes_replayed);
        // Crash ≡ uninterrupted over the surviving prefix.
        let oracle = oracle_replay(&full[..cut]);
        assert_eq!(recovered.digest(), oracle.digest(), "cut at {cut}");
        // Every recovered state satisfies every invariant.
        assert!(monitor.check_quick(&recovered).is_ok(), "cut at {cut}");
    }
    assert_eq!(monitor.violations(), 0);
}

#[test]
fn byte_flip_at_every_offset_recovers_a_valid_prefix() {
    let reference = reference_ledger();
    let full = reference.wal().expect("wal attached").committed_bytes();
    let boundaries = scan(full).boundaries;
    let mut monitor = InvariantMonitor::new();
    for offset in 0..full.len() {
        let mut corrupted = full.to_vec();
        corrupted[offset] ^= 0x40;
        let (recovered, report) = Ledger::recover(&corrupted);
        // The flip lands inside some record; everything before that
        // record's start must survive. (A flipped length field can widen
        // the frame so that checksum failure is detected at the *same*
        // record, never earlier.)
        let containing_start = boundaries
            .iter()
            .rev()
            .find(|&&b| b <= offset)
            .copied()
            .unwrap_or(0);
        assert!(
            report.bytes_replayed >= containing_start.min(offset),
            "flip at {offset}: replayed {} < containing record start {containing_start}",
            report.bytes_replayed
        );
        assert!(report.bytes_replayed <= corrupted.len(), "flip at {offset}");
        // Whatever prefix was accepted, it replays clean and conserves.
        let oracle = oracle_replay(&corrupted[..report.bytes_replayed]);
        assert_eq!(recovered.digest(), oracle.digest(), "flip at {offset}");
        assert!(monitor.check_quick(&recovered).is_ok(), "flip at {offset}");
        assert!(
            monitor.check_full(&recovered).is_empty(),
            "flip at {offset}"
        );
    }
    assert_eq!(monitor.violations(), 0);
}

#[test]
fn recovery_is_idempotent_at_every_truncation_point() {
    // recover(recover(x).wal) == recover(x): the recovered WAL is always
    // a clean image.
    let reference = reference_ledger();
    let full = reference.wal().expect("wal attached").committed_bytes();
    // Sample every 7th offset to keep runtime modest; the exhaustive
    // single-pass properties above cover the rest.
    for cut in (0..=full.len()).step_by(7) {
        let (first, _) = Ledger::recover(&full[..cut]);
        let first_wal = first.wal().expect("recover reattaches").committed_bytes();
        let (second, report) = Ledger::recover(first_wal);
        assert!(report.is_clean(), "cut at {cut}");
        assert_eq!(second.digest(), first.digest(), "cut at {cut}");
    }
}

#[test]
fn group_commit_crash_loses_only_unacknowledged_operations() {
    // Epoch-boundary group commit: ops staged since the last commit are
    // not durable; a crash discards exactly those and nothing else.
    let mut l = Ledger::new();
    l.attach_wal(Wal::new());
    l.set_group_commit(true);
    let a = l.open_account(500);
    let b = l.open_account(0);
    l.commit_wal(); // epoch boundary: accounts are durable
    let committed_digest = {
        let (r, _) = Ledger::recover(l.wal().expect("attached").committed_bytes());
        r.digest()
    };
    // Mid-epoch activity, staged only.
    l.withdraw(a, 50).expect("funds");
    l.deposit_serial(b, serial(999), 50).expect("fresh");
    assert_eq!(l.wal().expect("attached").staged_records(), 2);
    // Crash before the boundary: the durable image still holds only the
    // committed prefix.
    let (recovered, report) = Ledger::recover(l.wal().expect("attached").committed_bytes());
    assert!(report.is_clean());
    assert_eq!(recovered.digest(), committed_digest);
    assert_eq!(recovered.balance(a), Some(500), "staged ops lost, not torn");
    // And committing instead of crashing makes them durable.
    l.commit_wal();
    let (after, _) = Ledger::recover(l.wal().expect("attached").committed_bytes());
    assert_eq!(after.balance(a), Some(450));
    assert_eq!(after.balance(b), Some(50));
}

#[test]
fn torn_final_record_fragments_of_every_length_are_discarded() {
    // Simulate the torn-write crash class end to end: a valid log plus a
    // fragment of the next record, at every fragment length.
    let mut l = Ledger::new();
    l.attach_wal(Wal::new());
    let a = l.open_account(100);
    let next = idpa_payment::wal::LedgerOp::Withdraw {
        account: a,
        value: 10,
    };
    let record = next.encode_record();
    let base = l.wal().expect("attached").committed_bytes().to_vec();
    for frag in 0..record.len() {
        let mut torn = base.clone();
        torn.extend_from_slice(&record[..frag]);
        let (recovered, report) = Ledger::recover(&torn);
        assert_eq!(report.bytes_replayed, base.len(), "fragment {frag}");
        assert_eq!(report.torn_bytes, frag, "fragment {frag}");
        assert_eq!(recovered.balance(a), Some(100), "fragment {frag}");
        assert_eq!(frag == 0, report.is_clean(), "fragment {frag}");
    }
    // The complete record, of course, applies.
    let mut whole = base.clone();
    whole.extend_from_slice(&record);
    let (recovered, report) = Ledger::recover(&whole);
    assert!(report.is_clean());
    assert_eq!(recovered.balance(a), Some(90));
}

#[test]
fn bank_recover_pairs_keys_with_the_replayed_ledger() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xba77);
    let mut bank = Bank::new(256, &mut rng);
    bank.enable_wal();
    let alice = bank.open_account(64);
    let bob = bank.open_account(0);
    let mut wallet = idpa_payment::Wallet::new();
    bank.withdraw_into_wallet(alice, 8, &mut wallet, &mut rng)
        .expect("funds");
    for t in wallet.take_exact(8).expect("exact") {
        bank.deposit(bob, &t).expect("valid token");
    }
    let image = bank
        .ledger()
        .wal()
        .expect("wal enabled")
        .committed_bytes()
        .to_vec();
    // Crash with a torn tail, recover with the same keys.
    let mut torn = image.clone();
    torn.extend_from_slice(&image[..13]);
    let (recovered, report) = Bank::recover(bank.keys().clone(), &torn);
    assert!(!report.is_clean());
    assert_eq!(recovered.balance(alice), bank.balance(alice));
    assert_eq!(recovered.balance(bob), bank.balance(bob));
    assert_eq!(recovered.outstanding(), bank.outstanding());
    assert_eq!(recovered.audit().head(), bank.audit().head());
    assert!(recovered.audit().verify_chain());
}
