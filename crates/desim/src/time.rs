//! Simulated time.
//!
//! The paper's workload is specified in minutes (median session time of
//! 60 minutes); we keep time as a dimensionless `f64` number of *minutes*
//! wrapped in a newtype that provides a total order (NaN is rejected at
//! construction) so it can key the event calendar.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in minutes since simulation start.
///
/// `SimTime` is totally ordered; constructing one from a NaN or negative
/// value panics, which turns arithmetic bugs into loud failures instead of
/// silently corrupting the event calendar order.
#[derive(Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point, panicking on NaN or negative input.
    #[must_use]
    pub fn new(minutes: f64) -> Self {
        assert!(
            minutes.is_finite() && minutes >= 0.0,
            "SimTime must be finite and non-negative, got {minutes}"
        );
        SimTime(minutes)
    }

    /// The raw number of minutes since simulation start.
    #[must_use]
    pub fn minutes(self) -> f64 {
        self.0
    }

    /// Saturating subtraction: returns the elapsed time from `earlier` to
    /// `self`, or zero if `earlier` is later than `self`.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are guaranteed finite by construction.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    fn add(self, delta: f64) -> SimTime {
        SimTime::new(self.0 + delta)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, delta: f64) {
        *self = *self + delta;
    }
}

impl Sub for SimTime {
    type Output = f64;

    fn sub(self, other: SimTime) -> f64 {
        self.0 - other.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}min", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_origin() {
        assert_eq!(SimTime::ZERO.minutes(), 0.0);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::new(1.0) < SimTime::new(2.0));
        assert!(SimTime::new(2.0) > SimTime::new(1.0));
        assert_eq!(SimTime::new(3.5), SimTime::new(3.5));
    }

    #[test]
    fn add_advances() {
        let t = SimTime::new(10.0) + 5.5;
        assert_eq!(t.minutes(), 15.5);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::new(1.0);
        t += 2.0;
        assert_eq!(t.minutes(), 3.0);
    }

    #[test]
    fn sub_gives_elapsed() {
        assert_eq!(SimTime::new(7.0) - SimTime::new(3.0), 4.0);
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(SimTime::new(3.0).saturating_since(SimTime::new(7.0)), 0.0);
        assert_eq!(SimTime::new(7.0).saturating_since(SimTime::new(3.0)), 4.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_rejected() {
        let _ = SimTime::new(-1.0);
    }
}
