//! A small deterministic work-queue thread pool for replication fan-out.
//!
//! The simulation kernel itself is single-threaded by design (event-order
//! determinism is a correctness requirement); parallelism lives across
//! *independent replications*. This module provides exactly that shape of
//! parallelism with zero external dependencies: scoped threads pull item
//! indices from a shared counter and write each result into its input
//! slot, so the output of [`parallel_map`] is **bit-identical at any
//! thread count** — item `i` is always computed by `f(i)` from its own
//! seed, and only the wall-clock assignment of items to threads varies.

use std::sync::{Mutex, PoisonError};

/// The default worker count: `IDPA_THREADS` if set, otherwise the
/// machine's available parallelism (at least 1).
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("IDPA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `0..n` on `threads` workers, returning results in index
/// order.
///
/// Results are deterministic for deterministic `f`: the value at position
/// `i` is exactly `f(i)` regardless of `threads`. Work is distributed
/// dynamically (a `Mutex`-guarded next-index counter), so uneven item
/// costs — e.g. model II replications that decline paths early — still
/// load-balance.
///
/// `threads == 1` (or `n <= 1`) degenerates to a plain sequential map with
/// no thread or lock overhead.
///
/// # Panics
///
/// Propagates a panic from `f` after the scope joins.
pub fn parallel_map<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return (0..n).map(f).collect();
    }

    let next = Mutex::new(0usize);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = {
                    // A poisoned lock means a sibling worker panicked in
                    // `f`; the scope will re-raise that panic on join, so
                    // recovering the guard here just lets this worker
                    // drain cleanly instead of double-panicking.
                    let mut guard = next.lock().unwrap_or_else(PoisonError::into_inner);
                    let i = *guard;
                    if i >= n {
                        break;
                    }
                    *guard += 1;
                    i
                };
                let value = f(i);
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every index was claimed and computed")
        })
        .collect()
}

/// Maps `f` over explicit work items on `threads` workers, returning
/// results in item order.
///
/// The shard-aware sibling of [`parallel_map`]: callers hand over a slice
/// of prepared work items — e.g. connection-formation bundles that each
/// carry the set of history shards their initiators map to — and `f`
/// receives `(index, &item)`. Distribution is the same dynamic work queue,
/// so the result vector is **bit-identical at any thread count**; only the
/// wall-clock assignment of items to workers varies. Items whose shard
/// sets are disjoint run concurrently without contending on any shared
/// lock; overlapping items serialize inside `f` on the shards themselves
/// (acquired in deterministic ascending order), never in the queue.
///
/// # Panics
///
/// Propagates a panic from `f` after the scope joins.
pub fn parallel_map_items<I, T, F>(threads: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    parallel_map(threads, items.len(), |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_index_order() {
        let out = parallel_map(4, 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_thread_counts() {
        let seq = parallel_map(1, 37, |i| i as u64 * 0x9E37_79B9);
        for threads in [2, 3, 8] {
            assert_eq!(parallel_map(threads, 37, |i| i as u64 * 0x9E37_79B9), seq);
        }
    }

    #[test]
    fn every_item_computed_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = parallel_map(8, 50, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 50);
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<usize> = parallel_map(4, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map(16, 3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn items_map_matches_index_map_at_any_thread_count() {
        let items: Vec<u64> = (0..41).map(|i| i * 3 + 1).collect();
        let seq = parallel_map_items(1, &items, |i, &x| x * 7 + i as u64);
        assert_eq!(seq.len(), items.len());
        for threads in [2, 4, 9] {
            assert_eq!(
                parallel_map_items(threads, &items, |i, &x| x * 7 + i as u64),
                seq
            );
        }
    }

    #[test]
    fn items_map_handles_empty_slice() {
        let items: Vec<u32> = Vec::new();
        let out: Vec<u32> = parallel_map_items(4, &items, |_, &x| x);
        assert!(out.is_empty());
    }
}
