//! Seed-derived deterministic adversary strategies.
//!
//! The paper evaluates a single adversary class — a random-routing
//! fraction `f` of malicious nodes — but the incentive mechanism's real
//! stress test is the strategy classes the related work catalogues:
//!
//! * **free riders** (Buragohain et al.): nodes that initiate connections
//!   and collect routing benefit but refuse forwarding duty, probing the
//!   participation incentive of Prop. 2;
//! * **whitewashers** (the free-riding survey): nodes that accumulate
//!   faults until their reputation suppresses them, then rejoin under a
//!   fresh identity on a seeded schedule, shedding every edge-reputation
//!   ledger that learned to avoid them;
//! * **colluding cliques**: seeded k-cliques whose members vouch for each
//!   other's *phantom* forwarding — a clique responder extends the §5 path
//!   manifest with clique mates that never forwarded anything and issues
//!   them valid receipts, attacking `PathValidator` reconstruction.
//!
//! Like [`crate::fault::FaultPlan`], every decision is drawn from a
//! position-keyed stream of the master seed
//! ([`crate::rng::StreamFactory`]), so adversarial runs replicate
//! bit-identically across thread counts, probe modes and node lifecycles.
//! The layer is strictly additive: with every rate at zero
//! ([`AdversaryConfig::is_active`] false) no adversary stream is ever
//! touched and simulations are bit-identical to a build without this
//! module.

use crate::rng::{StreamFactory, Xoshiro256StarStar};
use rand::RngExt;

/// Adversary strategy rates and the defense toggles.
///
/// All-zero rates (the default) disable the subsystem entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversaryConfig {
    /// Fraction of nodes that free-ride: they initiate connections but
    /// ghost every forwarding duty, so any path routed through them fails.
    pub free_rider_fraction: f64,
    /// Fraction of nodes that whitewash: on a seeded renewal schedule they
    /// rejoin as a fresh identity, clearing every reputation ledger's
    /// active entry for them (the evicted identity's evidence is archived,
    /// not destroyed).
    pub whitewash_fraction: f64,
    /// Mean minutes between one whitewasher's identity rejoins.
    pub whitewash_interval: f64,
    /// Number of seeded colluding cliques (0 = no cliques).
    pub clique_count: usize,
    /// Members per clique (≥ 2 when cliques are enabled).
    pub clique_size: usize,
    /// Probability that a clique responder forges phantom-forwarding
    /// evidence for its mates on a completed connection.
    pub clique_forge_rate: f64,
    /// Defense: discount a node's reputation score by its identity age,
    /// so freshly whitewashed identities do not instantly regain full
    /// trust (`min(1, age / reputation_maturity)` scaling).
    pub whitewash_age_discount: bool,
    /// Minutes a fresh identity needs to reach full reputation weight
    /// under the age-discount defense.
    pub reputation_maturity: f64,
    /// Defense: cross-check the manifest's hop list against the hops the
    /// initiator actually observed forwarding, so phantom clique entries
    /// are flagged instead of paid.
    pub clique_cross_check: bool,
}

impl Default for AdversaryConfig {
    fn default() -> Self {
        AdversaryConfig {
            free_rider_fraction: 0.0,
            whitewash_fraction: 0.0,
            whitewash_interval: 240.0,
            clique_count: 0,
            clique_size: 3,
            clique_forge_rate: 0.0,
            whitewash_age_discount: false,
            reputation_maturity: 120.0,
            clique_cross_check: false,
        }
    }
}

impl AdversaryConfig {
    /// Whether any strategy class is enabled. When false, an
    /// [`AdversaryPlan`] is never built and no adversary stream is
    /// consumed.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.free_rider_fraction > 0.0 || self.whitewash_fraction > 0.0 || self.cliques_active()
    }

    /// Whether the colluding-clique class is enabled.
    #[must_use]
    pub fn cliques_active(&self) -> bool {
        self.clique_count > 0 && self.clique_forge_rate > 0.0
    }

    /// Checks field ranges; returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("free_rider_fraction", self.free_rider_fraction),
            ("whitewash_fraction", self.whitewash_fraction),
            ("clique_forge_rate", self.clique_forge_rate),
        ];
        for (name, v) in probs {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be a probability in [0, 1], got {v}"));
            }
        }
        if self.whitewash_fraction > 0.0 && self.whitewash_interval <= 0.0 {
            return Err(format!(
                "whitewash_interval must be positive when whitewashing is enabled, got {}",
                self.whitewash_interval
            ));
        }
        if self.clique_count > 0 && self.clique_size < 2 {
            return Err(format!(
                "clique_size must be >= 2 when cliques are enabled, got {}",
                self.clique_size
            ));
        }
        if self.whitewash_age_discount && self.reputation_maturity <= 0.0 {
            return Err(format!(
                "reputation_maturity must be positive under the age-discount defense, got {}",
                self.reputation_maturity
            ));
        }
        Ok(())
    }
}

/// A fully deterministic adversary schedule derived from the master seed.
///
/// Static per-node class membership (free riders, whitewashers, clique
/// assignments) and each whitewasher's rejoin times are sampled up front;
/// the per-connection forge decision is a pure function of
/// `(pair, connection)`, materialized on demand.
#[derive(Debug, Clone)]
pub struct AdversaryPlan {
    cfg: AdversaryConfig,
    streams: StreamFactory,
    free_riders: Vec<bool>,
    /// Per node: ascending rejoin times within the horizon (empty for
    /// non-whitewashers).
    whitewash_times: Vec<Vec<f64>>,
    /// Per node: clique index, or `u32::MAX` when not in a clique.
    clique_of: Vec<u32>,
    /// Members per clique, each sorted ascending.
    cliques: Vec<Vec<usize>>,
}

impl AdversaryPlan {
    /// Builds the plan for `n_nodes` peers over `horizon` minutes.
    #[must_use]
    pub fn new(cfg: AdversaryConfig, streams: StreamFactory, n_nodes: usize, horizon: f64) -> Self {
        let free_riders = (0..n_nodes)
            .map(|i| {
                cfg.free_rider_fraction > 0.0 && {
                    let mut rng = streams.stream_indexed2("adversary/free-rider", i as u64, 0);
                    rng.random_range(0.0..1.0) < cfg.free_rider_fraction
                }
            })
            .collect();
        let whitewash_times = (0..n_nodes)
            .map(|i| Self::sample_whitewash(&cfg, &streams, i as u64, horizon))
            .collect();
        let (clique_of, cliques) = Self::sample_cliques(&cfg, &streams, n_nodes);
        AdversaryPlan {
            cfg,
            streams,
            free_riders,
            whitewash_times,
            clique_of,
            cliques,
        }
    }

    /// One whitewasher's rejoin schedule: a renewal process of
    /// Exp-distributed gaps (mean `whitewash_interval`) starting from 0,
    /// truncated to the horizon. Non-whitewashers get no schedule and
    /// consume no stream.
    fn sample_whitewash(
        cfg: &AdversaryConfig,
        streams: &StreamFactory,
        node: u64,
        horizon: f64,
    ) -> Vec<f64> {
        if cfg.whitewash_fraction <= 0.0 {
            return Vec::new();
        }
        let mut rng = streams.stream_indexed2("adversary/whitewash", node, 0);
        if rng.random_range(0.0..1.0) >= cfg.whitewash_fraction {
            return Vec::new();
        }
        let mut sched = streams.stream_indexed2("adversary/whitewash-sched", node, 0);
        let mut out = Vec::new();
        let mut t = 0.0f64;
        loop {
            t += exp_sample(&mut sched, cfg.whitewash_interval);
            if t >= horizon {
                break;
            }
            out.push(t);
        }
        out
    }

    /// Seeded clique membership: `clique_count * clique_size` distinct
    /// nodes drawn by partial Fisher–Yates from one stream, then chunked
    /// into cliques. Requesting more members than nodes exist caps the
    /// clique set at `n_nodes / clique_size` full cliques.
    fn sample_cliques(
        cfg: &AdversaryConfig,
        streams: &StreamFactory,
        n_nodes: usize,
    ) -> (Vec<u32>, Vec<Vec<usize>>) {
        let mut clique_of = vec![u32::MAX; n_nodes];
        if !cfg.cliques_active() {
            return (clique_of, Vec::new());
        }
        let count = cfg.clique_count.min(n_nodes / cfg.clique_size.max(1));
        let wanted = count * cfg.clique_size;
        let mut pool: Vec<usize> = (0..n_nodes).collect();
        let mut rng = streams.stream("adversary/clique");
        for i in 0..wanted {
            let j = i + (rng.random_range(0.0..1.0) * (n_nodes - i) as f64) as usize;
            pool.swap(i, j.min(n_nodes - 1));
        }
        let mut cliques = Vec::with_capacity(count);
        for c in 0..count {
            let mut members: Vec<usize> =
                pool[c * cfg.clique_size..(c + 1) * cfg.clique_size].to_vec();
            members.sort_unstable();
            for &m in &members {
                clique_of[m] = c as u32;
            }
            cliques.push(members);
        }
        (clique_of, cliques)
    }

    /// The configuration this plan was built from.
    #[must_use]
    pub fn config(&self) -> &AdversaryConfig {
        &self.cfg
    }

    /// Whether `node` free-rides (refuses all forwarding duty).
    #[must_use]
    pub fn is_free_rider(&self, node: usize) -> bool {
        self.free_riders.get(node).copied().unwrap_or(false)
    }

    /// The sorted indices of all free riders.
    #[must_use]
    pub fn free_riders(&self) -> Vec<usize> {
        self.free_riders
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether `node` whitewashes at least once within the horizon.
    #[must_use]
    pub fn is_whitewasher(&self, node: usize) -> bool {
        self.whitewash_times
            .get(node)
            .is_some_and(|t| !t.is_empty())
    }

    /// `node`'s ascending rejoin times (empty for non-whitewashers).
    #[must_use]
    pub fn whitewash_times(&self, node: usize) -> &[f64] {
        self.whitewash_times
            .get(node)
            .map_or(&[], std::vec::Vec::as_slice)
    }

    /// Every `(node, rejoin time)` event within the horizon, in node order.
    #[must_use]
    pub fn whitewash_events(&self) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        for (node, times) in self.whitewash_times.iter().enumerate() {
            for &t in times {
                out.push((node, t));
            }
        }
        out
    }

    /// The birth time of `node`'s identity live at time `t`: its latest
    /// rejoin at or before `t`, or 0 for the original identity. A pure
    /// function of the precomputed schedule, so it needs no snapshotting.
    #[must_use]
    pub fn identity_birth(&self, node: usize, t: f64) -> f64 {
        match self.whitewash_times.get(node) {
            Some(times) => match times.partition_point(|&w| w <= t) {
                0 => 0.0,
                k => times[k - 1],
            },
            None => 0.0,
        }
    }

    /// Age of `node`'s current identity at time `t`, in minutes.
    #[must_use]
    pub fn identity_age(&self, node: usize, t: f64) -> f64 {
        (t - self.identity_birth(node, t)).max(0.0)
    }

    /// The clique `node` belongs to, if any.
    #[must_use]
    pub fn clique_of(&self, node: usize) -> Option<usize> {
        match self.clique_of.get(node) {
            Some(&c) if c != u32::MAX => Some(c as usize),
            _ => None,
        }
    }

    /// Members of clique `c`, sorted ascending.
    #[must_use]
    pub fn clique_members(&self, c: usize) -> &[usize] {
        self.cliques.get(c).map_or(&[], std::vec::Vec::as_slice)
    }

    /// All cliques, each a sorted member list.
    #[must_use]
    pub fn cliques(&self) -> &[Vec<usize>] {
        &self.cliques
    }

    /// Whether a clique responder forges phantom-forwarding evidence on
    /// this connection. A pure function of `(pair, connection)` so the
    /// decision is independent of retry count and event interleaving.
    #[must_use]
    pub fn forges_confirmation(&self, pair: u64, connection: u64) -> bool {
        self.cfg.cliques_active() && {
            let mut rng = self
                .streams
                .stream_indexed2("adversary/forge", pair, connection);
            rng.random_range(0.0..1.0) < self.cfg.clique_forge_rate
        }
    }
}

/// Inverse-CDF exponential sample with the given mean (`u` uniform in
/// `[0, 1)` makes `1 - u` strictly positive, so the log is finite).
fn exp_sample(rng: &mut Xoshiro256StarStar, mean: f64) -> f64 {
    let u: f64 = rng.random_range(0.0..1.0);
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;

    fn active_cfg() -> AdversaryConfig {
        AdversaryConfig {
            free_rider_fraction: 0.2,
            whitewash_fraction: 0.15,
            whitewash_interval: 120.0,
            clique_count: 3,
            clique_size: 4,
            clique_forge_rate: 0.5,
            ..AdversaryConfig::default()
        }
    }

    fn plan(seed: u64) -> AdversaryPlan {
        AdversaryPlan::new(active_cfg(), StreamFactory::new(seed), 100, 1440.0)
    }

    #[test]
    fn default_config_is_inactive_and_valid() {
        let cfg = AdversaryConfig::default();
        assert!(!cfg.is_active());
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn each_strategy_class_activates() {
        for cfg in [
            AdversaryConfig {
                free_rider_fraction: 0.1,
                ..AdversaryConfig::default()
            },
            AdversaryConfig {
                whitewash_fraction: 0.1,
                ..AdversaryConfig::default()
            },
            AdversaryConfig {
                clique_count: 2,
                clique_forge_rate: 0.5,
                ..AdversaryConfig::default()
            },
        ] {
            assert!(cfg.is_active());
            assert_eq!(cfg.validate(), Ok(()));
        }
        // A clique count without a forge rate does nothing.
        assert!(!AdversaryConfig {
            clique_count: 2,
            ..AdversaryConfig::default()
        }
        .is_active());
    }

    #[test]
    fn invalid_configs_rejected_with_field_name() {
        let bad = AdversaryConfig {
            free_rider_fraction: 1.5,
            ..AdversaryConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("free_rider_fraction"));
        let bad = AdversaryConfig {
            whitewash_fraction: 0.1,
            whitewash_interval: 0.0,
            ..AdversaryConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("whitewash_interval"));
        let bad = AdversaryConfig {
            clique_count: 1,
            clique_size: 1,
            ..AdversaryConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("clique_size"));
        let bad = AdversaryConfig {
            whitewash_age_discount: true,
            reputation_maturity: 0.0,
            ..AdversaryConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("reputation_maturity"));
    }

    #[test]
    fn zero_rates_derive_nothing() {
        let p = AdversaryPlan::new(
            AdversaryConfig::default(),
            StreamFactory::new(1),
            50,
            1000.0,
        );
        assert!(p.free_riders().is_empty());
        assert!(p.whitewash_events().is_empty());
        assert!(p.cliques().is_empty());
        assert!(!p.forges_confirmation(0, 0));
        assert_eq!(p.identity_age(3, 500.0), 500.0);
    }

    #[test]
    fn class_membership_is_seed_stable_and_matches_fractions() {
        let a = plan(9);
        let b = plan(9);
        assert_eq!(a.free_riders(), b.free_riders());
        assert_eq!(a.whitewash_events(), b.whitewash_events());
        assert_eq!(a.cliques(), b.cliques());
        let fr = a.free_riders().len();
        assert!((5..40).contains(&fr), "free riders: {fr}/100");
        let ww = (0..100).filter(|&i| a.is_whitewasher(i)).count();
        assert!((3..35).contains(&ww), "whitewashers: {ww}/100");
    }

    #[test]
    fn cliques_are_disjoint_and_sized() {
        let p = plan(11);
        assert_eq!(p.cliques().len(), 3);
        let mut seen = std::collections::HashSet::new();
        for (c, members) in p.cliques().iter().enumerate() {
            assert_eq!(members.len(), 4);
            for &m in members {
                assert!(seen.insert(m), "node {m} in two cliques");
                assert_eq!(p.clique_of(m), Some(c));
            }
            assert!(members.windows(2).all(|w| w[0] < w[1]), "members sorted");
        }
        assert_eq!(p.clique_of(1000), None);
    }

    #[test]
    fn clique_request_larger_than_world_is_capped() {
        let p = AdversaryPlan::new(
            AdversaryConfig {
                clique_count: 10,
                clique_size: 4,
                clique_forge_rate: 1.0,
                ..AdversaryConfig::default()
            },
            StreamFactory::new(3),
            10,
            100.0,
        );
        assert_eq!(p.cliques().len(), 2, "10 nodes hold two 4-cliques");
    }

    #[test]
    fn whitewash_schedule_is_ascending_and_renewal_paced() {
        let p = AdversaryPlan::new(
            AdversaryConfig {
                whitewash_fraction: 1.0,
                whitewash_interval: 100.0,
                ..AdversaryConfig::default()
            },
            StreamFactory::new(21),
            40,
            100_000.0,
        );
        let mut total = 0usize;
        for node in 0..40 {
            let times = p.whitewash_times(node);
            assert!(!times.is_empty());
            assert!(times.windows(2).all(|w| w[0] < w[1]), "ascending");
            assert!(times.iter().all(|&t| t > 0.0 && t < 100_000.0));
            total += times.len();
        }
        // 40 nodes x ~1000 rejoins at mean gap 100 over 100k minutes.
        let mean = total as f64 / 40.0;
        assert!((800.0..1200.0).contains(&mean), "mean rejoins {mean}");
    }

    #[test]
    fn identity_age_resets_at_each_rejoin() {
        let p = plan(5);
        let node = (0..100).find(|&i| p.is_whitewasher(i)).unwrap();
        let t0 = p.whitewash_times(node)[0];
        assert_eq!(p.identity_birth(node, t0 - 0.01), 0.0);
        assert_eq!(p.identity_birth(node, t0), t0);
        assert!(p.identity_age(node, t0 + 5.0) <= 5.0 + 1e-9);
        // Non-whitewashers age from the origin.
        let plain = (0..100).find(|&i| !p.is_whitewasher(i)).unwrap();
        assert_eq!(p.identity_age(plain, 777.0), 777.0);
    }

    #[test]
    fn forge_decisions_are_position_stable_and_mixed() {
        let p = plan(13);
        let mut yes = 0;
        for conn in 0..200u64 {
            if p.forges_confirmation(3, conn) {
                yes += 1;
            }
        }
        assert!((60..140).contains(&yes), "forge rate off: {yes}/200");
        assert_eq!(p.forges_confirmation(1, 2), p.forges_confirmation(1, 2));
    }
}
