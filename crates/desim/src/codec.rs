//! Versioned, checksummed binary codec for simulation snapshots.
//!
//! The service-mode runner (`idpa-sim`) periodically serializes the full
//! mutable simulation state so a long heavy-traffic run can be killed and
//! resumed bit-identically. This module provides the byte-level substrate:
//! little-endian primitive encoding ([`Enc`]/[`Dec`]), a typed error for
//! every way a snapshot can be malformed ([`CodecError`]), and a framing
//! layer ([`frame`]/[`unframe`]) that wraps a payload in magic bytes, a
//! format version, an explicit length, and an FNV-1a-64 checksum.
//!
//! Design rules, enforced by the decode-hardening property suite in
//! `idpa-sim`:
//!
//! * decoding never panics — every malformed input maps to a
//!   [`CodecError`];
//! * decoding never allocates proportionally to an attacker-controlled
//!   length field — collection lengths are validated against the bytes
//!   actually remaining before any allocation;
//! * floating-point values round-trip through [`f64::to_bits`], so a
//!   decoded snapshot is *bit*-identical to the encoded state, not merely
//!   numerically close.

use crate::time::SimTime;

/// Magic bytes opening every snapshot file ("IDPA snapshot").
pub const MAGIC: [u8; 8] = *b"IDPASNP\0";

/// How a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a fixed-size field could be read.
    UnexpectedEof {
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Bytes the field needed.
        needed: usize,
    },
    /// The leading magic bytes are not [`MAGIC`].
    BadMagic,
    /// The format version is not one this build understands.
    UnsupportedVersion(u32),
    /// The payload length field disagrees with the bytes present.
    LengthMismatch {
        /// Length the header declared.
        declared: u64,
        /// Payload bytes actually present.
        present: u64,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the frame.
        expected: u64,
        /// Checksum of the payload as received.
        actual: u64,
    },
    /// A collection length field exceeds the bytes remaining.
    LengthOverflow {
        /// Byte offset of the length field.
        offset: usize,
        /// The declared element count.
        declared: u64,
    },
    /// A field decoded to a value that is structurally impossible
    /// (e.g. a boolean byte that is neither 0 nor 1, an unknown enum tag).
    Invalid {
        /// Which field was malformed.
        what: &'static str,
    },
    /// Bytes remained after the payload was fully decoded.
    TrailingBytes {
        /// Number of undecoded bytes.
        remaining: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof { offset, needed } => {
                write!(f, "unexpected EOF at byte {offset} (needed {needed} more)")
            }
            CodecError::BadMagic => write!(f, "bad magic bytes (not an IDPA snapshot)"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            CodecError::LengthMismatch { declared, present } => write!(
                f,
                "payload length mismatch: header declares {declared} bytes, {present} present"
            ),
            CodecError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: expected {expected:#018x}, computed {actual:#018x}"
            ),
            CodecError::LengthOverflow { offset, declared } => write!(
                f,
                "collection length {declared} at byte {offset} exceeds remaining input"
            ),
            CodecError::Invalid { what } => write!(f, "malformed field: {what}"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after payload")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit hash of `bytes` — the snapshot payload checksum.
///
/// Every step after a byte is absorbed (XOR with later bytes, multiply by
/// the odd FNV prime) is injective in the running hash, so any single-byte
/// change to the payload changes the final value; the decode-hardening
/// suite relies on this to prove corrupted snapshots are always rejected.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for byte in bytes {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Little-endian primitive encoder appending to an owned buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    /// Wraps an existing buffer, appending after its current contents —
    /// lets hot paths encode straight onto a destination (or reuse a
    /// scratch allocation) instead of paying a fresh `Vec` per record.
    #[must_use]
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Enc { buf }
    }

    /// Consumes the encoder, returning the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a boolean as a single 0/1 byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (snapshots are portable across word sizes).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` by bit pattern (exact round-trip, NaN-safe).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a [`SimTime`] by the bit pattern of its minutes.
    pub fn time(&mut self, t: SimTime) {
        self.f64(t.minutes());
    }

    /// Appends raw bytes with no length prefix.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a collection length prefix (`u64`).
    pub fn seq_len(&mut self, len: usize) {
        self.u64(len as u64);
    }
}

/// Little-endian primitive decoder over a borrowed buffer.
///
/// Every read is bounds-checked and returns [`CodecError`] on failure;
/// nothing in this type panics on malformed input.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Creates a decoder over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current byte offset.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                offset: self.pos,
                needed: n - self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a boolean; rejects any byte other than 0 or 1.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid { what: "bool byte" }),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(b);
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a `usize` encoded as `u64`, rejecting values beyond this
    /// platform's address range.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::Invalid {
            what: "usize field",
        })
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a [`SimTime`]; rejects NaN, infinities and negative values
    /// (no valid snapshot contains them, and [`SimTime::new`] would panic).
    pub fn time(&mut self) -> Result<SimTime, CodecError> {
        let m = self.f64()?;
        if !(m.is_finite() && m >= 0.0) {
            return Err(CodecError::Invalid { what: "SimTime" });
        }
        Ok(SimTime::new(m))
    }

    /// Reads `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Reads a collection length prefix, validating it against the bytes
    /// remaining: each element of any encoded collection occupies at least
    /// `min_elem_bytes` bytes, so a declared count that could not possibly
    /// fit is rejected *before* any allocation.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let at = self.pos;
        let declared = self.u64()?;
        let fits = usize::try_from(declared)
            .ok()
            .and_then(|n| n.checked_mul(min_elem_bytes.max(1)))
            .is_some_and(|total| total <= self.remaining());
        if !fits {
            return Err(CodecError::LengthOverflow {
                offset: at,
                declared,
            });
        }
        #[allow(clippy::cast_possible_truncation)]
        Ok(declared as usize)
    }

    /// Asserts the input is fully consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Wraps `payload` in the snapshot frame:
/// `MAGIC ‖ version:u32 ‖ payload_len:u64 ‖ payload ‖ fnv1a64(payload):u64`.
#[must_use]
pub fn frame(version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + 4 + 8 + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a_64(payload).to_le_bytes());
    out
}

/// Validates a snapshot frame and returns the payload slice.
///
/// Checks, in order: magic bytes, format version (must equal
/// `expect_version`), declared-vs-present length, and payload checksum.
pub fn unframe(bytes: &[u8], expect_version: u32) -> Result<&[u8], CodecError> {
    let mut dec = Dec::new(bytes);
    let magic = dec.raw(MAGIC.len())?;
    if magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = dec.u32()?;
    if version != expect_version {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let declared = dec.u64()?;
    let present = dec.remaining().saturating_sub(8) as u64;
    if declared != present {
        return Err(CodecError::LengthMismatch { declared, present });
    }
    #[allow(clippy::cast_possible_truncation)]
    let payload = dec.raw(declared as usize)?;
    let expected = dec.u64()?;
    dec.finish()?;
    let actual = fnv1a_64(payload);
    if expected != actual {
        return Err(CodecError::ChecksumMismatch { expected, actual });
    }
    Ok(payload)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // test-only assertions may panic freely
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut enc = Enc::new();
        enc.u8(7);
        enc.bool(true);
        enc.bool(false);
        enc.u32(0xDEAD_BEEF);
        enc.u64(u64::MAX - 1);
        enc.usize(123_456);
        enc.f64(-0.0);
        enc.f64(std::f64::consts::PI);
        enc.time(SimTime::new(1440.0));
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 7);
        assert!(dec.bool().unwrap());
        assert!(!dec.bool().unwrap());
        assert_eq!(dec.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.u64().unwrap(), u64::MAX - 1);
        assert_eq!(dec.usize().unwrap(), 123_456);
        assert_eq!(dec.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(dec.f64().unwrap(), std::f64::consts::PI);
        assert_eq!(dec.time().unwrap(), SimTime::new(1440.0));
        dec.finish().unwrap();
    }

    #[test]
    fn eof_is_typed() {
        let mut dec = Dec::new(&[1, 2, 3]);
        let err = dec.u64().unwrap_err();
        assert!(matches!(err, CodecError::UnexpectedEof { .. }));
    }

    #[test]
    fn bad_bool_is_typed() {
        let mut dec = Dec::new(&[2]);
        assert_eq!(
            dec.bool().unwrap_err(),
            CodecError::Invalid { what: "bool byte" }
        );
    }

    #[test]
    fn absurd_length_rejected_before_allocation() {
        let mut enc = Enc::new();
        enc.u64(u64::MAX / 2); // declares ~2^63 elements over an empty body
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let err = dec.seq_len(8).unwrap_err();
        assert!(matches!(err, CodecError::LengthOverflow { .. }));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let dec = Dec::new(&[0]);
        assert_eq!(
            dec.finish().unwrap_err(),
            CodecError::TrailingBytes { remaining: 1 }
        );
    }

    #[test]
    fn frame_round_trips() {
        let payload = b"snapshot payload".to_vec();
        let framed = frame(3, &payload);
        assert_eq!(unframe(&framed, 3).unwrap(), payload.as_slice());
    }

    #[test]
    fn frame_rejects_wrong_magic() {
        let mut framed = frame(1, b"x");
        framed[0] ^= 0xFF;
        assert_eq!(unframe(&framed, 1).unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn frame_rejects_wrong_version() {
        let framed = frame(1, b"x");
        assert_eq!(
            unframe(&framed, 2).unwrap_err(),
            CodecError::UnsupportedVersion(1)
        );
    }

    #[test]
    fn frame_rejects_truncation() {
        let framed = frame(1, b"some payload");
        for cut in 0..framed.len() {
            let err = unframe(&framed[..cut], 1).unwrap_err();
            assert!(
                matches!(
                    err,
                    CodecError::UnexpectedEof { .. }
                        | CodecError::BadMagic
                        | CodecError::LengthMismatch { .. }
                ),
                "cut={cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn frame_rejects_any_payload_bit_flip() {
        let payload: Vec<u8> = (0u8..=255).collect();
        let framed = frame(1, &payload);
        let start = MAGIC.len() + 4 + 8;
        for i in start..start + payload.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x01;
            let err = unframe(&bad, 1).unwrap_err();
            assert!(
                matches!(err, CodecError::ChecksumMismatch { .. }),
                "flip at {i} gave {err:?}"
            );
        }
    }

    #[test]
    fn checksum_detects_checksum_field_corruption() {
        let framed = frame(1, b"payload");
        let mut bad = framed.clone();
        let n = bad.len();
        bad[n - 1] ^= 0x80;
        assert!(matches!(
            unframe(&bad, 1).unwrap_err(),
            CodecError::ChecksumMismatch { .. }
        ));
    }
}
