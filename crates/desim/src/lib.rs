//! # idpa-desim — deterministic discrete-event simulation kernel
//!
//! The evaluation in *Incentive-Driven P2P Anonymity System* (Ray, Slutzki,
//! Zhang; ICPP 2007) is performed entirely with an event-driven simulator.
//! This crate provides that substrate:
//!
//! * a [`Calendar`] of timestamped events with deterministic FIFO tie-breaking,
//! * an [`Engine`] that drives a user-supplied [`Process`] until a horizon,
//! * reproducible random-number streams ([`rng::SplitMix64`],
//!   [`rng::Xoshiro256StarStar`], [`rng::StreamFactory`]) so that every
//!   experiment in the paper reproduction is replayable from a single seed,
//! * deterministic fault injection ([`fault::FaultPlan`]): crashes, drops,
//!   delays, confirmation cheating and bank outages, all drawn by position
//!   from the master seed so faulty runs replicate bit-identically,
//! * deterministic adversary strategies
//!   ([`adversary_plan::AdversaryPlan`]): free riders, whitewashers and
//!   colluding cliques, derived from position-keyed streams like the
//!   fault plan,
//! * a versioned, checksummed snapshot codec ([`codec`]) with typed decode
//!   errors, the byte-level substrate for `idpa-sim`'s crash-safe
//!   checkpoint/resume,
//! * statistics collectors ([`stats::OnlineStats`], [`stats::Ecdf`],
//!   [`stats::Histogram`], [`stats::ConfidenceInterval`]) used to produce the
//!   paper's mean-with-95%-CI figures and payoff CDFs.
//!
//! The kernel is intentionally single-threaded: determinism of the event
//! order is a correctness requirement (experiments are compared across
//! routing strategies with common random numbers). Parallelism lives one
//! level up, across independent replications — [`pool::parallel_map`]
//! fans replications out over a deterministic work-queue thread pool whose
//! results are bit-identical at any thread count (see `idpa-sim`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod adversary_plan;
pub mod calendar;
pub mod codec;
pub mod engine;
pub mod fault;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod time;

pub use adversary_plan::{AdversaryConfig, AdversaryPlan};
pub use calendar::{Calendar, EventEntry, EventId};
pub use codec::CodecError;
pub use engine::{Engine, Process, StopReason};
pub use fault::{
    CheatAction, EdgeFault, FaultConfig, FaultPlan, FaultResponse, TransmissionFaults,
};
pub use time::SimTime;
