//! Reproducible random-number streams.
//!
//! Every experiment in the reproduction must be replayable from a single
//! master seed, and the comparison between routing strategies uses *common
//! random numbers*: the churn process, neighbor selection and (I,R) pair
//! workload must be identical across the strategies being compared. That
//! requires stable, named substreams rather than one shared generator, so
//! that consuming extra randomness in one component cannot shift another
//! component's stream.
//!
//! We implement our own small generators (SplitMix64 for seeding,
//! xoshiro256** as the workhorse) so the bit streams cannot change under us
//! when the `rand` crate revises its `StdRng` algorithm. Both implement
//! [`rand::TryRng`] (infallible), so all of `rand`'s machinery works on top.

use core::convert::Infallible;
use rand::TryRng;

/// SplitMix64: a tiny, statistically solid generator used here for seed
/// derivation (its output is equidistributed over `u64`, so it is the
/// recommended seeder for xoshiro-family generators).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl TryRng for SplitMix64 {
    type Error = Infallible;

    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        Ok((self.next() >> 32) as u32)
    }

    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        Ok(self.next())
    }

    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
        let mut chunks = dst.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
        Ok(())
    }
}

/// xoshiro256**: the main generator used by all simulation components.
///
/// Period 2^256 − 1; passes BigCrush. Seeded through SplitMix64 so that
/// low-entropy seeds (0, 1, 2, …) still give well-mixed initial states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator whose 256-bit state is expanded from `seed` via
    /// SplitMix64.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next();
        }
        // The all-zero state is the one invalid state; SplitMix64 cannot
        // produce four consecutive zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// The raw 256-bit state, for snapshotting a stream cursor mid-run.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by
    /// [`Xoshiro256StarStar::state`]. The all-zero state (which no valid
    /// capture produces, but a hostile snapshot could claim) is replaced by
    /// the same guard constant as [`Xoshiro256StarStar::seed_from_u64`], so
    /// the generator can never enter its one degenerate fixed point.
    #[must_use]
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// The next 64 random bits.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl TryRng for Xoshiro256StarStar {
    type Error = Infallible;

    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        Ok((self.next() >> 32) as u32)
    }

    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        Ok(self.next())
    }

    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
        fill_bytes_via_u64(self, dst);
        Ok(())
    }
}

fn fill_bytes_via_u64(rng: &mut Xoshiro256StarStar, dst: &mut [u8]) {
    let mut chunks = dst.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

/// Derives independent, named random streams from one master seed.
///
/// Stream identity is the FNV-1a hash of the label mixed with the master
/// seed, so `stream("churn")` yields the same generator no matter how many
/// other streams were created before it — the property that makes
/// common-random-number comparisons valid.
///
/// ```
/// use idpa_desim::rng::StreamFactory;
///
/// let f = StreamFactory::new(42);
/// let mut a1 = f.stream("churn");
/// let mut a2 = f.stream("churn");
/// let mut b = f.stream("workload");
/// assert_eq!(a1.next(), a2.next()); // same label => same stream
/// assert_ne!(f.stream("churn").next(), b.next());
/// ```
#[derive(Debug, Clone)]
pub struct StreamFactory {
    master_seed: u64,
}

impl StreamFactory {
    /// Creates a factory over the given master seed.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        StreamFactory { master_seed }
    }

    /// The master seed this factory was built from.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// A generator for the named stream.
    #[must_use]
    pub fn stream(&self, label: &str) -> Xoshiro256StarStar {
        self.stream_indexed(label, 0)
    }

    /// A generator for the `index`-th substream of the named stream; use for
    /// per-node or per-replication streams ("node", 17).
    #[must_use]
    pub fn stream_indexed(&self, label: &str, index: u64) -> Xoshiro256StarStar {
        let h = fnv1a(label, &[index]);
        // One extra SplitMix64 round decorrelates label-hash and seed.
        let mut mixer = SplitMix64::new(h ^ self.master_seed);
        Xoshiro256StarStar::seed_from_u64(mixer.next())
    }

    /// A generator keyed by two indices — e.g. `(node, round)` — so that
    /// per-event randomness can be drawn *by position* rather than from a
    /// shared sequential stream. Two components that derive their draws this
    /// way consume identical bits no matter in which order (or on which
    /// thread) they materialize them, which is what makes lazily-evaluated
    /// state bit-identical to its eagerly-evaluated counterpart.
    #[must_use]
    pub fn stream_indexed2(&self, label: &str, a: u64, b: u64) -> Xoshiro256StarStar {
        let h = fnv1a(label, &[a, b]);
        let mut mixer = SplitMix64::new(h ^ self.master_seed);
        Xoshiro256StarStar::seed_from_u64(mixer.next())
    }

    /// A generator keyed by three indices — e.g. `(pair, connection,
    /// attempt)` — the finest-grained position key. Like
    /// [`StreamFactory::stream_indexed2`], draws are a pure function of the
    /// key, so components that materialize them lazily, out of order, or on
    /// different threads consume identical bits.
    #[must_use]
    pub fn stream_indexed3(&self, label: &str, a: u64, b: u64, c: u64) -> Xoshiro256StarStar {
        let h = fnv1a(label, &[a, b, c]);
        let mut mixer = SplitMix64::new(h ^ self.master_seed);
        Xoshiro256StarStar::seed_from_u64(mixer.next())
    }
}

/// FNV-1a over the label bytes followed by each index's LE bytes.
fn fnv1a(label: &str, indices: &[u64]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for byte in label.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    for index in indices {
        for byte in index.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngExt};

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next(), 6457827717110365317);
        assert_eq!(sm.next(), 3203168211198807973);
        assert_eq!(sm.next(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256StarStar::seed_from_u64(99);
        let mut b = Xoshiro256StarStar::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn xoshiro_different_seeds_differ() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next() == b.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fill_bytes_handles_non_multiple_of_8() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // The first 8 bytes must be the LE encoding of the first u64.
        let mut rng2 = Xoshiro256StarStar::seed_from_u64(7);
        assert_eq!(&buf[..8], &rng2.next_u64().to_le_bytes());
    }

    #[test]
    fn works_with_rand_distributions() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let x: f64 = rng.random_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let n: u32 = rng.random_range(0..10);
        assert!(n < 10);
    }

    #[test]
    fn streams_are_label_stable() {
        let f = StreamFactory::new(7);
        let mut churn1 = f.stream("churn");
        let _ignored = f.stream("other"); // must not perturb "churn"
        let mut churn2 = f.stream("churn");
        for _ in 0..100 {
            assert_eq!(churn1.next(), churn2.next());
        }
    }

    #[test]
    fn streams_with_different_labels_decorrelate() {
        let f = StreamFactory::new(7);
        let mut a = f.stream("alpha");
        let mut b = f.stream("beta");
        let matches = (0..256).filter(|_| a.next() == b.next()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn indexed_streams_decorrelate() {
        let f = StreamFactory::new(7);
        let mut a = f.stream_indexed("node", 0);
        let mut b = f.stream_indexed("node", 1);
        let matches = (0..256).filter(|_| a.next() == b.next()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn two_index_streams_are_position_stable() {
        let f = StreamFactory::new(7);
        let mut a1 = f.stream_indexed2("probe", 3, 41);
        let mut a2 = f.stream_indexed2("probe", 3, 41);
        for _ in 0..64 {
            assert_eq!(a1.next(), a2.next());
        }
    }

    #[test]
    fn three_index_streams_are_position_stable_and_decorrelated() {
        let f = StreamFactory::new(7);
        let mut a1 = f.stream_indexed3("fault/tx", 3, 41, 2);
        let mut a2 = f.stream_indexed3("fault/tx", 3, 41, 2);
        for _ in 0..64 {
            assert_eq!(a1.next(), a2.next());
        }
        let mut base = f.stream_indexed3("fault/tx", 3, 41, 2);
        let b0 = base.next();
        assert_ne!(b0, f.stream_indexed3("fault/tx", 4, 41, 2).next());
        assert_ne!(b0, f.stream_indexed3("fault/tx", 3, 42, 2).next());
        assert_ne!(b0, f.stream_indexed3("fault/tx", 3, 41, 3).next());
        assert_ne!(b0, f.stream_indexed2("fault/tx", 3, 41).next());
    }

    #[test]
    fn two_index_streams_decorrelate_in_both_indices() {
        let f = StreamFactory::new(7);
        let mut base = f.stream_indexed2("probe", 3, 41);
        let mut other_a = f.stream_indexed2("probe", 4, 41);
        let mut other_b = f.stream_indexed2("probe", 3, 42);
        let mut swapped = f.stream_indexed2("probe", 41, 3);
        let b0 = base.next();
        assert_ne!(b0, other_a.next());
        assert_ne!(b0, other_b.next());
        assert_ne!(b0, swapped.next());
    }

    #[test]
    fn different_master_seeds_decorrelate() {
        let mut a = StreamFactory::new(1).stream("x");
        let mut b = StreamFactory::new(2).stream("x");
        let matches = (0..256).filter(|_| a.next() == b.next()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn uniformity_smoke_test() {
        // Mean of 100k uniform f64 draws should be near 0.5.
        let mut rng = Xoshiro256StarStar::seed_from_u64(2024);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0..1.0f64)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean={mean}");
    }
}
